"""Robustness across traversal sources (the abstract's second claim).

"[Our dynamic solution] is more robust to the irregularities typical of
real world graphs."  Speedup tables fix one source; real deployments
answer queries from arbitrary sources, whose frontier trajectories
differ (a hub source explodes immediately; a fringe source crawls for a
while).  For each dataset this bench runs SSSP from several random
sources and compares, per executor, the *worst-case* ratio to that
query's best static variant.

Reproduced shape: every static variant has queries where it is far from
the best choice (its worst-case ratio across sources is large), while
the adaptive runtime's worst case stays near 1 — it adapts to each
query's own trajectory, which is the operational meaning of robustness.
"""

import numpy as np

from common import bench_workload, write_report
from repro.core import adaptive_sssp, run_static
from repro.graph.properties import reachable_count
from repro.kernels import unordered_variants
from repro.utils.tables import Table

KEYS = ("citeseer", "p2p", "amazon", "google")
NUM_SOURCES = 5


def pick_sources(graph, count, seed=0):
    """Well-connected sources with diverse degrees."""
    rng = np.random.default_rng(seed)
    candidates = rng.choice(graph.num_nodes, size=4 * count, replace=False)
    good = [
        int(c) for c in candidates
        if reachable_count(graph, int(c)) > graph.num_nodes // 20
    ]
    by_degree = sorted(good, key=lambda c: graph.out_degrees[c])
    if len(by_degree) < count:
        return by_degree
    idx = np.linspace(0, len(by_degree) - 1, count).astype(int)
    return [by_degree[i] for i in idx]


def build_report():
    results = {}
    for key in KEYS:
        graph, _ = bench_workload(key, weighted=True)
        sources = pick_sources(graph, NUM_SOURCES, seed=3)
        worst_ratio = {v.code: 0.0 for v in unordered_variants()}
        worst_ratio["adaptive"] = 0.0
        for source in sources:
            statics = {
                v.code: run_static(graph, source, "sssp", v).total_seconds
                for v in unordered_variants()
            }
            best = min(statics.values())
            ad = adaptive_sssp(graph, source).total_seconds
            for code, seconds in statics.items():
                worst_ratio[code] = max(worst_ratio[code], seconds / best)
            worst_ratio["adaptive"] = max(worst_ratio["adaptive"], ad / best)
        results[key] = (worst_ratio, len(sources))

    columns = [v.code for v in unordered_variants()] + ["adaptive"]
    table = Table(
        ["network", "#sources"] + columns,
        title="worst-case ratio to the per-query best static (SSSP, multi-source)",
    )
    for key, (worst_ratio, n_sources) in results.items():
        table.add_row(
            [key, n_sources] + [f"{worst_ratio[c]:.2f}" for c in columns]
        )
    return table.render(), results


def test_robustness_across_sources(benchmark):
    content, results = benchmark.pedantic(build_report, rounds=1, iterations=1)
    write_report("robustness_sources", content)

    for key, (worst_ratio, n_sources) in results.items():
        assert n_sources >= 3, key
        adaptive_worst = worst_ratio["adaptive"]
        static_worsts = [v for c, v in worst_ratio.items() if c != "adaptive"]
        # The adaptive runtime's worst case beats every static variant's
        # worst case (robustness), and stays near the per-query optimum.
        assert adaptive_worst <= min(static_worsts) + 0.02, (key, worst_ratio)
        assert adaptive_worst < 1.25, (key, adaptive_worst)
        # At least one static variant is badly exposed on some query.
        assert max(static_worsts) > 1.3, (key, worst_ratio)
