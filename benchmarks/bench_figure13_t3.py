"""Figure 13 — adaptive-SSSP execution time as T3 sweeps 1 %..13 % of the
node count, per dataset.

Reproduced shape: execution time degrades as T3 grows past the
dataset's sweet spot, because the queue representation — whose
single-counter atomic generation scales with the working-set size — is
kept alive on working sets where the bitmap is already cheaper.  The
per-dataset spread (road flat, web/retail graphs sensitive) matches the
paper's Figure 13.

Known deviation (documented in EXPERIMENTS.md): the simulator's
bitmap-vs-queue crossover sits at ~1-3 % of |V| versus the paper's
6-13 %, so the measured curves are rising from the left edge of the
sweep instead of dipping mid-range; the *rising right flank* — the
penalty for a too-large T3 — is the reproduced effect.  Values of T3
below ~T2/|V| are unobservable by construction (the T2 region of the
decision space takes precedence for working sets that small).
"""

from common import bench_workload, write_report
from repro.core.tuning import sweep_t3, tune_t3
from repro.utils.tables import Table

FRACTIONS = tuple(f / 100 for f in range(1, 14))

#: larger-than-default scales: the T3 band [1 %, 13 %] x |V| must rise
#: above T2 = 2,688 for the threshold to be live at all
SWEEP_SCALES = {
    "co-road": 0.1,
    "citeseer": 0.12,
    "p2p": 1.0,
    "amazon": 0.25,
    "google": 0.25,
}


def build_figure13():
    sweeps = {}
    for key, scale in SWEEP_SCALES.items():
        graph, source = bench_workload(key, weighted=True, scale=scale)
        sweeps[key] = sweep_t3(graph, source, "sssp", fractions=FRACTIONS)

    table = Table(
        ["network"] + [f"{int(f * 100)}%" for f in FRACTIONS] + ["best T3"],
        title="Figure 13: adaptive SSSP time (ms) vs T3 (fraction of |V|)",
    )
    for key, points in sweeps.items():
        best = tune_t3(points)
        table.add_row(
            [key]
            + [f"{p.seconds * 1e3:.2f}" for p in points]
            + [f"{best:.0%}"]
        )
    return table.render(), sweeps


def test_figure13_t3_sweep(benchmark):
    content, sweeps = benchmark.pedantic(build_figure13, rounds=1, iterations=1)
    write_report("figure13_t3", content)

    spreads = {}
    for key, points in sweeps.items():
        times = [p.seconds for p in points]
        assert min(times) > 0
        spreads[key] = max(times) / min(times) - 1.0

    # Mis-tuning T3 costs measurably on the T3-sensitive datasets ...
    assert spreads["google"] > 0.03, spreads
    # ... and the penalty grows toward large T3 (the rising right flank):
    google = [p.seconds for p in sweeps["google"]]
    assert google[-1] > google[0]
    # the optimum sits at the left of the band (simulator crossover ~1-3%)
    assert tune_t3(sweeps["google"]) <= 0.04

    # The road network is T3-insensitive: its frontier never leaves the
    # T2 region (Figure 13's flattest curve).
    assert spreads["co-road"] < 0.02, spreads
