"""Ablation — queue-generation schemes (Section V.C).

The paper uses the simple atomic-index queue and cites two orthogonal
optimizations: Merrill et al.'s prefix-scan generation and Luo et al.'s
hierarchical (shared-memory) queues.  This ablation runs the queue
variants end-to-end under all three schemes.

Reproduced shapes:

- the scan scheme wins where frontiers are huge (fixed passes instead of
  per-element serialization) and loses where frontiers stay small (three
  kernels per iteration);
- the hierarchical scheme dominates the flat atomic scheme on every
  dataset (shared-memory atomics + one global atomic per block), which
  is why Luo et al. proposed it — and it narrows exactly the overhead
  that the paper's T3 threshold works around.
"""

from common import bench_workload, dataset_keys, write_report
from repro.kernels import run_sssp
from repro.utils.tables import Table

SCHEMES = ("atomic", "scan", "hierarchical")


def build_report():
    results = {}
    for key in dataset_keys():
        graph, source = bench_workload(key, weighted=True)
        runs = {
            scheme: run_sssp(graph, source, "U_T_QU", queue_gen=scheme)
            for scheme in SCHEMES
        }
        results[key] = (runs, graph)

    table = Table(
        ["network", "atomic (ms)", "scan (ms)", "hierarchical (ms)", "peak ws"],
        title="ablation: queue generation scheme (U_T_QU SSSP)",
    )
    for key, (runs, graph) in results.items():
        table.add_row(
            [
                key,
                f"{runs['atomic'].total_seconds * 1e3:.2f}",
                f"{runs['scan'].total_seconds * 1e3:.2f}",
                f"{runs['hierarchical'].total_seconds * 1e3:.2f}",
                int(runs["atomic"].workset_curve().max()),
            ]
        )
    return table.render(), results


def test_ablation_queue_gen(benchmark):
    content, results = benchmark.pedantic(build_report, rounds=1, iterations=1)
    write_report("ablation_queue_gen", content)

    for key, (runs, _) in results.items():
        # Same answers under every scheme.
        reached = {r.reached for r in runs.values()}
        assert len(reached) == 1, key
        # Hierarchical generation never loses to the flat atomic scheme.
        assert runs["hierarchical"].total_seconds <= runs["atomic"].total_seconds, key

    # Small-frontier traversals prefer atomics over the scan's fixed
    # multi-kernel overhead.
    road = results["co-road"][0]
    assert road["atomic"].total_seconds < road["scan"].total_seconds

    # Huge-frontier traversals amortize the scan and shed the atomics.
    cs = results["citeseer"][0]
    assert cs["scan"].total_seconds <= cs["atomic"].total_seconds
