"""Table 3 — SSSP speedup of every GPU implementation over the serial CPU
baseline (Dijkstra's algorithm), for all 8 variants x 6 datasets.

Reproduced shapes (Section VII.A):

- unordered SSSP is significantly faster than ordered SSSP;
- block mapping is strong on high-average-outdegree graphs (CiteSeer);
- U_B_BM is good on CiteSeer but the worst variant elsewhere;
- the best implementation is dataset-dependent.
"""

import numpy as np

from common import bench_workload, cpu_baseline_sssp, dataset_keys, write_report
from repro.kernels import all_variants, run_sssp
from repro.utils.tables import Table

CODES = [v.code for v in all_variants()]

#: the road analogue is shrunk for the ordered variants, whose
#: simulated iteration count (one per distinct distance value) makes the
#: full bench instance take minutes of host time
ORDERED_ROAD_SCALE = 0.02


def build_table3():
    speedups = {}
    for key in dataset_keys():
        scale = ORDERED_ROAD_SCALE if key == "co-road" else None
        graph, source = bench_workload(key, weighted=True, scale=scale)
        cpu = cpu_baseline_sssp(key, scale=scale)
        row = {}
        for variant in all_variants():
            result = run_sssp(graph, source, variant)
            assert np.allclose(result.values, cpu.distances), (key, variant.code)
            row[variant.code] = cpu.seconds / result.total_seconds
        speedups[key] = row

    table = Table(
        ["network"] + CODES + ["best"],
        title="Table 3: SSSP speedup (GPU over serial CPU Dijkstra)",
    )
    for key, row in speedups.items():
        best = max(row, key=row.get)
        table.add_row([key] + [f"{row[c]:.2f}" for c in CODES] + [best])
    return table.render(), speedups


def test_table3_sssp_speedups(benchmark):
    content, speedups = benchmark.pedantic(build_table3, rounds=1, iterations=1)
    write_report("table3_sssp", content)

    # Unordered beats ordered on every dataset (best-vs-best).
    for key, row in speedups.items():
        best_o = max(s for c, s in row.items() if c.startswith("O_"))
        best_u = max(s for c, s in row.items() if c.startswith("U_"))
        assert best_u >= best_o, key

    # ... and by a wide margin on the low-degree datasets.
    for key in ("co-road", "google", "p2p"):
        row = speedups[key]
        best_o = max(s for c, s in row.items() if c.startswith("O_"))
        best_u = max(s for c, s in row.items() if c.startswith("U_"))
        assert best_u > 3 * best_o, key

    # Block mapping strong on CiteSeer (its avg outdegree ~ 74 >> 32).
    cs = speedups["citeseer"]
    assert max(cs["U_B_BM"], cs["U_B_QU"]) > max(cs["U_T_BM"], cs["U_T_QU"])

    # U_B_BM worst unordered variant outside CiteSeer.
    for key, row in speedups.items():
        if key == "citeseer":
            continue
        u_row = {c: s for c, s in row.items() if c.startswith("U_")}
        assert min(u_row, key=u_row.get) == "U_B_BM", key

    # The GPU beats the CPU on the high-parallelism datasets.
    for key in ("citeseer", "amazon", "google", "sns"):
        assert max(speedups[key].values()) > 2.0, key
