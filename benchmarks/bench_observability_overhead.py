"""Observability must be free when it is off.

The observer seam is the same pattern as the fault-injection hook: one
module-global read plus an ``is None`` test on every instrument point.
This bench guards two promises:

- **Correctness under observation**: running with an Observer installed
  changes *nothing* about the simulation — simulated seconds are
  bit-identical and the answers match, because the instrumentation only
  reads what the traversal already computed.
- **Disabled-path overhead ~0%**: the per-check cost of the
  ``current_observer() is None`` test, measured directly, is orders of
  magnitude below one simulated iteration's host-side work, so leaving
  the instrumentation compiled in costs nothing measurable.

Wall-clock A/B comparisons of whole traversals are too noisy for CI, so
the overhead claim is made on the microbenchmark: checks per second vs
iterations per second, reported as cost per iteration's worth of checks.
"""

import time
import timeit

import numpy as np

from common import bench_workload, write_report
from repro.core import adaptive_bfs
from repro.obs import Observer, build_manifest
from repro.obs.context import current_observer
from repro.utils.tables import Table

#: instrument points consulted per iteration (frame, launch validate,
#: two kernel pricings, policy bookkeeping) — a generous upper bound
CHECKS_PER_ITERATION = 8


def measure():
    graph, source = bench_workload("google")

    # --- bit-identical simulation with and without an observer ---
    base = adaptive_bfs(graph, source)
    observer = Observer()
    observed = adaptive_bfs(graph, source, observe=observer)
    assert np.array_equal(base.values, observed.values)
    assert base.total_seconds == observed.total_seconds  # bit-identical
    assert base.num_iterations == observed.num_iterations

    # --- disabled-path cost: one current_observer() is None test ---
    assert current_observer() is None
    n = 200_000
    per_check_s = timeit.timeit(
        "current_observer() is None",
        globals={"current_observer": current_observer},
        number=n,
    ) / n

    # --- scale: host wall-clock of one traversal iteration ---
    t0 = time.perf_counter()
    repeat = 3
    for _ in range(repeat):
        adaptive_bfs(graph, source)
    wall_per_iter_s = (time.perf_counter() - t0) / (
        repeat * base.num_iterations
    )

    overhead = CHECKS_PER_ITERATION * per_check_s / wall_per_iter_s
    manifest = build_manifest(
        observed, graph=graph, algorithm="bfs", mode="adaptive",
        source=source, observer=observer,
    )
    return {
        "per_check_ns": per_check_s * 1e9,
        "wall_per_iter_us": wall_per_iter_s * 1e6,
        "overhead_fraction": overhead,
        "iterations": base.num_iterations,
        "sim_seconds_identical": True,
    }, manifest


def build_report():
    stats, manifest = measure()
    table = Table(["metric", "value"], title="observability overhead (disabled path)")
    table.add_row(["simulated seconds, observed vs not", "bit-identical"])
    table.add_row(["one current_observer() check", f"{stats['per_check_ns']:.0f} ns"])
    table.add_row(["host time per iteration", f"{stats['wall_per_iter_us']:.0f} us"])
    table.add_row(
        [f"overhead ({CHECKS_PER_ITERATION} checks/iteration)",
         f"{stats['overhead_fraction']:.4%}"],
    )
    return table.render(), stats, manifest


def test_observability_overhead(benchmark):
    content, stats, manifest = benchmark.pedantic(
        build_report, rounds=1, iterations=1
    )
    write_report(
        "observability_overhead", content, data=stats, manifest=manifest
    )
    # The disabled path costs well under 1% of an iteration's host work.
    assert stats["overhead_fraction"] < 0.01, stats
    assert stats["sim_seconds_identical"]
