"""Figure 12 — processing speed (million nodes per second) of the best
GPU implementation of BFS and SSSP on every dataset.

Reproduced shapes: BFS is faster than SSSP on every dataset (faster
convergence); dense, small-diameter graphs (CiteSeer, SNS) process the
most nodes per second; the road network is slowest by orders of
magnitude.
"""

from common import bench_workload, dataset_keys, write_report
from repro.kernels import run_bfs, run_sssp, unordered_variants
from repro.utils.tables import Table


def best_speed(key: str, algorithm: str):
    weighted = algorithm == "sssp"
    graph, source = bench_workload(key, weighted=weighted)
    runner = run_sssp if weighted else run_bfs
    best_code, best_speed_val = None, -1.0
    for variant in unordered_variants():
        result = runner(graph, source, variant)
        speed = result.nodes_per_second()
        if speed > best_speed_val:
            best_code, best_speed_val = variant.code, speed
    return best_code, best_speed_val


def build_figure12():
    speeds = {}
    table = Table(
        ["network", "BFS Mnodes/s", "BFS best", "SSSP Mnodes/s", "SSSP best"],
        title="Figure 12: processing speed of best implementation",
    )
    for key in dataset_keys():
        bfs_code, bfs_speed = best_speed(key, "bfs")
        sssp_code, sssp_speed = best_speed(key, "sssp")
        speeds[key] = (bfs_speed, sssp_speed)
        table.add_row(
            [
                key,
                f"{bfs_speed / 1e6:.1f}",
                bfs_code,
                f"{sssp_speed / 1e6:.1f}",
                sssp_code,
            ]
        )
    return table.render(), speeds


def test_figure12_processing_speed(benchmark):
    content, speeds = benchmark.pedantic(build_figure12, rounds=1, iterations=1)
    write_report("figure12_speed", content)

    # BFS outpaces SSSP everywhere (Figure 12's consistent gap).
    for key, (bfs_speed, sssp_speed) in speeds.items():
        assert bfs_speed > sssp_speed, key

    # The road network is the slowest for both algorithms.
    road_bfs, road_sssp = speeds["co-road"]
    for key, (bfs_speed, sssp_speed) in speeds.items():
        if key == "co-road":
            continue
        assert bfs_speed > road_bfs, key
        assert sssp_speed > road_sssp, key
