"""Inspector sampling rate (Sections VI.E, VII.B).

The graph inspector's runtime monitoring costs kernels; the paper
reduces the overhead by (i) defaulting to the whole-graph average
outdegree (computed once at load time) and (ii) sampling.  This bench
sweeps the sampling interval in both modes and reproduces the trade-off:

- precise monitoring (a reduction over the working set per sample) is
  measurably more expensive than the static default at every interval;
- the precise mode's *overhead* — its gap over the static mode at the
  same interval — shrinks as sampling gets sparser (the amortization
  the paper's sampling is for);
- sparse sampling delays decisions on fast-ramping frontiers, so the
  end-to-end time grows with the interval: on this simulator the
  monitoring is cheap enough that sampling every iteration is optimal,
  which is why the whole-graph-average default (free monitoring at
  k = 1) is the configuration the paper itself ships.
"""

from common import bench_workload, write_report
from repro.core import RuntimeConfig, adaptive_sssp
from repro.utils.tables import Table

INTERVALS = (1, 2, 4, 8, 16)
KEYS = ("amazon", "google", "sns")


def build_report():
    results = {}
    for key in KEYS:
        graph, source = bench_workload(key, weighted=True)
        per_mode = {}
        for precise in (False, True):
            times = {}
            for interval in INTERVALS:
                config = RuntimeConfig(
                    sampling_interval=interval, monitor_workset_degree=precise
                )
                ad = adaptive_sssp(graph, source, config=config)
                times[interval] = ad.total_seconds
            per_mode[precise] = times
        results[key] = per_mode

    table = Table(
        ["network", "monitoring"] + [f"k={k}" for k in INTERVALS],
        title="adaptive SSSP time (ms) vs sampling interval",
    )
    for key, per_mode in results.items():
        for precise, times in per_mode.items():
            label = "precise (ws degree)" if precise else "static (graph degree)"
            table.add_row(
                [key, label] + [f"{times[k] * 1e3:.3f}" for k in INTERVALS]
            )
    return table.render(), results


def test_sampling_rate(benchmark):
    content, results = benchmark.pedantic(build_report, rounds=1, iterations=1)
    write_report("sampling_rate", content)

    for key, per_mode in results.items():
        static_times = per_mode[False]
        precise_times = per_mode[True]

        # Precise monitoring costs more than the free static default.
        assert precise_times[1] >= static_times[1], key

        # The monitoring overhead amortizes away with sparser sampling.
        gap_dense = precise_times[1] - static_times[1]
        gap_sparse = precise_times[16] - static_times[16]
        assert gap_sparse <= gap_dense + 1e-9, key

        # Decision staleness: very sparse sampling is never faster than
        # per-iteration decisions in the free default mode.
        assert static_times[16] >= static_times[1] * 0.99, key
