"""Ablation — kernel-configuration sensitivity (Section VII.A).

"When using thread-based mapping, we found that the best results can be
achieved with 192 threads per block.  When using block-based mapping,
the optimal number of threads per block is the multiple of 32 closest
to the average node outdegree in the graph."

This ablation sweeps the block size for both mappings and checks that
the paper's configuration rules pick (near-)optimal points on the
simulator too.
"""

import repro.kernels.variants as variants_mod
from common import bench_workload, write_report
from repro.gpusim.device import TESLA_C2070
from repro.kernels import run_sssp
from repro.kernels.variants import block_mapping_tpb
from repro.utils.tables import Table

THREAD_SIZES = (32, 64, 128, 192, 256, 512)
BLOCK_SIZES = (32, 64, 128, 256, 512)


def _run_with_thread_tpb(graph, source, tpb):
    """Run U_T_QU with a patched thread-mapping block size."""
    original = variants_mod.THREAD_MAPPING_TPB
    variants_mod.THREAD_MAPPING_TPB = tpb
    try:
        return run_sssp(graph, source, "U_T_QU")
    finally:
        variants_mod.THREAD_MAPPING_TPB = original


class _FixedTpbVariant:
    """Wrapper forcing a block-mapping block size."""

    def __init__(self, tpb):
        from repro.kernels.variants import Variant

        self._inner = Variant.parse("U_B_QU")
        self._tpb = tpb
        self.code = self._inner.code
        self.ordering = self._inner.ordering
        self.mapping = self._inner.mapping
        self.workset = self._inner.workset

    def threads_per_block(self, avg_deg, device):
        return self._tpb


def _run_with_block_tpb(graph, source, tpb):
    from repro.kernels.frame import StaticPolicy, traverse_sssp

    return traverse_sssp(graph, source, StaticPolicy(_FixedTpbVariant(tpb)))


def build_report():
    t_graph, t_source = bench_workload("amazon", weighted=True)
    thread_times = {
        tpb: _run_with_thread_tpb(t_graph, t_source, tpb).total_seconds
        for tpb in THREAD_SIZES
    }

    b_graph, b_source = bench_workload("citeseer", weighted=True)
    block_times = {
        tpb: _run_with_block_tpb(b_graph, b_source, tpb).total_seconds
        for tpb in BLOCK_SIZES
    }

    t_table = Table(
        ["threads/block"] + [str(s) for s in THREAD_SIZES],
        title="thread mapping (U_T_QU on amazon): time (ms) vs block size",
    )
    t_table.add_row(["time"] + [f"{thread_times[s] * 1e3:.3f}" for s in THREAD_SIZES])

    rule_tpb = block_mapping_tpb(b_graph.avg_out_degree, TESLA_C2070)
    b_table = Table(
        ["threads/block"] + [str(s) for s in BLOCK_SIZES] + ["rule picks"],
        title="block mapping (U_B_QU on citeseer): time (ms) vs block size",
    )
    b_table.add_row(
        ["time"]
        + [f"{block_times[s] * 1e3:.3f}" for s in BLOCK_SIZES]
        + [str(rule_tpb)]
    )
    return t_table.render() + "\n\n" + b_table.render(), thread_times, block_times, rule_tpb


def test_ablation_block_size(benchmark):
    content, thread_times, block_times, rule_tpb = benchmark.pedantic(
        build_report, rounds=1, iterations=1
    )
    write_report("ablation_block_size", content)

    # 192 threads/block is within 10 % of the best thread-mapping size.
    best_thread = min(thread_times.values())
    assert thread_times[192] <= 1.10 * best_thread

    # The degree rule's block size is within 25 % of the best block size
    # (the sweep grid may not contain the rule's exact multiple of 32).
    best_block = min(block_times.values())
    closest = min(BLOCK_SIZES, key=lambda s: abs(s - rule_tpb))
    assert block_times[closest] <= 1.25 * best_block

    # Undersized blocks hurt both mappings: at 32 threads/block the
    # block-slot limit caps the SM at 8 resident warps and memory latency
    # leaks through (the occupancy cliff the Occupancy Calculator shows).
    assert block_times[32] > 1.05 * block_times[closest]
    assert thread_times[32] > 1.05 * thread_times[192]
