"""Ablation — degree-ordered relabeling vs thread-mapping divergence.

Section III.B blames intra-iteration imbalance on outdegree variance
*within warps*: "performance will be limited by the node with the
largest outdegree."  Warp composition under a bitmap working set follows
node ids, so relabeling nodes in degree order groups similar degrees
into the same warps — a preprocessing counterpart to the runtime's
mapping switch.

Measured shape (and the instructive result): on the heavy-tailed graphs
the relabeling slashes the *issue* (compute-pipeline) cost of U_T_BM by
2-3x — the divergence really is there and really goes away — but the
end-to-end time barely moves, because these traversals are
memory-bandwidth-bound and compute overlaps memory.  The same
observation explains why the paper's runtime switches *mapping* (which
changes the memory-access pattern and the latency-hiding width) rather
than relabeling (which only changes divergence): on bandwidth-bound
graph kernels, divergence is the cheaper of the two sins.
"""

import numpy as np

from common import bench_workload, write_report
from repro.graph.transforms import degree_sort_relabel
from repro.kernels import run_sssp
from repro.utils.tables import Table

KEYS = ("co-road", "citeseer", "p2p", "amazon", "google", "sns")


def _issue_mem(result):
    comp = [k for k in result.timeline.kernels if k.tally.name.startswith("sssp")]
    return (
        sum(k.cost.issue_seconds for k in comp),
        sum(k.cost.memory_seconds for k in comp),
    )


def build_report():
    rows = {}
    for key in KEYS:
        graph, source = bench_workload(key, weighted=True)
        sorted_graph, mapping = degree_sort_relabel(graph)
        base = run_sssp(graph, source, "U_T_BM")
        relabeled = run_sssp(sorted_graph, int(mapping[source]), "U_T_BM")
        assert np.allclose(relabeled.values[mapping], base.values), key
        rows[key] = (base, relabeled)

    table = Table(
        [
            "network",
            "total (ms)",
            "total sorted (ms)",
            "issue (ms)",
            "issue sorted (ms)",
            "issue gain",
            "mem (ms)",
        ],
        title="ablation: degree-ordered relabeling (U_T_BM SSSP)",
    )
    for key, (base, relabeled) in rows.items():
        issue0, mem0 = _issue_mem(base)
        issue1, _ = _issue_mem(relabeled)
        table.add_row(
            [
                key,
                f"{base.total_seconds * 1e3:.2f}",
                f"{relabeled.total_seconds * 1e3:.2f}",
                f"{issue0 * 1e3:.3f}",
                f"{issue1 * 1e3:.3f}",
                f"{issue0 / max(issue1, 1e-12):.2f}x",
                f"{mem0 * 1e3:.3f}",
            ]
        )
    return table.render(), rows


def test_ablation_relabel(benchmark):
    content, rows = benchmark.pedantic(build_report, rounds=1, iterations=1)
    write_report("ablation_relabel", content)

    for key, (base, relabeled) in rows.items():
        issue0, mem0 = _issue_mem(base)
        issue1, _ = _issue_mem(relabeled)
        # Relabeling never increases divergence.
        assert issue1 <= issue0 * 1.02, key
        # End-to-end time is unchanged either way: these kernels are
        # memory-bound, so the issue savings hide under the memory time.
        assert abs(relabeled.total_seconds / base.total_seconds - 1.0) < 0.05, key

    # The heavy-tailed graphs show the big divergence reduction.
    for key in ("citeseer", "sns"):
        base, relabeled = rows[key]
        issue0, _ = _issue_mem(base)
        issue1, _ = _issue_mem(relabeled)
        assert issue0 > 1.5 * issue1, (key, issue0, issue1)

    # The regular graphs have little divergence to remove.
    for key in ("co-road", "amazon"):
        base, relabeled = rows[key]
        issue0, _ = _issue_mem(base)
        issue1, _ = _issue_mem(relabeled)
        assert issue0 < 1.5 * issue1, key
