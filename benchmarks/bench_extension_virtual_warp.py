"""Extension — virtual-warp mapping (beyond the paper's space).

Section IV.B: "the thread- and block-based mappings are not the only
options, and intermediate solutions can be devised ... In this work, we
limit ourselves to the two basic mapping strategies."  Hong et al.'s
virtual warp-centric model [12] is cited as integrable.  This bench
integrates it: one element per 32-lane warp (``U_W_*`` variants), plus
an extended decision space with a mid-degree warp band
(``RuntimeConfig(use_warp_mapping=True)``).

Expected shapes:

- warp mapping wins on mid-degree graphs (amazon, sns, p2p): it
  parallelizes each neighborhood without block mapping's
  per-element-block dispatch, and avoids thread mapping's divergence;
- the extended adaptive runtime matches the paper-space adaptive
  everywhere and beats it wherever warp mapping wins.
"""

import numpy as np

from common import bench_workload, cpu_baseline_sssp, dataset_keys, write_report
from repro.core import RuntimeConfig, adaptive_sssp
from repro.kernels import run_sssp
from repro.kernels.variants import extended_variants
from repro.obs import build_manifest
from repro.utils.tables import Table

CODES = [v.code for v in extended_variants()]


def build_report():
    rows = {}
    manifests = []
    for key in dataset_keys():
        graph, source = bench_workload(key, weighted=True)
        cpu = cpu_baseline_sssp(key)
        statics = {}
        for variant in extended_variants():
            result = run_sssp(graph, source, variant)
            assert np.allclose(result.values, cpu.distances), (key, variant.code)
            statics[variant.code] = cpu.seconds / result.total_seconds
        base = adaptive_sssp(graph, source)
        ext = adaptive_sssp(graph, source, config=RuntimeConfig(use_warp_mapping=True))
        rows[key] = (statics, cpu.seconds / base.total_seconds,
                     cpu.seconds / ext.total_seconds, ext)
        manifests.append(
            build_manifest(
                ext, graph=graph, mode="adaptive+W",
                config=RuntimeConfig(use_warp_mapping=True),
            )
        )

    table = Table(
        ["network"] + CODES + ["adaptive", "adaptive+W"],
        title="extension: virtual-warp mapping (SSSP speedup over CPU)",
    )
    for key, (statics, base_speedup, ext_speedup, _) in rows.items():
        table.add_row(
            [key]
            + [f"{statics[c]:.2f}" for c in CODES]
            + [f"{base_speedup:.2f}", f"{ext_speedup:.2f}"]
        )
    return table.render(), rows, manifests


def test_extension_virtual_warp(benchmark):
    content, rows, manifests = benchmark.pedantic(build_report, rounds=1, iterations=1)
    write_report("extension_virtual_warp", content, manifest=manifests)

    # Warp mapping takes the static crown on the mid-degree datasets.
    for key in ("amazon", "sns"):
        statics, _, _, _ = rows[key]
        best = max(statics, key=statics.get)
        assert best.startswith("U_W"), (key, best)

    # The extended adaptive never loses to the paper-space adaptive ...
    for key, (_, base_speedup, ext_speedup, _) in rows.items():
        assert ext_speedup >= 0.97 * base_speedup, key

    # ... and wins where warp mapping wins.
    _, base_sns, ext_sns, ext_result = rows["sns"]
    assert ext_sns > 1.05 * base_sns
    assert any(code.startswith("U_W") for code in ext_result.variants_used())
