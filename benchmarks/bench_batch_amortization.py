"""Batched multi-source traversal — amortizing the host loop's overheads.

The paper's host loop (Figure 8) pays a PCIe-latency readback, kernel
launch overheads and the graph's h2d copy *per query*.  The serving
layer (:mod:`repro.serve`) stacks a batch of same-graph queries into one
multi-source loop that pays them once per super-iteration / per batch.
This bench quantifies the claim on two opposite workload shapes:

- **co-road**: high diameter, hundreds of tiny-frontier iterations —
  readback-latency dominated, the best case for the fused readback;
- **sns**: scale-free, few iterations — transfer/launch dominated, the
  amortization comes from sharing the graph copy and fusing launches.

For each dataset it runs batch sizes 4..32 of multi-source adaptive BFS,
compares against running the same sources sequentially (single-source
adaptive runs), and asserts the two contracted properties: batch-32 is
at least 2x faster in simulated time, and every batched query's value
array is SHA-256-identical to its single-source run.
"""

import hashlib

import numpy as np

from common import bench_graph, write_report
from repro.core import adaptive_run
from repro.serve import BatchQuery, BatchRunner, GraphSession
from repro.utils.tables import Table

DATASETS = ("co-road", "sns")
BATCH_SIZES = (4, 8, 16, 32)
MAX_BATCH = max(BATCH_SIZES)


def _sha(values) -> str:
    return hashlib.sha256(np.ascontiguousarray(values).tobytes()).hexdigest()


def _sources(graph, count: int):
    rng = np.random.default_rng(7)
    return [int(s) for s in rng.choice(graph.num_nodes, size=count, replace=False)]


def build_report():
    table = Table(
        ["dataset", "batch", "sequential (ms)", "batched (ms)", "speedup",
         "launches saved", "readbacks saved"],
        title=f"multi-source BFS batching vs sequential runs (batch up to {MAX_BATCH})",
    )
    stats = {}
    for key in DATASETS:
        graph = bench_graph(key)
        sources = _sources(graph, MAX_BATCH)
        session = GraphSession(graph)
        runner = BatchRunner(session)

        # Sequential baseline: the same queries as independent
        # single-source adaptive runs, each paying its own transfers,
        # launches and per-iteration readbacks.
        singles = {s: adaptive_run(graph, "bfs", s) for s in sources}
        seq_seconds = {
            size: sum(singles[s].total_seconds for s in sources[:size])
            for size in BATCH_SIZES
        }

        for size in BATCH_SIZES:
            batch = runner.run(
                [BatchQuery("bfs", s, "adaptive") for s in sources[:size]]
            )
            assert batch.ok_count == size
            speedup = seq_seconds[size] / batch.total_seconds
            table.add_row(
                [key, size, f"{seq_seconds[size] * 1e3:.3f}",
                 f"{batch.total_seconds * 1e3:.3f}", f"{speedup:.2f}x",
                 batch.launches_saved, batch.readbacks_saved]
            )
            stats[(key, size)] = (batch, speedup)

        # Contract 1: every batched answer is bit-identical (SHA-256)
        # to its single-source run — batching fuses pricing, not math.
        batch32, _ = stats[(key, MAX_BATCH)]
        for result in batch32.queries:
            single = singles[result.query.source]
            assert result.values_sha256 == _sha(single.values), (
                key, result.query.source
            )

    return table.render(), stats


def test_batch_amortization(benchmark):
    content, stats = benchmark.pedantic(build_report, rounds=1, iterations=1)
    rows = {
        f"{key}@{size}": {
            "speedup": speedup,
            "batch_seconds": batch.total_seconds,
            "launches_saved": batch.launches_saved,
            "readbacks_saved": batch.readbacks_saved,
        }
        for (key, size), (batch, speedup) in stats.items()
    }
    write_report("batch_amortization", content, data={"rows": rows})

    for key in DATASETS:
        batch, speedup = stats[(key, MAX_BATCH)]
        # Contract 2: batch-32 multi-source BFS is at least 2x the
        # sequential throughput in simulated time on both shapes.
        assert speedup >= 2.0, (key, speedup)
        # Amortization monotonicity: bigger batches never save less.
        saved = [stats[(key, size)][0].readbacks_saved for size in BATCH_SIZES]
        assert saved == sorted(saved), (key, saved)
