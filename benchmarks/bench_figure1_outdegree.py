"""Figure 1 — outdegree distributions of CO-road, Amazon and CiteSeer.

Reproduces the figure's three panels as histograms and checks its
headline shape statements:

- CO-road: "most of its nodes have an outdegree from 1 to 4, and the
  maximum outdegree is 8";
- Amazon: "70 % of the nodes have 10 outgoing edges, and the remaining
  nodes have an outdegree uniformly distributed between 1 and 9";
- CiteSeer: "about 90 % of the nodes have less than 20 outgoing edges
  ... the outdegree range is very wide for the remaining nodes".
"""

import numpy as np

from common import bench_graph, write_report
from repro.graph.properties import out_degree_histogram
from repro.utils.tables import Table


def render_panel(key: str) -> str:
    graph = bench_graph(key)
    hist = out_degree_histogram(graph, n_bins=12)
    table = Table(["outdegree", "nodes", "fraction", ""], title=f"Figure 1 panel: {key}")
    for label, count, frac in zip(hist.bin_labels(), hist.counts, hist.fractions):
        table.add_row([label, count, f"{100 * frac:.1f}%", "#" * int(50 * frac)])
    return table.render()


def build_figure1() -> str:
    return "\n\n".join(render_panel(key) for key in ("co-road", "amazon", "citeseer"))


def test_figure1_outdegree_distributions(benchmark):
    content = benchmark.pedantic(build_figure1, rounds=1, iterations=1)
    write_report("figure1_outdegree", content)

    road = bench_graph("co-road").out_degrees
    assert road.max() <= 8
    assert float(((road >= 1) & (road <= 4)).mean()) > 0.85

    amazon = bench_graph("amazon").out_degrees
    assert 0.55 < float((amazon >= 9).mean()) < 0.9
    assert amazon.max() == 10

    citeseer = bench_graph("citeseer").out_degrees
    assert citeseer.max() > 1000
    assert float((citeseer < np.percentile(citeseer, 90)).mean()) <= 0.9
