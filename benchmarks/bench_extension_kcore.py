"""Extension — k-core decomposition on the adaptive runtime.

The third transferred algorithm.  Peeling produces a *sawtooth*
working-set trajectory (each k-stage opens with a burst of sub-k nodes,
cascades, drains, then the next stage bursts again), crossing the
decision regions repeatedly — the most switch-intensive workload in the
repository, and therefore the sharpest test of the shared-update-vector
switching design.
"""

import numpy as np

from common import bench_workload, write_report
from repro.core import adaptive_kcore
from repro.cpu import cpu_kcore
from repro.kernels import run_kcore, unordered_variants
from repro.obs import build_manifest
from repro.utils.tables import Table

KEYS = ("citeseer", "p2p", "amazon", "google")


def build_report():
    rows = {}
    manifests = []
    for key in KEYS:
        graph, _ = bench_workload(key)
        cpu = cpu_kcore(graph)
        statics = {}
        for variant in unordered_variants():
            result = run_kcore(graph, variant)
            assert np.array_equal(result.values, cpu.coreness), (key, variant.code)
            statics[variant.code] = result.total_seconds
        ad = adaptive_kcore(graph)
        assert np.array_equal(ad.values, cpu.coreness), key
        rows[key] = (cpu, statics, ad)
        manifests.append(build_manifest(ad, graph=graph, mode="adaptive"))

    table = Table(
        [
            "network",
            "max core",
            "CPU (ms)",
            "best static",
            "best (ms)",
            "adaptive (ms)",
            "adaptive/best",
            "switches",
        ],
        title="extension: k-core decomposition (peeling)",
    )
    for key, (cpu, statics, ad) in rows.items():
        best = min(statics, key=statics.get)
        table.add_row(
            [
                key,
                cpu.max_core,
                f"{cpu.seconds * 1e3:.2f}",
                best,
                f"{statics[best] * 1e3:.2f}",
                f"{ad.total_seconds * 1e3:.2f}",
                f"{ad.total_seconds / statics[best]:.2f}",
                ad.num_switches,
            ]
        )
    return table.render(), rows, manifests


def test_extension_kcore(benchmark):
    content, rows, manifests = benchmark.pedantic(build_report, rounds=1, iterations=1)
    write_report("extension_kcore", content, manifest=manifests)

    for key, (cpu, statics, ad) in rows.items():
        # Adaptive tracks the best static.
        assert ad.total_seconds <= 1.25 * min(statics.values()), key
        # The heavy-tailed graphs have deep cores, the modal Amazon
        # distribution a shallow one.
        assert cpu.max_core >= 1, key

    assert rows["citeseer"][0].max_core > rows["amazon"][0].max_core
