"""Registry dispatch — every algorithm through the engine's one door.

The iteration-engine refactor promises that a registry entry is all an
algorithm needs to inherit the adaptive runtime, the CPU reference and
the manifest path.  This bench holds the refactor to that promise: it
walks :func:`repro.engine.registered_algorithms` (no algorithm named in
this file's logic), runs each entry via :func:`repro.core.adaptive_run`
or its registered default driver, verifies against the registered CPU
reference, and emits one :class:`~repro.obs.RunManifest` per algorithm
through the report path.
"""

import numpy as np

from common import bench_workload, write_report
from repro.core import adaptive_run
from repro.engine import registered_algorithms
from repro.obs import build_manifest
from repro.utils.tables import Table

KEY = "p2p"


def _matches(info, values, oracle) -> bool:
    values = np.asarray(values)
    if np.issubdtype(values.dtype, np.floating):
        return bool(np.allclose(values, oracle))
    return bool(np.array_equal(values, oracle))


def build_report():
    graph, source = bench_workload(KEY, weighted=True)
    rows = {}
    manifests = []
    for info in registered_algorithms():
        src = source if info.source_based else -1
        if info.adaptive_eligible:
            result = adaptive_run(graph, info.name, src if info.source_based else None)
            traversal, mode = result.traversal, "adaptive"
        else:
            result = info.run_default(graph, src)
            traversal, mode = result, "default"
        oracle, cpu = info.cpu_run(graph, src)
        ok = _matches(info, traversal.values, oracle)
        rows[info.name] = (traversal, cpu, mode, ok)
        manifests.append(build_manifest(result, graph=graph, mode=mode))

    table = Table(
        ["algorithm", "mode", "iterations", "GPU (ms)", "CPU (ms)",
         "speedup", "verified"],
        title=f"registry dispatch: every registered algorithm on {KEY}",
    )
    for name, (traversal, cpu, mode, ok) in rows.items():
        table.add_row(
            [
                name,
                mode,
                traversal.num_iterations,
                f"{traversal.total_seconds * 1e3:.2f}",
                f"{cpu.seconds * 1e3:.2f}",
                f"{cpu.seconds / traversal.total_seconds:.2f}x",
                "yes" if ok else "MISMATCH",
            ]
        )
    return table.render(), rows, manifests


def test_registry_dispatch(benchmark):
    content, rows, manifests = benchmark.pedantic(
        build_report, rounds=1, iterations=1
    )
    write_report("registry_dispatch", content, manifest=manifests)

    # Every registered algorithm ran and verified against its reference.
    assert len(rows) >= 6
    for name, (traversal, cpu, mode, ok) in rows.items():
        assert ok, name
        assert traversal.num_iterations >= 1, name
    # One manifest per algorithm, each self-describing.
    assert len(manifests) == len(rows)
    for manifest, name in zip(manifests, rows):
        assert manifest.algorithm == name
        assert manifest.graph["num_nodes"] > 0
