"""Analysis — the adaptive runtime's decision quality vs a per-iteration
oracle (tooling beyond the paper).

For every dataset the oracle prices all four unordered variants on each
iteration's actual frontier and takes the minimum — the unbeatable
schedule.  The adaptive runtime is scored against it: agreement (how
often the Figure-11 rule picks the oracle's variant) and regret (time
lost to disagreements).

Expected shapes: on the frontier-ramping datasets the adaptive runtime's
regret stays within a few percent of the oracle — its heuristic rule
captures nearly everything a clairvoyant selector could; only the road
network, whose iterations are all overhead-dominated near-ties, shows
low agreement (ties make "the" best variant noise) with bounded regret.
"""

from common import bench_workload, dataset_keys, write_report
from repro.core import adaptive_sssp, decision_quality, per_iteration_oracle
from repro.utils.tables import Table


def build_report():
    rows = {}
    for key in dataset_keys():
        graph, source = bench_workload(key, weighted=True)
        report = per_iteration_oracle(graph, source, "sssp")
        ad = adaptive_sssp(graph, source)
        quality = decision_quality(ad, report)
        best_code, best_secs = report.best_static()
        rows[key] = (report, quality, best_code, best_secs)

    table = Table(
        [
            "network",
            "oracle (ms)",
            "best static",
            "static (ms)",
            "adaptive regret",
            "agreement",
        ],
        title="decision quality: adaptive vs per-iteration oracle (SSSP)",
    )
    for key, (report, quality, best_code, best_secs) in rows.items():
        table.add_row(
            [
                key,
                f"{report.oracle_seconds * 1e3:.2f}",
                best_code,
                f"{best_secs * 1e3:.2f}",
                f"{quality.regret:.1%}",
                f"{quality.agreement:.0%}",
            ]
        )
    return table.render(), rows


def test_oracle_regret(benchmark):
    content, rows = benchmark.pedantic(build_report, rounds=1, iterations=1)
    write_report("oracle_regret", content)

    for key, (report, quality, _, best_secs) in rows.items():
        # The oracle is a true lower bound on every static schedule.
        assert report.oracle_seconds <= best_secs + 1e-12, key
        # Regret is bounded everywhere.
        assert quality.regret < 0.25, (key, quality.regret)

    # On the frontier-ramping datasets the rule is near-oracle.
    for key in ("citeseer", "amazon", "sns"):
        _, quality, _, _ = rows[key]
        assert quality.regret < 0.05, (key, quality.regret)
        assert quality.agreement > 0.5, key
