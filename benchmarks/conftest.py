"""Pytest configuration for the benchmark suite."""

import sys
import os

# Make `benchmarks.common` importable as `common` whether pytest is run
# from the repo root or from inside benchmarks/.
sys.path.insert(0, os.path.dirname(__file__))
