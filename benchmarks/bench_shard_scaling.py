"""Scaling and recovery cost of the multi-device sharded driver.

Two questions before spreading a traversal across devices:

1. **Does sharding pay?**  Simulated time at 1/2/4 devices on the
   social-network and road-network classes.  The sns class — dense
   frontiers, edge-heavy — must clear 1.5x at 4 devices with the
   degree-balanced partition; co-road's huge diameter and tiny
   frontiers bound how much any 1D partition can help, so its curve is
   reported, not gated.
2. **What does losing a device cost?**  Under a seeded plan that kills
   one device mid-run, the recovery ladder migrates the orphaned shards
   and replays from the last exchange-consistent checkpoint.  Values
   stay bit-identical and the total simulated time must stay under 2x
   the fault-free 4-device run.
"""

import numpy as np

from common import bench_workload, write_report
from repro.engine.shard import run_sharded
from repro.reliability import FaultPlan
from repro.utils.tables import Table

DEVICE_COUNTS = (1, 2, 4)

#: sns at 0.03 is ~129k nodes / ~1.2M edges — big enough that the
#: frontier dwarfs the per-round exchange, like the paper's full graph.
SCALES = {"sns": 0.03, "co-road": 0.05}

SNS_SPEEDUP_FLOOR = 1.5
RECOVERY_OVERHEAD_LIMIT = 2.0

LOSS_PLAN = FaultPlan(seed=11, device_loss_rate=0.25, device=1, max_faults=1)


def scaling_curve(key: str, algorithm: str):
    weighted = algorithm == "sssp"
    graph, source = bench_workload(
        key, weighted=weighted, scale=SCALES[key]
    )
    rows = []
    baseline = None
    for devices in DEVICE_COUNTS:
        result = run_sharded(
            graph,
            source,
            algorithm=algorithm,
            num_devices=devices,
            partition="balanced",
        )
        if baseline is None:
            baseline = result
        assert result.values_sha256 == baseline.values_sha256
        rows.append(
            {
                "dataset": key,
                "algorithm": algorithm,
                "devices": devices,
                "nodes": graph.num_nodes,
                "edges": graph.num_edges,
                "sim_seconds": result.sim_seconds,
                "speedup": baseline.sim_seconds / result.sim_seconds,
                "exchange_bytes": result.exchange_bytes,
                "super_iterations": result.super_iterations,
            }
        )
    return rows


def recovery_cost(key: str, algorithm: str):
    weighted = algorithm == "sssp"
    graph, source = bench_workload(
        key, weighted=weighted, scale=SCALES[key]
    )
    clean = run_sharded(
        graph, source, algorithm=algorithm, num_devices=4,
        partition="balanced", checkpoint_every=2,
    )
    faulty = run_sharded(
        graph, source, algorithm=algorithm, num_devices=4,
        partition="balanced", checkpoint_every=2, fault_plan=LOSS_PLAN,
    )
    identical = bool(
        np.array_equal(faulty.values, clean.values)
    )
    return {
        "dataset": key,
        "algorithm": algorithm,
        "clean_seconds": clean.sim_seconds,
        "faulty_seconds": faulty.sim_seconds,
        "overhead": faulty.sim_seconds / clean.sim_seconds,
        "device_losses": faulty.device_losses,
        "migrations": faulty.migrations,
        "replayed": faulty.replayed_super_iterations,
        "recovery_rung": faulty.recovery_rung,
        "bit_identical": identical,
    }


def build_report():
    scaling = []
    for key in SCALES:
        for algorithm in ("bfs", "sssp"):
            scaling.extend(scaling_curve(key, algorithm))
    recovery = [recovery_cost(key, "bfs") for key in SCALES]

    curve = Table(
        ["network", "algo", "devices", "sim time", "speedup",
         "exchange", "super-iters"],
        title="sharded traversal: simulated-time scaling (balanced partition)",
    )
    for r in scaling:
        curve.add_row(
            [
                r["dataset"],
                r["algorithm"],
                r["devices"],
                f"{1e3 * r['sim_seconds']:.3f}ms",
                f"{r['speedup']:.2f}x",
                f"{r['exchange_bytes'] / 1024:.0f}KiB",
                r["super_iterations"],
            ]
        )
    ladder = Table(
        ["network", "algo", "fault-free", "one loss", "overhead",
         "migrated", "replayed", "rung", "identical"],
        title="device-loss recovery: one device killed mid-run (4 devices)",
    )
    for r in recovery:
        ladder.add_row(
            [
                r["dataset"],
                r["algorithm"],
                f"{1e3 * r['clean_seconds']:.3f}ms",
                f"{1e3 * r['faulty_seconds']:.3f}ms",
                f"{r['overhead']:.2f}x",
                r["migrations"],
                r["replayed"],
                r["recovery_rung"],
                "yes" if r["bit_identical"] else "NO",
            ]
        )
    content = curve.render() + "\n\n" + ladder.render()
    return content, {"scaling": scaling, "recovery": recovery}


def test_shard_scaling(benchmark):
    content, data = benchmark.pedantic(build_report, rounds=1, iterations=1)
    write_report("shard_scaling", content, data=data)

    for r in data["scaling"]:
        if r["dataset"] == "sns" and r["devices"] == 4:
            assert r["speedup"] > SNS_SPEEDUP_FLOOR, (r["algorithm"], r["speedup"])
    for r in data["recovery"]:
        assert r["bit_identical"], r["dataset"]
        assert r["device_losses"] == 1, r["dataset"]
        assert r["overhead"] < RECOVERY_OVERHEAD_LIMIT, (
            r["dataset"], r["overhead"],
        )


if __name__ == "__main__":
    content, data = build_report()
    write_report("shard_scaling", content, data=data)
