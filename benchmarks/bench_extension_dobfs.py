"""Extension — direction-optimizing BFS (push/pull, Beamer-style).

The idea the paper's adaptive line of work led to (and that Enterprise /
Gunrock later built in): when the frontier covers a large fraction of
the edges, flip the sweep direction so unvisited nodes *pull* from the
frontier and stop at their first hit, instead of the frontier pushing
to every out-neighbor.

Reproduced shapes:

- edge work collapses on the dense, small-diameter graphs (CiteSeer:
  32x fewer edge visits; SNS: 12x) — the Beamer result;
- end-to-end gain follows m/n: 1.5x on CiteSeer (avg degree 78); on the
  low-degree *directed* graphs the once-per-graph CSC transfer eats the
  kernel gain at single-query granularity (kernel-only time still
  improves or ties);
- the road network never leaves push (its frontier never crosses the
  alpha threshold) and is bit-identical to the paper's traversal.
"""

import numpy as np

from common import bench_workload, cpu_baseline_bfs, dataset_keys, write_report
from repro.kernels import run_bfs
from repro.kernels.dobfs import direction_optimizing_bfs
from repro.obs import build_manifest
from repro.utils.tables import Table


def build_report():
    rows = {}
    manifests = []
    for key in dataset_keys():
        graph, source = bench_workload(key)
        cpu = cpu_baseline_bfs(key)
        push = run_bfs(graph, source, "U_T_BM")
        do = direction_optimizing_bfs(graph, source)
        assert np.array_equal(do.values, cpu.levels), key
        rows[key] = (push, do)
        manifests.append(build_manifest(do, graph=graph, mode=do.policy_name))

    table = Table(
        [
            "network",
            "push edges",
            "DO edges",
            "push (ms)",
            "DO (ms)",
            "total gain",
            "kernel gain",
            "pull iters",
        ],
        title="extension: direction-optimizing BFS vs push-only U_T_BM",
    )
    for key, (push, do) in rows.items():
        kernel_gain = push.gpu_seconds / do.gpu_seconds
        table.add_row(
            [
                key,
                push.total_edges_scanned,
                do.total_edges_scanned,
                f"{push.total_seconds * 1e3:.2f}",
                f"{do.total_seconds * 1e3:.2f}",
                f"{push.total_seconds / do.total_seconds:.2f}x",
                f"{kernel_gain:.2f}x",
                do.variants_used().get("pull", 0),
            ]
        )
    return table.render(), rows, manifests


def test_extension_dobfs(benchmark):
    content, rows, manifests = benchmark.pedantic(build_report, rounds=1, iterations=1)
    write_report("extension_dobfs", content, manifest=manifests)

    # The Beamer edge-work collapse on the dense graphs.
    for key in ("citeseer", "sns"):
        push, do = rows[key]
        assert do.total_edges_scanned < 0.25 * push.total_edges_scanned, key
        assert do.variants_used().get("pull", 0) >= 1, key

    # End-to-end win where the degree is high and no CSC transfer is
    # needed (CiteSeer is undirected).
    push, do = rows["citeseer"]
    assert do.total_seconds < 0.8 * push.total_seconds

    # The road network stays pure push and costs the same.
    push, do = rows["co-road"]
    assert "pull" not in do.variants_used()
    assert abs(do.total_seconds / push.total_seconds - 1.0) < 0.02
