"""Extension — hybrid CPU-GPU execution vs the paper's GPU-only adaptivity.

Related work (Section II): Hong et al. [13] "considers an adaptive
solution that alternates CPU and GPU execution.  We, on the other hand,
focus on the automatic selection of different GPU solutions."  With
both adaptivity axes implemented on the same substrates, this bench
compares them — and shows they are complementary:

- on the road network (the GPU-hostile case of Table 2/3) the hybrid
  executor runs nearly every iteration on the host and recovers most of
  the serial CPU's advantage, which no GPU-side variant selection can;
- on the high-parallelism graphs the hybrid matches the GPU-only
  adaptive runtime (it simply stays on the GPU for the heavy middle
  iterations), while pure-CPU execution is 5-25x slower.
"""

from common import bench_workload, cpu_baseline_sssp, dataset_keys, write_report
from repro.core import adaptive_sssp
from repro.core.hybrid import hybrid_sssp
from repro.obs import build_manifest
from repro.utils.tables import Table


def build_report():
    rows = {}
    manifests = []
    for key in dataset_keys():
        graph, source = bench_workload(key, weighted=True)
        cpu = cpu_baseline_sssp(key)
        gpu = adaptive_sssp(graph, source)
        hybrid = hybrid_sssp(graph, source)
        rows[key] = (cpu, gpu, hybrid)
        manifests.append(
            build_manifest(
                hybrid, graph=graph, algorithm="sssp", mode="hybrid",
                source=source,
            )
        )

    table = Table(
        [
            "network",
            "CPU (ms)",
            "GPU adaptive (ms)",
            "hybrid (ms)",
            "hybrid/GPU",
            "CPU iters",
            "GPU iters",
            "transitions",
        ],
        title="extension: hybrid CPU-GPU execution (SSSP)",
    )
    for key, (cpu, gpu, hybrid) in rows.items():
        table.add_row(
            [
                key,
                f"{cpu.seconds * 1e3:.2f}",
                f"{gpu.total_seconds * 1e3:.2f}",
                f"{hybrid.total_seconds * 1e3:.2f}",
                f"{hybrid.total_seconds / gpu.total_seconds:.2f}",
                hybrid.cpu_iterations,
                hybrid.gpu_iterations,
                hybrid.transitions,
            ]
        )
    return table.render(), rows, manifests


def test_extension_hybrid(benchmark):
    import numpy as np

    content, rows, manifests = benchmark.pedantic(build_report, rounds=1, iterations=1)
    write_report("extension_hybrid", content, manifest=manifests)

    for key, (cpu, gpu, hybrid) in rows.items():
        assert np.allclose(hybrid.values, cpu.distances), key

    # Road: the hybrid recovers the CPU's advantage over the GPU.
    road_cpu, road_gpu, road_hybrid = rows["co-road"]
    assert road_hybrid.total_seconds < 0.5 * road_gpu.total_seconds
    assert road_hybrid.cpu_iterations > 0.9 * len(road_hybrid.devices)

    # Dense graphs: the hybrid stays within 15 % of the GPU adaptive and
    # far below pure CPU.
    for key in ("citeseer", "amazon", "google", "sns"):
        cpu, gpu, hybrid = rows[key]
        assert hybrid.total_seconds < 1.15 * gpu.total_seconds, key
        assert hybrid.total_seconds < 0.5 * cpu.seconds, key
        assert hybrid.gpu_iterations >= 1, key
