"""Table 1 — dataset characterization.

Reproduces the paper's Table 1 (network, #nodes, #edges, min/max/avg
outdegree) for the six synthetic analogues, next to the published
values.  Scaled instances shrink node counts; the *average* outdegree
and distribution shape are the quantities that must match.
"""

from common import bench_graph, write_report
from repro.graph.datasets import DATASETS, dataset_keys
from repro.graph.properties import characterize
from repro.utils.tables import Table, format_si


def build_table1() -> str:
    table = Table(
        [
            "network",
            "nodes",
            "edges",
            "deg min",
            "deg max",
            "deg avg",
            "paper nodes",
            "paper edges",
            "paper avg",
        ],
        title="Table 1: dataset characterization (measured vs paper)",
    )
    for key in dataset_keys():
        spec = DATASETS[key]
        c = characterize(bench_graph(key))
        table.add_row(
            [
                key,
                c.num_nodes,
                c.num_edges,
                c.min_out_degree,
                c.max_out_degree,
                round(c.avg_out_degree, 1),
                format_si(spec.paper_nodes),
                format_si(spec.paper_edges),
                spec.paper_avg_outdegree,
            ]
        )
    return table.render()


def test_table1_characterization(benchmark):
    content = benchmark.pedantic(build_table1, rounds=1, iterations=1)
    write_report("table1_datasets", content)
    # Reproduction check: measured averages within 2x of the paper's.
    for key in dataset_keys():
        spec = DATASETS[key]
        c = characterize(bench_graph(key))
        assert 0.5 < c.avg_out_degree / spec.paper_avg_outdegree < 2.0, key
