"""Extension — push-based PageRank on the adaptive runtime.

The second "other graph algorithm with similar computational patterns"
(Section I): residual-push PageRank, the Galois line's canonical
unordered algorithm.  Its working-set trajectory is unlike BFS's or
CC's: it starts at *all* nodes, collapses fast, then trickles around
the hubs for a long tail of small iterations — sweeping through every
region of the decision space in a single run.

Checks: all variants and the adaptive runtime agree bit-for-bit with
the serial push baseline; the adaptive runtime tracks the best static
variant; the trajectory crosses from the bitmap region into the
small-working-set region on every dataset.
"""

import numpy as np

from common import bench_workload, dataset_keys, write_report
from repro.core import adaptive_pagerank
from repro.cpu import cpu_pagerank
from repro.kernels import run_pagerank, unordered_variants
from repro.obs import build_manifest
from repro.utils.tables import Table

TOLERANCE = 1e-6


def build_report():
    rows = {}
    manifests = []
    for key in dataset_keys():
        graph, _ = bench_workload(key)
        cpu = cpu_pagerank(graph, tolerance=TOLERANCE, method="fast")
        statics = {}
        for variant in unordered_variants():
            result = run_pagerank(graph, variant, tolerance=TOLERANCE)
            assert np.abs(result.values - cpu.ranks).max() < 1e-12, (
                key, variant.code,
            )
            statics[variant.code] = result.total_seconds
        ad = adaptive_pagerank(graph, tolerance=TOLERANCE)
        rows[key] = (cpu, statics, ad)
        manifests.append(build_manifest(ad, graph=graph, mode="adaptive"))

    table = Table(
        [
            "network",
            "CPU (ms)",
            "best static",
            "best (ms)",
            "adaptive (ms)",
            "adaptive/best",
            "iterations",
            "regions used",
        ],
        title="extension: push PageRank (tolerance 1e-6)",
    )
    for key, (cpu, statics, ad) in rows.items():
        best = min(statics, key=statics.get)
        table.add_row(
            [
                key,
                f"{cpu.seconds * 1e3:.2f}",
                best,
                f"{statics[best] * 1e3:.2f}",
                f"{ad.total_seconds * 1e3:.2f}",
                f"{ad.total_seconds / statics[best]:.2f}",
                ad.num_iterations,
                "+".join(sorted(ad.variants_used())),
            ]
        )
    return table.render(), rows, manifests


def test_extension_pagerank(benchmark):
    content, rows, manifests = benchmark.pedantic(build_report, rounds=1, iterations=1)
    write_report("extension_pagerank", content, manifest=manifests)

    for key, (cpu, statics, ad) in rows.items():
        best = min(statics.values())
        # Adaptive tracks the best static variant.
        assert ad.total_seconds <= 1.25 * best, (key, ad.total_seconds, best)

    # The trajectory sweeps from the full-graph bitmap region into the
    # small-working-set queue region.
    for key in ("citeseer", "amazon", "google", "sns"):
        _, _, ad = rows[key]
        first = ad.traversal.iterations[0]
        assert first.workset_size == ad.values.size, key
        assert first.variant.endswith("BM"), key
        assert any(r.variant == "U_B_QU" for r in ad.traversal.iterations), key

    # The GPU beats the serial push baseline on the dense graphs.
    for key in ("citeseer", "google", "sns"):
        cpu, statics, _ = rows[key]
        assert min(statics.values()) < cpu.seconds, key
