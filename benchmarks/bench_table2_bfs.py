"""Table 2 — BFS speedup of every GPU implementation over the serial CPU
baseline, for all 8 variants x 6 datasets.

Reproduced shapes (Section VII.A):

- ordered and unordered BFS achieve very similar performance;
- the GPU does not beat the CPU on CO-road (low degree, huge diameter);
- the best implementation is dataset-dependent;
- U_B_BM is only competitive on CiteSeer.
"""

import numpy as np

from common import bench_workload, cpu_baseline_bfs, dataset_keys, write_report
from repro.kernels import all_variants, run_bfs
from repro.utils.tables import Table

CODES = [v.code for v in all_variants()]


def build_table2():
    speedups = {}
    for key in dataset_keys():
        graph, source = bench_workload(key)
        cpu = cpu_baseline_bfs(key)
        row = {}
        for variant in all_variants():
            result = run_bfs(graph, source, variant)
            assert np.array_equal(result.values, cpu.levels), (key, variant.code)
            row[variant.code] = cpu.seconds / result.total_seconds
        speedups[key] = row

    table = Table(
        ["network"] + CODES + ["best"],
        title="Table 2: BFS speedup (GPU over serial CPU)",
    )
    for key, row in speedups.items():
        best = max(row, key=row.get)
        table.add_row([key] + [f"{row[c]:.2f}" for c in CODES] + [best])
    return table.render(), speedups


def test_table2_bfs_speedups(benchmark):
    content, speedups = benchmark.pedantic(build_table2, rounds=1, iterations=1)
    write_report("table2_bfs", content)

    # Ordered ~ unordered for BFS.
    for key, row in speedups.items():
        for mapping_ws in ("T_BM", "T_QU", "B_BM", "B_QU"):
            o, u = row[f"O_{mapping_ws}"], row[f"U_{mapping_ws}"]
            assert 0.6 < o / u < 1.6, (key, mapping_ws)

    # GPU loses on the road network.
    assert max(speedups["co-road"].values()) < 1.0

    # GPU wins clearly on CiteSeer.
    assert max(speedups["citeseer"].values()) > 2.0

    # No universal winner among the unordered variants.
    winners = {
        max(
            (c for c in row if c.startswith("U_")), key=row.get
        )
        for row in speedups.values()
    }
    assert len(winners) >= 2

    # B_BM is the worst unordered variant outside CiteSeer.
    for key, row in speedups.items():
        if key == "citeseer":
            continue
        u_row = {c: s for c, s in row.items() if c.startswith("U_")}
        assert min(u_row, key=u_row.get) == "U_B_BM", key
