"""Shared infrastructure for the paper-reproduction benchmarks.

Every bench regenerates one table or figure from the paper's evaluation
(Section VII) on the synthetic dataset analogues, prints the rows, and
writes them to ``benchmarks/results/<name>.txt`` so runs are diffable.

Scales are chosen per dataset so the full suite finishes in minutes on a
laptop while every graph stays large enough to exercise the decision
space (working sets crossing T2 and T3).  ``p2p`` runs at the paper's
full size — it is small in the original too.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional, Tuple

import numpy as np

from repro.cpu import CpuBfsResult, CpuSsspResult, cpu_bfs, cpu_dijkstra
from repro.graph.csr import CSRGraph
from repro.graph.datasets import dataset_keys, make_dataset
from repro.graph.properties import largest_out_component_node

__all__ = [
    "BENCH_SCALES",
    "RESULTS_DIR",
    "bench_graph",
    "bench_workload",
    "write_report",
    "dataset_keys",
]

#: per-dataset scale for the table/figure benches
BENCH_SCALES: Dict[str, float] = {
    "co-road": 0.05,
    "citeseer": 0.05,
    "p2p": 1.0,
    "amazon": 0.05,
    "google": 0.05,
    "sns": 0.02,
}

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

_GRAPH_CACHE: Dict[Tuple, CSRGraph] = {}
_SOURCE_CACHE: Dict[Tuple, int] = {}
_CPU_CACHE: Dict[Tuple, object] = {}


def bench_graph(
    key: str,
    *,
    weighted: bool = False,
    scale: Optional[float] = None,
    seed: int = 1,
) -> CSRGraph:
    """The cached benchmark instance of dataset *key*."""
    scale = BENCH_SCALES[key] if scale is None else scale
    cache_key = (key, weighted, scale, seed)
    if cache_key not in _GRAPH_CACHE:
        _GRAPH_CACHE[cache_key] = make_dataset(
            key, scale=scale, weighted=weighted, seed=seed
        )
    return _GRAPH_CACHE[cache_key]


def bench_source(graph: CSRGraph, key: str) -> int:
    cache_key = (key, graph.num_nodes)
    if cache_key not in _SOURCE_CACHE:
        _SOURCE_CACHE[cache_key] = largest_out_component_node(graph, seed=0)
    return _SOURCE_CACHE[cache_key]


def bench_workload(
    key: str, *, weighted: bool = False, scale: Optional[float] = None
) -> Tuple[CSRGraph, int]:
    """(graph, source) for dataset *key* at its bench scale."""
    graph = bench_graph(key, weighted=weighted, scale=scale)
    return graph, bench_source(graph, key)


def cpu_baseline_bfs(key: str, scale: Optional[float] = None) -> CpuBfsResult:
    graph, source = bench_workload(key, weighted=False, scale=scale)
    cache_key = ("bfs", key, graph.num_nodes)
    if cache_key not in _CPU_CACHE:
        _CPU_CACHE[cache_key] = cpu_bfs(graph, source)
    return _CPU_CACHE[cache_key]


def cpu_baseline_sssp(key: str, scale: Optional[float] = None) -> CpuSsspResult:
    graph, source = bench_workload(key, weighted=True, scale=scale)
    cache_key = ("sssp", key, graph.num_nodes)
    if cache_key not in _CPU_CACHE:
        _CPU_CACHE[cache_key] = cpu_dijkstra(graph, source)
    return _CPU_CACHE[cache_key]


def write_report(
    name: str,
    content: str,
    data: Optional[dict] = None,
    *,
    memory=None,
    manifest=None,
) -> str:
    """Write a bench report under ``benchmarks/results`` and echo it.

    Besides the human-readable ``<name>.txt``, a machine-readable
    ``<name>.json`` is always written so perf trajectories can be
    populated from runs: pass structured rows via *data*; without it the
    JSON carries the report text verbatim.

    Pass a :class:`~repro.gpusim.allocator.MemoryReport` (or a list of
    them) via *memory* to append the device-memory accounting — peak,
    current, per-category and spill totals — to both the text and the
    JSON payload.

    Pass a :class:`~repro.obs.RunManifest` (or a list of them) via
    *manifest* to write ``<name>.manifest.json`` next to the report —
    the run's full machine-readable story (config, graph fingerprint,
    decisions, metrics, memory, faults).  A list is written as a JSON
    array of manifest documents.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    if memory is not None:
        reports = memory if isinstance(memory, (list, tuple)) else [memory]
        lines = ["", "device memory:"]
        for rep in reports:
            lines.append(
                f"  peak {rep.peak_bytes:,} / {rep.capacity_bytes:,} bytes "
                f"({rep.peak_pressure:.0%}), current {rep.current_bytes:,}, "
                f"spilled {rep.spilled_bytes:,} in {rep.spill_events} events, "
                f"{rep.oom_events} OOM"
            )
        content = content.rstrip("\n") + "\n" + "\n".join(lines)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(content if content.endswith("\n") else content + "\n")
    payload = {"name": name}
    payload.update(data if data is not None else {"text": content})
    if memory is not None:
        payload["memory"] = [rep.to_dict() for rep in reports]
    json_path = os.path.join(RESULTS_DIR, f"{name}.json")
    with open(json_path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True, default=str)
        fh.write("\n")
    extra = " (+ .json)"
    if manifest is not None:
        manifests = (
            manifest if isinstance(manifest, (list, tuple)) else [manifest]
        )
        docs = [m.to_dict() for m in manifests]
        manifest_path = os.path.join(RESULTS_DIR, f"{name}.manifest.json")
        with open(manifest_path, "w", encoding="utf-8") as fh:
            json.dump(docs[0] if len(docs) == 1 else docs, fh,
                      indent=2, sort_keys=True)
            fh.write("\n")
        extra = " (+ .json, .manifest.json)"
    print(f"\n{content}\n[report written to {path}{extra}]")
    return path
