"""Analysis — the learned decision tree vs the Figure-11 thresholds,
both scored against the per-iteration oracle (tooling beyond the paper).

One policy is fitted from the threshold runtime's own manifests across
all six Table-1 graph classes, then deployed back onto every dataset.
Each runtime's regret is measured against the same clairvoyant oracle,
so the two numbers are directly comparable: "how much simulated time
does this selector leave on the table?"

Expected shapes: the learned tree matches or beats the hand-derived
thresholds on most classes — it can carve regions the two-threshold
rule cannot express (the road network's overhead-dominated near-ties
are where the thresholds lose the most).  Both selectors must produce
bit-identical distance vectors: the variants differ only in schedule,
never in semantics.
"""

import hashlib

import numpy as np

from common import bench_workload, dataset_keys, write_report
from repro.core import (
    RuntimeConfig,
    adaptive_sssp,
    decision_quality,
    fit_policy,
    per_iteration_oracle,
)
from repro.obs import build_manifest
from repro.utils.tables import Table


def _sha256(values) -> str:
    return hashlib.sha256(np.ascontiguousarray(values).tobytes()).hexdigest()


def build_report():
    config = RuntimeConfig()

    # Pass 1 — threshold runtime everywhere; its manifests are the corpus.
    threshold = {}
    corpus = []
    for key in dataset_keys():
        graph, source = bench_workload(key, weighted=True)
        report = per_iteration_oracle(graph, source, "sssp")
        ad = adaptive_sssp(graph, source, config=config)
        corpus.append((
            f"{key}.json",
            build_manifest(ad, graph=graph, algorithm="sssp",
                           mode="adaptive", source=source),
        ))
        threshold[key] = (graph, source, report, ad)

    artifact = fit_policy(corpus)

    # Pass 2 — the fitted tree on the same workloads, same oracle.
    rows = {}
    for key, (graph, source, report, ad) in threshold.items():
        learned = adaptive_sssp(graph, source, config=config, policy=artifact)
        rows[key] = (
            decision_quality(ad, report),
            decision_quality(learned, report),
            _sha256(ad.values),
            _sha256(learned.values),
        )

    table = Table(
        ["network", "threshold regret", "learned regret", "winner",
         "values match"],
        title="learned policy vs Figure-11 thresholds (SSSP, regret "
        "vs per-iteration oracle)",
    )
    for key, (thr, lrn, sha_t, sha_l) in rows.items():
        winner = "learned" if lrn.regret <= thr.regret else "threshold"
        table.add_row(
            [key, f"{thr.regret:.2%}", f"{lrn.regret:.2%}", winner,
             "yes" if sha_t == sha_l else "NO"]
        )
    content = table.render() + (
        f"\npolicy: {artifact.num_leaves} leaves, depth {artifact.depth}, "
        f"digest {artifact.digest[:16]}…"
    )
    return content, rows, artifact


def test_learned_regret(benchmark):
    content, rows, artifact = benchmark.pedantic(
        build_report, rounds=1, iterations=1
    )
    data = {
        "policy": {"digest": artifact.digest,
                   "num_leaves": artifact.num_leaves,
                   "depth": artifact.depth},
        "datasets": {
            key: {"threshold_regret": thr.regret, "learned_regret": lrn.regret}
            for key, (thr, lrn, _, _) in rows.items()
        },
    }
    write_report("learned_regret", content, data=data)

    wins = 0
    for key, (thr, lrn, sha_t, sha_l) in rows.items():
        # Correctness first: the selectors must agree on the answer.
        assert sha_t == sha_l, key
        # Regret is bounded everywhere, learned included.
        assert lrn.regret < 0.25, (key, lrn.regret)
        if lrn.regret <= thr.regret + 1e-9:
            wins += 1

    # The fitted tree holds its own against the hand-derived thresholds
    # on at least half the Table-1 graph classes.
    assert wins >= 3, {k: (t.regret, l.regret) for k, (t, l, _, _) in rows.items()}
