"""T2 tuning (Section VII.B) — the T_QU vs B_QU kernel-time crossover.

The paper derives T2 analytically (192 threads/block x 14 SMs = 2,688)
and confirms it empirically: "B_QU outperforms T_QU for working set
sizes smaller than ~3000".  This bench measures the same crossover on
the simulator across three topologies and checks it lands in the same
band.
"""

from common import bench_graph, write_report
from repro.core.tuning import derive_t2, measure_t2_crossover
from repro.gpusim.device import TESLA_C2070
from repro.utils.tables import Table


def build_crossover():
    crossovers = {}
    rows_by_key = {}
    for key in ("co-road", "amazon", "google"):
        graph = bench_graph(key)
        crossover, rows = measure_t2_crossover(graph, seed=0)
        crossovers[key] = crossover
        rows_by_key[key] = rows

    table = Table(
        ["network", "measured crossover", "analytic T2", "paper"],
        title="T2: working-set size where T_QU catches B_QU",
    )
    analytic = derive_t2(TESLA_C2070)
    for key, crossover in crossovers.items():
        table.add_row([key, crossover, analytic, "~3000 (2,688)"])

    detail = Table(
        ["ws size", "T_QU (us)", "B_QU (us)", "winner"],
        title="per-size kernel times (google)",
    )
    for size, t_qu, b_qu in rows_by_key["google"]:
        detail.add_row(
            [size, f"{t_qu * 1e6:.2f}", f"{b_qu * 1e6:.2f}",
             "T" if t_qu <= b_qu else "B"]
        )
    return table.render() + "\n\n" + detail.render(), crossovers


def test_t2_crossover(benchmark):
    content, crossovers = benchmark.pedantic(build_crossover, rounds=1, iterations=1)
    write_report("t2_crossover", content)
    for key, crossover in crossovers.items():
        # Same order of magnitude as the paper's 2,688.
        assert 512 <= crossover <= 16_384, (key, crossover)
