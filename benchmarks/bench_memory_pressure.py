"""Cost and correctness of execution under a device-memory budget.

Three questions the memory subsystem must answer before a deployment
trusts ``--mem-budget``:

1. **What does accounting cost when memory is plentiful?**  A budget
   sized at the device's full capacity charges every allocation but
   never intervenes; the simulated-time overhead versus an unbudgeted
   run must stay under 5 %.
2. **Does pressure-aware adaptation stay correct?**  With a budget just
   large enough for the resident arrays plus a bitmap working set, the
   policy is forced away from queue worksets — answers must remain
   bit-identical while the trace records the forced decisions.
3. **Does the OOM ladder recover?**  With a budget that fits the
   resident arrays but no working set at all, the first attempt raises
   a genuine :class:`DeviceOOMError`; the guarded runner's rung-1 spill
   retry must complete bit-identically, pricing the spill as PCIe
   traffic.
"""

import numpy as np

from common import bench_workload, write_report
from repro.core import adaptive_bfs, adaptive_sssp
from repro.gpusim.allocator import MemoryBudget
from repro.gpusim.memory import traversal_state_bytes
from repro.reliability import GuardConfig, resilient_bfs, resilient_sssp
from repro.utils.tables import Table

KEYS = ("citeseer", "p2p", "amazon", "google")

OVERHEAD_LIMIT = 0.05


def _resident_bytes(graph) -> int:
    return graph.device_bytes() + traversal_state_bytes(graph.num_nodes)


def run_one(key: str, algorithm: str):
    weighted = algorithm == "sssp"
    graph, source = bench_workload(key, weighted=weighted)
    adaptive = adaptive_bfs if algorithm == "bfs" else adaptive_sssp
    resilient = resilient_bfs if algorithm == "bfs" else resilient_sssp
    resident = _resident_bytes(graph)
    bitmap = (graph.num_nodes + 7) // 8

    base = adaptive(graph, source)

    # 1. plentiful memory: accounting only, no intervention
    ample = adaptive(graph, source, memory=MemoryBudget("1G"))
    overhead = ample.traversal.total_seconds / base.traversal.total_seconds - 1.0

    # 2. tight budget: pressure-aware policy forces compact worksets
    tight_budget = resident + bitmap + 64
    tight = adaptive(graph, source, memory=MemoryBudget(tight_budget, spill=True))
    tight_identical = bool(
        np.array_equal(tight.traversal.values, base.traversal.values)
    )

    # 3. genuine OOM: guarded runner climbs to the spill rung
    oom_guard = GuardConfig(mem_budget=resident + 16, sleeper=lambda s: None)
    recovered = resilient(graph, source, guard=oom_guard)
    oom_identical = bool(np.array_equal(recovered.values, base.traversal.values))
    recovery = (
        (recovered.final_seconds + recovered.replayed_seconds)
        / base.traversal.total_seconds
        - 1.0
    )

    return {
        "dataset": key,
        "algorithm": algorithm,
        "base_seconds": base.traversal.total_seconds,
        "ample_seconds": ample.traversal.total_seconds,
        "overhead": overhead,
        "peak_bytes": ample.memory.peak_bytes,
        "forced_decisions": tight.trace.num_memory_forced,
        "tight_identical": tight_identical,
        "oom_rung": recovered.oom_rung,
        "oom_attempts": recovered.attempts,
        "spilled_bytes": recovered.memory.spilled_bytes if recovered.memory else 0,
        "recovery_cost": recovery,
        "oom_identical": oom_identical,
    }, ample.memory


def build_report():
    rows = []
    memories = []
    for key in KEYS:
        for algorithm in ("bfs", "sssp"):
            row, mem = run_one(key, algorithm)
            rows.append(row)
            memories.append(mem)

    table = Table(
        ["network", "algo", "overhead", "peak bytes", "forced",
         "OOM rung", "spilled", "recovery cost", "identical"],
        title="device-memory budget: accounting overhead, pressure, OOM recovery",
    )
    for r in rows:
        table.add_row(
            [
                r["dataset"],
                r["algorithm"],
                f"{100 * r['overhead']:+.2f}%",
                f"{r['peak_bytes']:,}",
                r["forced_decisions"],
                r["oom_rung"],
                f"{r['spilled_bytes']:,}",
                f"{100 * r['recovery_cost']:+.1f}%",
                "yes" if r["tight_identical"] and r["oom_identical"] else "NO",
            ]
        )
    return table.render(), rows, memories


def test_memory_pressure(benchmark):
    content, rows, memories = benchmark.pedantic(
        build_report, rounds=1, iterations=1
    )
    write_report(
        "memory_pressure", content, data={"rows": rows}, memory=memories
    )

    for r in rows:
        label = f"{r['dataset']}/{r['algorithm']}"
        # Accounting with plentiful memory must stay under 5% overhead.
        assert r["overhead"] < OVERHEAD_LIMIT, (label, r["overhead"])
        # Pressure-forced and OOM-recovered runs preserve answers.
        assert r["tight_identical"], label
        assert r["oom_identical"], label
        # The genuine OOM is recovered on the first (spill) rung.
        assert r["oom_rung"] == 1, (label, r["oom_rung"])


if __name__ == "__main__":
    content, rows, memories = build_report()
    write_report(
        "memory_pressure", content, data={"rows": rows}, memory=memories
    )
