"""Guard overhead and recovery cost of the reliability layer.

Two questions a production deployment asks before turning guards on:

1. **What does safety cost when nothing goes wrong?**  ``resilient_*``
   with an empty fault plan runs the same adaptive traversal plus
   watchdog checks and cost-aware checkpoints; the simulated-time
   overhead versus plain ``adaptive_*`` must stay under 5 %.
2. **What does recovery cost when things do go wrong?**  Under a seeded
   plan injecting transient launch failures and memory faults, the
   guard retries/restores until the query completes; answers must be
   bit-identical to the fault-free run, and the extra simulated compute
   (replayed iterations) quantifies the recovery bill.
"""

import numpy as np

from common import bench_workload, write_report
from repro.core import adaptive_bfs, adaptive_sssp
from repro.reliability import FaultPlan, GuardConfig, resilient_bfs, resilient_sssp
from repro.utils.tables import Table

KEYS = ("citeseer", "p2p", "amazon", "google")

OVERHEAD_LIMIT = 0.05

FAULT_PLAN = FaultPlan(
    seed=7,
    launch_failure_rate=0.05,
    memory_fault_rate=0.02,
    latency_spike_rate=0.02,
    latency_spike_factor=4.0,
)

_NO_SLEEP = GuardConfig(sleeper=lambda s: None)
_NO_SLEEP_TIGHT = GuardConfig(sleeper=lambda s: None, checkpoint_every=4)


def run_one(key: str, algorithm: str):
    weighted = algorithm == "sssp"
    graph, source = bench_workload(key, weighted=weighted)
    adaptive = adaptive_bfs if algorithm == "bfs" else adaptive_sssp
    resilient = resilient_bfs if algorithm == "bfs" else resilient_sssp

    base = adaptive(graph, source)
    guarded = resilient(graph, source, guard=_NO_SLEEP)
    overhead = guarded.final_seconds / base.total_seconds - 1.0

    faulty = resilient(graph, source, guard=_NO_SLEEP_TIGHT, plan=FAULT_PLAN)
    identical = bool(np.array_equal(faulty.values, base.values))
    recovery = (
        (faulty.final_seconds + faulty.replayed_seconds) / base.total_seconds - 1.0
    )
    return {
        "dataset": key,
        "algorithm": algorithm,
        "base_seconds": base.total_seconds,
        "guarded_seconds": guarded.final_seconds,
        "overhead": overhead,
        "checkpoints": guarded.checkpoints_saved,
        "faults": faulty.num_faults,
        "attempts": faulty.attempts,
        "recovery_cost": recovery,
        "recovery_actions": faulty.recovery_actions(),
        "bit_identical": identical,
    }


def build_report():
    rows = []
    for key in KEYS:
        for algorithm in ("bfs", "sssp"):
            rows.append(run_one(key, algorithm))

    table = Table(
        ["network", "algo", "adaptive", "guarded", "overhead",
         "faults", "attempts", "recovery cost", "identical"],
        title="reliability guard: fault-free overhead and faulty recovery cost",
    )
    for r in rows:
        table.add_row(
            [
                r["dataset"],
                r["algorithm"],
                f"{1e3 * r['base_seconds']:.3f}ms",
                f"{1e3 * r['guarded_seconds']:.3f}ms",
                f"{100 * r['overhead']:+.2f}%",
                r["faults"],
                r["attempts"],
                f"{100 * r['recovery_cost']:+.1f}%",
                "yes" if r["bit_identical"] else "NO",
            ]
        )
    return table.render(), rows


def test_reliability_overhead(benchmark):
    content, rows = benchmark.pedantic(build_report, rounds=1, iterations=1)
    write_report("reliability_overhead", content, data={"rows": rows})

    for r in rows:
        label = f"{r['dataset']}/{r['algorithm']}"
        # Fault-free guard overhead must stay under 5% simulated time.
        assert r["overhead"] < OVERHEAD_LIMIT, (label, r["overhead"])
        # Recovery must preserve answers bit-for-bit.
        assert r["bit_identical"], label


if __name__ == "__main__":
    content, rows = build_report()
    write_report("reliability_overhead", content, data={"rows": rows})
