"""Extension — connected components on the adaptive runtime.

Section I: the paper's mechanisms "can be extended and applied to other
graph algorithms that exhibit similar computational patterns".  This
bench applies them to min-label-propagation connected components and
checks that the adaptive machinery transfers:

- every unordered variant and the adaptive runtime produce the
  union-find baseline's exact labels;
- CC's working set starts at *all* nodes and drains — the reverse of a
  BFS ramp — so the adaptive runtime starts in the bitmap region and
  switches toward the queue as the frontier collapses;
- the adaptive runtime again tracks the best static variant.
"""

import numpy as np

from common import bench_workload, dataset_keys, write_report
from repro.core import adaptive_cc
from repro.cpu import cpu_connected_components
from repro.kernels import run_cc, unordered_variants
from repro.obs import build_manifest
from repro.utils.tables import Table


def build_report():
    rows = {}
    manifests = []
    for key in dataset_keys():
        graph, _ = bench_workload(key)
        cpu = cpu_connected_components(graph)
        statics = {}
        for variant in unordered_variants():
            result = run_cc(graph, variant)
            assert np.array_equal(result.values, cpu.labels), (key, variant.code)
            statics[variant.code] = result.total_seconds
        ad = adaptive_cc(graph)
        assert np.array_equal(ad.values, cpu.labels), key
        rows[key] = (cpu, statics, ad)
        manifests.append(build_manifest(ad, graph=graph, mode="adaptive"))

    table = Table(
        [
            "network",
            "components",
            "CPU (ms)",
            "best static",
            "best (ms)",
            "adaptive (ms)",
            "adaptive/best",
            "first variant",
        ],
        title="extension: connected components (label propagation)",
    )
    for key, (cpu, statics, ad) in rows.items():
        best = min(statics, key=statics.get)
        table.add_row(
            [
                key,
                cpu.num_components,
                f"{cpu.seconds * 1e3:.2f}",
                best,
                f"{statics[best] * 1e3:.2f}",
                f"{ad.total_seconds * 1e3:.2f}",
                f"{ad.total_seconds / statics[best]:.2f}",
                ad.traversal.iterations[0].variant,
            ]
        )
    return table.render(), rows, manifests


def test_extension_connected_components(benchmark):
    content, rows, manifests = benchmark.pedantic(build_report, rounds=1, iterations=1)
    write_report("extension_cc", content, manifest=manifests)

    for key, (cpu, statics, ad) in rows.items():
        # Adaptive stays within 20 % of the best static variant.
        best = min(statics.values())
        assert ad.total_seconds <= 1.2 * best, key

    # On the large instances CC starts in the bitmap region (all nodes
    # active on iteration 0).
    for key in ("citeseer", "amazon", "google", "sns"):
        _, _, ad = rows[key]
        assert ad.traversal.iterations[0].variant.endswith("BM"), key
        assert ad.traversal.iterations[0].workset_size == ad.values.size, key

    # ... and drains into the queue region before finishing.
    drained = sum(
        1
        for key, (_, _, ad) in rows.items()
        if any(r.variant.endswith("QU") for r in ad.traversal.iterations)
    )
    assert drained >= 4
