"""Ablation — the cost of the two-kernel iteration structure.

Section V.B: "The computation and the working set generation are split
into two kernels because CUDA does not offer primitives for global
synchronization inside kernels."  Each iteration therefore pays two
kernel launches (plus the loop-condition readback).  This analysis
quantifies what a hypothetical device-wide barrier would save by
re-pricing each traversal with the generation kernels' fixed launch
overhead removed (their *work* is kept — only the extra launch
disappears).

Expected shapes: the saving is proportional to the iteration count —
double-digit percent on the road network (hundreds of near-empty
iterations), negligible on the dense graphs (tens of heavy iterations).
This is exactly why later systems (the paper's citations [9], and
Gunrock/Enterprise afterwards) worked on fusing or batching the
frontier-management step.
"""

from common import bench_workload, dataset_keys, write_report
from repro.kernels import run_sssp
from repro.utils.tables import Table


def fused_estimate(result) -> float:
    """Total seconds if generation work rode the computation kernel."""
    device = result.device
    gen_launches = sum(
        1
        for record in result.timeline.kernels
        if record.tally.name.startswith("workset_gen")
        and "[" not in record.tally.name  # scan sub-kernels stay separate
    )
    return result.total_seconds - gen_launches * device.kernel_launch_overhead_s


def build_report():
    rows = {}
    for key in dataset_keys():
        graph, source = bench_workload(key, weighted=True)
        result = run_sssp(graph, source, "U_B_QU")
        rows[key] = (result, fused_estimate(result))

    table = Table(
        [
            "network",
            "iterations",
            "split (ms)",
            "fused est. (ms)",
            "saving",
        ],
        title="ablation: two-kernel split vs hypothetical fused iteration (U_B_QU SSSP)",
    )
    for key, (result, fused) in rows.items():
        saving = 1.0 - fused / result.total_seconds
        table.add_row(
            [
                key,
                result.num_iterations,
                f"{result.total_seconds * 1e3:.2f}",
                f"{fused * 1e3:.2f}",
                f"{saving:.1%}",
            ]
        )
    return table.render(), rows


def test_ablation_kernel_split(benchmark):
    content, rows = benchmark.pedantic(build_report, rounds=1, iterations=1)
    write_report("ablation_kernel_split", content)

    savings = {
        key: 1.0 - fused / result.total_seconds
        for key, (result, fused) in rows.items()
    }
    # Long-tail traversals lose double-digit percent to the split.
    assert savings["co-road"] > 0.10, savings
    # Dense traversals barely notice it.
    for key in ("citeseer", "sns"):
        assert savings[key] < 0.05, (key, savings[key])
    # Savings order follows iteration counts.
    road_iters = rows["co-road"][0].num_iterations
    sns_iters = rows["sns"][0].num_iterations
    assert road_iters > 10 * sns_iters
