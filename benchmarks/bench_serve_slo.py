"""Serve-loop SLO: continuous batching vs drain-then-refill.

The serving layer's tentpole claim is that *continuous* batching — new
queries join the fused multi-source frame at the next super-iteration —
beats the classic *drain-then-refill* scheduler on tail latency: under
drain, a query arriving just after a batch starts waits for the whole
batch to finish before it gets a slot, so p99 simulated latency grows
with batch duration instead of queue position.

This bench replays the same seeded arrival stream through both
schedulers of :class:`repro.serve.ServeLoop` (same graph session, same
queries, no faults) and reports p50/p99 simulated and wall latency plus
throughput.  A second sweep varies the admission-queue capacity under a
bursty arrival pattern to chart the backpressure story: queue-depth
high-water and shed-rate per capacity.

The serve manifests (one per scheduler) ride along via ``write_report``
so the SLO numbers are machine-readable next to the text table.
"""

import numpy as np

from common import bench_graph, write_report
from repro.obs import Observer, observing
from repro.serve import BatchQuery, GraphSession, ServeLoop

DATASET = "co-road"
NUM_QUERIES = 32
MAX_ROWS = 8
#: queries arriving between two scheduling rounds (the offered load)
ARRIVALS_PER_ROUND = 2
CAPACITY_SWEEP = (4, 8, 16, 48)


def _queries(graph, count: int):
    rng = np.random.default_rng(11)
    sources = rng.choice(graph.num_nodes, size=count, replace=False)
    return [BatchQuery("bfs", int(s), "adaptive") for s in sources]


def _run_stream(session, queries, *, scheduler, queue_capacity=256):
    """Feed *queries* at a fixed arrival rate; return (loop, report)."""
    loop = ServeLoop(
        session,
        scheduler=scheduler,
        max_batch_rows=MAX_ROWS,
        queue_capacity=queue_capacity,
    )
    pending = list(queries)
    lineno = 0
    while pending or loop.busy:
        for _ in range(ARRIVALS_PER_ROUND):
            if pending:
                lineno += 1
                loop.submit(pending.pop(0), line=lineno)
        loop.pump()
    loop.take_responses()
    return loop, loop.finalize()


def build_report():
    graph = bench_graph(DATASET, scale=0.02)
    session = GraphSession(graph)
    queries = _queries(graph, NUM_QUERIES)

    table = None
    stats = {}
    manifests = []
    from repro.utils.tables import Table

    table = Table(
        ["scheduler", "p50 sim (ms)", "p99 sim (ms)", "p50 wall (ms)",
         "p99 wall (ms)", "throughput (q/sim-s)", "super-iters"],
        title=f"serve-loop SLO: {NUM_QUERIES} adaptive BFS queries on "
        f"{DATASET}, {ARRIVALS_PER_ROUND} arrivals/round, "
        f"{MAX_ROWS} frame rows",
    )
    for scheduler in ("continuous", "drain"):
        observer = Observer()
        with observing(observer):
            loop, report = _run_stream(session, queries, scheduler=scheduler)
        doc = report.result_dict()
        assert doc["answered"] == NUM_QUERIES
        assert doc["ok"] == NUM_QUERIES
        throughput = (
            doc["answered"] / doc["total_sim_seconds"]
            if doc["total_sim_seconds"]
            else 0.0
        )
        table.add_row(
            [
                scheduler,
                f"{doc['latency_sim_s']['p50'] * 1e3:.3f}",
                f"{doc['latency_sim_s']['p99'] * 1e3:.3f}",
                f"{doc['latency_wall_s']['p50'] * 1e3:.3f}",
                f"{doc['latency_wall_s']['p99'] * 1e3:.3f}",
                f"{throughput:.0f}",
                doc["super_iterations"],
            ]
        )
        stats[scheduler] = doc
        manifests.append(loop.to_manifest(observer=observer))

    # Backpressure curve: a burst of every query at once against a
    # bounded queue — smaller queues shed more, by design, explicitly.
    curve = Table(
        ["queue capacity", "admitted", "shed", "shed rate",
         "queue high-water"],
        title="admission-control curve: full burst arrival",
    )
    curve_rows = {}
    for capacity in CAPACITY_SWEEP:
        loop = ServeLoop(
            session, queue_capacity=capacity, max_batch_rows=MAX_ROWS
        )
        for i, query in enumerate(queries, start=1):
            loop.submit(query, line=i)
        loop.drain()
        loop.take_responses()
        report = loop.finalize()
        shed_rate = report.shed / NUM_QUERIES
        curve.add_row(
            [capacity, report.admitted, report.shed, f"{shed_rate:.0%}",
             report.queue_depth_high_water]
        )
        curve_rows[capacity] = {
            "admitted": report.admitted,
            "shed": report.shed,
            "shed_rate": shed_rate,
            "queue_depth_high_water": report.queue_depth_high_water,
        }

    content = table.render() + "\n\n" + curve.render()
    return content, stats, curve_rows, manifests


def test_serve_slo(benchmark):
    content, stats, curve_rows, manifests = benchmark.pedantic(
        build_report, rounds=1, iterations=1
    )
    write_report(
        "serve_slo",
        content,
        data={"schedulers": stats, "backpressure_curve": curve_rows},
        manifest=manifests,
    )

    continuous = stats["continuous"]["latency_sim_s"]
    drain = stats["drain"]["latency_sim_s"]
    # Contract: continuous batching does not lose on median simulated
    # latency and wins on the tail — the whole point of joining a
    # running frame instead of waiting for it to drain.
    assert continuous["p99"] <= drain["p99"], (continuous, drain)
    # Backpressure contract: shedding is monotone in queue capacity,
    # and an unbounded-enough queue sheds nothing.
    rates = [curve_rows[c]["shed"] for c in CAPACITY_SWEEP]
    assert rates == sorted(rates, reverse=True), rates
    assert curve_rows[max(CAPACITY_SWEEP)]["shed"] == 0
