"""The headline claim (abstract, Section VII): "our dynamic solution
outperforms the best static one (up to a factor of 2X) on most datasets,
and is more robust to the irregularities typical of real world graphs."

For both BFS and SSSP on every dataset this bench runs the four
unordered static variants and the adaptive runtime, then reports
adaptive time vs the best and the worst static.  Reproduced shapes:

- adaptive >= best static on most datasets (ratio <= ~1.05), beating it
  outright on several;
- adaptive is far from the *worst* static everywhere (robustness) —
  the penalty for picking the wrong static variant is large, the
  penalty for using the adaptive runtime is nil.
"""

import numpy as np

from common import bench_workload, dataset_keys, write_report
from repro.core import adaptive_bfs, adaptive_sssp, run_static
from repro.kernels import unordered_variants
from repro.obs import Observer, build_manifest
from repro.utils.tables import Table


def run_comparison(algorithm: str):
    rows = {}
    manifests = []
    for key in dataset_keys():
        weighted = algorithm == "sssp"
        graph, source = bench_workload(key, weighted=weighted)
        statics = {}
        for variant in unordered_variants():
            result = run_static(graph, source, algorithm, variant)
            statics[variant.code] = result.total_seconds
        runner = adaptive_sssp if weighted else adaptive_bfs
        observer = Observer()
        ad = runner(graph, source, observe=observer)
        manifests.append(
            build_manifest(
                ad, graph=graph, algorithm=algorithm, mode="adaptive",
                source=source, observer=observer,
            )
        )
        rows[key] = (statics, ad)
    return rows, manifests


def build_report():
    parts = []
    all_rows = {}
    all_manifests = []
    for algorithm in ("bfs", "sssp"):
        rows, manifests = run_comparison(algorithm)
        all_rows[algorithm] = rows
        all_manifests.extend(manifests)
        table = Table(
            [
                "network",
                "best static",
                "best (ms)",
                "worst static",
                "worst (ms)",
                "adaptive (ms)",
                "adaptive/best",
                "switches",
            ],
            title=f"adaptive vs static ({algorithm.upper()})",
        )
        for key, (statics, ad) in rows.items():
            best = min(statics, key=statics.get)
            worst = max(statics, key=statics.get)
            table.add_row(
                [
                    key,
                    best,
                    f"{statics[best] * 1e3:.2f}",
                    worst,
                    f"{statics[worst] * 1e3:.2f}",
                    f"{ad.total_seconds * 1e3:.2f}",
                    f"{ad.total_seconds / statics[best]:.2f}",
                    ad.num_switches,
                ]
            )
        parts.append(table.render())
    return "\n\n".join(parts), all_rows, all_manifests


def test_adaptive_vs_static(benchmark):
    content, all_rows, manifests = benchmark.pedantic(
        build_report, rounds=1, iterations=1
    )
    write_report("adaptive_vs_static", content, manifest=manifests)

    for algorithm, rows in all_rows.items():
        ratios = []
        for key, (statics, ad) in rows.items():
            best = min(statics.values())
            worst = max(statics.values())
            ratio = ad.total_seconds / best
            ratios.append(ratio)
            # Robustness: adaptive is never close to the worst static.
            assert ad.total_seconds < 0.8 * worst, (algorithm, key)
            # Never a bad choice: within 15 % of the best static.
            assert ratio < 1.15, (algorithm, key)
        # On most datasets adaptive matches or beats the best static.
        matches = sum(1 for r in ratios if r <= 1.02)
        assert matches >= len(ratios) // 2, (algorithm, ratios)
        # And it beats the best static outright somewhere.
        assert min(ratios) < 1.0, (algorithm, ratios)
