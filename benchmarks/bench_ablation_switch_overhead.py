"""Ablation — the cost of switching implementations at runtime
(Section VI's "data structures that lead to minimal overhead when
switching between implementations").

The paper's runtime shares one update vector between both working-set
representations, so a switch only redirects the generation kernel.  A
naive runtime would re-materialize the working set on every
representation change.  This ablation runs the adaptive runtime in both
modes.

Reproduced shape: shared-structure switching is essentially free (the
two modes differ only by the rebuild kernels), which is the property
that lets the runtime re-decide every iteration at all.
"""

from common import bench_workload, write_report
from repro.core import RuntimeConfig, adaptive_sssp
from repro.utils.tables import Table

KEYS = ("citeseer", "amazon", "google", "sns")


def build_report():
    results = {}
    for key in KEYS:
        graph, source = bench_workload(key, weighted=True)
        shared = adaptive_sssp(
            graph, source, config=RuntimeConfig(switch_mode="shared")
        )
        rebuild = adaptive_sssp(
            graph, source, config=RuntimeConfig(switch_mode="rebuild")
        )
        results[key] = (shared, rebuild)

    table = Table(
        [
            "network",
            "switches",
            "shared (ms)",
            "rebuild (ms)",
            "rebuild penalty",
        ],
        title="ablation: representation-switch cost (adaptive SSSP)",
    )
    for key, (shared, rebuild) in results.items():
        penalty = rebuild.total_seconds / shared.total_seconds - 1.0
        table.add_row(
            [
                key,
                shared.num_switches,
                f"{shared.total_seconds * 1e3:.3f}",
                f"{rebuild.total_seconds * 1e3:.3f}",
                f"{100 * penalty:+.1f}%",
            ]
        )
    return table.render(), results


def test_ablation_switch_overhead(benchmark):
    content, results = benchmark.pedantic(build_report, rounds=1, iterations=1)
    write_report("ablation_switch_overhead", content)

    for key, (shared, rebuild) in results.items():
        # Identical decisions and answers.
        assert shared.num_switches == rebuild.num_switches, key
        assert shared.traversal.reached == rebuild.traversal.reached, key
        # Rebuild can only add cost.
        assert rebuild.total_seconds >= shared.total_seconds, key

    # Where switches happen, rebuilding costs something but the shared
    # scheme keeps the total penalty tiny either way (it is a handful of
    # kernels across the whole traversal).
    assert any(s.num_switches > 0 for s, _ in results.values())
