"""Spec-fusion savings — fused launch plans vs the plain Figure-8 loop.

The host loop pays a kernel-launch overhead for the computation kernel
and another for the workset-generation kernel *every iteration*.  The
spec-fusion pass (:mod:`repro.engine.fusion`) lowers a run to a
:class:`~repro.engine.fusion.LaunchPlan` that merges the two into one
fused launch whenever the next working set's representation permits,
and hoists loop-invariant per-iteration H2D payloads out of the loop.

This bench quantifies the claim on two opposite Table-1 workload
shapes plus the fusion showcase workload:

- **co-road**: high diameter, hundreds of tiny-frontier iterations —
  launch-overhead dominated, fusion's best case for BFS;
- **sns**: scale-free, few heavy iterations — smaller relative win,
  but the bitmap-heavy plateau still fuses;
- **triangles** (on p2p): a chunked schedule whose generation kernel is
  trivial and whose per-iteration chunk descriptor is hoistable.

Contracts: every fused run's value array is SHA-256-identical to its
unfused run, fused simulated time is strictly below unfused on every
row, and the manifests attribute the saving to eliminated launch
overheads (``fusion.overhead_saved_s`` accounts for at least the fused
launches' worth of ``kernel_launch_overhead_s``).
"""

import hashlib

import numpy as np

from common import bench_graph, bench_source, write_report
from repro.core import run_static
from repro.kernels.triangles import run_triangles
from repro.utils.tables import Table

#: (row label, dataset, algorithm, variant)
ROWS = (
    ("co-road/bfs", "co-road", "bfs", "U_T_BM"),
    ("sns/bfs", "sns", "bfs", "U_T_BM"),
    ("p2p/triangles", "p2p", "triangles", "U_T_QU"),
)


def _sha(values) -> str:
    return hashlib.sha256(np.ascontiguousarray(values).tobytes()).hexdigest()


def _run(dataset, algorithm, variant, fuse):
    if algorithm == "triangles":
        graph = bench_graph(dataset, scale=0.25)
        return run_triangles(graph, variant, fusion=fuse or None)
    graph = bench_graph(dataset)
    source = bench_source(graph, dataset)
    return run_static(graph, source, algorithm, variant, fuse=fuse)


def build_report():
    table = Table(
        ["workload", "variant", "unfused (ms)", "fused (ms)", "saved",
         "fused iters", "overhead saved (us)", "hoisted (B)"],
        title="spec-fusion: fused launch plan vs plain host loop",
    )
    stats = {}
    for label, dataset, algorithm, variant in ROWS:
        base = _run(dataset, algorithm, variant, fuse=False)
        fused = _run(dataset, algorithm, variant, fuse=True)
        assert _sha(base.values) == _sha(fused.values), label
        assert len(base.iterations) == len(fused.iterations), label
        f = fused.fusion
        saved = base.total_seconds - fused.total_seconds
        table.add_row(
            [label, variant,
             f"{base.total_seconds * 1e3:.3f}",
             f"{fused.total_seconds * 1e3:.3f}",
             f"{saved / base.total_seconds:.1%}",
             f"{f.fused_iterations}/{len(fused.iterations)}",
             f"{f.overhead_saved_s * 1e6:.1f}",
             f.hoisted_h2d_bytes]
        )
        stats[label] = (base, fused)
    return table.render(), stats


def test_fusion_savings(benchmark):
    content, stats = benchmark.pedantic(build_report, rounds=1, iterations=1)
    rows = {
        label: {
            "unfused_seconds": base.total_seconds,
            "fused_seconds": fused.total_seconds,
            "fused_iterations": fused.fusion.fused_iterations,
            "overhead_saved_s": fused.fusion.overhead_saved_s,
            "hoisted_h2d_bytes": fused.fusion.hoisted_h2d_bytes,
        }
        for label, (base, fused) in stats.items()
    }
    write_report("fusion_savings", content, data={"rows": rows})

    for label, (base, fused) in stats.items():
        f = fused.fusion
        # Contract 1: fusion never changes the math, only the pricing.
        assert _sha(base.values) == _sha(fused.values), label
        # Contract 2: fused simulated time is strictly below unfused.
        assert fused.total_seconds < base.total_seconds, (
            label, fused.total_seconds, base.total_seconds
        )
        # Contract 3: the saving is attributable — the plan fused real
        # iterations and the eliminated launch overheads account for a
        # concrete, positive share of the delta.
        assert f.fused_iterations > 0, label
        expected = f.fused_iterations * fused.device.kernel_launch_overhead_s
        assert abs(f.overhead_saved_s - expected) < 1e-12, label
        assert base.total_seconds - fused.total_seconds >= f.overhead_saved_s - 1e-12, label
    # The showcase workload also demonstrates H2D hoisting.
    assert stats["p2p/triangles"][1].fusion.hoisted_h2d_bytes > 0
