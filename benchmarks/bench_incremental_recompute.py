"""Incremental recompute vs from-scratch after small mutation batches.

The dynamic-graph layer's tentpole claim, after "Exploring the Design
Space of Static and Incremental Graph Connectivity Algorithms on GPUs":
at small churn (1% of edges), warm-starting the traversal from the
previous fixed point beats recomputing from scratch by a wide margin,
with *bit-identical* values on the compacted graph.

The asserted rows use the incremental literature's standard update
model — an arrival stream of edge inserts, 1% of |E| per batch — where
the seeding pass touches only the inserted edges that move the fixed
point (distance-improving edges / label-bridging edges).  The headline
contract is a >= 5x geometric-mean simulated speedup across bfs, sssp
and cc, with a 3x per-algorithm floor: BFS sits below the mean because
its from-scratch run is already cheap on a low-diameter social graph,
so both paths are floored by the same PCIe state traffic.

A second, unasserted section reports delete-heavy churn honestly: the
conservative tight-edge closure resets every vertex whose distance
*could* have routed through a deleted edge and re-seeds from the full
boundary scan, so the win erodes — the cost of exactness is part of
the story, not a silent cap.  Compaction is priced separately (it is a
shared prerequisite of both paths: the from-scratch run needs the
compacted CSR too).

One dynamic manifest per asserted row rides along via ``write_report``,
each carrying its mutation event stream.
"""

import hashlib

import numpy as np

from common import bench_graph, bench_source, write_report
from repro.core.runtime import adaptive_run
from repro.engine.incremental import run_incremental
from repro.graph.dynamic import DeltaOverlayGraph, EdgeBatch
from repro.graph.transforms import symmetrize
from repro.obs import Observer, build_dynamic_manifest, observing
from repro.utils.tables import Table

DATASET = "sns"
CHURN_FRACTION = 0.01
MIN_GEOMEAN_SPEEDUP = 5.0
MIN_PER_ALGORITHM_SPEEDUP = 3.0
SEED = 7


def _sha(values) -> str:
    return hashlib.sha256(np.ascontiguousarray(values).tobytes()).hexdigest()


def _insert_batch(rng, num_nodes, count, weighted):
    pairs, weights = [], []
    while len(pairs) < count:
        u, v = int(rng.integers(num_nodes)), int(rng.integers(num_nodes))
        if u != v:
            pairs.append((u, v))
            weights.append(float(rng.integers(1, 8)))
    return EdgeBatch.inserts(pairs, weights if weighted else None)


def _delete_batch(rng, graph, count):
    src = np.repeat(
        np.arange(graph.num_nodes, dtype=np.int64), graph.out_degrees
    )
    picks = rng.choice(graph.num_edges, size=count, replace=False)
    return EdgeBatch.deletes(
        [(int(src[i]), int(graph.col_indices[i])) for i in picks]
    )


def _workload(algorithm):
    """(graph, source, extra adaptive_run kwargs) for one algorithm."""
    weighted = algorithm == "sssp"
    graph = bench_graph(DATASET, weighted=weighted)
    if algorithm == "cc":
        # Label propagation wants a symmetric graph; symmetrize once up
        # front so neither path pays the per-run host pass.
        return symmetrize(graph), None, {"assume_symmetric": True}
    return graph, bench_source(graph, DATASET), {}


def _measure(algorithm, batch_kind):
    """One (algorithm, churn kind) cell: returns the row dict + manifest."""
    graph, source, kwargs = _workload(algorithm)
    churn = max(1, int(CHURN_FRACTION * graph.num_edges))
    rng = np.random.default_rng(SEED)

    observer = Observer()
    with observing(observer):
        previous = adaptive_run(graph, algorithm, source, **kwargs)
        overlay = DeltaOverlayGraph(graph)
        if batch_kind == "insert":
            batch = _insert_batch(
                rng, graph.num_nodes, churn, graph.has_weights
            )
        else:
            batch = _delete_batch(rng, graph, churn)
        delta = overlay.apply(batch, mode="lenient")
        compaction = overlay.compact()
        mutated = compaction.graph
        incremental = run_incremental(
            mutated, algorithm, previous, delta, source=source, **kwargs
        )
        scratch = adaptive_run(mutated, algorithm, source, **kwargs)

    parity = _sha(incremental.values) == _sha(scratch.values)
    speedup = scratch.total_seconds / max(incremental.total_seconds, 1e-12)
    row = {
        "algorithm": algorithm,
        "churn": batch_kind,
        "churn_edges": churn,
        "affected_nodes": incremental.affected_nodes,
        "seed_frontier": incremental.seed_frontier_size,
        "incremental_ms": incremental.total_seconds * 1e3,
        "scratch_ms": scratch.total_seconds * 1e3,
        "compaction_ms": compaction.seconds * 1e3,
        "speedup": speedup,
        "parity": parity,
    }
    manifest = build_dynamic_manifest(
        {
            "kind": "bench_incremental",
            "dataset": DATASET,
            "mutation_events": [delta.event_dict()],
            "compaction_seconds": float(compaction.seconds),
            "delta_bytes": int(compaction.delta_bytes),
            "graph_epoch": overlay.epoch,
            "incremental": {
                k: v for k, v in row.items() if k not in ("parity",)
            },
            "values_sha256": _sha(incremental.values),
        },
        graph=mutated,
        observer=observer,
        algorithm=algorithm,
        source=-1 if source is None else source,
    )
    return row, manifest


def build_report():
    table = Table(
        ["algorithm", "churn", "affected", "frontier", "incremental (ms)",
         "from-scratch (ms)", "compaction (ms)", "speedup", "parity"],
        title=f"incremental recompute on {DATASET} @ "
        f"{CHURN_FRACTION:.0%} edge churn",
    )
    rows, manifests = [], []
    for batch_kind in ("insert", "delete"):
        for algorithm in ("bfs", "sssp", "cc"):
            row, manifest = _measure(algorithm, batch_kind)
            rows.append(row)
            if batch_kind == "insert":
                manifests.append(manifest)
            table.add_row(
                [
                    row["algorithm"],
                    row["churn"],
                    row["affected_nodes"],
                    row["seed_frontier"],
                    f"{row['incremental_ms']:.3f}",
                    f"{row['scratch_ms']:.3f}",
                    f"{row['compaction_ms']:.3f}",
                    f"{row['speedup']:.1f}x",
                    "PASS" if row["parity"] else "FAIL",
                ]
            )
    return table.render(), rows, manifests


def test_incremental_recompute(benchmark):
    content, rows, manifests = benchmark.pedantic(
        build_report, rounds=1, iterations=1
    )
    write_report(
        "incremental_recompute",
        content,
        data={"rows": rows},
        manifest=manifests,
    )

    # Exactness is unconditional: every cell, both churn kinds.
    assert all(row["parity"] for row in rows), rows

    inserts = [row for row in rows if row["churn"] == "insert"]
    speedups = [row["speedup"] for row in inserts]
    geomean = float(np.exp(np.mean(np.log(speedups))))
    assert geomean >= MIN_GEOMEAN_SPEEDUP, (geomean, inserts)
    for row in inserts:
        assert row["speedup"] >= MIN_PER_ALGORITHM_SPEEDUP, row
