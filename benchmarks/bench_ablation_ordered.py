"""Ablation — ordered vs unordered work efficiency (Section IV.A).

"Ordered algorithms are more work efficient than their unordered
counterparts (in that they process each element a minimum number of
times), but take more iterations to converge.  However, unordered
algorithms may exhibit higher degrees of parallelism."

This ablation quantifies both halves of that trade-off on the simulator:
edge relaxations performed (work) and iteration counts / time
(parallelism), for SSSP where the two differ most.
"""

from common import bench_workload, write_report
from repro.kernels import run_sssp
from repro.utils.tables import Table

KEYS = ("citeseer", "p2p", "amazon", "google")


def build_report():
    results = {}
    for key in KEYS:
        graph, source = bench_workload(key, weighted=True)
        ordered = run_sssp(graph, source, "O_T_BM")
        unordered = run_sssp(graph, source, "U_T_BM")
        results[key] = (graph, ordered, unordered)

    table = Table(
        [
            "network",
            "m (edges)",
            "O edges scanned",
            "U edges scanned",
            "O iters",
            "U iters",
            "O time (ms)",
            "U time (ms)",
        ],
        title="ablation: ordered work efficiency vs unordered parallelism (SSSP)",
    )
    for key, (graph, ordered, unordered) in results.items():
        table.add_row(
            [
                key,
                graph.num_edges,
                ordered.total_edges_scanned,
                unordered.total_edges_scanned,
                ordered.num_iterations,
                unordered.num_iterations,
                f"{ordered.total_seconds * 1e3:.2f}",
                f"{unordered.total_seconds * 1e3:.2f}",
            ]
        )
    return table.render(), results


def test_ablation_ordered_work_efficiency(benchmark):
    content, results = benchmark.pedantic(build_report, rounds=1, iterations=1)
    write_report("ablation_ordered", content)

    for key, (graph, ordered, unordered) in results.items():
        # Work efficiency: the ordered traversal scans each reachable
        # edge at most once; the unordered one rescans.
        assert ordered.total_edges_scanned <= graph.num_edges, key
        assert unordered.total_edges_scanned > ordered.total_edges_scanned, key
        # Convergence: ordered needs (far) more iterations.
        assert ordered.num_iterations > unordered.num_iterations, key

    # Net effect on the GPU: parallelism wins wherever the ordered
    # traversal's iteration count explodes ...
    for key in ("p2p", "amazon", "google"):
        _, ordered, unordered = results[key]
        assert unordered.total_seconds < ordered.total_seconds, key

    # ... while CiteSeer is the boundary case: its distances collapse
    # onto ~40 distinct values (dense hub structure), so the ordered
    # version converges almost as fast as the unordered one while doing
    # ~4x less edge work — and T_BM-vs-T_BM it comes out ahead.  (Across
    # *all* variants the unordered family still wins; see Table 3.)
    _, cs_ordered, cs_unordered = results["citeseer"]
    assert cs_ordered.num_iterations < 4 * cs_unordered.num_iterations
    assert cs_unordered.total_edges_scanned > 3 * cs_ordered.total_edges_scanned
