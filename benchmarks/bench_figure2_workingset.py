"""Figure 2 — unordered SSSP working-set size during execution on the
CO-road, Amazon and SNS networks.

Reproduces the figure's three series: the working set starts at one
node, ramps while the traversal spreads, peaks once a large fraction of
nodes has been touched, then drains.  The road network's curve is long
and low; the social network's is short and explosive.
"""

import numpy as np

from common import bench_workload, write_report
from repro.kernels import run_sssp
from repro.utils.tables import Table


def workset_series(key: str):
    graph, source = bench_workload(key, weighted=True)
    result = run_sssp(graph, source, "U_T_BM")
    return graph, result.workset_curve()


def render_series(key: str, curve: np.ndarray, num_nodes: int) -> str:
    table = Table(
        ["iteration", "workset", ""], title=f"Figure 2 series: {key} "
        f"(peak {curve.max()} at iter {int(np.argmax(curve))}, {len(curve)} iters)"
    )
    # Sample at most 24 rows evenly across the run.
    idx = np.unique(np.linspace(0, len(curve) - 1, 24).astype(int))
    peak = max(1, int(curve.max()))
    for i in idx:
        table.add_row([int(i), int(curve[i]), "#" * int(50 * curve[i] / peak)])
    return table.render()


def build_figure2():
    parts = []
    curves = {}
    for key in ("co-road", "amazon", "sns"):
        graph, curve = workset_series(key)
        curves[key] = (graph, curve)
        parts.append(render_series(key, curve, graph.num_nodes))
    return "\n\n".join(parts), curves


def test_figure2_workingset_evolution(benchmark):
    content, curves = benchmark.pedantic(build_figure2, rounds=1, iterations=1)
    write_report("figure2_workingset", content)

    for key, (graph, curve) in curves.items():
        peak_at = int(np.argmax(curve))
        # Ramp-then-drain shape: growth phase, interior peak, shrink phase.
        assert curve[0] == 1, key
        assert 0 < peak_at < len(curve) - 1, key
        assert curve[-1] <= curve[peak_at], key

    # Road: many iterations, modest peak. SNS: few iterations, huge peak.
    road_graph, road = curves["co-road"]
    sns_graph, sns = curves["sns"]
    assert len(road) > 5 * len(sns)
    assert sns.max() / sns_graph.num_nodes > road.max() / road_graph.num_nodes
