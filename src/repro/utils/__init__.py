"""Shared utilities: seeded RNG, table formatting, statistics, validation."""

from repro.utils.rng import make_rng, spawn_rngs
from repro.utils.stats import (
    Histogram,
    Summary,
    degree_histogram_bins,
    geometric_mean,
    histogram,
    summarize,
)
from repro.utils.tables import Table, format_si, format_seconds
from repro.utils.validation import (
    check_in_range,
    check_nonnegative_int,
    check_positive,
    check_positive_int,
    check_probability,
)

__all__ = [
    "make_rng",
    "spawn_rngs",
    "Histogram",
    "Summary",
    "degree_histogram_bins",
    "geometric_mean",
    "histogram",
    "summarize",
    "Table",
    "format_si",
    "format_seconds",
    "check_in_range",
    "check_nonnegative_int",
    "check_positive",
    "check_positive_int",
    "check_probability",
]
