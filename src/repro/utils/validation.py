"""Small argument-validation helpers used across the library.

Each helper raises ``ValueError``/``TypeError`` with a message that names
the offending parameter, keeping call sites one line long.
"""

from __future__ import annotations

import math
import numbers
from typing import Optional

__all__ = [
    "check_positive_int",
    "check_nonnegative_int",
    "check_positive",
    "check_probability",
    "check_in_range",
    "check_finite",
]


def check_positive_int(name: str, value) -> int:
    """Validate that *value* is an integer >= 1 and return it as ``int``."""
    if isinstance(value, bool) or not isinstance(value, numbers.Integral):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if value < 1:
        raise ValueError(f"{name} must be >= 1, got {value}")
    return int(value)


def check_nonnegative_int(name: str, value) -> int:
    """Validate that *value* is an integer >= 0 and return it as ``int``."""
    if isinstance(value, bool) or not isinstance(value, numbers.Integral):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return int(value)


def check_positive(name: str, value) -> float:
    """Validate that *value* is a real number > 0 and return it as ``float``."""
    if isinstance(value, bool) or not isinstance(value, numbers.Real):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    return float(value)


def check_probability(name: str, value) -> float:
    """Validate that *value* lies in [0, 1] and return it as ``float``."""
    if isinstance(value, bool) or not isinstance(value, numbers.Real):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return float(value)


def check_finite(name: str, value) -> float:
    """Validate that *value* is a finite real number (no NaN/inf) and
    return it as ``float``."""
    if isinstance(value, bool) or not isinstance(value, numbers.Real):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value}")
    return float(value)


def check_in_range(
    name: str,
    value,
    low: Optional[float] = None,
    high: Optional[float] = None,
) -> float:
    """Validate that *value* lies in the closed range [low, high]."""
    if isinstance(value, bool) or not isinstance(value, numbers.Real):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    if low is not None and value < low:
        raise ValueError(f"{name} must be >= {low}, got {value}")
    if high is not None and value > high:
        raise ValueError(f"{name} must be <= {high}, got {value}")
    return float(value)
