"""Summary statistics and histogram helpers.

These back the dataset characterization (Table 1 of the paper), the
outdegree-distribution figures (Figure 1) and generic reporting in the
benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = [
    "Summary",
    "Histogram",
    "summarize",
    "degree_histogram_bins",
    "geometric_mean",
]


@dataclass(frozen=True)
class Summary:
    """Five-number-style summary of a 1-D sample."""

    count: int
    minimum: float
    maximum: float
    mean: float
    std: float
    median: float
    p90: float
    p99: float

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
            "std": self.std,
            "median": self.median,
            "p90": self.p90,
            "p99": self.p99,
        }


def summarize(values) -> Summary:
    """Compute a :class:`Summary` of *values* (any array-like, non-empty)."""
    arr = np.asarray(values, dtype=np.float64).ravel()
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample")
    return Summary(
        count=int(arr.size),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        mean=float(arr.mean()),
        std=float(arr.std()),
        median=float(np.median(arr)),
        p90=float(np.percentile(arr, 90)),
        p99=float(np.percentile(arr, 99)),
    )


@dataclass(frozen=True)
class Histogram:
    """A histogram with explicit integer-friendly bin edges.

    ``edges`` has ``len(counts) + 1`` entries; bin *i* covers
    ``[edges[i], edges[i+1])`` except the last bin which is closed.
    ``fractions`` are counts normalised by the total.
    """

    edges: Tuple[float, ...]
    counts: Tuple[int, ...]

    @property
    def total(self) -> int:
        return int(sum(self.counts))

    @property
    def fractions(self) -> Tuple[float, ...]:
        total = self.total
        if total == 0:
            return tuple(0.0 for _ in self.counts)
        return tuple(c / total for c in self.counts)

    def bin_labels(self) -> Tuple[str, ...]:
        """Human-readable labels, collapsing unit-width bins to one number."""
        labels = []
        for lo, hi in zip(self.edges[:-1], self.edges[1:]):
            if hi - lo <= 1:
                labels.append(f"{int(lo)}")
            else:
                labels.append(f"{int(lo)}-{int(hi - 1)}")
        return tuple(labels)


def degree_histogram_bins(max_degree: int, n_bins: int = 16) -> np.ndarray:
    """Geometric-ish bin edges suited to heavy-tailed degree distributions.

    Returns integer edges ``[0, 1, 2, 4, 8, ...]`` capped so the last edge
    is ``max_degree + 1``; always at least ``[0, max_degree + 1]``.
    """
    if max_degree < 0:
        raise ValueError(f"max_degree must be >= 0, got {max_degree}")
    edges = [0, 1]
    width = 1
    while edges[-1] <= max_degree and len(edges) < n_bins:
        edges.append(edges[-1] + width)
        width *= 2
    if edges[-1] <= max_degree:
        edges.append(max_degree + 1)
    else:
        edges[-1] = max_degree + 1
    # Deduplicate in the degenerate max_degree == 0 case.
    out = np.unique(np.asarray(edges, dtype=np.int64))
    if out.size < 2:
        out = np.array([0, 1], dtype=np.int64)
    return out


def histogram(values, edges) -> Histogram:
    """Build a :class:`Histogram` of *values* over *edges*."""
    arr = np.asarray(values, dtype=np.float64).ravel()
    e = np.asarray(edges, dtype=np.float64)
    counts, _ = np.histogram(arr, bins=e)
    return Histogram(edges=tuple(float(x) for x in e), counts=tuple(int(c) for c in counts))


def geometric_mean(values) -> float:
    """Geometric mean of strictly positive values (used for speedup summaries)."""
    arr = np.asarray(values, dtype=np.float64).ravel()
    if arr.size == 0:
        raise ValueError("cannot take geometric mean of an empty sample")
    if np.any(arr <= 0):
        raise ValueError("geometric mean requires strictly positive values")
    return float(np.exp(np.mean(np.log(arr))))
