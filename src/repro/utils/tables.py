"""Plain-text table rendering for the benchmark harness.

The paper reports its evaluation as tables (Tables 1-3) and series
(Figures 1, 2, 12, 13).  The benches print the same rows with this small
formatter so outputs are diffable and readable in a terminal.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

__all__ = ["Table", "format_si", "format_seconds"]

_SI_PREFIXES = [(1e9, "G"), (1e6, "M"), (1e3, "K")]


def format_si(value: float, digits: int = 1) -> str:
    """Format *value* with an SI suffix: ``34_500_000 -> '34.5M'``."""
    v = float(value)
    sign = "-" if v < 0 else ""
    v = abs(v)
    for factor, suffix in _SI_PREFIXES:
        if v >= factor:
            return f"{sign}{v / factor:.{digits}f}{suffix}"
    if v == int(v):
        return f"{sign}{int(v)}"
    return f"{sign}{v:.{digits}f}"


def format_seconds(seconds: float) -> str:
    """Format a simulated duration with a unit that keeps 3-4 significant digits."""
    s = float(seconds)
    if s < 0:
        return "-" + format_seconds(-s)
    if s == 0:
        return "0s"
    if s < 1e-6:
        return f"{s * 1e9:.1f}ns"
    if s < 1e-3:
        return f"{s * 1e6:.1f}us"
    if s < 1.0:
        return f"{s * 1e3:.2f}ms"
    return f"{s:.3f}s"


class Table:
    """Monospace table builder.

    >>> t = Table(["net", "nodes"], title="datasets")
    >>> t.add_row(["CO-road", 435666])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, columns: Sequence[str], title: Optional[str] = None):
        if not columns:
            raise ValueError("a table needs at least one column")
        self.columns: List[str] = [str(c) for c in columns]
        self.title = title
        self.rows: List[List[str]] = []

    def add_row(self, values: Iterable[object]) -> None:
        row = [self._fmt(v) for v in values]
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(row)

    @staticmethod
    def _fmt(value: object) -> str:
        if isinstance(value, float):
            if value != value:  # NaN
                return "-"
            if abs(value) >= 1000 or (value != 0 and abs(value) < 0.01):
                return f"{value:.3g}"
            return f"{value:.2f}"
        return str(value)

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "+".join("-" * (w + 2) for w in widths)
        lines = []
        if self.title:
            lines.append(f"== {self.title} ==")
        lines.append(" | ".join(c.ljust(w) for c, w in zip(self.columns, widths)))
        lines.append(sep)
        for row in self.rows:
            lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
