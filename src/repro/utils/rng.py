"""Deterministic random-number helpers.

Every stochastic component in the library (graph generators, source
sampling, tie-breaking) takes either a seed or a ``numpy.random.Generator``.
These helpers normalise the two forms and derive independent child streams,
so that a single top-level seed reproduces an entire experiment while
sub-components remain statistically independent.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, np.random.SeedSequence, None]

__all__ = ["make_rng", "spawn_rngs"]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    Accepts an ``int`` seed, an existing ``Generator`` (returned as-is so
    state is shared with the caller), a ``SeedSequence``, or ``None`` for a
    nondeterministic stream.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, n: int) -> Sequence[np.random.Generator]:
    """Derive *n* independent generators from one seed.

    Unlike calling :func:`make_rng` repeatedly with ``seed + i`` (which can
    produce correlated streams), this uses ``SeedSequence.spawn`` which is
    designed for parallel-stream independence.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if isinstance(seed, np.random.Generator):
        # Derive children from the generator's bit stream deterministically.
        ss = np.random.SeedSequence(seed.integers(0, 2**63 - 1, size=4))
    elif isinstance(seed, np.random.SeedSequence):
        ss = seed
    else:
        ss = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]
