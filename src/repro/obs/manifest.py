"""Run manifests: one JSON document that explains one traversal.

The paper's claim — the adaptive runtime picks the right variant per
iteration — is only checkable if every run carries its own evidence.
A :class:`RunManifest` is that evidence in one place: the configuration
that ran, a fingerprint of the graph it ran on, every decision the
runtime took, a metrics snapshot, memory peaks and fault events.  The
``repro profile`` CLI subcommand writes one per run, and
``benchmarks/common.write_report`` attaches them to bench results so
every ``results/*.txt`` has a machine-readable sibling.

The document is plain JSON: :meth:`RunManifest.to_dict` /
:meth:`RunManifest.from_dict` round-trip losslessly (a property the
test suite checks), so manifests can be diffed, archived and joined
across runs without this library.

>>> from repro.obs import RunManifest, build_manifest
>>> from repro.core import adaptive_bfs
>>> from repro.graph.generators import balanced_tree
>>> graph = balanced_tree(2, 6)
>>> result = adaptive_bfs(graph, 0)
>>> manifest = build_manifest(result, graph=graph, algorithm="bfs",
...                           mode="adaptive", source=0)
>>> manifest.result["iterations"] == result.num_iterations
True
>>> RunManifest.from_dict(manifest.to_dict()) == manifest
True
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import List, Optional, Union

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = [
    "MANIFEST_SCHEMA_VERSION",
    "RunManifest",
    "build_manifest",
    "build_batch_manifest",
    "build_dynamic_manifest",
    "build_serve_manifest",
    "build_shard_manifest",
]

#: bump when the document shape changes incompatibly
MANIFEST_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class RunManifest:
    """One traversal's full, machine-readable story.

    Every field is already JSON-shaped (dicts, lists, scalars), so
    serialization is trivially lossless.
    """

    #: document format version (:data:`MANIFEST_SCHEMA_VERSION`)
    schema_version: int
    #: "bfs" / "sssp" / "bfs_ordered" / ...
    algorithm: str
    #: "adaptive", a static variant code, or "resilient"
    mode: str
    #: source node of the traversal (-1 for source-free algorithms)
    source: int
    #: graph fingerprint: name, sizes, degree stats, content digest
    graph: dict
    #: simulated device: name, SMs, memory
    device: dict
    #: the :class:`~repro.core.RuntimeConfig` that ran, as a dict
    config: dict
    #: headline result numbers (iterations, simulated seconds, reached)
    result: dict
    #: every decision-maker invocation, in order
    decisions: List[dict] = field(default_factory=list)
    #: every fault event and its recovery action, in order
    faults: List[dict] = field(default_factory=list)
    #: metrics-registry snapshot (empty without an observer)
    metrics: dict = field(default_factory=dict)
    #: device-memory accounting (None without a budget)
    memory: Optional[dict] = None
    #: closed profiler spans (empty without an observer)
    spans: List[dict] = field(default_factory=list)
    #: recovery story of a guarded run (None for unguarded runs)
    reliability: Optional[dict] = None
    #: learned-policy provenance — kind, artifact digest, tree shape
    #: (None for threshold-policy and static runs; documents written
    #: before this field existed load fine, the default covers absence)
    policy: Optional[dict] = None

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, doc: dict) -> "RunManifest":
        """Rebuild a manifest from :meth:`to_dict` output (lossless)."""
        doc = dict(doc)
        version = doc.get("schema_version")
        if version != MANIFEST_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported manifest schema_version {version!r} "
                f"(this build reads {MANIFEST_SCHEMA_VERSION})"
            )
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(doc) - known
        if unknown:
            raise ValueError(f"unknown manifest fields: {sorted(unknown)}")
        return cls(**doc)

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunManifest":
        return cls.from_dict(json.loads(text))

    def write(self, path: Union[str, os.PathLike]) -> str:
        """Write the manifest as JSON; returns the path written."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())
            fh.write("\n")
        return str(path)

    @classmethod
    def read(cls, path: Union[str, os.PathLike]) -> "RunManifest":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())


# ----------------------------------------------------------------------
# Builders
# ----------------------------------------------------------------------

def graph_fingerprint(graph: CSRGraph) -> dict:
    """Identify a graph by shape *and* content.

    The digest hashes the CSR arrays themselves (row offsets, column
    indices, weights), so two runs claiming the same fingerprint really
    traversed the same graph — scale, seed and repair differences all
    change the digest.
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(graph.row_offsets.tobytes())
    h.update(graph.col_indices.tobytes())
    if graph.weights is not None:
        h.update(graph.weights.tobytes())
    return {
        "name": graph.name,
        "num_nodes": int(graph.num_nodes),
        "num_edges": int(graph.num_edges),
        "avg_out_degree": float(round(graph.avg_out_degree, 6)),
        "weighted": bool(graph.has_weights),
        "digest": h.hexdigest(),
    }


def _device_dict(device) -> dict:
    if device is None:
        return {}
    return {
        "name": device.name,
        "num_sms": int(device.num_sms),
        "global_mem_bytes": int(device.global_mem_bytes),
    }


def _config_dict(config) -> dict:
    if config is None:
        return {}
    out = {}
    for key, value in dataclasses.asdict(config).items():
        if callable(value):  # pragma: no cover - defensive
            continue
        out[key] = value
    return out


def _result_summary(traversal, values) -> dict:
    summary = {}
    answer = values
    if answer is None and traversal is not None:
        answer = getattr(traversal, "values", None)
    if answer is not None:
        # Content digest of the answer array: lets two manifests (e.g. a
        # fused and an unfused run) assert value parity without shipping
        # the arrays themselves.
        summary["values_sha256"] = hashlib.sha256(
            np.ascontiguousarray(answer).tobytes()
        ).hexdigest()
    if traversal is not None and getattr(traversal, "timeline", None) is not None:
        timeline = traversal.timeline
        summary.update(
            {
                "iterations": int(traversal.num_iterations),
                "total_seconds": float(traversal.total_seconds),
                "gpu_seconds": float(timeline.gpu_seconds),
                "transfer_seconds": float(timeline.transfer_seconds),
                "host_seconds": float(timeline.host_seconds),
                "kernel_launches": int(timeline.num_launches),
                "reached": int(traversal.reached),
                "total_edges_scanned": int(traversal.total_edges_scanned),
                "variants_used": {
                    k: int(v) for k, v in traversal.variants_used().items()
                },
            }
        )
    elif values is not None:
        summary["reached"] = int(len(values))
    return summary


def build_manifest(
    result,
    *,
    graph: CSRGraph,
    algorithm: Optional[str] = None,
    mode: str,
    source: Optional[int] = None,
    device=None,
    config=None,
    observer=None,
) -> RunManifest:
    """Assemble a :class:`RunManifest` from any runner's result.

    *result* may be an :class:`~repro.core.runtime.AdaptiveResult`, a
    plain :class:`~repro.kernels.frame.TraversalResult`, or a
    :class:`~repro.reliability.ResilientResult`; decisions, faults,
    memory and the recovery story are pulled from whichever parts the
    result carries.  *algorithm* and *source* default to what the
    result itself reports, so any registered algorithm's result can be
    manifested without restating them.  Pass the run's
    :class:`~repro.obs.Observer` to embed its metrics snapshot and
    spans.
    """
    trace = getattr(result, "trace", None)
    inner = getattr(result, "result", result)  # ResilientResult unwrap
    traversal = getattr(inner, "traversal", inner)
    if algorithm is None:
        algorithm = getattr(result, "algorithm", None) or getattr(
            traversal, "algorithm", "unknown"
        )
    if source is None:
        source = getattr(result, "source", None)
        if source is None:
            source = getattr(traversal, "source", -1)
    if getattr(traversal, "timeline", None) is None:
        traversal = None  # CPU-degraded: no simulated timeline

    decisions = (
        [dataclasses.asdict(d) for d in trace.decisions] if trace else []
    )
    faults = [dataclasses.asdict(f) for f in trace.faults] if trace else []

    memory_report = getattr(result, "memory", None)
    memory = memory_report.to_dict() if memory_report is not None else None

    reliability = None
    if hasattr(result, "stage") and hasattr(result, "attempts"):
        reliability = {
            "stage": result.stage,
            "attempts": int(result.attempts),
            "degraded": bool(result.degraded),
            "oom_rung": int(result.oom_rung),
            "checkpoints_saved": int(result.checkpoints_saved),
            "restores": int(result.restores),
            "replayed_seconds": float(result.replayed_seconds),
            "backoff_seconds": float(result.backoff_seconds),
        }

    summary = _result_summary(traversal, getattr(result, "values", None))
    if not summary and hasattr(result, "total_seconds"):
        summary["total_seconds"] = float(result.total_seconds)

    policy = getattr(result, "policy", None)

    return RunManifest(
        schema_version=MANIFEST_SCHEMA_VERSION,
        algorithm=algorithm,
        mode=mode,
        source=int(source),
        graph=graph_fingerprint(graph),
        device=_device_dict(device),
        config=_config_dict(config),
        result=summary,
        decisions=decisions,
        faults=faults,
        metrics=observer.metrics.snapshot() if observer is not None else {},
        memory=memory,
        spans=observer.spans.to_dicts() if observer is not None else [],
        reliability=reliability,
        policy=dict(policy) if policy else None,
    )


def build_batch_manifest(
    result: dict,
    *,
    graph: CSRGraph,
    device=None,
    config=None,
    observer=None,
    decisions: Optional[List[dict]] = None,
) -> RunManifest:
    """Assemble a manifest for one *batched* multi-source run.

    A batch has no single source or algorithm, so the document uses
    ``algorithm="batch"``, ``mode="batch"`` and ``source=-1``; the whole
    batch story — per-query summaries, amortization counters, cache
    stats — rides in the free-form ``result`` dict (the schema stays at
    version :data:`MANIFEST_SCHEMA_VERSION`, so existing readers
    round-trip batch manifests unchanged).  *result* must already be
    JSON-shaped; *decisions* may carry the concatenation of the
    per-query decision traces, each entry tagged with its query index.
    """
    return RunManifest(
        schema_version=MANIFEST_SCHEMA_VERSION,
        algorithm="batch",
        mode="batch",
        source=-1,
        graph=graph_fingerprint(graph),
        device=_device_dict(device),
        config=_config_dict(config),
        result=result,
        decisions=list(decisions or []),
        metrics=observer.metrics.snapshot() if observer is not None else {},
        spans=observer.spans.to_dicts() if observer is not None else [],
    )


def build_serve_manifest(
    result: dict,
    *,
    graph: CSRGraph,
    device=None,
    config=None,
    observer=None,
) -> RunManifest:
    """Assemble a manifest for one *serve-loop* session.

    Like a batch, a serving session spans many queries, so the document
    uses ``algorithm="serve"``, ``mode="serve"`` and ``source=-1``.  The
    SLO story — admission / shed / answered counts, latency percentiles,
    breaker state, scheduler mode — rides in the free-form ``result``
    dict (already JSON-shaped), and the ``serve.*`` / ``breaker.*``
    catalog metrics land in the embedded metrics snapshot when the
    session's :class:`~repro.obs.Observer` is passed.
    """
    return RunManifest(
        schema_version=MANIFEST_SCHEMA_VERSION,
        algorithm="serve",
        mode="serve",
        source=-1,
        graph=graph_fingerprint(graph),
        device=_device_dict(device),
        config=_config_dict(config),
        result=result,
        metrics=observer.metrics.snapshot() if observer is not None else {},
        spans=observer.spans.to_dicts() if observer is not None else [],
    )


def build_dynamic_manifest(
    result: dict,
    *,
    graph: CSRGraph,
    device=None,
    config=None,
    observer=None,
    algorithm: str = "dynamic",
    source: int = -1,
) -> RunManifest:
    """Assemble a manifest for a graph-mutation / incremental run.

    The graph fingerprint is the *post-mutation* graph's; the mutation
    story — per-batch events (counts, digests, compaction pricing) and
    any incremental-recompute summary — rides in the free-form
    ``result`` dict under ``mutation_events``, so existing readers
    round-trip dynamic manifests unchanged.
    """
    return RunManifest(
        schema_version=MANIFEST_SCHEMA_VERSION,
        algorithm=algorithm,
        mode="dynamic",
        source=int(source),
        graph=graph_fingerprint(graph),
        device=_device_dict(device),
        config=_config_dict(config),
        result=result,
        metrics=observer.metrics.snapshot() if observer is not None else {},
        spans=observer.spans.to_dicts() if observer is not None else [],
    )


def build_shard_manifest(
    result,
    *,
    graph: CSRGraph,
    device=None,
    config=None,
    observer=None,
) -> RunManifest:
    """Assemble a manifest for one *sharded* multi-device run.

    *result* is a :class:`~repro.engine.shard.ShardedResult`.  Unlike a
    batch or serve session, a sharded run *is* one traversal, so the
    document keeps the real ``algorithm`` and ``source`` and uses
    ``mode="sharded"``.  The sharding story — per-shard reports,
    exchange volumes, the value digest, the recovery ladder verdict —
    rides in the free-form ``result`` dict; per-shard decision traces
    (each tagged ``shard_index``) land in ``decisions``; injected fault
    events (tagged ``device_index``) in ``faults``; and the recovery
    summary in ``reliability``.
    """
    return RunManifest(
        schema_version=MANIFEST_SCHEMA_VERSION,
        algorithm=result.algorithm,
        mode="sharded",
        source=int(result.source),
        graph=graph_fingerprint(graph),
        device=_device_dict(device),
        config=_config_dict(config),
        result=result.result_dict(),
        decisions=list(result.decisions),
        faults=list(result.faults),
        metrics=observer.metrics.snapshot() if observer is not None else {},
        spans=observer.spans.to_dicts() if observer is not None else [],
        reliability=result.reliability_dict(),
    )
