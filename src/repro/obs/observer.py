"""The observer: one object bundling a run's metrics and spans.

An :class:`Observer` is what you install with
:func:`~repro.obs.observing` (or pass to ``adaptive_bfs(...,
observe=)``); instrumented code throughout the stack reports into its
:class:`~repro.obs.MetricsRegistry` and :class:`~repro.obs.SpanProfiler`
while it is current.  After the run it is the raw material for a
:class:`~repro.obs.RunManifest` and for the combined Perfetto trace.

>>> from repro.obs import Observer
>>> obs = Observer()
>>> with obs.span("inspect"):
...     obs.metrics.counter("frame.iterations").inc()
>>> obs.metrics.snapshot()["frame.iterations"]["value"]
1
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanProfiler

__all__ = ["Observer"]


class Observer:
    """Collects one run's observability: metrics + spans.

    The object is cheap to create and carries no global state; install
    it with :func:`~repro.obs.observing` to make it current, or hand it
    to a runner's ``observe=`` keyword, which does the installing for
    the duration of the run.
    """

    def __init__(self):
        self.metrics = MetricsRegistry()
        self.spans = SpanProfiler()

    def span(self, name: str, **attrs):
        """Open a nestable profiling span (see :class:`SpanProfiler`)."""
        return self.spans.span(name, **attrs)

    def to_dict(self) -> dict:
        """Snapshot of everything collected so far (manifest form)."""
        return {
            "metrics": self.metrics.snapshot(),
            "spans": self.spans.to_dicts(),
        }

    def __repr__(self) -> str:
        return (
            f"Observer(metrics={len(self.metrics)}, "
            f"spans={len(self.spans.spans)})"
        )
