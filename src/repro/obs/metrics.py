"""The metrics registry: named counters, gauges and histograms.

Every layer of the stack reports into one :class:`MetricsRegistry` —
the traversal frame counts iterations and edge scans, the launch
validator counts kernel launches, the cost model accumulates simulated
cycles, the allocator tracks memory high-water marks, the guard counts
faults and recovery rungs.  A registry snapshot is what a
:class:`~repro.obs.RunManifest` embeds, so a run's performance story is
machine-readable next to its result.

Metric names are dotted snake_case paths (``frame.iterations``); the
well-known instrument points are declared in :data:`METRICS_CATALOG`
with their type, unit and reporting module, which is also the source of
the catalog table in ``docs/observability.md``.

>>> reg = MetricsRegistry()
>>> reg.counter("frame.iterations").inc()
>>> reg.gauge("memory.current_bytes").set(512)
>>> reg.histogram("frame.workset_size").observe(42)
>>> reg.snapshot()["frame.iterations"]["value"]
1
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricSpec",
    "METRICS_CATALOG",
    "MetricsRegistry",
]

#: dotted snake_case: each segment starts with a letter, lowercase only
_NAME_PATTERN = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)*$")


@dataclass(frozen=True)
class MetricSpec:
    """Declaration of one well-known metric: name, kind, unit, source."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    unit: str
    source: str
    description: str


#: the instrument points wired into the stack, one row per metric
#: (docs/observability.md renders this as the metrics catalog)
METRICS_CATALOG: Tuple[MetricSpec, ...] = (
    MetricSpec("frame.iterations", "counter", "iterations",
               "repro.kernels.frame", "traversal while-loop iterations"),
    MetricSpec("frame.processed_nodes", "counter", "nodes",
               "repro.kernels.frame", "working-set elements processed"),
    MetricSpec("frame.edges_scanned", "counter", "edges",
               "repro.kernels.frame", "edges inspected by computation kernels"),
    MetricSpec("frame.workset_size", "histogram", "nodes",
               "repro.kernels.frame", "per-iteration working-set size"),
    MetricSpec("frame.checkpoint_bytes", "counter", "bytes",
               "repro.kernels.frame", "checkpoint snapshot bytes copied d2h"),
    MetricSpec("runtime.decisions", "counter", "decisions",
               "repro.core.runtime", "decision-maker invocations"),
    MetricSpec("runtime.switches", "counter", "switches",
               "repro.core.runtime", "mid-traversal variant switches"),
    MetricSpec("runtime.memory_forced", "counter", "decisions",
               "repro.core.runtime",
               "decisions overridden by memory pressure or fit checks"),
    MetricSpec("gpusim.kernel_launches", "counter", "launches",
               "repro.gpusim.launch", "validated kernel launch configurations"),
    MetricSpec("gpusim.kernels_priced", "counter", "kernels",
               "repro.gpusim.kernel", "kernel executions priced by the cost model"),
    MetricSpec("gpusim.simulated_cycles", "counter", "cycles",
               "repro.gpusim.kernel", "simulated SM cycles across priced kernels"),
    MetricSpec("memory.current_bytes", "gauge", "bytes",
               "repro.gpusim.allocator", "live device-memory charge"),
    MetricSpec("memory.peak_bytes", "gauge", "bytes",
               "repro.gpusim.allocator", "device-memory high-water mark"),
    MetricSpec("memory.spilled_bytes", "counter", "bytes",
               "repro.gpusim.allocator", "bytes overflowed to host memory"),
    MetricSpec("memory.spill_events", "counter", "events",
               "repro.gpusim.allocator", "allocations that overflowed to host"),
    MetricSpec("memory.oom_events", "counter", "events",
               "repro.gpusim.allocator", "allocations refused (DeviceOOMError)"),
    MetricSpec("guard.attempts", "counter", "attempts",
               "repro.reliability.guard", "guarded execution attempts"),
    MetricSpec("guard.faults", "counter", "faults",
               "repro.reliability.guard", "fault events recorded in the trace"),
    MetricSpec("guard.oom_rung", "gauge", "rung",
               "repro.reliability.guard", "highest OOM-ladder rung reached"),
    MetricSpec("guard.cpu_degradations", "counter", "queries",
               "repro.reliability.guard", "queries answered by the CPU baseline"),
    MetricSpec("guard.query_failures", "counter", "queries",
               "repro.reliability.guard",
               "batch queries isolated after raising a ReproError"),
    MetricSpec("breaker.trips", "counter", "trips",
               "repro.reliability.breaker",
               "circuits tripped open after repeated path failures"),
    MetricSpec("breaker.short_circuits", "counter", "queries",
               "repro.reliability.breaker",
               "requests refused while a circuit was open"),
    MetricSpec("breaker.resets", "counter", "resets",
               "repro.reliability.breaker",
               "circuits closed again after a successful probe"),
    MetricSpec("breaker.open_circuits", "gauge", "circuits",
               "repro.reliability.breaker", "currently open circuits"),
    MetricSpec("batch.queries", "counter", "queries",
               "repro.engine.batch", "queries entering the batched frame"),
    MetricSpec("batch.queries_failed", "counter", "queries",
               "repro.engine.batch",
               "batched queries isolated (validation or non-convergence)"),
    MetricSpec("batch.super_iterations", "counter", "iterations",
               "repro.engine.batch", "batched host-loop passes"),
    MetricSpec("batch.fused_launches", "counter", "launches",
               "repro.engine.batch", "fused multi-query kernel launches priced"),
    MetricSpec("batch.launches_saved", "counter", "launches",
               "repro.engine.batch",
               "kernel launches amortized away by fusing same-variant queries"),
    MetricSpec("batch.readbacks_saved", "counter", "transfers",
               "repro.engine.batch",
               "per-iteration size readbacks amortized by the fused readback"),
    MetricSpec("batch.rows_ejected", "counter", "queries",
               "repro.engine.batch",
               "rows ejected from the fused frame by per-row faults or "
               "admission deadlines"),
    MetricSpec("fusion.fused_launches", "counter", "launches",
               "repro.engine.fusion",
               "computation+generation kernel pairs merged into one launch"),
    MetricSpec("fusion.launches_eliminated", "counter", "launches",
               "repro.engine.fusion",
               "kernel launches eliminated by the spec-fusion pass"),
    MetricSpec("fusion.overhead_saved_s", "counter", "seconds",
               "repro.engine.fusion",
               "simulated launch-overhead seconds the fused plan avoided"),
    MetricSpec("fusion.hoisted_h2d_bytes", "counter", "bytes",
               "repro.engine.fusion",
               "loop-invariant H2D payload bytes hoisted out of the host loop"),
    MetricSpec("fusion.refused_iterations", "counter", "iterations",
               "repro.engine.fusion",
               "iterations a fused plan fell back to separate launches"),
    MetricSpec("serve.cache.hits", "counter", "lookups",
               "repro.serve.session", "session-cache digest hits"),
    MetricSpec("serve.cache.misses", "counter", "lookups",
               "repro.serve.session", "session-cache misses (fresh ingest)"),
    MetricSpec("serve.cache.evictions", "counter", "sessions",
               "repro.serve.session", "sessions evicted past LRU capacity"),
    MetricSpec("serve.admitted", "counter", "queries",
               "repro.serve.admission",
               "queries admitted into the bounded queue"),
    MetricSpec("serve.shed", "counter", "queries",
               "repro.serve.admission",
               "queries shed by backpressure or queue-deadline expiry"),
    MetricSpec("serve.queue_depth", "gauge", "queries",
               "repro.serve.admission",
               "admission-queue depth (high-water mark in 'max')"),
    MetricSpec("serve.answered", "counter", "queries",
               "repro.serve.loop",
               "responses emitted (values and explicit errors)"),
    MetricSpec("serve.deadline_misses", "counter", "queries",
               "repro.serve.loop",
               "queries answered with a deadline-exceeded error"),
    MetricSpec("serve.fallbacks", "counter", "queries",
               "repro.serve.loop",
               "queries answered by the guarded single-source fallback"),
    MetricSpec("serve.latency_wall_s", "histogram", "seconds",
               "repro.serve.loop", "admission-to-answer wall latency"),
    MetricSpec("serve.latency_sim_s", "histogram", "seconds",
               "repro.serve.loop", "admission-to-answer simulated latency"),
    MetricSpec("shard.super_iterations", "counter", "iterations",
               "repro.engine.shard",
               "committed super-iterations of the sharded host loop"),
    MetricSpec("shard.active_shards", "histogram", "shards",
               "repro.engine.shard",
               "shards with a non-empty owned frontier per super-iteration"),
    MetricSpec("shard.exchange_bytes", "counter", "bytes",
               "repro.engine.shard",
               "ghost-update bytes shipped over the interconnect"),
    MetricSpec("shard.exchange_transfers", "counter", "transfers",
               "repro.engine.shard",
               "peer-to-peer ghost-update transfers priced"),
    MetricSpec("shard.stragglers", "counter", "shards",
               "repro.engine.shard",
               "shard rounds flagged slower than straggler_factor x median"),
    MetricSpec("shard.device_losses", "counter", "devices",
               "repro.engine.shard",
               "devices lost to injected or escalated faults"),
    MetricSpec("shard.restores", "counter", "rollbacks",
               "repro.engine.shard",
               "global rollbacks to the last exchange-consistent checkpoint"),
    MetricSpec("shard.migrations", "counter", "shards",
               "repro.engine.shard",
               "shards rehomed from a lost device onto a survivor"),
    MetricSpec("shard.replayed_super_iterations", "counter", "iterations",
               "repro.engine.shard",
               "super-iterations re-executed after a rollback"),
    MetricSpec("policy.evaluations", "counter", "evaluations",
               "repro.core.runtime",
               "learned-policy decision-tree evaluations"),
    MetricSpec("policy.overrides", "counter", "decisions",
               "repro.core.runtime",
               "learned-policy picks overridden by memory pressure"),
    MetricSpec("policy.leaf_depth", "histogram", "levels",
               "repro.core.runtime",
               "tree depth of the leaf each learned decision landed in"),
    MetricSpec("serve.cache.patches", "counter", "sessions",
               "repro.serve.session",
               "cached sessions re-keyed in place after a mutation "
               "(epoch-aware invalidation, no eviction)"),
    MetricSpec("serve.mutation_barriers", "counter", "barriers",
               "repro.serve.loop",
               "super-iteration barriers at which mutation batches applied"),
    MetricSpec("dynamic.mutations_applied", "counter", "batches",
               "repro.graph.dynamic",
               "mutation batches folded into a delta overlay"),
    MetricSpec("dynamic.edges_inserted", "counter", "edges",
               "repro.graph.dynamic", "edges inserted through overlays"),
    MetricSpec("dynamic.edges_deleted", "counter", "edges",
               "repro.graph.dynamic", "edges tombstoned through overlays"),
    MetricSpec("dynamic.nodes_added", "counter", "nodes",
               "repro.graph.dynamic", "nodes added by grow ops"),
    MetricSpec("dynamic.ops_quarantined", "counter", "ops",
               "repro.graph.dynamic",
               "mutation ops dropped by lenient-mode validation"),
    MetricSpec("dynamic.epoch", "gauge", "epoch",
               "repro.graph.dynamic",
               "graph version after the latest mutation batch"),
    MetricSpec("dynamic.compactions", "counter", "compactions",
               "repro.graph.dynamic",
               "delta overlays rebuilt into canonical CSR"),
    MetricSpec("dynamic.compaction_bytes", "counter", "bytes",
               "repro.graph.dynamic",
               "delta bytes shipped to the device by compactions"),
    MetricSpec("dynamic.incremental_runs", "counter", "runs",
               "repro.engine.incremental",
               "warm-started incremental recomputes"),
    MetricSpec("dynamic.affected_nodes", "histogram", "nodes",
               "repro.engine.incremental",
               "vertices invalidated by the seeding pass per run"),
    MetricSpec("dynamic.seed_frontier", "histogram", "nodes",
               "repro.engine.incremental",
               "warm frontier size incremental runs start from"),
)

_CATALOG_BY_NAME: Dict[str, MetricSpec] = {s.name: s for s in METRICS_CATALOG}


class Counter:
    """A monotonically increasing count (events, bytes, iterations)."""

    kind = "counter"

    def __init__(self, name: str, unit: str = ""):
        self.name = name
        self.unit = unit
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease by {amount}")
        self.value += amount

    def to_dict(self) -> dict:
        return {"kind": self.kind, "unit": self.unit, "value": self.value}


class Gauge:
    """A point-in-time level that also remembers its high-water mark."""

    kind = "gauge"

    def __init__(self, name: str, unit: str = ""):
        self.name = name
        self.unit = unit
        self.value = 0
        self.max_value = 0

    def set(self, value) -> None:
        self.value = value
        if value > self.max_value:
            self.max_value = value

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "unit": self.unit,
            "value": self.value,
            "max": self.max_value,
        }


class Histogram:
    """A cheap streaming distribution: count, sum, min, max, mean.

    No buckets are kept — the per-iteration series already lives in the
    traversal's :class:`~repro.kernels.frame.IterationRecord` list, so
    the histogram only answers "how big, typically" questions without
    growing with the run.
    """

    kind = "histogram"

    def __init__(self, name: str, unit: str = ""):
        self.name = name
        self.unit = unit
        self.count = 0
        self.sum = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value) -> None:
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "unit": self.unit,
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Get-or-create access to named metrics, plus snapshotting.

    Catalog metrics get their declared unit automatically; ad-hoc
    metrics are allowed (experiments need scratch counters) as long as
    the name is dotted snake_case and not already registered under a
    different kind.
    """

    def __init__(self):
        self._metrics: Dict[str, object] = {}

    def _get(self, name: str, kind: str, unit: Optional[str]):
        existing = self._metrics.get(name)
        if existing is not None:
            if existing.kind != kind:
                raise ValueError(
                    f"metric {name!r} is a {existing.kind}, not a {kind}"
                )
            return existing
        if not _NAME_PATTERN.match(name):
            raise ValueError(
                f"bad metric name {name!r}: expected dotted snake_case "
                "like 'frame.iterations'"
            )
        spec = _CATALOG_BY_NAME.get(name)
        if spec is not None and spec.kind != kind:
            raise ValueError(
                f"metric {name!r} is cataloged as a {spec.kind}, not a {kind}"
            )
        resolved_unit = unit if unit is not None else (spec.unit if spec else "")
        metric = _KINDS[kind](name, resolved_unit)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, unit: Optional[str] = None) -> Counter:
        return self._get(name, "counter", unit)

    def gauge(self, name: str, unit: Optional[str] = None) -> Gauge:
        return self._get(name, "gauge", unit)

    def histogram(self, name: str, unit: Optional[str] = None) -> Histogram:
        return self._get(name, "histogram", unit)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self):
        return sorted(self._metrics)

    def snapshot(self) -> Dict[str, dict]:
        """Every registered metric as a plain dict, sorted by name —
        the form a :class:`~repro.obs.RunManifest` embeds."""
        return {name: self._metrics[name].to_dict() for name in self.names()}
