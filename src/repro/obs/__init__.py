"""repro.obs — the unified observability layer.

One subsystem answers "why was this run fast or slow?" across the whole
stack:

- :class:`MetricsRegistry` — named counters, gauges and histograms that
  the traversal frame, adaptive runtime, launch validator, cost model,
  allocator and reliability guard all report into
  (:data:`METRICS_CATALOG` lists every wired instrument point);
- :class:`SpanProfiler` — zero-dependency nestable spans on a dual
  wall-clock + simulated-time axis;
- :class:`RunManifest` — one JSON document per traversal: config, graph
  fingerprint, decisions, metrics snapshot, memory peaks, fault events
  (``repro profile`` on the CLI writes one, and benches attach them to
  their reports);
- :func:`export_combined_trace` — kernels, decisions, faults and spans
  merged onto one Perfetto timeline.

Observability is off by default and costs one ``is None`` test per
instrument point when off.  Turn it on by installing an
:class:`Observer` — either directly::

    from repro.obs import Observer, observing

    obs = Observer()
    with observing(obs):
        result = adaptive_bfs(graph, 0)
    print(obs.metrics.snapshot()["frame.iterations"])

or through the runners' ``observe=`` hook, which scopes the install for
you::

    result = adaptive_bfs(graph, 0, observe=obs)

See ``docs/observability.md`` for the metrics catalog, the manifest
schema and a Perfetto walkthrough.
"""

from repro.obs.context import current_observer, observing
from repro.obs.manifest import (
    MANIFEST_SCHEMA_VERSION,
    RunManifest,
    build_batch_manifest,
    build_manifest,
    build_dynamic_manifest,
    build_serve_manifest,
    build_shard_manifest,
    graph_fingerprint,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    METRICS_CATALOG,
    MetricSpec,
    MetricsRegistry,
)
from repro.obs.observer import Observer
from repro.obs.spans import SpanProfiler, SpanRecord
from repro.obs.trace import combined_trace_events, export_combined_trace

__all__ = [
    "Observer",
    "current_observer",
    "observing",
    "MetricsRegistry",
    "MetricSpec",
    "METRICS_CATALOG",
    "Counter",
    "Gauge",
    "Histogram",
    "SpanProfiler",
    "SpanRecord",
    "RunManifest",
    "MANIFEST_SCHEMA_VERSION",
    "build_manifest",
    "build_batch_manifest",
    "build_dynamic_manifest",
    "build_serve_manifest",
    "build_shard_manifest",
    "graph_fingerprint",
    "combined_trace_events",
    "export_combined_trace",
]
