"""Merge kernels, decisions, faults and profiler spans into one
Perfetto timeline.

:mod:`repro.gpusim.traceexport` renders a traversal's kernel and
transfer stream; this module adds the *why* on extra tracks of the same
process: every decision-maker invocation (track ``decisions``), every
fault event and recovery action (track ``faults``), and the span
profiler's regions (track ``spans``).  Load the exported JSON at
https://ui.perfetto.dev and the whole story — which kernel ran, which
decision picked it, which fault interrupted it, which OOM rung answered
— scrubs on one simulated-time axis.

>>> from repro.core import adaptive_bfs
>>> from repro.graph.generators import balanced_tree
>>> from repro.obs.trace import combined_trace_events
>>> result = adaptive_bfs(balanced_tree(2, 6), 0)
>>> events = combined_trace_events(result.traversal.timeline,
...                                trace=result.trace)
>>> any(e.get("tid") == TID_DECISIONS for e in events)
True
"""

from __future__ import annotations

import json
import os
from typing import List, Optional, Union

from repro.gpusim.timeline import Timeline
from repro.gpusim.traceexport import iteration_start_times, timeline_to_trace_events

__all__ = [
    "TID_DECISIONS",
    "TID_FAULTS",
    "TID_SPANS",
    "combined_trace_events",
    "export_combined_trace",
]

_US = 1e6

#: thread rows added next to the exporter's kernels (1) / transfers (2)
TID_DECISIONS = 3
TID_FAULTS = 4
TID_SPANS = 5


def _thread_meta(tid: int, name: str) -> dict:
    return {"name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
            "args": {"name": name}}


def _decision_events(trace, starts: dict, fallback_ts: float) -> List[dict]:
    events = []
    for d in trace.decisions:
        ts = starts.get(d.iteration, fallback_ts)
        events.append(
            {
                "name": f"decide {d.variant}",
                "ph": "i",
                "pid": 1,
                "tid": TID_DECISIONS,
                "ts": ts * _US,
                "s": "t",
                "args": {
                    "iteration": d.iteration,
                    "workset_size": d.workset_size,
                    "avg_out_degree": round(d.avg_out_degree, 3),
                    "region": d.region,
                    "switched": d.switched,
                    "memory_pressure": round(d.memory_pressure, 4),
                    "forced_by_memory": d.forced_by_memory,
                },
            }
        )
    return events


def _fault_events(trace, starts: dict) -> List[dict]:
    events = []
    for f in trace.faults:
        ts = starts.get(f.iteration, 0.0)
        events.append(
            {
                "name": f"{f.kind} -> {f.action}",
                "ph": "i",
                "pid": 1,
                "tid": TID_FAULTS,
                # Global scope: a fault and its recovery rung cut across
                # every track, like iteration boundaries do.
                "s": "g",
                "ts": ts * _US,
                "args": {
                    "attempt": f.attempt,
                    "iteration": f.iteration,
                    "site": f.site,
                    "action": f.action,
                    "detail": f.detail,
                },
            }
        )
    return events


def _span_events(profiler) -> List[dict]:
    events = []
    for span in profiler.spans:
        args = {"depth": span.depth, "wall_us": span.wall_seconds * _US}
        args.update(span.attrs)
        events.append(
            {
                "name": span.name,
                "ph": "X",
                "pid": 1,
                "tid": TID_SPANS,
                "ts": span.sim_start * _US,
                "dur": span.sim_seconds * _US,
                "args": args,
            }
        )
    return events


def combined_trace_events(
    timeline: Timeline,
    *,
    trace=None,
    observer=None,
    process_name: str = "simulated GPU",
) -> List[dict]:
    """Chrome trace-event dicts for kernels + decisions + faults + spans.

    *trace* is a :class:`~repro.core.telemetry.DecisionTrace` (decision
    and fault markers); *observer* a :class:`~repro.obs.Observer` (span
    track).  Either may be ``None``, degrading gracefully to the plain
    kernel/transfer timeline.
    """
    events = timeline_to_trace_events(timeline, process_name=process_name)
    starts = iteration_start_times(timeline)
    end_ts = max(
        (e["ts"] + e.get("dur", 0.0) for e in events if "ts" in e), default=0.0
    ) / _US
    if trace is not None and trace.decisions:
        events.append(_thread_meta(TID_DECISIONS, "decisions"))
        events.extend(_decision_events(trace, starts, end_ts))
    if trace is not None and trace.faults:
        events.append(_thread_meta(TID_FAULTS, "faults"))
        events.extend(_fault_events(trace, starts))
    if observer is not None and observer.spans.spans:
        events.append(_thread_meta(TID_SPANS, "spans"))
        events.extend(_span_events(observer.spans))
    return events


def export_combined_trace(
    timeline: Timeline,
    path: Union[str, os.PathLike],
    *,
    trace=None,
    observer=None,
    process_name: str = "simulated GPU",
) -> str:
    """Write the combined Perfetto trace JSON; returns the path."""
    events = combined_trace_events(
        timeline, trace=trace, observer=observer, process_name=process_name
    )
    with open(path, "w", encoding="utf-8") as fh:
        json.dump({"traceEvents": events, "displayTimeUnit": "ms"}, fh)
    return str(path)
