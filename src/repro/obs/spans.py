"""A zero-dependency span profiler with a wall-clock + simulated-time
dual axis.

A *span* is a named, nestable region of a run — ``inspect``, ``decide``,
``iteration 7``, ``attempt 2``.  Each span records two durations:

- **wall seconds** — real host time spent inside the region
  (``time.perf_counter``), which is what the *reproduction* costs;
- **simulated seconds** — how far the simulated-GPU clock advanced
  while the region was open, which is what the *modeled traversal*
  costs.

The simulated clock does not tick on its own: instrumented code calls
:meth:`SpanProfiler.advance_sim` as it accumulates priced kernel and
transfer seconds (the traversal frame does this per iteration), and any
span open at the time absorbs the advance.  Spans therefore lay
end-to-end on the same simulated axis as the kernel stream, which is
what lets :func:`repro.obs.trace.export_combined_trace` merge them into
one Perfetto timeline.

>>> profiler = SpanProfiler()
>>> with profiler.span("query"):
...     with profiler.span("iteration", iteration=0):
...         profiler.advance_sim(0.25)
>>> [(s.name, s.depth, s.sim_seconds) for s in profiler.spans]
[('iteration', 1, 0.25), ('query', 0, 0.25)]
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List

__all__ = ["SpanRecord", "SpanProfiler"]


@dataclass(frozen=True)
class SpanRecord:
    """One closed span: where it sat on both time axes, and its tags."""

    name: str
    #: nesting depth at open time (0 = top level)
    depth: int
    #: simulated-clock offset at open time, seconds
    sim_start: float
    #: simulated seconds absorbed while open
    sim_seconds: float
    #: wall-clock offset from profiler creation at open time, seconds
    wall_start: float
    #: wall seconds elapsed while open
    wall_seconds: float
    #: free-form tags supplied at open time
    attrs: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "depth": self.depth,
            "sim_start": self.sim_start,
            "sim_seconds": self.sim_seconds,
            "wall_start": self.wall_start,
            "wall_seconds": self.wall_seconds,
            "attrs": dict(self.attrs),
        }


class SpanProfiler:
    """Collects :class:`SpanRecord`\\ s; spans close in LIFO order.

    Closed spans land in :attr:`spans` in *close* order (inner before
    outer), each stamped with its open-time depth so renderers can
    rebuild the nesting.
    """

    def __init__(self):
        self.spans: List[SpanRecord] = []
        self._epoch = time.perf_counter()
        self._sim_cursor = 0.0
        self._open: List[tuple] = []

    @property
    def sim_seconds(self) -> float:
        """Current simulated-clock offset (sum of all advances)."""
        return self._sim_cursor

    def advance_sim(self, seconds: float) -> None:
        """Advance the simulated clock; every open span absorbs it."""
        if seconds < 0:
            raise ValueError(f"cannot advance simulated time by {seconds}")
        self._sim_cursor += seconds

    @contextlib.contextmanager
    def span(self, name: str, **attrs) -> Iterator[None]:
        """Open a nestable span named *name* for the ``with`` block."""
        depth = len(self._open)
        sim_start = self._sim_cursor
        wall_start = time.perf_counter()
        self._open.append((name, depth))
        try:
            yield
        finally:
            self._open.pop()
            self.spans.append(
                SpanRecord(
                    name=name,
                    depth=depth,
                    sim_start=sim_start,
                    sim_seconds=self._sim_cursor - sim_start,
                    wall_start=wall_start - self._epoch,
                    wall_seconds=time.perf_counter() - wall_start,
                    attrs=attrs,
                )
            )

    def add_span(self, name: str, *, sim_seconds: float = 0.0,
                 wall_seconds: float = 0.0, **attrs) -> SpanRecord:
        """Record an already-measured span and advance the simulated
        clock by its *sim_seconds* — the hot-loop API the traversal
        frame uses (one call per iteration, no context-manager cost)."""
        record = SpanRecord(
            name=name,
            depth=len(self._open),
            sim_start=self._sim_cursor,
            sim_seconds=sim_seconds,
            wall_start=time.perf_counter() - self._epoch - wall_seconds,
            wall_seconds=wall_seconds,
            attrs=attrs,
        )
        self.advance_sim(sim_seconds)
        self.spans.append(record)
        return record

    def to_dicts(self) -> List[dict]:
        """Every closed span as a plain dict, in close order."""
        return [s.to_dict() for s in self.spans]
