"""The current-observer context: how instrumented code finds the observer.

Observability must cost nothing when nobody is watching.  Instead of
threading an observer object through every call signature in the stack,
instrumented sites (the traversal frame, the launch validator, the
allocator, the guard) ask this module for the *currently installed*
observer and do nothing when there is none — a single ``is None`` test,
which is what keeps the disabled-observability overhead at ~0 %
(``benchmarks/bench_observability_overhead.py`` guards this).

The module deliberately imports nothing from the rest of :mod:`repro`
so every layer — :mod:`repro.gpusim` included — can depend on it
without cycles.

>>> from repro.obs import Observer, current_observer, observing
>>> current_observer() is None
True
>>> with observing(Observer()) as obs:
...     current_observer() is obs
True
>>> current_observer() is None
True
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Optional

__all__ = ["current_observer", "observing"]

#: the process-wide installed observer (None = observability off)
_observer = None


def current_observer():
    """The installed :class:`~repro.obs.Observer`, or ``None`` when
    observability is off (the default)."""
    return _observer


@contextlib.contextmanager
def observing(observer) -> Iterator[Optional[object]]:
    """Install *observer* for the scope of the ``with`` block.

    Nested installs restore the outer observer on exit, so a guarded
    retry loop can observe each attempt under the caller's observer.
    ``observing(None)`` is a no-op scope (convenient for ``observe=``
    pass-through parameters that default to ``None``).
    """
    global _observer
    previous = _observer
    if observer is not None:
        _observer = observer
    try:
        yield observer
    finally:
        _observer = previous
