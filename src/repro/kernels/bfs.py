"""User-facing runners for the 8 static BFS variants."""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Union

from repro.graph.csr import CSRGraph
from repro.gpusim.device import DeviceSpec, TESLA_C2070
from repro.gpusim.kernel import CostParams
from repro.kernels.frame import StaticPolicy, TraversalResult, traverse_bfs
from repro.kernels.variants import Variant, all_variants
from repro.obs.context import observing

__all__ = ["run_bfs", "run_bfs_all_variants"]


def run_bfs(
    graph: CSRGraph,
    source: int,
    variant: Union[Variant, str] = "U_T_BM",
    *,
    device: DeviceSpec = TESLA_C2070,
    cost_params: Optional[CostParams] = None,
    max_iterations: Optional[int] = None,
    queue_gen: str = "atomic",
    observe=None,
    fusion=None,
) -> TraversalResult:
    """Run one static BFS variant on the simulated device.

    *variant* accepts a :class:`~repro.kernels.variants.Variant` or a
    paper-style code like ``"U_B_QU"``.  *observe* installs an
    :class:`~repro.obs.Observer` for the run, collecting per-iteration
    metrics and spans (see :mod:`repro.obs`).
    """
    if isinstance(variant, str):
        variant = Variant.parse(variant)
    with observing(observe):
        return traverse_bfs(
            graph,
            source,
            StaticPolicy(variant),
            device=device,
            cost_params=cost_params,
            max_iterations=max_iterations,
            queue_gen=queue_gen,
            fusion=fusion,
        )


def run_bfs_all_variants(
    graph: CSRGraph,
    source: int,
    *,
    variants: Optional[Sequence[Union[Variant, str]]] = None,
    device: DeviceSpec = TESLA_C2070,
    cost_params: Optional[CostParams] = None,
) -> Dict[str, TraversalResult]:
    """Run BFS under every requested variant (default: all 8); results
    are keyed by variant code in table order (the columns of Table 2)."""
    chosen = variants if variants is not None else all_variants()
    out: Dict[str, TraversalResult] = {}
    for v in chosen:
        v = Variant.parse(v) if isinstance(v, str) else v
        out[v.code] = run_bfs(
            graph, source, v, device=device, cost_params=cost_params
        )
    return out
