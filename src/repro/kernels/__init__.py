"""GPU implementations of BFS and SSSP across the exploration space.

The package realizes the paper's Section IV/V: 8 static variants per
algorithm (ordered/unordered x thread/block mapping x bitmap/queue
working set), built from:

- :mod:`repro.kernels.variants` — the space and naming (``U_B_QU`` ...);
- :mod:`repro.kernels.computation` — the ``CUDA_computation`` kernels
  (functional NumPy execution + structural tallies);
- :mod:`repro.kernels.workset` — working-set representations and the
  ``CUDA_workset_gen`` kernel (atomic and scan-based queue generation);
- :mod:`repro.kernels.findmin` — the ordered-SSSP reduction;
- :mod:`repro.kernels.frame` — the host loop of Figure 8 with pluggable
  variant policies;
- :mod:`repro.kernels.bfs` / :mod:`repro.kernels.sssp` — static runners.
"""

from repro.kernels.bfs import run_bfs, run_bfs_all_variants
from repro.kernels.cc import run_cc, traverse_cc
from repro.kernels.kcore import run_kcore, traverse_kcore
from repro.kernels.pagerank import run_pagerank, traverse_pagerank
from repro.kernels.frame import (
    IterationRecord,
    StaticPolicy,
    TraversalResult,
    VariantPolicy,
    traverse_bfs,
    traverse_sssp,
)
from repro.kernels.sssp import run_sssp, run_sssp_all_variants
from repro.kernels.variants import (
    Mapping,
    Ordering,
    Variant,
    WorksetRepr,
    all_variants,
    extended_variants,
    unordered_variants,
)

__all__ = [
    "run_bfs",
    "run_bfs_all_variants",
    "run_sssp",
    "run_sssp_all_variants",
    "run_cc",
    "traverse_cc",
    "run_pagerank",
    "traverse_pagerank",
    "run_kcore",
    "traverse_kcore",
    "traverse_bfs",
    "traverse_sssp",
    "TraversalResult",
    "IterationRecord",
    "VariantPolicy",
    "StaticPolicy",
    "Variant",
    "Ordering",
    "Mapping",
    "WorksetRepr",
    "all_variants",
    "unordered_variants",
    "extended_variants",
]
