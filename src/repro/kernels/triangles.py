"""Triangle counting on the GPU frame — the fusion pass's showcase workload.

Exact triangle counting over the degree-rank orientation
(:func:`repro.graph.transforms.rank_oriented_adjacency`): every
triangle survives as one wedge ``u -> v, u -> w`` closed by an oriented
edge ``v -> w`` and is attributed to its lowest-ranked corner, so
``result.values[u]`` is the number of triangles pivoted at *u* — exact
integers, identical under every variant and bit-identical to the CPU
reference (``cpu_exact``).

The step is the classic two-phase shape the spec-fusion pass
(:mod:`repro.engine.fusion`) exists for: a heavy intersection kernel
over the scheduled chunk, then a trivial generation kernel that
materializes the next chunk of the precomputed schedule.  Because the
schedule is loop-invariant, the per-iteration chunk descriptor the host
ships before each launch (:attr:`~repro.engine.spec.AlgorithmSpec.\
iteration_h2d_bytes`) is hoistable, and the generation kernel is always
a single launch — a fused plan merges every iteration, which is what
``benchmarks/bench_fusion_savings.py`` measures.

The graph is symmetrized on the host first (triangles live in the
undirected graph), and the oriented CSR rides the initial transfer as
an extra H2D payload, like DOBFS's reverse CSR.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.engine.driver import FrameContext, run_frame
from repro.engine.registry import AlgorithmInfo, register_algorithm
from repro.engine.spec import AlgorithmSpec, FrameState, StepOutcome
from repro.engine.types import StaticPolicy, TraversalResult, VariantPolicy
from repro.errors import KernelError
from repro.graph.csr import CSRGraph
from repro.graph.properties import is_symmetric
from repro.graph.transforms import rank_oriented_adjacency, symmetrize
from repro.gpusim.device import DeviceSpec, TESLA_C2070
from repro.gpusim.kernel import CostParams
from repro.gpusim.transfer import record_transfer
from repro.kernels import costs
from repro.kernels.mapping import ComputationShape, computation_tally
from repro.kernels.variants import Variant

__all__ = ["TrianglesSpec", "traverse_triangles", "run_triangles"]

#: default nodes per scheduled chunk (one frame iteration)
DEFAULT_CHUNK = 256


class TrianglesSpec(AlgorithmSpec):
    """Chunked rank-oriented triangle counting as an engine spec."""

    name = "triangles"
    source_based = False
    checkpointable = False
    default_variant = "U_T_QU"
    #: the per-iteration chunk descriptor (bounds + schedule cursor +
    #: launch params) the host uploads before each computation launch;
    #: loop-invariant, so a fused plan hoists it
    iteration_h2d_bytes = 64

    def __init__(self, chunk: int = DEFAULT_CHUNK, assume_symmetric: bool = False):
        if int(chunk) < 1:
            raise KernelError(f"chunk must be >= 1, got {chunk}")
        self.chunk = int(chunk)
        self.assume_symmetric = bool(assume_symmetric)

    def prepare(self, graph: CSRGraph):
        if not self.assume_symmetric and not is_symmetric(graph):
            work_graph = symmetrize(graph)
            return work_graph, work_graph.num_edges * 12e-9
        return graph, 0.0

    def extra_transfers(self, ctx: FrameContext) -> None:
        # The oriented CSR rides the initial transfer; keep it for
        # init_state so the orientation is built exactly once.
        indptr, indices = rank_oriented_adjacency(ctx.graph)
        self._oriented = (indptr, indices)
        ctx.timeline.add_transfer(
            record_transfer("h2d", indptr.nbytes + indices.nbytes, ctx.device)
        )

    def init_state(self, ctx: FrameContext) -> FrameState:
        n = ctx.graph.num_nodes
        indptr, indices = self._oriented
        first = np.arange(min(self.chunk, n), dtype=np.int64)
        return FrameState(
            np.zeros(n, dtype=np.int64),
            first,
            tri_indptr=indptr,
            tri_indices=indices,
            cursor=int(first.size),
        )

    def default_cap(self, graph: CSRGraph) -> int:
        return -(-graph.num_nodes // self.chunk) + 2

    def cap_message(self, cap: int) -> str:
        return f"triangle counting exceeded {cap} iterations (schedule bug)"

    def compute(self, ctx, state, variant, tpb) -> StepOutcome:
        indptr, indices = state.tri_indptr, state.tri_indices
        chunk_nodes = state.frontier
        n = ctx.graph.num_nodes
        work_units = np.zeros(chunk_nodes.size, dtype=np.int64)
        triangles = 0
        comparisons = 0
        for i, u in enumerate(chunk_nodes):
            nbrs = indices[indptr[u] : indptr[u + 1]]
            work = int(nbrs.size)
            found = 0
            for v in nbrs:
                closing = indices[indptr[v] : indptr[v + 1]]
                # Merge-path intersection: scan both sorted lists once.
                work += int(nbrs.size + closing.size)
                if closing.size:
                    found += int(
                        np.intersect1d(nbrs, closing, assume_unique=True).size
                    )
            state.values[u] = found
            triangles += found
            work_units[i] = work
            comparisons += work
        next_chunk = np.arange(
            state.cursor, min(state.cursor + self.chunk, n), dtype=np.int64
        )
        state.cursor += int(next_chunk.size)
        shape = ComputationShape(
            name="triangles_comp",
            num_nodes=n,
            active_ids=chunk_nodes,
            degrees=work_units,
            edge_cost=costs.C_CHECK,
            improved=triangles,
            updated_count=int(next_chunk.size),
        )
        ctx.price(
            computation_tally(shape, variant.mapping, variant.workset, tpb, ctx.device)
        )
        return StepOutcome(
            next_frontier=next_chunk,
            updated_count=int(next_chunk.size),
            processed=int(chunk_nodes.size),
            edges_scanned=comparisons,
            improved_relaxations=triangles,
        )


def traverse_triangles(
    graph: CSRGraph,
    policy: VariantPolicy,
    *,
    chunk: int = DEFAULT_CHUNK,
    assume_symmetric: bool = False,
    device: DeviceSpec = TESLA_C2070,
    cost_params: Optional[CostParams] = None,
    max_iterations: Optional[int] = None,
    queue_gen: str = "atomic",
    watchdog=None,
    checkpoint_keeper=None,
    resume_from=None,
    fault_hook=None,
    memory=None,
    fusion=None,
) -> TraversalResult:
    """Count triangles under *policy*; ``result.values`` are the per-node
    pivot counts (``values.sum()`` is the triangle total).  *chunk* sets
    the scheduled nodes per iteration; the reliability keywords raise
    (the spec is not checkpointable), *memory* and *fusion* are engine
    pass-throughs as in :func:`~repro.kernels.frame.traverse_bfs`."""
    return run_frame(
        graph,
        -1,
        policy,
        TrianglesSpec(chunk=chunk, assume_symmetric=assume_symmetric),
        device=device,
        cost_params=cost_params,
        max_iterations=max_iterations,
        queue_gen=queue_gen,
        watchdog=watchdog,
        checkpoint_keeper=checkpoint_keeper,
        resume_from=resume_from,
        fault_hook=fault_hook,
        memory=memory,
        fusion=fusion,
    )


def run_triangles(
    graph: CSRGraph,
    variant: Union[Variant, str] = "U_T_QU",
    *,
    chunk: int = DEFAULT_CHUNK,
    assume_symmetric: bool = False,
    device: DeviceSpec = TESLA_C2070,
    cost_params: Optional[CostParams] = None,
    max_iterations: Optional[int] = None,
    queue_gen: str = "atomic",
    fusion=None,
) -> TraversalResult:
    """One static variant of triangle counting (see
    :func:`traverse_triangles`)."""
    if isinstance(variant, str):
        variant = Variant.parse(variant)
    return traverse_triangles(
        graph,
        StaticPolicy(variant),
        chunk=chunk,
        assume_symmetric=assume_symmetric,
        device=device,
        cost_params=cost_params,
        max_iterations=max_iterations,
        queue_gen=queue_gen,
        fusion=fusion,
    )


def _cpu_triangles_reference(graph, source, **params):
    from repro.cpu import cpu_triangles

    result = cpu_triangles(graph)
    return result.counts, result


register_algorithm(
    AlgorithmInfo(
        name="triangles",
        summary="exact rank-oriented triangle counting (chunked schedule)",
        make_spec=TrianglesSpec,
        traverse=lambda graph, source, policy, **kw: traverse_triangles(
            graph, policy, **kw
        ),
        cpu_run=_cpu_triangles_reference,
        source_based=False,
        checkpointable=False,
        param_names=("chunk", "assume_symmetric"),
    )
)
