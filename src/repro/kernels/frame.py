"""The host-side traversal framework (the paper's Figure 8).

::

    1: Create data structures on CPU and GPU
    2: Initialize working set on CPU
    3: Transfer working set and support data from CPU to GPU
    4: while working set is not empty do
    5:   Invoke CUDA_computation kernel
    6:   Invoke CUDA_workingset_generation kernel
    7: end while

The loop is generic over a *variant policy* — a callable choosing the
implementation for each iteration — so the same frame drives the static
variants (constant policy) and the adaptive runtime (decision-maker
policy, :mod:`repro.core.runtime`).  Every iteration's structure
(working-set size, processed nodes, kernel costs, variant used) is
recorded; Figure 2's working-set curves and the telemetry the paper's
inspector monitors both come from these records.

Each iteration also pays a 4-byte device-to-host readback of the
working-set size: the ``while`` condition on line 4 is host code, and
this synchronization is a real, per-iteration PCIe latency that
dominates traversals with many near-empty iterations (road networks).

Reliability seams (used by :mod:`repro.reliability`): the unordered
frames accept a *watchdog* (iteration/deadline budgets, raising
:class:`~repro.errors.NonConvergenceError`), a *checkpoint keeper*
(iteration-granular state snapshots, priced as device-to-host copies),
a *resume_from* checkpoint (continue a retried query from its last good
iteration instead of restarting), and a *fault_hook* (per-iteration
fault-injection callback).  All default to ``None`` and cost nothing
when absent.  A resumed traversal's :class:`TraversalResult` carries
the full iteration history (prior records come from the checkpoint) but
its timeline covers only the work executed by this attempt — the
guarded runner accounts for time across attempts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, TYPE_CHECKING

import numpy as np

from repro.errors import KernelError, NonConvergenceError
from repro.graph.csr import CSRGraph
from repro.gpusim.device import DeviceSpec, TESLA_C2070
from repro.gpusim.kernel import CostModel, CostParams, KernelTally
from repro.gpusim.memory import traversal_state_bytes
from repro.gpusim.timeline import Timeline
from repro.gpusim.transfer import record_transfer
from repro.kernels.computation import (
    INF,
    OrderedSsspState,
    UNSET_LEVEL,
    bfs_step,
    sssp_ordered_step,
    sssp_step,
)
from repro.kernels.findmin import findmin, findmin_tallies
from repro.kernels.variants import Ordering, Variant, WorksetRepr
from repro.kernels.workset import Workset, workset_gen_tallies
from repro.obs.context import current_observer

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpusim.allocator import MemoryBudget
    from repro.reliability.checkpoint import CheckpointKeeper, TraversalCheckpoint
    from repro.reliability.watchdog import Watchdog

__all__ = [
    "IterationRecord",
    "TraversalResult",
    "VariantPolicy",
    "StaticPolicy",
    "traverse_bfs",
    "traverse_sssp",
]

#: host-side bookkeeping per traversal node (allocation + init), seconds
HOST_INIT_PER_NODE_S = 1.0e-9


@dataclass(frozen=True)
class IterationRecord:
    """Structure and cost of one ``while``-loop iteration."""

    iteration: int
    variant: str
    workset_size: int
    processed: int
    updated: int
    edges_scanned: int
    improved_relaxations: int
    seconds: float


@dataclass
class TraversalResult:
    """Everything a traversal produced: answers, structure, simulated time."""

    algorithm: str
    source: int
    #: BFS levels (int64, -1 unreached) or SSSP distances (float64, inf)
    values: np.ndarray
    iterations: List[IterationRecord]
    timeline: Timeline
    device: DeviceSpec
    policy_name: str

    @property
    def num_iterations(self) -> int:
        return len(self.iterations)

    @property
    def gpu_seconds(self) -> float:
        return self.timeline.gpu_seconds

    @property
    def total_seconds(self) -> float:
        return self.timeline.total_seconds

    @property
    def reached(self) -> int:
        if self.values.dtype.kind == "f":
            return int(np.isfinite(self.values).sum())
        return int((self.values >= 0).sum())

    @property
    def total_edges_scanned(self) -> int:
        return sum(r.edges_scanned for r in self.iterations)

    def workset_curve(self) -> np.ndarray:
        """Working-set size per iteration (Figure 2's series)."""
        return np.array([r.workset_size for r in self.iterations], dtype=np.int64)

    def variants_used(self) -> Dict[str, int]:
        """Iteration counts per variant code (adaptive-runtime telemetry)."""
        out: Dict[str, int] = {}
        for r in self.iterations:
            out[r.variant] = out.get(r.variant, 0) + 1
        return out

    def nodes_per_second(self) -> float:
        """Processing speed in traversed nodes per simulated second
        (Figure 12's metric)."""
        if self.total_seconds <= 0:
            return 0.0
        return self.reached / self.total_seconds


class VariantPolicy:
    """Chooses the implementation variant for each traversal iteration.

    The frame calls :meth:`choose` for iteration ``i + 1`` right after
    iteration ``i``'s computation kernel, when the next working-set size
    is known but before the generation kernel materializes it — the
    paper's decision point, which is what makes representation switches
    free (the generation kernel simply emits the other representation
    from the shared update vector).
    """

    name = "policy"

    def choose(self, iteration: int, workset_size: int) -> Variant:  # pragma: no cover
        raise NotImplementedError

    def is_ordered(self) -> bool:
        """Whether this policy selects ordered variants (decides which
        SSSP frame runs).  Adaptive policies are unordered-only
        (Section VI.A), so the default is False."""
        return False

    def notify(self, record: IterationRecord) -> None:
        """Called after each iteration (for monitoring policies)."""

    def overhead_tallies(
        self, iteration: int, workset_size: int, num_nodes: int, device: DeviceSpec
    ) -> List["KernelTally"]:
        """Extra monitoring kernels this policy ran this iteration (the
        graph inspector's working-set profiling); priced into the
        traversal's timeline by the frame."""
        return []


class StaticPolicy(VariantPolicy):
    """Always the same variant — the paper's static implementations."""

    def __init__(self, variant: Variant):
        self.variant = variant
        self.name = variant.code

    def choose(self, iteration: int, workset_size: int) -> Variant:
        return self.variant

    def is_ordered(self) -> bool:
        return self.variant.ordering is Ordering.ORDERED


# ----------------------------------------------------------------------
# Shared frame pieces
# ----------------------------------------------------------------------

def _observe_iteration(observer, record: IterationRecord) -> None:
    """Report one finished iteration into the current observer.

    Called only when an observer is installed (:mod:`repro.obs`); the
    span advance keeps the profiler's simulated clock aligned with the
    kernel stream so spans and kernels merge onto one Perfetto axis.
    """
    metrics = observer.metrics
    metrics.counter("frame.iterations").inc()
    metrics.counter("frame.processed_nodes").inc(record.processed)
    metrics.counter("frame.edges_scanned").inc(record.edges_scanned)
    metrics.histogram("frame.workset_size").observe(record.workset_size)
    observer.spans.add_span(
        "iteration",
        sim_seconds=record.seconds,
        iteration=record.iteration,
        variant=record.variant,
        workset_size=record.workset_size,
    )


def _initial_transfers(
    graph: CSRGraph,
    timeline: Timeline,
    device: DeviceSpec,
    memory: Optional["MemoryBudget"] = None,
) -> None:
    n = graph.num_nodes
    if memory is not None:
        # Budgeted path: the CSR arrays and traversal state are charged
        # as resident (never-spillable) allocations; the per-iteration
        # working set is charged separately by the loop.  An overflow
        # raises DeviceOOMError — survivable by the guard's OOM ladder,
        # unlike the hard KernelError below.
        memory.allocate(
            graph.device_bytes(), "graph", label=f"CSR arrays of {graph.name!r}"
        )
        memory.allocate(
            traversal_state_bytes(n), "state", label="traversal state arrays"
        )
        # Same initial h2d payload as the legacy path below (state init
        # includes zeroing the workset capacity), so a budget is
        # time-neutral until it actually intervenes.
        total_bytes = graph.device_bytes() + 4 * n + n + 4 * n + n // 8
        timeline.add_transfer(record_transfer("h2d", total_bytes, device))
        timeline.add_host_seconds(n * HOST_INIT_PER_NODE_S)
        return
    # Legacy (unbudgeted) capacity check: graph arrays + state array
    # (4 B/node) + update flags (1 B/node) + queue capacity (4 B/node)
    # + bitmap (1 bit/node).
    state_bytes = 4 * n + n + 4 * n + n // 8
    total_bytes = graph.device_bytes() + state_bytes
    if total_bytes > device.global_mem_bytes:
        raise KernelError(
            f"graph {graph.name!r} needs {total_bytes / 2**30:.2f} GiB of device "
            f"memory but {device.name} has {device.global_mem_bytes / 2**30:.2f} GiB "
            "(the paper's system keeps the whole CSR resident)"
        )
    timeline.add_transfer(record_transfer("h2d", total_bytes, device))
    timeline.add_host_seconds(n * HOST_INIT_PER_NODE_S)


def _final_transfers(graph: CSRGraph, timeline: Timeline, device: DeviceSpec) -> None:
    timeline.add_transfer(record_transfer("d2h", 4 * graph.num_nodes, device))


def _readback(timeline: Timeline, device: DeviceSpec) -> None:
    """The per-iteration working-set-size readback (loop condition)."""
    timeline.add_transfer(record_transfer("d2h", 4, device))


def _tpb_for(variant: Variant, graph: CSRGraph, device: DeviceSpec) -> int:
    return variant.threads_per_block(graph.avg_out_degree, device)


def _restore_state(resume_from: "TraversalCheckpoint", algorithm: str, source: int):
    """Private copies of a checkpoint's state, ready to resume from."""
    if not resume_from.matches(algorithm, source):
        raise KernelError(
            f"checkpoint holds a {resume_from.algorithm!r} query from source "
            f"{resume_from.source}; cannot resume {algorithm!r} from {source}"
        )
    return (
        resume_from.values.copy(),
        resume_from.frontier.copy(),
        list(resume_from.records),
        resume_from.next_iteration,
    )


def _offer_checkpoint(
    keeper: Optional["CheckpointKeeper"],
    timeline: Timeline,
    device: DeviceSpec,
    memory: Optional["MemoryBudget"] = None,
    **state,
) -> None:
    """Let the keeper snapshot post-iteration state; price the copy."""
    if keeper is None:
        return
    nbytes = keeper.offer(**state)
    if not nbytes:
        return
    observer = current_observer()
    if observer is not None:
        observer.metrics.counter("frame.checkpoint_bytes").inc(nbytes)
    if memory is not None:
        # The staging buffer lives on the device only for the copy's
        # duration; under spill mode the part that does not fit stages
        # from host memory directly and costs nothing extra (the d2h
        # copy below moves every byte off-device regardless).
        with memory.transient(nbytes, "checkpoint", label="checkpoint staging"):
            timeline.add_transfer(record_transfer("d2h", nbytes, device))
        return
    timeline.add_transfer(record_transfer("d2h", nbytes, device))


def _charge_workset(
    memory: Optional["MemoryBudget"],
    variant: Variant,
    workset_size: int,
    graph: CSRGraph,
    timeline: Timeline,
    device: DeviceSpec,
    *,
    entry_bytes: int = 4,
) -> None:
    """Charge this iteration's materialized working set against the
    budget.  In spill mode the overflow lives in host memory: the frame
    prices it as one write-out plus one read-back over PCIe (the
    generation kernel emits it, the computation kernel consumes it)."""
    if memory is None:
        return
    spilled = memory.charge_workset(
        variant.workset, workset_size, graph.num_nodes, entry_bytes=entry_bytes
    )
    if spilled:
        timeline.add_transfer(record_transfer("d2h", spilled, device))
        timeline.add_transfer(record_transfer("h2d", spilled, device))


# ----------------------------------------------------------------------
# BFS / unordered SSSP frame
# ----------------------------------------------------------------------

def traverse_bfs(
    graph: CSRGraph,
    source: int,
    policy: VariantPolicy,
    *,
    device: DeviceSpec = TESLA_C2070,
    cost_params: Optional[CostParams] = None,
    max_iterations: Optional[int] = None,
    queue_gen: str = "atomic",
    watchdog: Optional["Watchdog"] = None,
    checkpoint_keeper: Optional["CheckpointKeeper"] = None,
    resume_from: Optional["TraversalCheckpoint"] = None,
    fault_hook=None,
    memory: Optional["MemoryBudget"] = None,
) -> TraversalResult:
    """Run BFS from *source* under *policy*; ordered and unordered BFS
    share this level-synchronous frame (their step rule differs).

    *queue_gen* selects the queue-generation scheme: ``"atomic"``
    (the paper's baseline), ``"scan"`` (Merrill-style prefix scan) or
    ``"hierarchical"`` (Luo-style shared-memory queues) — Section
    V.C's orthogonal optimizations.

    *memory* attaches a :class:`~repro.gpusim.MemoryBudget`: the CSR
    arrays, traversal state, per-iteration working sets and checkpoint
    staging copies are charged against it, raising
    :class:`~repro.errors.DeviceOOMError` on overflow (or pricing the
    spilled bytes as PCIe traffic in spill mode)."""
    graph._check_node(source)
    model = CostModel(device, cost_params)
    timeline = Timeline()
    _initial_transfers(graph, timeline, device, memory)
    observer = current_observer()
    if observer is not None:
        # Keep the profiler's simulated clock aligned with the Chrome
        # trace layout, which lays the opening h2d copies before kernels.
        observer.spans.advance_sim(timeline.transfer_seconds)

    if resume_from is not None:
        levels, frontier, records, iteration = _restore_state(
            resume_from, "bfs", source
        )
    else:
        levels = np.full(graph.num_nodes, UNSET_LEVEL, dtype=np.int64)
        levels[source] = 0
        frontier = np.array([source], dtype=np.int64)
        records = []
        iteration = 0
    cap = max_iterations if max_iterations is not None else 4 * graph.num_nodes + 64
    elapsed_s = 0.0
    variant = (
        policy.choose(iteration, int(frontier.size)) if frontier.size else None
    )

    while frontier.size:
        if iteration >= cap:
            raise NonConvergenceError(
                f"BFS exceeded its iteration budget of {cap} iterations "
                "(non-convergence)"
            )
        if watchdog is not None:
            watchdog.check(iteration, elapsed_s)
        if fault_hook is not None:
            fault_hook.on_iteration(iteration, levels, frontier)
        tpb = _tpb_for(variant, graph, device)
        workset = Workset.from_update_ids(frontier, variant.workset)
        _charge_workset(memory, variant, workset.size, graph, timeline, device)

        step = bfs_step(graph, workset, levels, variant, tpb, device)
        comp_cost = model.price(step.tally)
        timeline.add_kernel(iteration, step.tally, comp_cost, variant.code)
        seconds = comp_cost.seconds

        # Decide the next iteration's variant now: the generation kernel
        # below materializes whichever representation it will read.
        next_size = int(step.updated.size)
        next_variant = policy.choose(iteration + 1, next_size) if next_size else variant
        for tally in policy.overhead_tallies(
            iteration, workset.size, graph.num_nodes, device
        ):
            cost = model.price(tally)
            timeline.add_kernel(iteration, tally, cost, variant.code)
            seconds += cost.seconds

        for tally in workset_gen_tallies(
            graph.num_nodes, next_size, next_variant.workset, device,
            scheme=queue_gen,
        ):
            cost = model.price(tally)
            timeline.add_kernel(iteration, tally, cost, variant.code)
            seconds += cost.seconds
        _readback(timeline, device)

        record = IterationRecord(
            iteration=iteration,
            variant=variant.code,
            workset_size=workset.size,
            processed=step.processed,
            updated=next_size,
            edges_scanned=step.edges_scanned,
            improved_relaxations=step.improved_relaxations,
            seconds=seconds,
        )
        records.append(record)
        policy.notify(record)
        if observer is not None:
            _observe_iteration(observer, record)
        elapsed_s += seconds
        _offer_checkpoint(
            checkpoint_keeper,
            timeline,
            device,
            memory,
            algorithm="bfs",
            source=source,
            iteration=iteration,
            values=levels,
            frontier=step.updated,
            variant_code=next_variant.code,
            records=records,
            seconds=seconds,
        )
        frontier = step.updated
        variant = next_variant
        iteration += 1

    if memory is not None:
        memory.release_workset()
    _final_transfers(graph, timeline, device)
    algo = "bfs_ordered" if _is_ordered(policy) else "bfs"
    return TraversalResult(
        algorithm=algo,
        source=source,
        values=levels,
        iterations=records,
        timeline=timeline,
        device=device,
        policy_name=policy.name,
    )


def traverse_sssp(
    graph: CSRGraph,
    source: int,
    policy: VariantPolicy,
    *,
    device: DeviceSpec = TESLA_C2070,
    cost_params: Optional[CostParams] = None,
    max_iterations: Optional[int] = None,
    queue_gen: str = "atomic",
    watchdog: Optional["Watchdog"] = None,
    checkpoint_keeper: Optional["CheckpointKeeper"] = None,
    resume_from: Optional["TraversalCheckpoint"] = None,
    fault_hook=None,
    memory: Optional["MemoryBudget"] = None,
) -> TraversalResult:
    """Run SSSP from *source* under *policy*.

    Dispatches to the unordered (Bellman-Ford) or ordered (GPU Dijkstra
    with findmin) frame based on the policy's variants.  Checkpointing,
    resume and fault hooks are supported by the unordered frame only
    (the adaptive and guarded runtimes are unordered, Section VI.A).
    *memory* attaches a device-memory budget as in :func:`traverse_bfs`.
    """
    graph._check_node(source)
    if graph.weights is None:
        raise KernelError(
            f"SSSP requires edge weights; graph {graph.name!r} has none"
        )
    if _is_ordered(policy):
        if checkpoint_keeper is not None or resume_from is not None or fault_hook is not None:
            raise KernelError(
                "checkpoint/resume and fault hooks are only supported by the "
                "unordered SSSP frame"
            )
        return _traverse_sssp_ordered(
            graph, source, policy, device, cost_params, max_iterations,
            queue_gen, watchdog, memory,
        )
    return _traverse_sssp_unordered(
        graph, source, policy, device, cost_params, max_iterations,
        queue_gen, watchdog, checkpoint_keeper, resume_from, fault_hook,
        memory,
    )


def _is_ordered(policy: VariantPolicy) -> bool:
    return policy.is_ordered()


def _traverse_sssp_unordered(
    graph, source, policy, device, cost_params, max_iterations,
    queue_gen="atomic", watchdog=None, checkpoint_keeper=None,
    resume_from=None, fault_hook=None, memory=None,
) -> TraversalResult:
    model = CostModel(device, cost_params)
    timeline = Timeline()
    _initial_transfers(graph, timeline, device, memory)
    observer = current_observer()
    if observer is not None:
        observer.spans.advance_sim(timeline.transfer_seconds)

    if resume_from is not None:
        dist, frontier, records, iteration = _restore_state(
            resume_from, "sssp", source
        )
    else:
        dist = np.full(graph.num_nodes, INF, dtype=np.float64)
        dist[source] = 0.0
        frontier = np.array([source], dtype=np.int64)
        records = []
        iteration = 0
    cap = max_iterations if max_iterations is not None else 16 * graph.num_nodes + 64
    elapsed_s = 0.0
    variant = (
        policy.choose(iteration, int(frontier.size)) if frontier.size else None
    )

    while frontier.size:
        if iteration >= cap:
            raise NonConvergenceError(
                f"SSSP exceeded its iteration budget of {cap} iterations "
                "(non-convergence)"
            )
        if watchdog is not None:
            watchdog.check(iteration, elapsed_s)
        if fault_hook is not None:
            fault_hook.on_iteration(iteration, dist, frontier)
        tpb = _tpb_for(variant, graph, device)
        workset = Workset.from_update_ids(frontier, variant.workset)
        _charge_workset(memory, variant, workset.size, graph, timeline, device)

        step = sssp_step(graph, workset, dist, variant, tpb, device)
        comp_cost = model.price(step.tally)
        timeline.add_kernel(iteration, step.tally, comp_cost, variant.code)
        seconds = comp_cost.seconds

        next_size = int(step.updated.size)
        next_variant = policy.choose(iteration + 1, next_size) if next_size else variant
        for tally in policy.overhead_tallies(
            iteration, workset.size, graph.num_nodes, device
        ):
            cost = model.price(tally)
            timeline.add_kernel(iteration, tally, cost, variant.code)
            seconds += cost.seconds

        for tally in workset_gen_tallies(
            graph.num_nodes, next_size, next_variant.workset, device,
            scheme=queue_gen,
        ):
            cost = model.price(tally)
            timeline.add_kernel(iteration, tally, cost, variant.code)
            seconds += cost.seconds
        _readback(timeline, device)

        record = IterationRecord(
            iteration=iteration,
            variant=variant.code,
            workset_size=workset.size,
            processed=step.processed,
            updated=next_size,
            edges_scanned=step.edges_scanned,
            improved_relaxations=step.improved_relaxations,
            seconds=seconds,
        )
        records.append(record)
        policy.notify(record)
        if observer is not None:
            _observe_iteration(observer, record)
        elapsed_s += seconds
        _offer_checkpoint(
            checkpoint_keeper,
            timeline,
            device,
            memory,
            algorithm="sssp",
            source=source,
            iteration=iteration,
            values=dist,
            frontier=step.updated,
            variant_code=next_variant.code,
            records=records,
            seconds=seconds,
        )
        frontier = step.updated
        variant = next_variant
        iteration += 1

    if memory is not None:
        memory.release_workset()
    _final_transfers(graph, timeline, device)
    return TraversalResult(
        algorithm="sssp",
        source=source,
        values=dist,
        iterations=records,
        timeline=timeline,
        device=device,
        policy_name=policy.name,
    )


def _traverse_sssp_ordered(
    graph, source, policy, device, cost_params, max_iterations,
    queue_gen="atomic", watchdog=None, memory=None,
) -> TraversalResult:
    model = CostModel(device, cost_params)
    timeline = Timeline()
    _initial_transfers(graph, timeline, device, memory)
    observer = current_observer()
    if observer is not None:
        observer.spans.advance_sim(timeline.transfer_seconds)

    # The working-set structure depends on the representation: a queue
    # holds the (node, key) pair multiset verbatim; a bitmap dedupes via
    # per-node atomicMin slots.  The representation is fixed by the
    # policy's first choice (ordered traversals are static in the paper).
    first_variant = policy.choose(0, 1)
    dedupe = first_variant.workset is WorksetRepr.BITMAP
    state = OrderedSsspState.initial(graph.num_nodes, source, dedupe=dedupe)
    records: List[IterationRecord] = []
    iteration = 0
    # Each iteration retires every pair at the current minimum key, so
    # iterations are bounded by the number of pair insertions <= m.
    cap = max_iterations if max_iterations is not None else 16 * graph.num_edges + 64

    elapsed_s = 0.0
    while state.workset_size:
        if iteration >= cap:
            raise NonConvergenceError(
                f"ordered SSSP exceeded its iteration budget of {cap} "
                "iterations (non-convergence)"
            )
        if watchdog is not None:
            watchdog.check(iteration, elapsed_s)
        ws_size = state.workset_size
        variant = policy.choose(iteration, ws_size)
        tpb = _tpb_for(variant, graph, device)
        # Ordered queues hold (node, key) pairs: 8 B per element.
        _charge_workset(
            memory, variant, ws_size, graph, timeline, device, entry_bytes=8
        )

        # findmin reduction over the working-set keys.
        min_key = findmin(state.ws_keys)
        seconds = 0.0
        for tally in findmin_tallies(
            ws_size, graph.num_nodes, variant.workset, device
        ):
            cost = model.price(tally)
            timeline.add_kernel(iteration, tally, cost, variant.code)
            seconds += cost.seconds

        step = sssp_ordered_step(graph, state, min_key, variant, tpb, device)
        comp_cost = model.price(step.tally)
        timeline.add_kernel(iteration, step.tally, comp_cost, variant.code)
        seconds += comp_cost.seconds

        gen_count = min(state.workset_size, graph.num_nodes)
        for tally in workset_gen_tallies(
            graph.num_nodes, gen_count, variant.workset, device,
            scheme=queue_gen,
        ):
            cost = model.price(tally)
            timeline.add_kernel(iteration, tally, cost, variant.code)
            seconds += cost.seconds
        _readback(timeline, device)

        record = IterationRecord(
            iteration=iteration,
            variant=variant.code,
            workset_size=ws_size,
            processed=step.settled,
            updated=state.workset_size,
            edges_scanned=step.edges_scanned,
            improved_relaxations=step.improved_relaxations,
            seconds=seconds,
        )
        records.append(record)
        policy.notify(record)
        if observer is not None:
            _observe_iteration(observer, record)
        elapsed_s += seconds
        iteration += 1

    if memory is not None:
        memory.release_workset()
    _final_transfers(graph, timeline, device)
    return TraversalResult(
        algorithm="sssp_ordered",
        source=source,
        values=state.dist,
        iterations=records,
        timeline=timeline,
        device=device,
        policy_name=policy.name,
    )
