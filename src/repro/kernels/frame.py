"""BFS and SSSP on the generic traversal frame (the paper's Figure 8).

The host loop itself lives in :mod:`repro.engine.driver` — one driver
for every algorithm, generic over a *variant policy* (the paper's
static implementations and the adaptive runtime) and an
:class:`~repro.engine.spec.AlgorithmSpec`.  This module expresses the
paper's two core algorithms as specs:

- :class:`BfsSpec` — level-synchronous BFS; ordered and unordered
  policies share the frame (their step rule differs inside the kernel);
- :class:`SsspSpec` — unordered (Bellman-Ford-style) SSSP;
- :class:`OrderedSsspSpec` — ordered SSSP (GPU Dijkstra with a findmin
  reduction each iteration, choosing its variant at the loop top).

``traverse_bfs`` / ``traverse_sssp`` keep their original signatures,
and the engine's datatypes and frame helpers are re-exported so
existing imports (``from repro.kernels.frame import TraversalResult``)
keep working.

Reliability seams (used by :mod:`repro.reliability`): the unordered
frames accept a *watchdog* (iteration/deadline budgets, raising
:class:`~repro.errors.NonConvergenceError`), a *checkpoint keeper*
(iteration-granular state snapshots, priced as device-to-host copies),
a *resume_from* checkpoint (continue a retried query from its last good
iteration instead of restarting), and a *fault_hook* (per-iteration
fault-injection callback).  All default to ``None`` and cost nothing
when absent.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

import numpy as np

from repro.engine.driver import (  # noqa: F401  (re-exported frame helpers)
    FrameContext,
    _charge_workset,
    _final_transfers,
    _initial_transfers,
    _observe_iteration,
    _offer_checkpoint,
    _readback,
    _restore_state,
    _tpb_for,
    run_frame,
)
from repro.engine.registry import AlgorithmInfo, register_algorithm
from repro.engine.spec import AlgorithmSpec, FrameState, StepOutcome
from repro.engine.types import (  # noqa: F401  (re-exported datatypes)
    HOST_INIT_PER_NODE_S,
    IterationRecord,
    StaticPolicy,
    TraversalResult,
    VariantPolicy,
)
from repro.errors import KernelError
from repro.graph.csr import CSRGraph
from repro.gpusim.device import DeviceSpec, TESLA_C2070
from repro.gpusim.kernel import CostParams
from repro.kernels.computation import (
    INF,
    OrderedSsspState,
    UNSET_LEVEL,
    bfs_step,
    sssp_ordered_step,
    sssp_step,
)
from repro.kernels.findmin import findmin, findmin_tallies
from repro.kernels.variants import Variant, WorksetRepr
from repro.kernels.workset import Workset

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpusim.allocator import MemoryBudget
    from repro.reliability.checkpoint import CheckpointKeeper, TraversalCheckpoint
    from repro.reliability.watchdog import Watchdog

__all__ = [
    "IterationRecord",
    "TraversalResult",
    "VariantPolicy",
    "StaticPolicy",
    "BfsSpec",
    "SsspSpec",
    "OrderedSsspSpec",
    "traverse_bfs",
    "traverse_sssp",
]


class BfsSpec(AlgorithmSpec):
    """Level-synchronous BFS: ``values`` are levels (int64, -1 unreached)."""

    name = "bfs"
    ordered_support = True
    batchable = True

    def init_state(self, ctx: FrameContext) -> FrameState:
        levels = np.full(ctx.graph.num_nodes, UNSET_LEVEL, dtype=np.int64)
        levels[ctx.source] = 0
        frontier = np.array([ctx.source], dtype=np.int64)
        return FrameState(levels, frontier)

    def default_cap(self, graph: CSRGraph) -> int:
        return 4 * graph.num_nodes + 64

    def cap_message(self, cap: int) -> str:
        return (
            f"BFS exceeded its iteration budget of {cap} iterations "
            "(non-convergence)"
        )

    def compute(self, ctx, state, variant, tpb) -> StepOutcome:
        workset = Workset.from_update_ids(state.frontier, variant.workset)
        step = bfs_step(ctx.graph, workset, state.values, variant, tpb, ctx.device)
        ctx.price(step.tally)
        return StepOutcome(
            next_frontier=step.updated,
            updated_count=int(step.updated.size),
            processed=step.processed,
            edges_scanned=step.edges_scanned,
            improved_relaxations=step.improved_relaxations,
        )

    def result_algorithm(self, policy: VariantPolicy) -> str:
        return "bfs_ordered" if policy.is_ordered() else "bfs"

    def batch_relax(self, graph: CSRGraph, state: FrameState):
        from repro.kernels.computation import bfs_relax

        return bfs_relax(graph, state.frontier, state.values, ordered=False)

    def batch_kernel_profile(self):
        from repro.kernels import costs

        return costs.C_EDGE, 0


class SsspSpec(AlgorithmSpec):
    """Unordered SSSP: ``values`` are distances (float64, inf unreached)."""

    name = "sssp"
    weighted = True
    ordered_support = True
    batchable = True

    def validate(self, graph: CSRGraph, source: int) -> None:
        super().validate(graph, source)
        if graph.weights is None:
            raise KernelError(
                f"SSSP requires edge weights; graph {graph.name!r} has none"
            )

    def init_state(self, ctx: FrameContext) -> FrameState:
        dist = np.full(ctx.graph.num_nodes, INF, dtype=np.float64)
        dist[ctx.source] = 0.0
        frontier = np.array([ctx.source], dtype=np.int64)
        return FrameState(dist, frontier)

    def default_cap(self, graph: CSRGraph) -> int:
        return 16 * graph.num_nodes + 64

    def cap_message(self, cap: int) -> str:
        return (
            f"SSSP exceeded its iteration budget of {cap} iterations "
            "(non-convergence)"
        )

    def compute(self, ctx, state, variant, tpb) -> StepOutcome:
        workset = Workset.from_update_ids(state.frontier, variant.workset)
        step = sssp_step(ctx.graph, workset, state.values, variant, tpb, ctx.device)
        ctx.price(step.tally)
        return StepOutcome(
            next_frontier=step.updated,
            updated_count=int(step.updated.size),
            processed=step.processed,
            edges_scanned=step.edges_scanned,
            improved_relaxations=step.improved_relaxations,
        )

    def batch_relax(self, graph: CSRGraph, state: FrameState):
        from repro.kernels.computation import sssp_relax

        return sssp_relax(graph, state.frontier, state.values)

    def batch_kernel_profile(self):
        from repro.kernels import costs

        return costs.C_EDGE_WEIGHTED, 1


class OrderedSsspSpec(SsspSpec):
    """Ordered SSSP (GPU Dijkstra): a findmin reduction each iteration
    retires every (node, key) pair at the current minimum key.

    Not batchable: the findmin reduction and the pair multiset are
    per-query structures the multi-source frame does not stack.

    The working-set structure depends on the representation: a queue
    holds the pair multiset verbatim; a bitmap dedupes via per-node
    atomicMin slots.  The representation is fixed by the policy's first
    choice (ordered traversals are static in the paper), and the policy
    is consulted at the loop top each iteration.
    """

    checkpointable = False
    adaptive_eligible = False
    chooses_at_top = True
    batchable = False
    #: ordered queues hold (node, key) pairs: 8 B per element
    workset_entry_bytes = 8

    def init_state(self, ctx: FrameContext) -> FrameState:
        first_variant = ctx.policy.choose(0, 1)
        dedupe = first_variant.workset is WorksetRepr.BITMAP
        ordered = OrderedSsspState.initial(
            ctx.graph.num_nodes, ctx.source, dedupe=dedupe
        )
        return FrameState(
            ordered.dist, np.empty(0, dtype=np.int64), ordered=ordered
        )

    def default_cap(self, graph: CSRGraph) -> int:
        # Each iteration retires every pair at the current minimum key,
        # so iterations are bounded by the number of pair insertions <= m.
        return 16 * graph.num_edges + 64

    def cap_message(self, cap: int) -> str:
        return (
            f"ordered SSSP exceeded its iteration budget of {cap} "
            "iterations (non-convergence)"
        )

    def work_remaining(self, state: FrameState) -> int:
        return int(state.ordered.workset_size)

    def compute(self, ctx, state, variant, tpb) -> StepOutcome:
        ordered = state.ordered
        ws_size = ordered.workset_size
        # findmin reduction over the working-set keys.
        min_key = findmin(ordered.ws_keys)
        for tally in findmin_tallies(
            ws_size, ctx.graph.num_nodes, variant.workset, ctx.device,
            entry_bytes=self.workset_entry_bytes,
        ):
            ctx.price(tally)
        if not np.isfinite(min_key):
            # Every remaining slot is +inf: only stale entries for nodes
            # settled via shorter paths remain, so the traversal has
            # converged — terminate cleanly (the reduction above still
            # ran and is priced).
            return None
        step = sssp_ordered_step(ctx.graph, ordered, min_key, variant, tpb, ctx.device)
        ctx.price(step.tally)
        return StepOutcome(
            next_frontier=None,
            updated_count=int(ordered.workset_size),
            processed=step.settled,
            edges_scanned=step.edges_scanned,
            improved_relaxations=step.improved_relaxations,
            gen_count=min(ordered.workset_size, ctx.graph.num_nodes),
        )

    def result_algorithm(self, policy: VariantPolicy) -> str:
        return "sssp_ordered"


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------

def traverse_bfs(
    graph: CSRGraph,
    source: int,
    policy: VariantPolicy,
    *,
    device: DeviceSpec = TESLA_C2070,
    cost_params: Optional[CostParams] = None,
    max_iterations: Optional[int] = None,
    queue_gen: str = "atomic",
    watchdog: Optional["Watchdog"] = None,
    checkpoint_keeper: Optional["CheckpointKeeper"] = None,
    resume_from: Optional["TraversalCheckpoint"] = None,
    fault_hook=None,
    memory: Optional["MemoryBudget"] = None,
    fusion=None,
) -> TraversalResult:
    """Run BFS from *source* under *policy*; ordered and unordered BFS
    share this level-synchronous frame (their step rule differs).

    *queue_gen* selects the queue-generation scheme: ``"atomic"``
    (the paper's baseline), ``"scan"`` (Merrill-style prefix scan) or
    ``"hierarchical"`` (Luo-style shared-memory queues) — Section
    V.C's orthogonal optimizations.

    *memory* attaches a :class:`~repro.gpusim.MemoryBudget`: the CSR
    arrays, traversal state, per-iteration working sets and checkpoint
    staging copies are charged against it, raising
    :class:`~repro.errors.DeviceOOMError` on overflow (or pricing the
    spilled bytes as PCIe traffic in spill mode)."""
    return run_frame(
        graph,
        source,
        policy,
        BfsSpec(),
        device=device,
        cost_params=cost_params,
        max_iterations=max_iterations,
        queue_gen=queue_gen,
        watchdog=watchdog,
        checkpoint_keeper=checkpoint_keeper,
        resume_from=resume_from,
        fault_hook=fault_hook,
        memory=memory,
        fusion=fusion,
    )


def traverse_sssp(
    graph: CSRGraph,
    source: int,
    policy: VariantPolicy,
    *,
    device: DeviceSpec = TESLA_C2070,
    cost_params: Optional[CostParams] = None,
    max_iterations: Optional[int] = None,
    queue_gen: str = "atomic",
    watchdog: Optional["Watchdog"] = None,
    checkpoint_keeper: Optional["CheckpointKeeper"] = None,
    resume_from: Optional["TraversalCheckpoint"] = None,
    fault_hook=None,
    memory: Optional["MemoryBudget"] = None,
    fusion=None,
) -> TraversalResult:
    """Run SSSP from *source* under *policy*.

    Dispatches to the unordered (Bellman-Ford) or ordered (GPU Dijkstra
    with findmin) frame based on the policy's variants.  Checkpointing,
    resume and fault hooks are supported by the unordered frame only
    (the adaptive and guarded runtimes are unordered, Section VI.A).
    *memory* attaches a device-memory budget as in :func:`traverse_bfs`.
    """
    graph._check_node(source)
    if graph.weights is None:
        raise KernelError(
            f"SSSP requires edge weights; graph {graph.name!r} has none"
        )
    if policy.is_ordered():
        if checkpoint_keeper is not None or resume_from is not None or fault_hook is not None:
            raise KernelError(
                "checkpoint/resume and fault hooks are only supported by the "
                "unordered SSSP frame"
            )
        spec = OrderedSsspSpec()
    else:
        spec = SsspSpec()
    return run_frame(
        graph,
        source,
        policy,
        spec,
        device=device,
        cost_params=cost_params,
        max_iterations=max_iterations,
        queue_gen=queue_gen,
        watchdog=watchdog,
        checkpoint_keeper=checkpoint_keeper,
        resume_from=resume_from,
        fault_hook=fault_hook,
        memory=memory,
        fusion=fusion,
    )


def _is_ordered(policy: VariantPolicy) -> bool:
    return policy.is_ordered()


# ----------------------------------------------------------------------
# Registry entries
# ----------------------------------------------------------------------

def _cpu_bfs_reference(graph, source, **params):
    from repro.cpu import cpu_bfs

    result = cpu_bfs(graph, source)
    return result.levels, result


def _cpu_sssp_reference(graph, source, **params):
    from repro.cpu import cpu_dijkstra

    result = cpu_dijkstra(graph, source)
    return result.distances, result


register_algorithm(
    AlgorithmInfo(
        name="bfs",
        summary="breadth-first search: levels from a source node",
        make_spec=BfsSpec,
        traverse=traverse_bfs,
        cpu_run=_cpu_bfs_reference,
        ordered_support=True,
        batchable=True,
    )
)

register_algorithm(
    AlgorithmInfo(
        name="sssp",
        summary="single-source shortest paths over weighted edges",
        make_spec=SsspSpec,
        traverse=traverse_sssp,
        cpu_run=_cpu_sssp_reference,
        weighted=True,
        ordered_support=True,
        batchable=True,
    )
)
