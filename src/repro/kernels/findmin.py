"""The ordered-SSSP ``findmin`` operation.

The paper implements it "on GPU by parallel reduction (which is faster
than maintaining a heap on CPU)" (Section V.B).  The reduction runs over
the working-set keys: over the compacted queue for the queue
representation, or over all node slots (unset ones contribute +inf) for
the bitmap representation — which is one more way bitmaps hurt when the
working set is sparse.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.gpusim.device import DeviceSpec
from repro.gpusim.kernel import KernelTally
from repro.gpusim.reduction import reduction_tallies
from repro.kernels.variants import WorksetRepr

__all__ = ["findmin", "findmin_tallies"]


def findmin(keys: np.ndarray) -> float:
    """Functional result: the minimum key in the working set.

    A working set with no finite keys (every slot +inf — reachable when
    the last queue-to-bitmap switch races the final relaxation) yields
    ``+inf``: the reduction's identity element, which the ordered step
    treats as clean convergence rather than a crash.
    """
    arr = np.asarray(keys, dtype=np.float64)
    finite = arr[np.isfinite(arr)]
    if finite.size == 0:
        return float("inf")
    return float(finite.min())


def findmin_tallies(
    workset_size: int,
    num_nodes: int,
    representation: WorksetRepr,
    device: DeviceSpec,
    *,
    entry_bytes: int = 4,
) -> List[KernelTally]:
    """Tallies of the reduction kernels for one findmin.

    *entry_bytes* is the stride of each scanned working-set record:
    ordered queues hold 8-byte ``(node, key)`` pairs (the spec's
    ``workset_entry_bytes``), so the reduction streams twice the
    traffic of a plain 4-byte key scan.
    """
    elements = num_nodes if representation is WorksetRepr.BITMAP else workset_size
    return reduction_tallies(
        max(1, elements), device, name="findmin", entry_bytes=entry_bytes
    )
