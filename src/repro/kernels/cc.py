"""Connected components on the GPU frame — the paper's extension claim.

Section I: "we believe that our proposed mechanisms can be extended and
applied to other graph algorithms that exhibit similar computational
patterns".  Connected components via min-label propagation is the
canonical such algorithm: iterate over a working set of active nodes,
push each node's label to its neighbors, mark improved neighbors in the
update vector — structurally identical to unordered BFS/SSSP, so it
plugs straight into the exploration space and the adaptive runtime.

Weak connectivity is computed (direction ignored); directed inputs are
symmetrized once on the host before the traversal, and the symmetrized
arrays are what gets transferred to the device.

Unlike BFS/SSSP, the initial working set is *every node*, so CC starts
deep in the bitmap region of the decision space and drains toward the
queue region — the opposite trajectory, and a good stress test for the
decision maker.

Expressed as :class:`CcSpec` on the generic engine
(:mod:`repro.engine`), CC inherits the reliability seams (watchdog,
checkpoint/resume, fault hooks), memory-budget charging and observer
metrics for free.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.engine.driver import FrameContext, run_frame
from repro.engine.registry import AlgorithmInfo, register_algorithm
from repro.engine.spec import AlgorithmSpec, FrameState, StepOutcome
from repro.engine.types import StaticPolicy, TraversalResult, VariantPolicy
from repro.errors import KernelError
from repro.graph.csr import CSRGraph
from repro.graph.properties import is_symmetric
from repro.graph.transforms import symmetrize
from repro.gpusim.device import DeviceSpec, TESLA_C2070
from repro.gpusim.kernel import CostParams
from repro.kernels import costs
from repro.kernels.computation import _gather_edges
from repro.kernels.mapping import ComputationShape, computation_tally
from repro.kernels.variants import Variant
from repro.kernels.workset import Workset
from repro.obs.context import observing

__all__ = ["cc_step", "CcSpec", "traverse_cc", "run_cc"]


def cc_step(
    graph: CSRGraph,
    workset: Workset,
    labels: np.ndarray,
    variant: Variant,
    threads_per_block: int,
    device: DeviceSpec,
    *,
    name: str = "cc_comp",
):
    """One min-label propagation sweep; mutates *labels* in place."""
    from repro.kernels.computation import StepResult

    frontier = workset.nodes
    if frontier.size == 0:
        raise KernelError("cc_step called with an empty working set")
    idx, dst, degrees = _gather_edges(graph, frontier)
    cand = np.repeat(labels[frontier], degrees)

    improving = cand < labels[dst]
    improved_count = int(improving.sum())
    if improved_count:
        before = labels.copy()
        np.minimum.at(labels, dst[improving], cand[improving])
        updated = np.flatnonzero(labels < before).astype(np.int64)
    else:
        updated = np.empty(0, dtype=np.int64)

    shape = ComputationShape(
        name=name,
        num_nodes=graph.num_nodes,
        active_ids=frontier,
        degrees=degrees,
        edge_cost=costs.C_EDGE,
        improved=improved_count,
        updated_count=int(updated.size),
    )
    tally = computation_tally(
        shape, variant.mapping, variant.workset, threads_per_block, device
    )
    return StepResult(
        updated=updated,
        tally=tally,
        improved_relaxations=improved_count,
        edges_scanned=int(idx.size),
        processed=int(frontier.size),
    )


class CcSpec(AlgorithmSpec):
    """Min-label propagation CC: ``values[i]`` is the minimum node id in
    node *i*'s weakly connected component."""

    name = "cc"
    source_based = False

    def __init__(self, assume_symmetric: bool = False):
        self.assume_symmetric = assume_symmetric

    def prepare(self, graph: CSRGraph):
        if not self.assume_symmetric and not is_symmetric(graph):
            # Host-side symmetrization before transfer: roughly one pass
            # over the edges plus the sort the CSR rebuild performs.
            work_graph = symmetrize(graph)
            return work_graph, work_graph.num_edges * 12e-9
        return graph, 0.0

    def init_state(self, ctx: FrameContext) -> FrameState:
        n = ctx.graph.num_nodes
        return FrameState(
            np.arange(n, dtype=np.int64), np.arange(n, dtype=np.int64)
        )

    def default_cap(self, graph: CSRGraph) -> int:
        return 4 * graph.num_nodes + 64

    def cap_message(self, cap: int) -> str:
        return f"CC exceeded {cap} iterations (non-convergence)"

    def first_choose_size(self, state: FrameState) -> int:
        # Every node seeds the first sweep; 0 only for an empty graph,
        # where the policy must not be consulted at all.
        return int(state.values.size)

    def compute(self, ctx, state, variant, tpb) -> StepOutcome:
        workset = Workset.from_update_ids(state.frontier, variant.workset)
        step = cc_step(ctx.graph, workset, state.values, variant, tpb, ctx.device)
        ctx.price(step.tally)
        return StepOutcome(
            next_frontier=step.updated,
            updated_count=int(step.updated.size),
            processed=step.processed,
            edges_scanned=step.edges_scanned,
            improved_relaxations=step.improved_relaxations,
        )


def traverse_cc(
    graph: CSRGraph,
    policy: VariantPolicy,
    *,
    device: DeviceSpec = TESLA_C2070,
    cost_params: Optional[CostParams] = None,
    max_iterations: Optional[int] = None,
    queue_gen: str = "atomic",
    assume_symmetric: bool = False,
    watchdog=None,
    checkpoint_keeper=None,
    resume_from=None,
    fault_hook=None,
    memory=None,
    fusion=None,
) -> TraversalResult:
    """Label-propagation connected components under *policy*.

    ``result.values[i]`` is the minimum node id in node *i*'s weakly
    connected component.  The reliability keywords and *memory* are
    engine pass-throughs, as in
    :func:`~repro.kernels.frame.traverse_bfs`.
    """
    return run_frame(
        graph,
        -1,
        policy,
        CcSpec(assume_symmetric=assume_symmetric),
        device=device,
        cost_params=cost_params,
        max_iterations=max_iterations,
        queue_gen=queue_gen,
        watchdog=watchdog,
        checkpoint_keeper=checkpoint_keeper,
        resume_from=resume_from,
        fault_hook=fault_hook,
        memory=memory,
        fusion=fusion,
    )


def run_cc(
    graph: CSRGraph,
    variant: Union[Variant, str] = "U_T_BM",
    *,
    device: DeviceSpec = TESLA_C2070,
    cost_params: Optional[CostParams] = None,
    max_iterations: Optional[int] = None,
    queue_gen: str = "atomic",
    observe=None,
    fusion=None,
) -> TraversalResult:
    """Run one static connected-components variant.

    *observe* installs an :class:`~repro.obs.Observer` for the run, as
    in :func:`~repro.kernels.bfs.run_bfs`."""
    if isinstance(variant, str):
        variant = Variant.parse(variant)
    with observing(observe):
        return traverse_cc(
            graph,
            StaticPolicy(variant),
            device=device,
            cost_params=cost_params,
            max_iterations=max_iterations,
            queue_gen=queue_gen,
            fusion=fusion,
        )


def _cpu_cc_reference(graph, source, **params):
    from repro.cpu import cpu_connected_components

    result = cpu_connected_components(graph)
    return result.labels, result


register_algorithm(
    AlgorithmInfo(
        name="cc",
        summary="min-label propagation weakly connected components",
        make_spec=CcSpec,
        traverse=lambda graph, source, policy, **kw: traverse_cc(graph, policy, **kw),
        cpu_run=_cpu_cc_reference,
        source_based=False,
        param_names=("assume_symmetric",),
    )
)
