"""Connected components on the GPU frame — the paper's extension claim.

Section I: "we believe that our proposed mechanisms can be extended and
applied to other graph algorithms that exhibit similar computational
patterns".  Connected components via min-label propagation is the
canonical such algorithm: iterate over a working set of active nodes,
push each node's label to its neighbors, mark improved neighbors in the
update vector — structurally identical to unordered BFS/SSSP, so it
plugs straight into the exploration space and the adaptive runtime.

Weak connectivity is computed (direction ignored); directed inputs are
symmetrized once on the host before the traversal, and the symmetrized
arrays are what gets transferred to the device.

Unlike BFS/SSSP, the initial working set is *every node*, so CC starts
deep in the bitmap region of the decision space and drains toward the
queue region — the opposite trajectory, and a good stress test for the
decision maker.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.properties import is_symmetric
from repro.graph.transforms import symmetrize
from repro.gpusim.device import DeviceSpec, TESLA_C2070
from repro.gpusim.kernel import CostModel, CostParams
from repro.gpusim.timeline import Timeline
from repro.kernels import costs
from repro.kernels.computation import _gather_edges
from repro.kernels.frame import (
    IterationRecord,
    StaticPolicy,
    TraversalResult,
    VariantPolicy,
    _final_transfers,
    _initial_transfers,
    _readback,
    _tpb_for,
)
from repro.kernels.mapping import ComputationShape, computation_tally
from repro.kernels.variants import Variant
from repro.kernels.workset import Workset, workset_gen_tallies
from repro.errors import KernelError

__all__ = ["cc_step", "traverse_cc", "run_cc"]


def cc_step(
    graph: CSRGraph,
    workset: Workset,
    labels: np.ndarray,
    variant: Variant,
    threads_per_block: int,
    device: DeviceSpec,
    *,
    name: str = "cc_comp",
):
    """One min-label propagation sweep; mutates *labels* in place."""
    from repro.kernels.computation import StepResult

    frontier = workset.nodes
    if frontier.size == 0:
        raise KernelError("cc_step called with an empty working set")
    idx, dst, degrees = _gather_edges(graph, frontier)
    cand = np.repeat(labels[frontier], degrees)

    improving = cand < labels[dst]
    improved_count = int(improving.sum())
    if improved_count:
        before = labels.copy()
        np.minimum.at(labels, dst[improving], cand[improving])
        updated = np.flatnonzero(labels < before).astype(np.int64)
    else:
        updated = np.empty(0, dtype=np.int64)

    shape = ComputationShape(
        name=name,
        num_nodes=graph.num_nodes,
        active_ids=frontier,
        degrees=degrees,
        edge_cost=costs.C_EDGE,
        improved=improved_count,
        updated_count=int(updated.size),
    )
    tally = computation_tally(
        shape, variant.mapping, variant.workset, threads_per_block, device
    )
    return StepResult(
        updated=updated,
        tally=tally,
        improved_relaxations=improved_count,
        edges_scanned=int(idx.size),
        processed=int(frontier.size),
    )


def traverse_cc(
    graph: CSRGraph,
    policy: VariantPolicy,
    *,
    device: DeviceSpec = TESLA_C2070,
    cost_params: Optional[CostParams] = None,
    max_iterations: Optional[int] = None,
    queue_gen: str = "atomic",
    assume_symmetric: bool = False,
) -> TraversalResult:
    """Label-propagation connected components under *policy*.

    ``result.values[i]`` is the minimum node id in node *i*'s weakly
    connected component.
    """
    work_graph = graph
    host_prep_seconds = 0.0
    if not assume_symmetric and not is_symmetric(graph):
        # Host-side symmetrization before transfer: roughly one pass
        # over the edges plus the sort the CSR rebuild performs.
        work_graph = symmetrize(graph)
        host_prep_seconds = work_graph.num_edges * 12e-9

    model = CostModel(device, cost_params)
    timeline = Timeline()
    _initial_transfers(work_graph, timeline, device)
    timeline.add_host_seconds(host_prep_seconds)

    n = work_graph.num_nodes
    labels = np.arange(n, dtype=np.int64)
    frontier = np.arange(n, dtype=np.int64)
    records: List[IterationRecord] = []
    iteration = 0
    cap = max_iterations if max_iterations is not None else 4 * n + 64
    variant = policy.choose(0, max(1, n))

    while frontier.size:
        if iteration >= cap:
            raise KernelError(f"CC exceeded {cap} iterations (non-convergence)")
        tpb = _tpb_for(variant, work_graph, device)
        workset = Workset.from_update_ids(frontier, variant.workset)

        step = cc_step(work_graph, workset, labels, variant, tpb, device)
        comp_cost = model.price(step.tally)
        timeline.add_kernel(iteration, step.tally, comp_cost, variant.code)
        seconds = comp_cost.seconds

        next_size = int(step.updated.size)
        next_variant = policy.choose(iteration + 1, next_size) if next_size else variant
        for tally in policy.overhead_tallies(iteration, workset.size, n, device):
            cost = model.price(tally)
            timeline.add_kernel(iteration, tally, cost, variant.code)
            seconds += cost.seconds

        for tally in workset_gen_tallies(
            n, next_size, next_variant.workset, device, scheme=queue_gen
        ):
            cost = model.price(tally)
            timeline.add_kernel(iteration, tally, cost, variant.code)
            seconds += cost.seconds
        _readback(timeline, device)

        record = IterationRecord(
            iteration=iteration,
            variant=variant.code,
            workset_size=workset.size,
            processed=step.processed,
            updated=next_size,
            edges_scanned=step.edges_scanned,
            improved_relaxations=step.improved_relaxations,
            seconds=seconds,
        )
        records.append(record)
        policy.notify(record)
        frontier = step.updated
        variant = next_variant
        iteration += 1

    _final_transfers(work_graph, timeline, device)
    return TraversalResult(
        algorithm="cc",
        source=-1,
        values=labels,
        iterations=records,
        timeline=timeline,
        device=device,
        policy_name=policy.name,
    )


def run_cc(
    graph: CSRGraph,
    variant: Union[Variant, str] = "U_T_BM",
    *,
    device: DeviceSpec = TESLA_C2070,
    cost_params: Optional[CostParams] = None,
    max_iterations: Optional[int] = None,
    queue_gen: str = "atomic",
) -> TraversalResult:
    """Run one static connected-components variant."""
    if isinstance(variant, str):
        variant = Variant.parse(variant)
    return traverse_cc(
        graph,
        StaticPolicy(variant),
        device=device,
        cost_params=cost_params,
        max_iterations=max_iterations,
        queue_gen=queue_gen,
    )
