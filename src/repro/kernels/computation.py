"""The ``CUDA_computation`` kernel: functional execution + cost tally.

Each step processes the working set's neighborhood exactly as the
paper's kernels do (Figure 9): read the working set, process each active
node (compute its level/distance), visit its neighbors, and mark
improved neighbors in the update vector.  The *results* come from
vectorized NumPy; the *cost* comes from
:func:`repro.kernels.mapping.computation_tally`, fed with the structural
profile (which nodes were active, their outdegrees, how many relaxations
improved).

BFS levels use ``int64`` with ``-1`` as "unset"; SSSP distances use
``float64`` with ``inf`` as "unset".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import KernelError
from repro.graph.csr import CSRGraph
from repro.graph.properties import _ragged_gather_indices
from repro.gpusim.device import DeviceSpec
from repro.gpusim.kernel import KernelTally
from repro.kernels import costs
from repro.kernels.mapping import ComputationShape, computation_tally
from repro.kernels.variants import Variant
from repro.kernels.workset import Workset

__all__ = [
    "StepResult",
    "bfs_relax",
    "bfs_step",
    "sssp_relax",
    "sssp_step",
    "OrderedSsspState",
    "OrderedStepResult",
    "sssp_ordered_step",
]

UNSET_LEVEL = np.int64(-1)
INF = np.float64(np.inf)


@dataclass(frozen=True)
class StepResult:
    """Outcome of one computation-kernel launch."""

    #: sorted unique ids of nodes whose state improved (the update vector)
    updated: np.ndarray
    tally: KernelTally
    improved_relaxations: int
    edges_scanned: int
    #: nodes that actually did neighborhood work this step
    processed: int


def _gather_edges(graph: CSRGraph, nodes: np.ndarray):
    """Edge indices, destinations and per-node degrees for *nodes*."""
    starts = graph.row_offsets[nodes]
    ends = graph.row_offsets[nodes + 1]
    degrees = (ends - starts).astype(np.int64)
    idx = _ragged_gather_indices(starts, ends)
    return idx, graph.col_indices[idx].astype(np.int64), degrees


# ----------------------------------------------------------------------
# BFS (ordered and unordered share the level-synchronous flow; the
# ordered version visits a node only while its level is unset, the
# unordered one whenever the level would decrease — Figure 4)
# ----------------------------------------------------------------------

def bfs_relax(
    graph: CSRGraph,
    frontier: np.ndarray,
    levels: np.ndarray,
    *,
    ordered: bool = False,
):
    """The BFS relaxation itself, independent of the execution substrate.

    Mutates *levels* in place and returns
    ``(updated_ids, degrees, improved_count, edges_scanned)``.  Shared by
    the simulated GPU kernels and the hybrid runtime's CPU iterations.
    """
    idx, dst, degrees = _gather_edges(graph, frontier)
    cand = np.repeat(levels[frontier] + 1, degrees)

    old = levels[dst]
    if ordered:
        improving = old == UNSET_LEVEL
    else:
        improving = (old == UNSET_LEVEL) | (cand < old)
    improved_count = int(improving.sum())
    touched = dst[improving]
    if touched.size:
        # Apply the minimum candidate per destination; UNSET maps to +inf
        # so first touches and improvements are handled uniformly.
        big = np.iinfo(np.int64).max
        before = np.where(levels == UNSET_LEVEL, big, levels)
        work = before.copy()
        np.minimum.at(work, touched, cand[improving])
        changed = work < before
        levels[changed] = work[changed]
        updated = np.flatnonzero(changed).astype(np.int64)
    else:
        updated = np.empty(0, dtype=np.int64)
    return updated, degrees, improved_count, int(idx.size)


def bfs_step(
    graph: CSRGraph,
    workset: Workset,
    levels: np.ndarray,
    variant: Variant,
    threads_per_block: int,
    device: DeviceSpec,
    *,
    name: str = "bfs_comp",
) -> StepResult:
    """One BFS sweep over *workset*; mutates *levels* in place."""
    frontier = workset.nodes
    if frontier.size == 0:
        raise KernelError("bfs_step called with an empty working set")
    updated, degrees, improved_count, edges = bfs_relax(
        graph, frontier, levels, ordered=variant.ordering.value == "O"
    )

    shape = ComputationShape(
        name=name,
        num_nodes=graph.num_nodes,
        active_ids=frontier,
        degrees=degrees,
        edge_cost=costs.C_EDGE,
        improved=improved_count,
        updated_count=int(updated.size),
        guard_cost=costs.C_PAIR_CHECK if variant.ordering.value == "O" else 0.0,
        weight_streams=0,
    )
    tally = computation_tally(
        shape, variant.mapping, variant.workset, threads_per_block, device
    )
    return StepResult(
        updated=updated,
        tally=tally,
        improved_relaxations=improved_count,
        edges_scanned=edges,
        processed=int(frontier.size),
    )


# ----------------------------------------------------------------------
# Unordered SSSP (Bellman-Ford sweeps over the working set — Figure 5)
# ----------------------------------------------------------------------

def sssp_relax(graph: CSRGraph, frontier: np.ndarray, dist: np.ndarray):
    """The SSSP relaxation itself, independent of the execution substrate.

    Mutates *dist* in place and returns
    ``(updated_ids, degrees, improved_count, edges_scanned)``.
    """
    idx, dst, degrees = _gather_edges(graph, frontier)
    cand = np.repeat(dist[frontier], degrees) + graph.weights[idx]

    improving = cand < dist[dst]
    improved_count = int(improving.sum())
    touched = dst[improving]
    if touched.size:
        before = dist.copy()
        np.minimum.at(dist, touched, cand[improving])
        updated = np.flatnonzero(dist < before).astype(np.int64)
    else:
        updated = np.empty(0, dtype=np.int64)
    return updated, degrees, improved_count, int(idx.size)


def sssp_step(
    graph: CSRGraph,
    workset: Workset,
    dist: np.ndarray,
    variant: Variant,
    threads_per_block: int,
    device: DeviceSpec,
    *,
    name: str = "sssp_comp",
) -> StepResult:
    """One unordered SSSP sweep; mutates *dist* in place."""
    if graph.weights is None:
        raise KernelError("SSSP requires a weighted graph")
    frontier = workset.nodes
    if frontier.size == 0:
        raise KernelError("sssp_step called with an empty working set")
    updated, degrees, improved_count, edges = sssp_relax(graph, frontier, dist)

    shape = ComputationShape(
        name=name,
        num_nodes=graph.num_nodes,
        active_ids=frontier,
        degrees=degrees,
        edge_cost=costs.C_EDGE_WEIGHTED,
        improved=improved_count,
        updated_count=int(updated.size),
        weight_streams=1,
    )
    tally = computation_tally(
        shape, variant.mapping, variant.workset, threads_per_block, device
    )
    return StepResult(
        updated=updated,
        tally=tally,
        improved_relaxations=improved_count,
        edges_scanned=edges,
        processed=int(frontier.size),
    )


# ----------------------------------------------------------------------
# Ordered SSSP (GPU Dijkstra: findmin by reduction + selective process)
# ----------------------------------------------------------------------

@dataclass
class OrderedSsspState:
    """Device state of the ordered SSSP traversal.

    The ordered working set of Figure 5 is a multiset of
    ``(node, distance)`` pairs — "the same node can appear multiple times
    in the working set with different weight values".  How the pairs are
    stored depends on the representation:

    - **queue**: the pairs live verbatim in the queue, duplicates and
      all (``dedupe=False``) — the working set can grow toward O(m);
    - **bitmap**: a bitmap cannot hold a multiset, so insertions
      ``atomicMin`` into a per-node key slot (``dedupe=True``), and the
      working set stays bounded by n.
    """

    dist: np.ndarray
    ws_nodes: np.ndarray
    ws_keys: np.ndarray
    dedupe: bool

    @classmethod
    def initial(cls, num_nodes: int, source: int, *, dedupe: bool) -> "OrderedSsspState":
        return cls(
            dist=np.full(num_nodes, INF, dtype=np.float64),
            ws_nodes=np.array([source], dtype=np.int64),
            ws_keys=np.array([0.0], dtype=np.float64),
            dedupe=dedupe,
        )

    @property
    def workset_size(self) -> int:
        return int(self.ws_nodes.size)


@dataclass(frozen=True)
class OrderedStepResult:
    """Outcome of one ordered-SSSP computation launch."""

    tally: KernelTally
    settled: int
    improved_relaxations: int
    edges_scanned: int
    workset_size: int


def sssp_ordered_step(
    graph: CSRGraph,
    state: OrderedSsspState,
    min_key: float,
    variant: Variant,
    threads_per_block: int,
    device: DeviceSpec,
    *,
    name: str = "sssp_ordered_comp",
) -> OrderedStepResult:
    """Process the minimum-key subset of the working set (Dijkstra order).

    Every working-set element pays the key-comparison guard; only the
    elements at the minimum key settle and expand (Section IV.A:
    "ordered algorithms effectively process only a subset of the working
    set" each iteration).  Mutates *state* in place.
    """
    if graph.weights is None:
        raise KernelError("SSSP requires a weighted graph")
    active = state.ws_nodes
    keys = state.ws_keys
    if active.size == 0:
        raise KernelError("ordered step called with an empty working set")
    ws_size = int(active.size)
    at_min = keys <= min_key
    selected = active[at_min]
    rem_nodes = active[~at_min]
    rem_keys = keys[~at_min]

    # Settle: nodes whose distance is still unset take the min key; stale
    # pairs (node already settled via a shorter path) are dropped.
    fresh = np.unique(selected[~np.isfinite(state.dist[selected])])
    state.dist[fresh] = min_key

    improved_count = 0
    edges = 0
    ins_nodes = np.empty(0, dtype=np.int64)
    ins_keys = np.empty(0, dtype=np.float64)
    degrees_all = np.zeros(ws_size, dtype=np.int64)
    if fresh.size:
        idx, dst, degrees = _gather_edges(graph, fresh)
        edges = int(idx.size)
        cand = np.repeat(state.dist[fresh], degrees) + graph.weights[idx]
        open_dst = ~np.isfinite(state.dist[dst])
        improved_count = int(open_dst.sum())
        ins_nodes = dst[open_dst]
        ins_keys = cand[open_dst]
        # Attribute edge work to working-set slots for the warp profile.
        if state.dedupe:
            # Sorted-unique working set: exact slot per fresh node.
            degrees_all[np.searchsorted(active, fresh)] = degrees
        else:
            # Pair multiset: one arbitrary selected slot per fresh node
            # (slot choice only shifts which warp carries the work).
            sel_pos = np.flatnonzero(at_min)
            degrees_all[sel_pos[: fresh.size]] = degrees

    if state.dedupe:
        # Bitmap: atomicMin into per-node slots, one entry per node.
        merged_nodes = np.concatenate([rem_nodes, ins_nodes])
        merged_keys = np.concatenate([rem_keys, ins_keys])
        if merged_nodes.size:
            order = np.lexsort((merged_keys, merged_nodes))
            merged_nodes = merged_nodes[order]
            merged_keys = merged_keys[order]
            first = np.ones(merged_nodes.size, dtype=bool)
            first[1:] = merged_nodes[1:] != merged_nodes[:-1]
            merged_nodes = merged_nodes[first]
            merged_keys = merged_keys[first]
        state.ws_nodes, state.ws_keys = merged_nodes, merged_keys
    else:
        # Queue: pairs pile up verbatim.
        state.ws_nodes = np.concatenate([rem_nodes, ins_nodes])
        state.ws_keys = np.concatenate([rem_keys, ins_keys])

    shape = ComputationShape(
        name=name,
        num_nodes=graph.num_nodes,
        active_ids=active if state.dedupe else np.arange(ws_size, dtype=np.int64),
        degrees=degrees_all,
        edge_cost=costs.C_EDGE_WEIGHTED,
        improved=improved_count,
        updated_count=max(1, int(np.unique(ins_nodes).size)) if ins_nodes.size else 0,
        guard_cost=costs.C_PAIR_CHECK,
        weight_streams=1,
    )
    tally = computation_tally(
        shape, variant.mapping, variant.workset, threads_per_block, device
    )
    return OrderedStepResult(
        tally=tally,
        settled=int(fresh.size),
        improved_relaxations=improved_count,
        edges_scanned=edges,
        workset_size=ws_size,
    )
