"""Building :class:`~repro.gpusim.kernel.KernelTally` objects for the
``CUDA_computation`` kernel under every mapping x working-set combination.

This module encodes the performance *mechanisms* of Section IV:

- **thread mapping**: one working-set element per thread; a warp's issue
  cost is the max over its 32 elements' work (divergence), and with a
  bitmap all ``n`` threads are launched, active or not;
- **block mapping**: one element per block; its neighborhood is visited
  cooperatively in rounds of ``threads_per_block`` lanes, so a node with
  outdegree below the warp size still pays a full round (idle cores),
  while a hub node is parallelized instead of serializing a warp;
- **bitmap**: membership checks are coalesced streams over all ``n``
  entries (thread mapping) or one scattered read per block (block
  mapping);
- **queue**: only ``|WS|`` elements are launched and reads are coalesced,
  but the queue had to be built with serialized atomics (priced in
  :mod:`repro.kernels.workset`).

Memory accounting: scattered 4-byte state accesses use 32-byte
transactions (a quarter of the 128-byte unit); adjacency lists stream
contiguously under block mapping and quarter-coalesce under thread
mapping (consecutive threads walk different lists).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpusim.device import DeviceSpec
from repro.gpusim.kernel import KernelTally
from repro.gpusim.launch import LaunchConfig
from repro.gpusim.memory import segment_stream_transactions
from repro.kernels import costs
from repro.kernels.variants import Mapping, WorksetRepr

__all__ = ["ComputationShape", "computation_tally"]

#: fraction of a 128-byte transaction consumed by one scattered 4-byte
#: access (Fermi issues 32-byte transactions for uncached loads)
SCATTER_FRACTION = 0.25

#: coalescing efficiency of thread-mapped adjacency streaming: each lane
#: walks its own list, so only ~1/4 of each 32-byte transaction is useful
THREAD_ADJ_FRACTION = 0.25


@dataclass(frozen=True)
class ComputationShape:
    """Structural inputs describing one computation-kernel launch."""

    name: str
    num_nodes: int
    #: working-set node ids, sorted ascending (queue order == id order)
    active_ids: np.ndarray
    #: outdegree of each active node (parallel to active_ids)
    degrees: np.ndarray
    #: per-edge cost constant (C_EDGE or C_EDGE_WEIGHTED)
    edge_cost: float
    #: improving relaxations performed (atomic update-flag/min stores)
    improved: int
    #: distinct nodes whose state improved (atomic address diversity)
    updated_count: int
    #: extra per-active-element guard cost (ordered variants' key check)
    guard_cost: float = 0.0
    #: number of weight-array streams (1 for SSSP, 0 for BFS)
    weight_streams: int = 0


def computation_tally(
    shape: ComputationShape,
    mapping: Mapping,
    workset: WorksetRepr,
    threads_per_block: int,
    device: DeviceSpec,
) -> KernelTally:
    """Price the structure of one ``CUDA_computation`` launch."""
    if mapping is Mapping.THREAD:
        return _thread_tally(shape, workset, threads_per_block, device)
    if mapping is Mapping.WARP:
        return _warp_tally(shape, workset, threads_per_block, device)
    return _block_tally(shape, workset, threads_per_block, device)


# ----------------------------------------------------------------------
# Thread mapping
# ----------------------------------------------------------------------

def _thread_tally(
    shape: ComputationShape,
    workset: WorksetRepr,
    tpb: int,
    device: DeviceSpec,
) -> KernelTally:
    ws = device.warp_size
    active = shape.active_ids
    deg = shape.degrees.astype(np.float64)
    work = costs.C_NODE + shape.guard_cost + deg * shape.edge_cost

    if workset is WorksetRepr.BITMAP:
        # All n threads launched in node-id order; inactive lanes early-out
        # after the flag check, so a warp costs C_CHECK plus the max of its
        # active lanes' work.  Only warps containing active lanes do real
        # work (and supply latency hiding).
        n = shape.num_nodes
        launch = LaunchConfig.for_elements(n, tpb, device)
        num_warps = launch.total_warps(device)
        warp_cost = np.full(num_warps, costs.C_CHECK, dtype=np.float64)
        if active.size:
            np.maximum.at(warp_cost, active // ws, costs.C_CHECK + work)
        useful = n * costs.C_CHECK + float(work.sum())
    else:
        # Only |WS| threads launched; queue entries are node ids in
        # ascending order (the generation kernel scans the update vector
        # in index order).
        launch = LaunchConfig.for_elements(max(1, active.size), tpb, device)
        num_warps = launch.total_warps(device)
        warp_cost = np.full(num_warps, costs.C_CHECK, dtype=np.float64)
        if active.size:
            lane_work = costs.C_CHECK + work
            pad = num_warps * ws
            padded = np.zeros(pad, dtype=np.float64)
            padded[: active.size] = lane_work
            warp_cost = np.maximum(warp_cost, padded.reshape(num_warps, ws).max(axis=1))
        useful = active.size * costs.C_CHECK + float(work.sum())

    issue = float(warp_cost.sum())
    # Per-block critical path: warps of the same block issue serially on
    # one SM, so the heaviest block is the sum of its warps' costs.
    wpb = launch.warps_per_block(device)
    max_block = _max_block_cycles(warp_cost, wpb)

    # Thread mapping's memory parallelism: one outstanding neighbor fetch
    # per active element (each thread walks its list serially), so the
    # latency-hiding width is |WS| lanes — identically for bitmap and
    # queue, since only the packing differs.
    active_warps = -(-active.size // ws)

    mem = _membership_read_transactions(shape, workset, Mapping.THREAD, device)
    mem += _node_and_edge_transactions(shape, Mapping.THREAD, device)

    return KernelTally(
        name=shape.name,
        launch=launch,
        issue_cycles=issue,
        useful_lane_cycles=useful,
        max_block_cycles=max_block,
        mem_transactions=mem,
        atomics_multi_address=float(shape.improved),
        atomic_address_count=max(1, shape.updated_count),
        active_threads=int(active.size),
        active_warps=active_warps,
    )


# ----------------------------------------------------------------------
# Block mapping
# ----------------------------------------------------------------------

def _block_tally(
    shape: ComputationShape,
    workset: WorksetRepr,
    tpb: int,
    device: DeviceSpec,
) -> KernelTally:
    ws = device.warp_size
    active = shape.active_ids
    deg = shape.degrees.astype(np.float64)
    warps_per_block = -(-tpb // ws)

    # Neighborhood rounds: ceil(deg / tpb) sweeps of the whole block; each
    # sweep issues one edge-visit instruction bundle per warp of the
    # block, busy lanes or not — this is where sub-warp outdegrees waste
    # cores (Section IV.B).
    rounds = np.ceil(deg / tpb)
    rounds = np.maximum(rounds, (deg > 0).astype(np.float64))
    active_block_cost = (
        costs.C_CHECK
        + shape.guard_cost
        + costs.C_NODE
        + rounds * warps_per_block * shape.edge_cost
    )

    if workset is WorksetRepr.BITMAP:
        num_blocks = max(1, shape.num_nodes)
        inactive_blocks = num_blocks - active.size
        issue = float(active_block_cost.sum()) + inactive_blocks * costs.C_CHECK
        useful = shape.num_nodes * costs.C_CHECK + float(
            (costs.C_NODE + deg * shape.edge_cost).sum()
        )
    else:
        num_blocks = max(1, active.size)
        issue = float(active_block_cost.sum()) if active.size else costs.C_CHECK
        useful = float((costs.C_CHECK + costs.C_NODE + deg * shape.edge_cost).sum())

    launch = LaunchConfig(num_blocks, tpb)
    max_block = float(active_block_cost.max()) if active.size else costs.C_CHECK

    mem = _membership_read_transactions(shape, workset, Mapping.BLOCK, device)
    mem += _node_and_edge_transactions(shape, Mapping.BLOCK, device)

    return KernelTally(
        name=shape.name,
        launch=launch,
        issue_cycles=issue,
        useful_lane_cycles=useful,
        max_block_cycles=max_block,
        mem_transactions=mem,
        atomics_multi_address=float(shape.improved),
        atomic_address_count=max(1, shape.updated_count),
        active_threads=int(active.size),
        # Block mapping's two-level parallelism: every neighbor of an
        # active element is fetched by its own lane, so the
        # latency-hiding width is min(deg, tpb) lanes per block.
        active_warps=max(
            1 if active.size else 0,
            int(np.minimum(deg, tpb).sum()) // device.warp_size,
        ),
    )


# ----------------------------------------------------------------------
# Virtual-warp mapping (extension: Hong et al.'s intermediate granularity)
# ----------------------------------------------------------------------

def _warp_tally(
    shape: ComputationShape,
    workset: WorksetRepr,
    tpb: int,
    device: DeviceSpec,
) -> KernelTally:
    """One working-set element per 32-lane warp.

    The warp visits its element's neighborhood cooperatively in rounds
    of ``warp_size`` lanes: a hub node no longer serializes a whole warp
    (thread mapping's failure mode), and a low-degree node wastes at
    most one warp-round instead of a whole block's (block mapping's
    failure mode).  The price is that each element occupies 32 lanes, so
    sub-warp outdegrees still idle cores.
    """
    ws = device.warp_size
    active = shape.active_ids
    deg = shape.degrees.astype(np.float64)
    wpb = -(-tpb // ws)

    rounds = np.ceil(deg / ws)
    rounds = np.maximum(rounds, (deg > 0).astype(np.float64))
    active_warp_cost = (
        costs.C_CHECK + shape.guard_cost + costs.C_NODE + rounds * shape.edge_cost
    )

    if workset is WorksetRepr.BITMAP:
        # One virtual warp per node: n warps = n/wpb blocks of tpb lanes.
        num_warps = max(1, shape.num_nodes)
        issue = float(active_warp_cost.sum()) + (num_warps - active.size) * costs.C_CHECK
        useful = shape.num_nodes * costs.C_CHECK + float(
            (costs.C_NODE + deg * shape.edge_cost).sum()
        )
        # Each warp's lane 0 reads its own flag byte: 32-byte transactions.
        membership_mem = shape.num_nodes * SCATTER_FRACTION
    else:
        num_warps = max(1, active.size)
        issue = float(active_warp_cost.sum()) if active.size else costs.C_CHECK
        useful = float((costs.C_CHECK + costs.C_NODE + deg * shape.edge_cost).sum())
        membership_mem = active.size * SCATTER_FRACTION

    num_blocks = -(-num_warps // wpb)
    launch = LaunchConfig(max(1, num_blocks), tpb)

    # Critical path: the wpb warps co-resident in one block issue
    # serially; bound by the heaviest wpb elements stacked together.
    if active.size:
        top = np.sort(active_warp_cost)[-min(wpb, active_warp_cost.size):]
        max_block = float(top.sum())
    else:
        max_block = costs.C_CHECK

    mem = membership_mem + _node_and_edge_transactions(shape, Mapping.WARP, device)

    return KernelTally(
        name=shape.name,
        launch=launch,
        issue_cycles=issue,
        useful_lane_cycles=useful,
        max_block_cycles=max_block,
        mem_transactions=mem,
        atomics_multi_address=float(shape.improved),
        atomic_address_count=max(1, shape.updated_count),
        active_threads=int(active.size),
        # Cooperative neighbor fetches: min(deg, warp) lanes per element.
        active_warps=max(
            1 if active.size else 0,
            int(np.minimum(deg, ws).sum()) // ws,
        ),
    )


# ----------------------------------------------------------------------
# Shared memory-traffic accounting
# ----------------------------------------------------------------------

def _membership_read_transactions(
    shape: ComputationShape,
    workset: WorksetRepr,
    mapping: Mapping,
    device: DeviceSpec,
) -> float:
    tb = device.transaction_bytes
    if workset is WorksetRepr.BITMAP:
        if mapping is Mapping.THREAD:
            # Consecutive threads stream consecutive flag bytes: coalesced.
            return float(np.ceil(shape.num_nodes / tb))
        # One flag byte per block, read by lane 0 of each block: one
        # (32-byte) transaction per block.
        return shape.num_nodes * SCATTER_FRACTION
    if mapping is Mapping.THREAD:
        return float(np.ceil(shape.active_ids.size * 4 / tb))
    return shape.active_ids.size * SCATTER_FRACTION


def _node_and_edge_transactions(
    shape: ComputationShape, mapping: Mapping, device: DeviceSpec
) -> float:
    active = shape.active_ids
    if active.size == 0:
        return 0.0
    deg = shape.degrees.astype(np.float64)
    total_edges = float(deg.sum())

    # Row-offset loads: two 8-byte values per active node, scattered.
    offsets = 2 * active.size * SCATTER_FRACTION

    # Adjacency (+ weight) streaming: cooperative mappings (block, warp)
    # read each list with consecutive lanes -> coalesced streaming;
    # thread mapping's lanes each walk their own list.
    streams = 1 + shape.weight_streams
    if mapping is Mapping.THREAD:
        adjacency = streams * total_edges * THREAD_ADJ_FRACTION
    else:
        adjacency = streams * segment_stream_transactions(deg, 4, device)

    # Neighbor state loads: fully scattered, both mappings.
    state_loads = total_edges * SCATTER_FRACTION

    # Improving relaxations write state + update flag, scattered.
    update_writes = 2 * shape.improved * SCATTER_FRACTION

    return float(offsets + adjacency + state_loads + update_writes)


def _max_block_cycles(warp_cost: np.ndarray, warps_per_block: int) -> float:
    """Max over blocks of the sum of their warps' issue costs."""
    if warp_cost.size == 0:
        return 0.0
    num_blocks = -(-warp_cost.size // warps_per_block)
    padded = np.zeros(num_blocks * warps_per_block, dtype=np.float64)
    padded[: warp_cost.size] = warp_cost
    return float(padded.reshape(num_blocks, warps_per_block).sum(axis=1).max())
