"""Multi-source (batched) computation and workset-generation kernels.

The serving layer (:mod:`repro.serve`) stacks many queries' per-query
state into one 2-D batch — one row per query over the same device-resident
graph — so one ``run_frame``-style loop serves the whole batch.  The
*functional* update of each row is exactly the single-source relaxation
(:func:`~repro.kernels.computation.bfs_relax` /
:func:`~repro.kernels.computation.sssp_relax` on the row's own frontier
and value array), which is what keeps batched answers bit-identical to
single-source runs.  What changes is the *cost*: rows that run the same
variant in the same super-iteration share one fused kernel launch whose
grid covers every row's slots, so the per-launch overheads (driver
launch latency, block dispatch) are paid once per group instead of once
per query — and small frontiers stacked together supply each other's
memory-latency hiding, exactly the effect that makes batching pay on a
real GPU.

Fused pricing maps each row into its own ``num_nodes``-sized slab of a
conceptual ``rows x n`` grid (node ``v`` of row ``q`` occupies slot
``q * n + v``), so warp attribution and membership traffic scale with
the true fused launch shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.gpusim.device import DeviceSpec
from repro.gpusim.kernel import KernelTally
from repro.kernels import costs
from repro.kernels.mapping import ComputationShape, computation_tally
from repro.kernels.variants import Variant, WorksetRepr
from repro.kernels.workset import workset_gen_tallies

__all__ = [
    "RowRelaxation",
    "fused_computation_tally",
    "fused_workset_gen_tallies",
    "fused_readback_bytes",
]


@dataclass(frozen=True)
class RowRelaxation:
    """One query row's structural profile inside a fused launch."""

    #: the row's active node ids (its frontier, ascending)
    active_ids: np.ndarray
    #: outdegree of each active node (parallel to active_ids)
    degrees: np.ndarray
    #: improving relaxations the row performed
    improved: int
    #: distinct nodes of the row whose state improved
    updated_count: int


def fused_computation_tally(
    rows: Sequence[RowRelaxation],
    variant: Variant,
    tpb: int,
    num_nodes: int,
    device: DeviceSpec,
    *,
    edge_cost: float = costs.C_EDGE,
    weight_streams: int = 0,
    name: str = "batch_comp",
) -> KernelTally:
    """Price one fused multi-source computation launch.

    The fused grid covers ``len(rows)`` row-slabs of ``num_nodes`` slots
    each; row *q*'s active ids are offset into slab *q* so divergence,
    membership traffic and atomic diversity reflect the stacked shape.
    Every row must run the same *variant* (callers group by variant).
    """
    if not rows:
        raise ValueError("fused_computation_tally needs at least one row")
    active = np.concatenate(
        [row.active_ids + q * num_nodes for q, row in enumerate(rows)]
    )
    degrees = np.concatenate([row.degrees for row in rows])
    shape = ComputationShape(
        name=name,
        num_nodes=num_nodes * len(rows),
        active_ids=active,
        degrees=degrees,
        edge_cost=edge_cost,
        improved=sum(row.improved for row in rows),
        updated_count=sum(row.updated_count for row in rows),
        weight_streams=weight_streams,
    )
    return computation_tally(
        shape, variant.mapping, variant.workset, tpb, device
    )


def fused_workset_gen_tallies(
    num_nodes: int,
    updated_counts: Sequence[int],
    representation: WorksetRepr,
    device: DeviceSpec,
    *,
    scheme: str = "atomic",
    name: str = "batch_workset_gen",
    entry_bytes: int = 4,
) -> List[KernelTally]:
    """Tallies of one fused multi-source generation launch.

    One thread-mapped sweep over the stacked ``rows x n`` update matrix
    emits every row's next working set (each row's slab feeds its own
    queue counter / bitmap), replacing one generation launch per query.
    *entry_bytes* is each emitted slot's record size (the spec's
    ``workset_entry_bytes`` — 4 B for every batchable spec today, but
    honored here so slab pricing never silently assumes it).
    """
    if not updated_counts:
        return []
    return workset_gen_tallies(
        num_nodes * len(updated_counts),
        int(sum(updated_counts)),
        representation,
        device,
        scheme=scheme,
        name=name,
        entry_bytes=entry_bytes,
    )


def fused_readback_bytes(num_active_rows: int) -> int:
    """Payload of the fused per-super-iteration size readback: the 4-byte
    working-set size of every still-active row in one d2h copy (one PCIe
    latency per super-iteration instead of one per query)."""
    return 4 * max(1, int(num_active_rows))
