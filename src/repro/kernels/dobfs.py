"""Direction-optimizing BFS (push/pull) — a forward-looking extension.

The paper's adaptive runtime switches *implementations* of the same
top-down sweep.  The next idea in this line of work (Beamer et al.,
later Enterprise and Gunrock) switches the sweep's *direction*: when the
frontier is a large fraction of the graph, it is cheaper for every
**unvisited** node to scan its in-neighbors and stop at the first one in
the frontier ("pull" / bottom-up) than for every frontier node to push
to all its out-neighbors.  This module adds that axis on top of the same
substrates, with Beamer's two-threshold heuristic:

- switch push -> pull when the frontier's outgoing edge count exceeds
  ``m / alpha`` (the push sweep would touch more edges than a pull sweep
  is likely to);
- switch pull -> push when the frontier shrinks below ``n / beta``.

Pull sweeps need the reverse adjacency (CSC); like real
direction-optimizing implementations, both CSR and CSC are resident on
the device (the initial transfer pays for both).

The pull kernel's cost profile differs structurally from push: every
unvisited node is scanned, but each stops at its *first* frontier
in-neighbor — the tally charges exactly the edges examined before the
hit, which the functional sweep computes precisely.

On the generic engine (:mod:`repro.engine`) the direction switch lives
inside :meth:`DobfsSpec.compute` (it needs the hysteresis state), while
a fixed :class:`_DirectionPolicy` satisfies the engine's policy seam —
DOBFS chooses directions, not ``{mapping} x {workset}`` variants, so
``supports_variants`` is False.  The checkpoint payload carries the
current direction so a resumed traversal keeps the hysteresis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.engine.driver import FrameContext, run_frame
from repro.engine.registry import AlgorithmInfo, register_algorithm
from repro.engine.spec import AlgorithmSpec, FrameState, StepOutcome
from repro.engine.types import TraversalResult, VariantPolicy
from repro.errors import KernelError
from repro.graph.csr import CSRGraph
from repro.graph.properties import _ragged_gather_indices, is_symmetric
from repro.gpusim.device import DeviceSpec, TESLA_C2070
from repro.gpusim.kernel import CostParams
from repro.gpusim.transfer import record_transfer
from repro.kernels import costs
from repro.kernels.computation import UNSET_LEVEL
from repro.kernels.mapping import ComputationShape, computation_tally
from repro.kernels.variants import Mapping, Ordering, Variant, WorksetRepr
from repro.kernels.workset import Workset
from repro.obs.context import observing

__all__ = ["DirectionConfig", "pull_step", "DobfsSpec", "direction_optimizing_bfs"]


@dataclass(frozen=True)
class DirectionConfig:
    """Beamer-style direction-switch thresholds."""

    #: push -> pull when frontier out-edges > m / alpha
    alpha: float = 14.0
    #: pull -> push when frontier size < n / beta
    beta: float = 24.0

    def __post_init__(self):
        if self.alpha <= 0 or self.beta <= 0:
            raise KernelError("alpha and beta must be > 0")


def pull_step(
    graph: CSRGraph,
    reverse: CSRGraph,
    frontier_mask: np.ndarray,
    levels: np.ndarray,
    level: int,
    threads_per_block: int,
    device: DeviceSpec,
):
    """One bottom-up sweep: every unvisited node scans its in-neighbors
    and joins the next frontier at the first hit.

    Returns ``(new_frontier_ids, tally, edges_examined)``.
    """
    unvisited = np.flatnonzero(levels == UNSET_LEVEL).astype(np.int64)
    if unvisited.size == 0:
        return np.empty(0, dtype=np.int64), None, 0
    offsets, cols = reverse.row_offsets, reverse.col_indices

    starts = offsets[unvisited]
    ends = offsets[unvisited + 1]
    seg_len = (ends - starts).astype(np.int64)
    idx = _ragged_gather_indices(starts, ends)
    hits = frontier_mask[cols[idx]]

    # Edges examined per node: position of the first hit + 1, or the full
    # in-degree when no in-neighbor is in the frontier (early exit).
    boundaries = np.zeros(idx.size, dtype=np.int64)
    if seg_len.size:
        nz = seg_len > 0
        seg_starts = np.concatenate([[0], np.cumsum(seg_len)[:-1]])
        # within-segment position of each edge
        pos = np.arange(idx.size, dtype=np.int64) - np.repeat(seg_starts[nz], seg_len[nz])
        big = np.iinfo(np.int64).max
        first_hit = np.full(unvisited.size, big, dtype=np.int64)
        if hits.any():
            hit_pos = pos[hits]
            seg_of_hit = np.repeat(np.arange(unvisited.size)[nz], seg_len[nz])[hits]
            np.minimum.at(first_hit, seg_of_hit, hit_pos)
        found = first_hit < big
        examined = np.where(found, first_hit + 1, seg_len)
    else:
        found = np.zeros(0, dtype=bool)
        examined = np.zeros(0, dtype=np.int64)

    new_frontier = unvisited[found]
    levels[new_frontier] = level

    shape = ComputationShape(
        name="bfs_pull",
        num_nodes=graph.num_nodes,
        active_ids=unvisited,
        degrees=examined,
        edge_cost=costs.C_EDGE,
        improved=int(found.sum()),
        updated_count=max(1, int(found.sum())),
    )
    # Pull is thread-mapped over the unvisited set with a bitmap of the
    # frontier (the standard formulation: the frontier is tested by
    # membership, not iterated).
    tally = computation_tally(
        shape, Mapping.THREAD, WorksetRepr.BITMAP, threads_per_block, device
    )
    return new_frontier, tally, int(examined.sum())


_PUSH_VARIANT = Variant(Ordering.UNORDERED, Mapping.THREAD, WorksetRepr.BITMAP)


class _DirectionPolicy(VariantPolicy):
    """DOBFS chooses sweep directions, not paper variants; the engine's
    policy seam gets the push kernel's variant and the run's name."""

    name = "direction-optimizing"

    def choose(self, iteration: int, workset_size: int) -> Variant:
        return _PUSH_VARIANT


class DobfsSpec(AlgorithmSpec):
    """Beamer-style push/pull BFS; ``values`` are the levels."""

    name = "dobfs"
    supports_variants = False
    adaptive_eligible = False
    default_variant = "U_T_BM"

    def __init__(self, config: Optional[DirectionConfig] = None):
        self.config = config or DirectionConfig()
        self._reverse: Optional[CSRGraph] = None

    def extra_transfers(self, ctx: FrameContext) -> None:
        if is_symmetric(ctx.graph):
            # Undirected graph: the CSR already is its own transpose.
            self._reverse = ctx.graph
        else:
            self._reverse = ctx.graph.reverse()
            # The CSC copy also rides the initial transfer.
            ctx.timeline.add_transfer(
                record_transfer("h2d", self._reverse.device_bytes(), ctx.device)
            )

    def init_state(self, ctx: FrameContext) -> FrameState:
        levels = np.full(ctx.graph.num_nodes, UNSET_LEVEL, dtype=np.int64)
        levels[ctx.source] = 0
        return FrameState(
            levels, np.array([ctx.source], dtype=np.int64), direction="push"
        )

    def default_cap(self, graph: CSRGraph) -> int:
        return 4 * graph.num_nodes + 64

    def cap_message(self, cap: int) -> str:
        return f"DO-BFS exceeded {cap} iterations"

    def tpb(self, variant: Variant, graph: CSRGraph, device: DeviceSpec) -> int:
        return 192

    def compute(self, ctx, state, variant, tpb) -> Optional[StepOutcome]:
        graph, config = ctx.graph, self.config
        n, m = graph.num_nodes, graph.num_edges
        frontier = state.frontier
        frontier_edges = int(graph.out_degrees[frontier].sum())
        if state.direction == "push" and frontier_edges > m / config.alpha:
            state.direction = "pull"
        elif state.direction == "pull" and frontier.size < n / config.beta:
            state.direction = "push"

        level = int(state.values[frontier[0]]) + 1
        if state.direction == "pull":
            frontier_mask = np.zeros(n, dtype=bool)
            frontier_mask[frontier] = True
            new_frontier, tally, edges = pull_step(
                graph, self._reverse, frontier_mask, state.values, level,
                tpb, ctx.device,
            )
            if tally is None:
                # Nothing left to visit: terminate with no generation,
                # readback or record, like the bespoke loop did.
                return None
            ctx.price(tally, "pull")
            processed = int((state.values == UNSET_LEVEL).sum()) + new_frontier.size
            improved = int(new_frontier.size)
        else:
            workset = Workset.from_update_ids(frontier, WorksetRepr.BITMAP)
            from repro.kernels.computation import bfs_step

            step = bfs_step(graph, workset, state.values, _PUSH_VARIANT, tpb, ctx.device)
            ctx.price(step.tally, "push")
            new_frontier, edges = step.updated, step.edges_scanned
            processed = step.processed
            improved = step.improved_relaxations

        return StepOutcome(
            next_frontier=new_frontier,
            updated_count=int(new_frontier.size),
            processed=processed,
            edges_scanned=edges,
            improved_relaxations=improved,
            label=state.direction,
        )

    def checkpoint_extra(self, state: FrameState) -> dict:
        return {"direction": state.direction}

    def resume_state(self, values, frontier, checkpoint) -> FrameState:
        return FrameState(
            values, frontier,
            direction=self._checkpoint_scalar(checkpoint, "direction"),
        )


def direction_optimizing_bfs(
    graph: CSRGraph,
    source: int,
    *,
    config: Optional[DirectionConfig] = None,
    device: DeviceSpec = TESLA_C2070,
    cost_params: Optional[CostParams] = None,
    max_iterations: Optional[int] = None,
    watchdog=None,
    checkpoint_keeper=None,
    resume_from=None,
    fault_hook=None,
    memory=None,
    observe=None,
    fusion=None,
) -> TraversalResult:
    """BFS with Beamer-style push/pull direction switching.

    Push iterations run the paper's ``U_T_BM`` kernel; pull iterations
    run the bottom-up kernel.  ``result.variants_used()`` reports
    ``"push"``/``"pull"`` per iteration.  The reliability keywords and
    *memory* are engine pass-throughs, as in
    :func:`~repro.kernels.frame.traverse_bfs`; *observe* installs an
    :class:`~repro.obs.Observer` for the run.
    """
    with observing(observe):
        return run_frame(
            graph,
            source,
            _DirectionPolicy(),
            DobfsSpec(config=config),
            device=device,
            cost_params=cost_params,
            max_iterations=max_iterations,
            watchdog=watchdog,
            checkpoint_keeper=checkpoint_keeper,
            resume_from=resume_from,
            fault_hook=fault_hook,
            memory=memory,
            fusion=fusion,
        )


def _cpu_dobfs_reference(graph, source, **params):
    from repro.cpu import cpu_bfs

    result = cpu_bfs(graph, source)
    return result.levels, result


register_algorithm(
    AlgorithmInfo(
        name="dobfs",
        summary="direction-optimizing BFS (Beamer push/pull switching)",
        make_spec=DobfsSpec,
        run_default=lambda graph, source, **kw: direction_optimizing_bfs(
            graph, source, **kw
        ),
        cpu_run=_cpu_dobfs_reference,
        adaptive_eligible=False,
        supports_variants=False,
        param_names=("config",),
    )
)
