"""Direction-optimizing BFS (push/pull) — a forward-looking extension.

The paper's adaptive runtime switches *implementations* of the same
top-down sweep.  The next idea in this line of work (Beamer et al.,
later Enterprise and Gunrock) switches the sweep's *direction*: when the
frontier is a large fraction of the graph, it is cheaper for every
**unvisited** node to scan its in-neighbors and stop at the first one in
the frontier ("pull" / bottom-up) than for every frontier node to push
to all its out-neighbors.  This module adds that axis on top of the same
substrates, with Beamer's two-threshold heuristic:

- switch push -> pull when the frontier's outgoing edge count exceeds
  ``m / alpha`` (the push sweep would touch more edges than a pull sweep
  is likely to);
- switch pull -> push when the frontier shrinks below ``n / beta``.

Pull sweeps need the reverse adjacency (CSC); like real
direction-optimizing implementations, both CSR and CSC are resident on
the device (the initial transfer pays for both).

The pull kernel's cost profile differs structurally from push: every
unvisited node is scanned, but each stops at its *first* frontier
in-neighbor — the tally charges exactly the edges examined before the
hit, which the functional sweep computes precisely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import KernelError
from repro.graph.csr import CSRGraph
from repro.graph.properties import _ragged_gather_indices
from repro.gpusim.device import DeviceSpec, TESLA_C2070
from repro.gpusim.kernel import CostModel, CostParams
from repro.gpusim.timeline import Timeline
from repro.gpusim.transfer import record_transfer
from repro.kernels import costs
from repro.kernels.computation import UNSET_LEVEL, bfs_relax
from repro.kernels.frame import (
    IterationRecord,
    TraversalResult,
    _final_transfers,
    _initial_transfers,
    _readback,
)
from repro.kernels.mapping import ComputationShape, computation_tally
from repro.kernels.variants import Mapping, Ordering, Variant, WorksetRepr
from repro.kernels.workset import Workset, workset_gen_tallies

__all__ = ["DirectionConfig", "pull_step", "direction_optimizing_bfs"]


@dataclass(frozen=True)
class DirectionConfig:
    """Beamer-style direction-switch thresholds."""

    #: push -> pull when frontier out-edges > m / alpha
    alpha: float = 14.0
    #: pull -> push when frontier size < n / beta
    beta: float = 24.0

    def __post_init__(self):
        if self.alpha <= 0 or self.beta <= 0:
            raise KernelError("alpha and beta must be > 0")


def pull_step(
    graph: CSRGraph,
    reverse: CSRGraph,
    frontier_mask: np.ndarray,
    levels: np.ndarray,
    level: int,
    threads_per_block: int,
    device: DeviceSpec,
):
    """One bottom-up sweep: every unvisited node scans its in-neighbors
    and joins the next frontier at the first hit.

    Returns ``(new_frontier_ids, tally, edges_examined)``.
    """
    unvisited = np.flatnonzero(levels == UNSET_LEVEL).astype(np.int64)
    if unvisited.size == 0:
        return np.empty(0, dtype=np.int64), None, 0
    offsets, cols = reverse.row_offsets, reverse.col_indices

    starts = offsets[unvisited]
    ends = offsets[unvisited + 1]
    seg_len = (ends - starts).astype(np.int64)
    idx = _ragged_gather_indices(starts, ends)
    hits = frontier_mask[cols[idx]]

    # Edges examined per node: position of the first hit + 1, or the full
    # in-degree when no in-neighbor is in the frontier (early exit).
    boundaries = np.zeros(idx.size, dtype=np.int64)
    if seg_len.size:
        nz = seg_len > 0
        seg_starts = np.concatenate([[0], np.cumsum(seg_len)[:-1]])
        # within-segment position of each edge
        pos = np.arange(idx.size, dtype=np.int64) - np.repeat(seg_starts[nz], seg_len[nz])
        big = np.iinfo(np.int64).max
        first_hit = np.full(unvisited.size, big, dtype=np.int64)
        if hits.any():
            hit_pos = pos[hits]
            seg_of_hit = np.repeat(np.arange(unvisited.size)[nz], seg_len[nz])[hits]
            np.minimum.at(first_hit, seg_of_hit, hit_pos)
        found = first_hit < big
        examined = np.where(found, first_hit + 1, seg_len)
    else:
        found = np.zeros(0, dtype=bool)
        examined = np.zeros(0, dtype=np.int64)

    new_frontier = unvisited[found]
    levels[new_frontier] = level

    shape = ComputationShape(
        name="bfs_pull",
        num_nodes=graph.num_nodes,
        active_ids=unvisited,
        degrees=examined,
        edge_cost=costs.C_EDGE,
        improved=int(found.sum()),
        updated_count=max(1, int(found.sum())),
    )
    # Pull is thread-mapped over the unvisited set with a bitmap of the
    # frontier (the standard formulation: the frontier is tested by
    # membership, not iterated).
    tally = computation_tally(
        shape, Mapping.THREAD, WorksetRepr.BITMAP, threads_per_block, device
    )
    return new_frontier, tally, int(examined.sum())


def direction_optimizing_bfs(
    graph: CSRGraph,
    source: int,
    *,
    config: Optional[DirectionConfig] = None,
    device: DeviceSpec = TESLA_C2070,
    cost_params: Optional[CostParams] = None,
    max_iterations: Optional[int] = None,
) -> TraversalResult:
    """BFS with Beamer-style push/pull direction switching.

    Push iterations run the paper's ``U_T_BM`` kernel; pull iterations
    run the bottom-up kernel.  ``result.variants_used()`` reports
    ``"push"``/``"pull"`` per iteration.
    """
    graph._check_node(source)
    config = config or DirectionConfig()
    from repro.graph.properties import is_symmetric

    model = CostModel(device, cost_params)
    timeline = Timeline()
    _initial_transfers(graph, timeline, device)
    if is_symmetric(graph):
        # Undirected graph: the CSR already is its own transpose.
        reverse = graph
    else:
        reverse = graph.reverse()
        # The CSC copy also rides the initial transfer.
        timeline.add_transfer(record_transfer("h2d", reverse.device_bytes(), device))

    n, m = graph.num_nodes, graph.num_edges
    levels = np.full(n, UNSET_LEVEL, dtype=np.int64)
    levels[source] = 0
    frontier = np.array([source], dtype=np.int64)
    push_variant = Variant(Ordering.UNORDERED, Mapping.THREAD, WorksetRepr.BITMAP)
    records: List[IterationRecord] = []
    iteration = 0
    direction = "push"
    cap = max_iterations if max_iterations is not None else 4 * n + 64

    while frontier.size:
        if iteration >= cap:
            raise KernelError(f"DO-BFS exceeded {cap} iterations")
        frontier_edges = int(graph.out_degrees[frontier].sum())
        if direction == "push" and frontier_edges > m / config.alpha:
            direction = "pull"
        elif direction == "pull" and frontier.size < n / config.beta:
            direction = "push"

        level = int(levels[frontier[0]]) + 1
        if direction == "pull":
            frontier_mask = np.zeros(n, dtype=bool)
            frontier_mask[frontier] = True
            new_frontier, tally, edges = pull_step(
                graph, reverse, frontier_mask, levels, level, 192, device
            )
            if tally is None:
                break
            cost = model.price(tally)
            timeline.add_kernel(iteration, tally, cost, "pull")
            seconds = cost.seconds
            processed = int((levels == UNSET_LEVEL).sum()) + new_frontier.size
            improved = int(new_frontier.size)
        else:
            workset = Workset.from_update_ids(frontier, WorksetRepr.BITMAP)
            from repro.kernels.computation import bfs_step

            step = bfs_step(graph, workset, levels, push_variant, 192, device)
            cost = model.price(step.tally)
            timeline.add_kernel(iteration, step.tally, cost, "push")
            seconds = cost.seconds
            new_frontier, edges = step.updated, step.edges_scanned
            processed = step.processed
            improved = step.improved_relaxations

        for tally in workset_gen_tallies(
            n, int(new_frontier.size), WorksetRepr.BITMAP, device
        ):
            gen_cost = model.price(tally)
            timeline.add_kernel(iteration, tally, gen_cost, direction)
            seconds += gen_cost.seconds
        _readback(timeline, device)

        records.append(
            IterationRecord(
                iteration=iteration,
                variant=direction,
                workset_size=int(frontier.size),
                processed=processed,
                updated=int(new_frontier.size),
                edges_scanned=edges,
                improved_relaxations=improved,
                seconds=seconds,
            )
        )
        frontier = new_frontier
        iteration += 1

    _final_transfers(graph, timeline, device)
    return TraversalResult(
        algorithm="dobfs",
        source=source,
        values=levels,
        iterations=records,
        timeline=timeline,
        device=device,
        policy_name="direction-optimizing",
    )
