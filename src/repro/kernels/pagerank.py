"""Push-based PageRank on the GPU frame — the second extension algorithm.

Residual-push PageRank is the textbook *unordered* amorphous algorithm
(Galois's running example, Section II's lineage): each sweep processes
every node whose residual exceeds the tolerance, absorbs the residual
into its rank, and scatter-adds ``damping * residual / outdegree`` to
its neighbors' residuals via ``atomicAdd`` — the same
working-set / update-vector structure as unordered BFS/SSSP, so the
variants and the adaptive runtime apply unchanged.

PageRank's working-set trajectory is distinctive: it *starts at all
nodes* (everyone holds initial residual), collapses quickly as
low-degree regions converge, then trickles for many iterations around
hubs — a mid-traversal mix that exercises every region of the decision
space in one run.

Expressed as :class:`PagerankSpec` on the generic engine
(:mod:`repro.engine`), the traversal inherits the reliability seams
(watchdog, checkpoint/resume — the checkpoint payload carries the
residual array — and fault hooks), memory-budget charging and observer
metrics that used to be BFS/SSSP-only.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.engine.driver import FrameContext, run_frame
from repro.engine.registry import AlgorithmInfo, register_algorithm
from repro.engine.spec import AlgorithmSpec, FrameState, StepOutcome
from repro.engine.types import StaticPolicy, TraversalResult, VariantPolicy
from repro.errors import KernelError
from repro.graph.csr import CSRGraph
from repro.graph.properties import _ragged_gather_indices
from repro.gpusim.device import DeviceSpec, TESLA_C2070
from repro.gpusim.kernel import CostParams
from repro.kernels import costs
from repro.kernels.computation import StepResult
from repro.kernels.mapping import ComputationShape, computation_tally
from repro.kernels.variants import Variant
from repro.kernels.workset import Workset
from repro.obs.context import observing

__all__ = ["pagerank_step", "PagerankSpec", "traverse_pagerank", "run_pagerank"]


def pagerank_step(
    graph: CSRGraph,
    workset: Workset,
    rank: np.ndarray,
    residual: np.ndarray,
    damping: float,
    tolerance: float,
    variant: Variant,
    threads_per_block: int,
    device: DeviceSpec,
    *,
    name: str = "pagerank_comp",
) -> StepResult:
    """One push sweep; mutates *rank* and *residual* in place.

    Returns the nodes whose residual crossed the tolerance during this
    sweep (the next working set).
    """
    frontier = workset.nodes
    if frontier.size == 0:
        raise KernelError("pagerank_step called with an empty working set")
    offsets, cols = graph.row_offsets, graph.col_indices
    degrees = graph.out_degrees[frontier]

    r = residual[frontier]
    rank[frontier] += r
    residual[frontier] = 0.0

    has_out = degrees > 0
    src = frontier[has_out]
    edges = 0
    improved = 0
    if src.size:
        idx = _ragged_gather_indices(offsets[src], offsets[src + 1])
        edges = int(idx.size)
        dst = cols[idx]
        share = np.repeat(
            damping * r[has_out] / degrees[has_out], degrees[has_out]
        )
        before = residual[dst] < tolerance
        np.add.at(residual, dst, share)
        crossed = before & (residual[dst] >= tolerance)
        improved = int(crossed.sum())
        updated = np.unique(dst[residual[dst] >= tolerance])
    else:
        updated = np.empty(0, dtype=np.int64)
    # Frontier members whose residual was re-raised above tolerance by
    # their own neighbors within this sweep stay in the working set.
    updated = np.union1d(
        updated, frontier[residual[frontier] >= tolerance]
    ).astype(np.int64)

    shape = ComputationShape(
        name=name,
        num_nodes=graph.num_nodes,
        active_ids=frontier,
        degrees=degrees,
        # Each push is a neighbor load + float divide share + atomicAdd.
        edge_cost=costs.C_EDGE_WEIGHTED,
        improved=edges,  # every push is an atomic residual update
        updated_count=max(1, int(updated.size)),
        weight_streams=0,
    )
    tally = computation_tally(
        shape, variant.mapping, variant.workset, threads_per_block, device
    )
    return StepResult(
        updated=updated,
        tally=tally,
        improved_relaxations=improved,
        edges_scanned=edges,
        processed=int(frontier.size),
    )


class PagerankSpec(AlgorithmSpec):
    """Residual-push PageRank: ``values`` are the ranks (float64)."""

    name = "pagerank"
    source_based = False
    #: the serial reference accumulates float pushes in a different
    #: order, so CPU ranks match GPU ranks only to tolerance
    cpu_exact = False

    def __init__(self, damping: float = 0.85, tolerance: float = 1e-6):
        if not 0 < damping < 1:
            raise KernelError(f"damping must be in (0, 1), got {damping}")
        if tolerance <= 0:
            raise KernelError(f"tolerance must be > 0, got {tolerance}")
        self.damping = damping
        self.tolerance = tolerance

    def init_state(self, ctx: FrameContext) -> FrameState:
        n = ctx.graph.num_nodes
        rank = np.zeros(n, dtype=np.float64)
        residual = np.full(n, (1.0 - self.damping) / max(1, n), dtype=np.float64)
        frontier = np.flatnonzero(residual >= self.tolerance).astype(np.int64)
        return FrameState(rank, frontier, residual=residual)

    def default_cap(self, graph: CSRGraph) -> int:
        return 1000 * max(1, int(np.log2(max(2, graph.num_nodes))))

    def cap_message(self, cap: int) -> str:
        return f"pagerank exceeded {cap} iterations; lower the tolerance"

    def first_choose_size(self, state: FrameState) -> int:
        # The true initial workset size: 0 (every node already under
        # tolerance) must skip the policy — the loop exits immediately.
        return int(state.frontier.size)

    def compute(self, ctx, state, variant, tpb) -> StepOutcome:
        workset = Workset.from_update_ids(state.frontier, variant.workset)
        step = pagerank_step(
            ctx.graph, workset, state.values, state.residual,
            self.damping, self.tolerance, variant, tpb, ctx.device,
        )
        ctx.price(step.tally)
        return StepOutcome(
            next_frontier=step.updated,
            updated_count=int(step.updated.size),
            processed=step.processed,
            edges_scanned=step.edges_scanned,
            improved_relaxations=step.improved_relaxations,
        )

    def checkpoint_extra(self, state: FrameState) -> dict:
        return {"residual": state.residual}

    def resume_state(self, values, frontier, checkpoint) -> FrameState:
        return FrameState(
            values, frontier,
            residual=self._checkpoint_scalar(checkpoint, "residual"),
        )


def traverse_pagerank(
    graph: CSRGraph,
    policy: VariantPolicy,
    *,
    damping: float = 0.85,
    tolerance: float = 1e-6,
    device: DeviceSpec = TESLA_C2070,
    cost_params: Optional[CostParams] = None,
    max_iterations: Optional[int] = None,
    queue_gen: str = "atomic",
    watchdog=None,
    checkpoint_keeper=None,
    resume_from=None,
    fault_hook=None,
    memory=None,
    fusion=None,
) -> TraversalResult:
    """Push PageRank under *policy*; ``result.values`` are the ranks.

    The reliability keywords (*watchdog*, *checkpoint_keeper*,
    *resume_from*, *fault_hook*) and *memory* are engine pass-throughs,
    as in :func:`~repro.kernels.frame.traverse_bfs`."""
    return run_frame(
        graph,
        -1,
        policy,
        PagerankSpec(damping=damping, tolerance=tolerance),
        device=device,
        cost_params=cost_params,
        max_iterations=max_iterations,
        queue_gen=queue_gen,
        watchdog=watchdog,
        checkpoint_keeper=checkpoint_keeper,
        resume_from=resume_from,
        fault_hook=fault_hook,
        memory=memory,
        fusion=fusion,
    )


def run_pagerank(
    graph: CSRGraph,
    variant: Union[Variant, str] = "U_T_BM",
    *,
    damping: float = 0.85,
    tolerance: float = 1e-6,
    device: DeviceSpec = TESLA_C2070,
    cost_params: Optional[CostParams] = None,
    max_iterations: Optional[int] = None,
    queue_gen: str = "atomic",
    observe=None,
    fusion=None,
) -> TraversalResult:
    """Run one static PageRank variant.

    *observe* installs an :class:`~repro.obs.Observer` for the run, as
    in :func:`~repro.kernels.bfs.run_bfs`."""
    if isinstance(variant, str):
        variant = Variant.parse(variant)
    with observing(observe):
        return traverse_pagerank(
            graph,
            StaticPolicy(variant),
            damping=damping,
            tolerance=tolerance,
            device=device,
            cost_params=cost_params,
            max_iterations=max_iterations,
            queue_gen=queue_gen,
            fusion=fusion,
        )


def _cpu_pagerank_reference(graph, source, *, damping=0.85, tolerance=1e-6, **params):
    from repro.cpu import cpu_pagerank

    # The "fast" engine processes whole above-tolerance sweeps, mirroring
    # the GPU kernel's iteration structure, so its fixpoint tracks the
    # GPU ranks far tighter than the FIFO engine's push ordering does.
    result = cpu_pagerank(graph, damping=damping, tolerance=tolerance, method="fast")
    return result.ranks, result


register_algorithm(
    AlgorithmInfo(
        name="pagerank",
        summary="residual-push PageRank: ranks to a tolerance",
        make_spec=PagerankSpec,
        traverse=lambda graph, source, policy, **kw: traverse_pagerank(
            graph, policy, **kw
        ),
        cpu_run=_cpu_pagerank_reference,
        source_based=False,
        cpu_exact=False,
        param_names=("damping", "tolerance"),
    )
)
