"""Push-based PageRank on the GPU frame — the second extension algorithm.

Residual-push PageRank is the textbook *unordered* amorphous algorithm
(Galois's running example, Section II's lineage): each sweep processes
every node whose residual exceeds the tolerance, absorbs the residual
into its rank, and scatter-adds ``damping * residual / outdegree`` to
its neighbors' residuals via ``atomicAdd`` — the same
working-set / update-vector structure as unordered BFS/SSSP, so the
variants and the adaptive runtime apply unchanged.

PageRank's working-set trajectory is distinctive: it *starts at all
nodes* (everyone holds initial residual), collapses quickly as
low-degree regions converge, then trickles for many iterations around
hubs — a mid-traversal mix that exercises every region of the decision
space in one run.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

from repro.errors import KernelError
from repro.graph.csr import CSRGraph
from repro.graph.properties import _ragged_gather_indices
from repro.gpusim.device import DeviceSpec, TESLA_C2070
from repro.gpusim.kernel import CostModel, CostParams
from repro.gpusim.timeline import Timeline
from repro.kernels import costs
from repro.kernels.computation import StepResult
from repro.kernels.frame import (
    IterationRecord,
    StaticPolicy,
    TraversalResult,
    VariantPolicy,
    _final_transfers,
    _initial_transfers,
    _readback,
    _tpb_for,
)
from repro.kernels.mapping import ComputationShape, computation_tally
from repro.kernels.variants import Variant
from repro.kernels.workset import Workset, workset_gen_tallies

__all__ = ["pagerank_step", "traverse_pagerank", "run_pagerank"]


def pagerank_step(
    graph: CSRGraph,
    workset: Workset,
    rank: np.ndarray,
    residual: np.ndarray,
    damping: float,
    tolerance: float,
    variant: Variant,
    threads_per_block: int,
    device: DeviceSpec,
    *,
    name: str = "pagerank_comp",
) -> StepResult:
    """One push sweep; mutates *rank* and *residual* in place.

    Returns the nodes whose residual crossed the tolerance during this
    sweep (the next working set).
    """
    frontier = workset.nodes
    if frontier.size == 0:
        raise KernelError("pagerank_step called with an empty working set")
    offsets, cols = graph.row_offsets, graph.col_indices
    degrees = graph.out_degrees[frontier]

    r = residual[frontier]
    rank[frontier] += r
    residual[frontier] = 0.0

    has_out = degrees > 0
    src = frontier[has_out]
    edges = 0
    improved = 0
    if src.size:
        idx = _ragged_gather_indices(offsets[src], offsets[src + 1])
        edges = int(idx.size)
        dst = cols[idx]
        share = np.repeat(
            damping * r[has_out] / degrees[has_out], degrees[has_out]
        )
        before = residual[dst] < tolerance
        np.add.at(residual, dst, share)
        crossed = before & (residual[dst] >= tolerance)
        improved = int(crossed.sum())
        updated = np.unique(dst[residual[dst] >= tolerance])
    else:
        updated = np.empty(0, dtype=np.int64)
    # Frontier members whose residual was re-raised above tolerance by
    # their own neighbors within this sweep stay in the working set.
    updated = np.union1d(
        updated, frontier[residual[frontier] >= tolerance]
    ).astype(np.int64)

    shape = ComputationShape(
        name=name,
        num_nodes=graph.num_nodes,
        active_ids=frontier,
        degrees=degrees,
        # Each push is a neighbor load + float divide share + atomicAdd.
        edge_cost=costs.C_EDGE_WEIGHTED,
        improved=edges,  # every push is an atomic residual update
        updated_count=max(1, int(updated.size)),
        weight_streams=0,
    )
    tally = computation_tally(
        shape, variant.mapping, variant.workset, threads_per_block, device
    )
    return StepResult(
        updated=updated,
        tally=tally,
        improved_relaxations=improved,
        edges_scanned=edges,
        processed=int(frontier.size),
    )


def traverse_pagerank(
    graph: CSRGraph,
    policy: VariantPolicy,
    *,
    damping: float = 0.85,
    tolerance: float = 1e-6,
    device: DeviceSpec = TESLA_C2070,
    cost_params: Optional[CostParams] = None,
    max_iterations: Optional[int] = None,
    queue_gen: str = "atomic",
) -> TraversalResult:
    """Push PageRank under *policy*; ``result.values`` are the ranks."""
    if not 0 < damping < 1:
        raise KernelError(f"damping must be in (0, 1), got {damping}")
    if tolerance <= 0:
        raise KernelError(f"tolerance must be > 0, got {tolerance}")
    model = CostModel(device, cost_params)
    timeline = Timeline()
    _initial_transfers(graph, timeline, device)

    n = graph.num_nodes
    rank = np.zeros(n, dtype=np.float64)
    residual = np.full(n, (1.0 - damping) / max(1, n), dtype=np.float64)
    frontier = np.flatnonzero(residual >= tolerance).astype(np.int64)
    records: List[IterationRecord] = []
    iteration = 0
    cap = max_iterations if max_iterations is not None else 1000 * max(
        1, int(np.log2(max(2, n)))
    )
    variant = policy.choose(0, max(1, int(frontier.size)))

    while frontier.size:
        if iteration >= cap:
            raise KernelError(
                f"pagerank exceeded {cap} iterations; lower the tolerance"
            )
        tpb = _tpb_for(variant, graph, device)
        workset = Workset.from_update_ids(frontier, variant.workset)

        step = pagerank_step(
            graph, workset, rank, residual, damping, tolerance,
            variant, tpb, device,
        )
        comp_cost = model.price(step.tally)
        timeline.add_kernel(iteration, step.tally, comp_cost, variant.code)
        seconds = comp_cost.seconds

        next_size = int(step.updated.size)
        next_variant = policy.choose(iteration + 1, next_size) if next_size else variant
        for tally in policy.overhead_tallies(iteration, workset.size, n, device):
            cost = model.price(tally)
            timeline.add_kernel(iteration, tally, cost, variant.code)
            seconds += cost.seconds
        for tally in workset_gen_tallies(
            n, next_size, next_variant.workset, device, scheme=queue_gen
        ):
            cost = model.price(tally)
            timeline.add_kernel(iteration, tally, cost, variant.code)
            seconds += cost.seconds
        _readback(timeline, device)

        record = IterationRecord(
            iteration=iteration,
            variant=variant.code,
            workset_size=workset.size,
            processed=step.processed,
            updated=next_size,
            edges_scanned=step.edges_scanned,
            improved_relaxations=step.improved_relaxations,
            seconds=seconds,
        )
        records.append(record)
        policy.notify(record)
        frontier = step.updated
        variant = next_variant
        iteration += 1

    _final_transfers(graph, timeline, device)
    return TraversalResult(
        algorithm="pagerank",
        source=-1,
        values=rank,
        iterations=records,
        timeline=timeline,
        device=device,
        policy_name=policy.name,
    )


def run_pagerank(
    graph: CSRGraph,
    variant: Union[Variant, str] = "U_T_BM",
    *,
    damping: float = 0.85,
    tolerance: float = 1e-6,
    device: DeviceSpec = TESLA_C2070,
    cost_params: Optional[CostParams] = None,
    max_iterations: Optional[int] = None,
    queue_gen: str = "atomic",
) -> TraversalResult:
    """Run one static PageRank variant."""
    if isinstance(variant, str):
        variant = Variant.parse(variant)
    return traverse_pagerank(
        graph,
        StaticPolicy(variant),
        damping=damping,
        tolerance=tolerance,
        device=device,
        cost_params=cost_params,
        max_iterations=max_iterations,
        queue_gen=queue_gen,
    )
