"""The implementation space: O/U x T/B x BM/QU (Figure 3).

A :class:`Variant` names one corner of the paper's 3-D exploration
space.  The naming convention follows Section VII: three fields joined
by underscores — ordering (``O``/``U``), mapping (``T``/``B``), working
set (``BM``/``QU``); e.g. ``U_B_QU`` is unordered, block-mapped, with a
queue working set.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

from repro.errors import KernelError
from repro.gpusim.device import DeviceSpec

__all__ = [
    "Ordering",
    "Mapping",
    "WorksetRepr",
    "Variant",
    "all_variants",
    "unordered_variants",
    "extended_variants",
    "THREAD_MAPPING_TPB",
    "block_mapping_tpb",
]


class Ordering(enum.Enum):
    """Ordered algorithms process working-set elements in key order and
    touch each element a minimum number of times; unordered ones process
    the whole set every sweep (Section IV.A)."""

    ORDERED = "O"
    UNORDERED = "U"


class Mapping(enum.Enum):
    """Work-to-hardware mapping granularity (Section IV.B): one element
    per thread, or one element per thread-block with the neighborhood
    visited cooperatively.

    ``WARP`` is this library's *extension* of the space — the
    intermediate granularity the paper points at ("nodes with a high
    outdegree can be split across multiple threads ... we limit
    ourselves to the two basic mapping strategies") and Hong et al.'s
    virtual warp-centric model: one element per 32-lane warp, neighbors
    visited cooperatively by the warp's lanes.  It is not part of the
    paper's evaluated space and is excluded from :func:`all_variants`;
    use :func:`extended_variants` to include it.
    """

    THREAD = "T"
    BLOCK = "B"
    WARP = "W"


class WorksetRepr(enum.Enum):
    """Working-set representation (Section IV.C)."""

    BITMAP = "BM"
    QUEUE = "QU"


#: threads per block for thread-based mapping — the paper's empirically
#: best configuration ("192 threads per block", Section VII.A)
THREAD_MAPPING_TPB = 192


def block_mapping_tpb(avg_out_degree: float, device: DeviceSpec) -> int:
    """Block-mapping block size: "the multiple of 32 closest to the
    average node outdegree in the graph" (Section VII.A), clamped to
    [warp size, device limit]."""
    ws = device.warp_size
    multiple = int(round(max(avg_out_degree, 1.0) / ws)) * ws
    return int(min(max(multiple, ws), device.max_threads_per_block))


@dataclass(frozen=True)
class Variant:
    """One point of the exploration space."""

    ordering: Ordering
    mapping: Mapping
    workset: WorksetRepr

    @property
    def code(self) -> str:
        """Paper-style short code, e.g. ``'U_T_BM'``."""
        return f"{self.ordering.value}_{self.mapping.value}_{self.workset.value}"

    @classmethod
    def parse(cls, code: str) -> "Variant":
        """Parse a paper-style code like ``'U_B_QU'`` (case-insensitive)."""
        parts = code.strip().upper().split("_")
        if len(parts) != 3:
            raise KernelError(
                f"variant code must have 3 fields like 'U_T_BM', got {code!r}"
            )
        try:
            return cls(Ordering(parts[0]), Mapping(parts[1]), WorksetRepr(parts[2]))
        except ValueError as exc:
            raise KernelError(f"invalid variant code {code!r}") from exc

    def threads_per_block(self, avg_out_degree: float, device: DeviceSpec) -> int:
        """The launch block size this variant uses on this graph."""
        if self.mapping is Mapping.BLOCK:
            return block_mapping_tpb(avg_out_degree, device)
        # Thread and virtual-warp mapping both use the empirically best
        # general-purpose block size (192 = 6 warps on Fermi).
        return min(THREAD_MAPPING_TPB, device.max_threads_per_block)

    def __str__(self) -> str:
        return self.code


def all_variants(ordering: Tuple[Ordering, ...] = (Ordering.ORDERED, Ordering.UNORDERED)) -> Tuple[Variant, ...]:
    """All 8 variants (or the 4 of one ordering) in table order:
    O_T_BM, O_T_QU, O_B_BM, O_B_QU, U_T_BM, U_T_QU, U_B_BM, U_B_QU."""
    out = []
    for o in ordering:
        for m in (Mapping.THREAD, Mapping.BLOCK):
            for w in (WorksetRepr.BITMAP, WorksetRepr.QUEUE):
                out.append(Variant(o, m, w))
    return tuple(out)


def unordered_variants() -> Tuple[Variant, ...]:
    """The 4 unordered variants the adaptive runtime switches between
    (Section VI.A: the framework uses only unordered versions)."""
    return all_variants(ordering=(Ordering.UNORDERED,))


def extended_variants() -> Tuple[Variant, ...]:
    """The unordered variants including the virtual-warp extension:
    U_T_*, U_W_*, U_B_* (6 variants)."""
    out = []
    for m in (Mapping.THREAD, Mapping.WARP, Mapping.BLOCK):
        for w in (WorksetRepr.BITMAP, WorksetRepr.QUEUE):
            out.append(Variant(Ordering.UNORDERED, m, w))
    return tuple(out)
