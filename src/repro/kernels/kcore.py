"""k-core decomposition on the GPU frame — the third extension algorithm.

Iterative peeling is another amorphous working-set computation: for
each k, the working set holds the still-alive nodes whose remaining
degree dropped below k; processing a node removes it (coreness = k-1)
and atomically decrements its neighbors' degrees, which may push *them*
into the working set.  When a k-stage drains, a filter kernel over the
alive set seeds the next stage.

The working-set trajectory is a sawtooth: each k-stage starts with a
burst (all sub-k nodes at once), cascades briefly, and drains —
repeating up to the maximum coreness.  It is the most switch-intensive
trajectory in the repository and a stress test for cheap switching.

On the generic engine (:mod:`repro.engine`) the multi-phase structure
maps onto the :meth:`~repro.engine.spec.AlgorithmSpec.refill` hook: when
a k-stage drains, :class:`KcoreSpec` prices the filter kernel and seeds
the next stage, or reports convergence when nothing is left alive.  The
checkpoint payload carries the remaining-degree array, the alive mask
and the current k, so a faulted decomposition resumes mid-sawtooth.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.engine.driver import FrameContext, run_frame
from repro.engine.registry import AlgorithmInfo, register_algorithm
from repro.engine.spec import AlgorithmSpec, FrameState, StepOutcome
from repro.engine.types import StaticPolicy, TraversalResult, VariantPolicy
from repro.errors import KernelError
from repro.graph.csr import CSRGraph
from repro.graph.properties import _ragged_gather_indices, is_symmetric
from repro.graph.transforms import symmetrize
from repro.gpusim.device import DeviceSpec, TESLA_C2070
from repro.gpusim.kernel import CostParams, KernelTally
from repro.gpusim.launch import LaunchConfig
from repro.kernels import costs
from repro.kernels.computation import StepResult
from repro.kernels.mapping import ComputationShape, computation_tally
from repro.kernels.variants import Variant
from repro.kernels.workset import GEN_TPB, Workset
from repro.obs.context import observing

__all__ = ["kcore_peel_step", "KcoreSpec", "traverse_kcore", "run_kcore"]


def kcore_peel_step(
    graph: CSRGraph,
    workset: Workset,
    degree: np.ndarray,
    alive: np.ndarray,
    coreness: np.ndarray,
    k: int,
    variant: Variant,
    threads_per_block: int,
    device: DeviceSpec,
    *,
    name: str = "kcore_comp",
) -> StepResult:
    """Peel one batch of sub-k nodes; mutates the state arrays in place.

    Returns the alive nodes whose degree dropped below k this sweep.
    """
    frontier = workset.nodes
    if frontier.size == 0:
        raise KernelError("kcore_peel_step called with an empty working set")
    offsets, cols = graph.row_offsets, graph.col_indices
    degrees_now = graph.out_degrees[frontier]

    coreness[frontier] = k - 1
    alive[frontier] = False
    idx = _ragged_gather_indices(offsets[frontier], offsets[frontier + 1])
    edges = int(idx.size)
    improved = 0
    if edges:
        neigh = cols[idx]
        before = degree[neigh] >= k
        np.subtract.at(degree, neigh, 1)
        crossed = before & (degree[neigh] < k)
        improved = int(crossed.sum())
        candidates = np.unique(neigh[(degree[neigh] < k)])
        updated = candidates[alive[candidates]].astype(np.int64)
    else:
        updated = np.empty(0, dtype=np.int64)

    shape = ComputationShape(
        name=name,
        num_nodes=graph.num_nodes,
        active_ids=frontier,
        degrees=degrees_now,
        edge_cost=costs.C_EDGE,  # neighbor load + atomicSub + compare
        improved=edges,  # every decrement is an atomic
        updated_count=max(1, int(updated.size)),
    )
    tally = computation_tally(
        shape, variant.mapping, variant.workset, threads_per_block, device
    )
    return StepResult(
        updated=updated,
        tally=tally,
        improved_relaxations=improved,
        edges_scanned=edges,
        processed=int(frontier.size),
    )


def _filter_tally(num_nodes: int, device: DeviceSpec) -> KernelTally:
    """The per-stage filter kernel: scan the alive set for degree < k."""
    launch = LaunchConfig.for_elements(max(1, num_nodes), GEN_TPB, device)
    warps = launch.total_warps(device)
    return KernelTally(
        name="kcore_filter",
        launch=launch,
        issue_cycles=float(warps * costs.C_CHECK * 2),
        useful_lane_cycles=float(num_nodes * costs.C_CHECK),
        max_block_cycles=float(launch.warps_per_block(device) * costs.C_CHECK * 2),
        mem_transactions=float(np.ceil(num_nodes * 5 / device.transaction_bytes)),
        active_threads=num_nodes,
    )


class KcoreSpec(AlgorithmSpec):
    """Iterative peeling: ``values`` are the per-node core numbers.

    Multi-phase: the engine's :meth:`refill` hook runs the per-stage
    filter kernel; ``state.k`` starts at 0 so the first refill seeds the
    k=1 stage."""

    name = "kcore"
    source_based = False
    default_variant = "U_B_QU"

    def init_state(self, ctx: FrameContext) -> FrameState:
        n = ctx.graph.num_nodes
        return FrameState(
            np.zeros(n, dtype=np.int64),  # coreness
            np.empty(0, dtype=np.int64),  # filled by the first refill
            degree=ctx.graph.out_degrees.copy().astype(np.int64),
            alive=np.ones(n, dtype=bool),
            k=0,
        )

    def prepare(self, graph: CSRGraph):
        work = graph if is_symmetric(graph) else symmetrize(graph)
        return work, (0.0 if work is graph else work.num_edges * 12e-9)

    def default_cap(self, graph: CSRGraph) -> int:
        return 8 * graph.num_nodes + 64

    def cap_message(self, cap: int) -> str:
        return f"k-core exceeded {cap} iterations"

    def first_choose_size(self, state: FrameState) -> int:
        # Every node enters the k=1 stage; 0 only for an empty graph,
        # where the policy must not be consulted at all.
        return int(state.values.size)

    def refill(self, ctx: FrameContext, state: FrameState):
        if not state.alive.any():
            return None
        state.k += 1
        # Stage seed: a filter kernel over the alive set.  On the
        # timeline (at the current iteration, under the current variant
        # label) but outside any iteration record, like the original
        # outer-loop seed.
        ctx.price_unattributed(_filter_tally(ctx.graph.num_nodes, ctx.device))
        ctx.readback()
        return np.flatnonzero(state.alive & (state.degree < state.k)).astype(np.int64)

    def compute(self, ctx, state, variant, tpb) -> StepOutcome:
        workset = Workset.from_update_ids(state.frontier, variant.workset)
        step = kcore_peel_step(
            ctx.graph, workset, state.degree, state.alive, state.values,
            state.k, variant, tpb, ctx.device,
        )
        ctx.price(step.tally)
        return StepOutcome(
            next_frontier=step.updated,
            updated_count=int(step.updated.size),
            processed=step.processed,
            edges_scanned=step.edges_scanned,
            improved_relaxations=step.improved_relaxations,
        )

    def checkpoint_extra(self, state: FrameState) -> dict:
        return {"degree": state.degree, "alive": state.alive, "k": state.k}

    def resume_state(self, values, frontier, checkpoint) -> FrameState:
        return FrameState(
            values,
            frontier,
            degree=self._checkpoint_scalar(checkpoint, "degree"),
            alive=self._checkpoint_scalar(checkpoint, "alive"),
            k=self._checkpoint_scalar(checkpoint, "k"),
        )


def traverse_kcore(
    graph: CSRGraph,
    policy: VariantPolicy,
    *,
    device: DeviceSpec = TESLA_C2070,
    cost_params: Optional[CostParams] = None,
    max_iterations: Optional[int] = None,
    queue_gen: str = "atomic",
    watchdog=None,
    checkpoint_keeper=None,
    resume_from=None,
    fault_hook=None,
    memory=None,
    fusion=None,
) -> TraversalResult:
    """k-core decomposition under *policy*; ``result.values`` are the
    per-node core numbers (direction ignored; directed inputs are
    symmetrized on the host first).  The reliability keywords and
    *memory* are engine pass-throughs, as in
    :func:`~repro.kernels.frame.traverse_bfs`."""
    return run_frame(
        graph,
        -1,
        policy,
        KcoreSpec(),
        device=device,
        cost_params=cost_params,
        max_iterations=max_iterations,
        queue_gen=queue_gen,
        watchdog=watchdog,
        checkpoint_keeper=checkpoint_keeper,
        resume_from=resume_from,
        fault_hook=fault_hook,
        memory=memory,
        fusion=fusion,
    )


def run_kcore(
    graph: CSRGraph,
    variant: Union[Variant, str] = "U_B_QU",
    *,
    device: DeviceSpec = TESLA_C2070,
    cost_params: Optional[CostParams] = None,
    max_iterations: Optional[int] = None,
    queue_gen: str = "atomic",
    observe=None,
    fusion=None,
) -> TraversalResult:
    """Run one static k-core variant.

    *observe* installs an :class:`~repro.obs.Observer` for the run, as
    in :func:`~repro.kernels.bfs.run_bfs`."""
    if isinstance(variant, str):
        variant = Variant.parse(variant)
    with observing(observe):
        return traverse_kcore(
            graph,
            StaticPolicy(variant),
            device=device,
            cost_params=cost_params,
            max_iterations=max_iterations,
            queue_gen=queue_gen,
            fusion=fusion,
        )


def _cpu_kcore_reference(graph, source, **params):
    from repro.cpu import cpu_kcore

    result = cpu_kcore(graph)
    return result.coreness, result


register_algorithm(
    AlgorithmInfo(
        name="kcore",
        summary="iterative-peeling k-core decomposition (core numbers)",
        make_spec=KcoreSpec,
        traverse=lambda graph, source, policy, **kw: traverse_kcore(
            graph, policy, **kw
        ),
        cpu_run=_cpu_kcore_reference,
        source_based=False,
        default_variant="U_B_QU",
    )
)
