"""k-core decomposition on the GPU frame — the third extension algorithm.

Iterative peeling is another amorphous working-set computation: for
each k, the working set holds the still-alive nodes whose remaining
degree dropped below k; processing a node removes it (coreness = k-1)
and atomically decrements its neighbors' degrees, which may push *them*
into the working set.  When a k-stage drains, a filter kernel over the
alive set seeds the next stage.

The working-set trajectory is a sawtooth: each k-stage starts with a
burst (all sub-k nodes at once), cascades briefly, and drains —
repeating up to the maximum coreness.  It is the most switch-intensive
trajectory in the repository and a stress test for cheap switching.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

from repro.errors import KernelError
from repro.graph.csr import CSRGraph
from repro.graph.properties import _ragged_gather_indices, is_symmetric
from repro.graph.transforms import symmetrize
from repro.gpusim.device import DeviceSpec, TESLA_C2070
from repro.gpusim.kernel import CostModel, CostParams, KernelTally
from repro.gpusim.launch import LaunchConfig
from repro.gpusim.timeline import Timeline
from repro.kernels import costs
from repro.kernels.computation import StepResult
from repro.kernels.frame import (
    IterationRecord,
    StaticPolicy,
    TraversalResult,
    VariantPolicy,
    _final_transfers,
    _initial_transfers,
    _readback,
    _tpb_for,
)
from repro.kernels.mapping import ComputationShape, computation_tally
from repro.kernels.variants import Variant
from repro.kernels.workset import GEN_TPB, Workset, workset_gen_tallies

__all__ = ["kcore_peel_step", "traverse_kcore", "run_kcore"]


def kcore_peel_step(
    graph: CSRGraph,
    workset: Workset,
    degree: np.ndarray,
    alive: np.ndarray,
    coreness: np.ndarray,
    k: int,
    variant: Variant,
    threads_per_block: int,
    device: DeviceSpec,
    *,
    name: str = "kcore_comp",
) -> StepResult:
    """Peel one batch of sub-k nodes; mutates the state arrays in place.

    Returns the alive nodes whose degree dropped below k this sweep.
    """
    frontier = workset.nodes
    if frontier.size == 0:
        raise KernelError("kcore_peel_step called with an empty working set")
    offsets, cols = graph.row_offsets, graph.col_indices
    degrees_now = graph.out_degrees[frontier]

    coreness[frontier] = k - 1
    alive[frontier] = False
    idx = _ragged_gather_indices(offsets[frontier], offsets[frontier + 1])
    edges = int(idx.size)
    improved = 0
    if edges:
        neigh = cols[idx]
        before = degree[neigh] >= k
        np.subtract.at(degree, neigh, 1)
        crossed = before & (degree[neigh] < k)
        improved = int(crossed.sum())
        candidates = np.unique(neigh[(degree[neigh] < k)])
        updated = candidates[alive[candidates]].astype(np.int64)
    else:
        updated = np.empty(0, dtype=np.int64)

    shape = ComputationShape(
        name=name,
        num_nodes=graph.num_nodes,
        active_ids=frontier,
        degrees=degrees_now,
        edge_cost=costs.C_EDGE,  # neighbor load + atomicSub + compare
        improved=edges,  # every decrement is an atomic
        updated_count=max(1, int(updated.size)),
    )
    tally = computation_tally(
        shape, variant.mapping, variant.workset, threads_per_block, device
    )
    return StepResult(
        updated=updated,
        tally=tally,
        improved_relaxations=improved,
        edges_scanned=edges,
        processed=int(frontier.size),
    )


def _filter_tally(num_nodes: int, device: DeviceSpec) -> KernelTally:
    """The per-stage filter kernel: scan the alive set for degree < k."""
    launch = LaunchConfig.for_elements(max(1, num_nodes), GEN_TPB, device)
    warps = launch.total_warps(device)
    return KernelTally(
        name="kcore_filter",
        launch=launch,
        issue_cycles=float(warps * costs.C_CHECK * 2),
        useful_lane_cycles=float(num_nodes * costs.C_CHECK),
        max_block_cycles=float(launch.warps_per_block(device) * costs.C_CHECK * 2),
        mem_transactions=float(np.ceil(num_nodes * 5 / device.transaction_bytes)),
        active_threads=num_nodes,
    )


def traverse_kcore(
    graph: CSRGraph,
    policy: VariantPolicy,
    *,
    device: DeviceSpec = TESLA_C2070,
    cost_params: Optional[CostParams] = None,
    max_iterations: Optional[int] = None,
    queue_gen: str = "atomic",
) -> TraversalResult:
    """k-core decomposition under *policy*; ``result.values`` are the
    per-node core numbers (direction ignored; directed inputs are
    symmetrized on the host first)."""
    work = graph if is_symmetric(graph) else symmetrize(graph)
    host_prep = 0.0 if work is graph else work.num_edges * 12e-9

    model = CostModel(device, cost_params)
    timeline = Timeline()
    _initial_transfers(work, timeline, device)
    timeline.add_host_seconds(host_prep)

    n = work.num_nodes
    degree = work.out_degrees.copy().astype(np.int64)
    alive = np.ones(n, dtype=bool)
    coreness = np.zeros(n, dtype=np.int64)
    records: List[IterationRecord] = []
    iteration = 0
    cap = max_iterations if max_iterations is not None else 8 * n + 64
    variant = policy.choose(0, max(1, n))
    k = 1

    while alive.any():
        # Stage seed: a filter kernel over the alive set.
        tally = _filter_tally(n, device)
        cost = model.price(tally)
        timeline.add_kernel(iteration, tally, cost, variant.code)
        _readback(timeline, device)
        frontier = np.flatnonzero(alive & (degree < k)).astype(np.int64)

        while frontier.size:
            if iteration >= cap:
                raise KernelError(f"k-core exceeded {cap} iterations")
            tpb = _tpb_for(variant, work, device)
            workset = Workset.from_update_ids(frontier, variant.workset)
            step = kcore_peel_step(
                work, workset, degree, alive, coreness, k, variant, tpb, device
            )
            comp_cost = model.price(step.tally)
            timeline.add_kernel(iteration, step.tally, comp_cost, variant.code)
            seconds = comp_cost.seconds

            next_size = int(step.updated.size)
            next_variant = (
                policy.choose(iteration + 1, next_size) if next_size else variant
            )
            for tally in policy.overhead_tallies(iteration, workset.size, n, device):
                cost = model.price(tally)
                timeline.add_kernel(iteration, tally, cost, variant.code)
                seconds += cost.seconds
            for tally in workset_gen_tallies(
                n, next_size, next_variant.workset, device, scheme=queue_gen
            ):
                cost = model.price(tally)
                timeline.add_kernel(iteration, tally, cost, variant.code)
                seconds += cost.seconds
            _readback(timeline, device)

            records.append(
                IterationRecord(
                    iteration=iteration,
                    variant=variant.code,
                    workset_size=workset.size,
                    processed=step.processed,
                    updated=next_size,
                    edges_scanned=step.edges_scanned,
                    improved_relaxations=step.improved_relaxations,
                    seconds=seconds,
                )
            )
            policy.notify(records[-1])
            frontier = step.updated
            variant = next_variant
            iteration += 1
        k += 1

    _final_transfers(work, timeline, device)
    return TraversalResult(
        algorithm="kcore",
        source=-1,
        values=coreness,
        iterations=records,
        timeline=timeline,
        device=device,
        policy_name=policy.name,
    )


def run_kcore(
    graph: CSRGraph,
    variant: Union[Variant, str] = "U_B_QU",
    *,
    device: DeviceSpec = TESLA_C2070,
    cost_params: Optional[CostParams] = None,
    max_iterations: Optional[int] = None,
    queue_gen: str = "atomic",
) -> TraversalResult:
    """Run one static k-core variant."""
    if isinstance(variant, str):
        variant = Variant.parse(variant)
    return traverse_kcore(
        graph,
        StaticPolicy(variant),
        device=device,
        cost_params=cost_params,
        max_iterations=max_iterations,
        queue_gen=queue_gen,
    )
