"""Working-set representations and the ``CUDA_workset_gen`` kernel.

Both representations are generated from the same *update vector* (one
flag per node set by the computation kernel), which is the paper's key
enabler for cheap runtime switching (Section VI: "data structures that
lead to minimal overhead when switching between implementations"): the
next iteration can materialize either a bitmap or a queue from the same
flags, so changing representation costs nothing beyond the generation
kernel that runs every iteration anyway.

- **bitmap generation**: every thread copies its flag — no
  synchronization (Section V.C);
- **queue generation**: every set thread reserves a slot with an
  ``atomicAdd`` on a single counter — correct but serialized on the hot
  counter;
- **scan-based generation** (the Merrill-style optimization the paper
  cites as orthogonal): an exclusive prefix scan of the flags computes
  each set element's queue index with no atomics, at the cost of extra
  sweeps;
- **hierarchical generation** (Luo et al.'s optimization, also cited as
  orthogonal): each block first builds a per-block queue in shared
  memory — shared-memory atomics are an order of magnitude cheaper than
  global ones — then reserves one contiguous global slot range with a
  *single* global atomic per block and copies its chunk out coalesced.

The generation scheme is selected per traversal (``queue_gen=``); the
paper's baseline is ``"atomic"``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import WorksetError
from repro.gpusim.device import DeviceSpec
from repro.gpusim.kernel import KernelTally
from repro.gpusim.launch import LaunchConfig
from repro.gpusim.scan import scan_tallies
from repro.kernels import costs
from repro.kernels.variants import WorksetRepr

__all__ = ["Workset", "workset_gen_tallies", "GEN_TPB", "QUEUE_GEN_SCHEMES"]

#: block size of the generation kernel (thread-mapped over the update
#: vector regardless of the computation kernel's mapping)
GEN_TPB = 192

#: queue-generation schemes: the paper's atomic baseline, Merrill et
#: al.'s prefix scan, and Luo et al.'s shared-memory hierarchical queue
QUEUE_GEN_SCHEMES = ("atomic", "scan", "hierarchical")

#: cycles per shared-memory atomic within a block's hierarchical queue
#: (an order of magnitude cheaper than the global L2 atomic unit)
_SHARED_ATOMIC_CYCLES = 0.3


@dataclass(frozen=True)
class Workset:
    """A materialized working set: the active node ids plus how they are
    represented on the device.

    ``nodes`` is always ascending — the queue produced by scanning the
    update vector in index order, or the set bits of the bitmap."""

    nodes: np.ndarray
    representation: WorksetRepr

    def __post_init__(self):
        arr = self.nodes
        if arr.ndim != 1:
            raise WorksetError("workset nodes must be a 1-D array")
        if arr.size > 1 and np.any(np.diff(arr) <= 0):
            raise WorksetError("workset nodes must be strictly ascending")

    @property
    def size(self) -> int:
        return int(self.nodes.size)

    @property
    def is_empty(self) -> bool:
        return self.nodes.size == 0

    @classmethod
    def from_update_ids(
        cls, updated: np.ndarray, representation: WorksetRepr
    ) -> "Workset":
        """Materialize the next working set from updated node ids."""
        arr = np.asarray(updated, dtype=np.int64).ravel()
        if arr.size > 1:
            arr = np.unique(arr)
        return cls(nodes=arr, representation=representation)


def workset_gen_tallies(
    num_nodes: int,
    updated_count: int,
    representation: WorksetRepr,
    device: DeviceSpec,
    *,
    use_scan: bool = False,
    scheme: str = "atomic",
    name: str = "workset_gen",
    entry_bytes: int = 4,
) -> List[KernelTally]:
    """Tallies of the generation kernel(s) for one iteration.

    The kernel is thread-mapped over the ``num_nodes``-long update
    vector: each thread checks one flag and, if set, emits the element
    into the chosen representation (Figure 9, ``CUDA_workset_gen``).

    For the queue representation, *scheme* selects how insertion indices
    are obtained: ``"atomic"`` (the paper's baseline — one global
    ``atomicAdd`` per element), ``"scan"`` (a prefix scan computes the
    indices; extra kernels, no atomics), or ``"hierarchical"``
    (per-block shared-memory queues with one global atomic per block).
    ``use_scan=True`` is a shorthand for ``scheme="scan"``.

    *entry_bytes* is the size of each emitted queue slot: 4 B for plain
    node ids, 8 B for an ordered frame's ``(node, key)`` pairs (the
    spec's ``workset_entry_bytes``).  Bitmap generation is unaffected —
    it writes one bit per node regardless of the entry record.
    """
    if updated_count > num_nodes:
        raise WorksetError(
            f"updated_count ({updated_count}) cannot exceed num_nodes ({num_nodes})"
        )
    if use_scan:
        scheme = "scan"
    if scheme not in QUEUE_GEN_SCHEMES:
        raise WorksetError(
            f"unknown queue generation scheme {scheme!r}; "
            f"expected one of {QUEUE_GEN_SCHEMES}"
        )
    n = max(1, num_nodes)
    u = int(updated_count)
    ws = device.warp_size
    tb = device.transaction_bytes

    launch = LaunchConfig.for_elements(n, GEN_TPB, device)
    num_warps = launch.total_warps(device)

    issue = num_warps * costs.C_GEN_SCAN + (u / ws + (1 if u else 0)) * costs.C_GEN_WRITE
    useful = n * costs.C_GEN_SCAN + u * costs.C_GEN_WRITE
    wpb = launch.warps_per_block(device)
    max_block = wpb * (costs.C_GEN_SCAN + costs.C_GEN_WRITE)

    # Reads: the update vector streams coalesced; it is also cleared in
    # the same pass (flag write).
    mem = 2.0 * np.ceil(n / tb)

    tallies: List[KernelTally] = []
    atomics_same = 0.0
    if representation is WorksetRepr.BITMAP:
        # Bitmap written coalesced alongside the scan.
        mem += np.ceil(n / tb)
    elif scheme == "scan":
        mem += u * entry_bytes / 32
        tallies.extend(scan_tallies(n, device, name=f"{name}:scan"))
    elif scheme == "hierarchical":
        # Shared-memory staging: u cheap shared atomics (folded into the
        # issue stream), one global atomic per *block*, and a coalesced
        # copy-out of each block's chunk.
        issue += u * _SHARED_ATOMIC_CYCLES
        atomics_same = float(launch.grid_blocks)
        mem += np.ceil(u * entry_bytes / tb)  # coalesced chunk copy-out
    else:
        # Queue writes: set threads are sparse within their warps, so slot
        # stores quarter-coalesce.
        mem += u * entry_bytes / 32
        atomics_same = float(u)

    tallies.append(
        KernelTally(
            name=name,
            launch=launch,
            issue_cycles=float(issue),
            useful_lane_cycles=float(useful),
            max_block_cycles=float(max_block),
            mem_transactions=float(mem),
            atomics_same_address=atomics_same,
            active_threads=u,
        )
    )
    return tallies
