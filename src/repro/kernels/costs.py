"""Instruction-cost constants of the simulated kernels.

These are properties of the *kernel code* (how many warp instructions
the compiled loop bodies issue), as opposed to the hardware coefficients
in :class:`repro.gpusim.kernel.CostParams`.  Units: warp-instruction
issues for one warp performing the operation once.

The values approximate the Fermi SASS for the paper's kernel bodies
(Figure 9): a bounds/flag check is a couple of loads plus a predicated
branch; processing a node loads two row offsets and writes a level or
distance; visiting a neighbor loads its id, loads its state, compares,
and conditionally writes state + update flag.
"""

from __future__ import annotations

__all__ = [
    "C_CHECK",
    "C_NODE",
    "C_EDGE",
    "C_EDGE_WEIGHTED",
    "C_PAIR_CHECK",
    "C_GEN_SCAN",
    "C_GEN_WRITE",
]

#: bounds test + working-set membership check (bitmap load / queue read)
C_CHECK = 4.0

#: per-active-node processing: two offset loads, level/dist arithmetic,
#: state write
C_NODE = 16.0

#: per-neighbor visit for BFS: neighbor id load, state load, compare,
#: conditional state + update-flag stores
C_EDGE = 10.0

#: per-neighbor visit for SSSP: adds the weight load and the add
C_EDGE_WEIGHTED = 13.0

#: ordered variants: comparing an element's key against the iteration's
#: minimum (the selected-subset test)
C_PAIR_CHECK = 6.0

#: workset-generation: per-element update-flag check
C_GEN_SCAN = 3.0

#: workset-generation: per-set-element output write (bitmap bit or queue
#: slot; the queue's atomic index fetch is priced separately)
C_GEN_WRITE = 4.0
