"""Exception hierarchy for :mod:`repro`.

All errors raised intentionally by the library derive from
:class:`ReproError`, so callers can catch one base class.  Each subsystem
gets its own subclass; these carry no extra state beyond the message, but
having distinct types lets tests and users discriminate failure modes
without string matching.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "GraphFormatError",
    "IngestLimitError",
    "DeviceError",
    "DeviceOOMError",
    "DeviceLostError",
    "LaunchError",
    "KernelError",
    "NonConvergenceError",
    "WorksetError",
    "MemoryFaultError",
    "CheckpointError",
    "RuntimeConfigError",
    "FaultPlanError",
    "TuningError",
    "DatasetError",
]


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class GraphError(ReproError):
    """Invalid graph structure or graph-construction arguments."""


class GraphFormatError(GraphError):
    """A graph file (DIMACS / SNAP / Matrix Market) could not be parsed."""


class IngestLimitError(GraphError):
    """A graph file exceeded a configured ingestion resource limit
    (maximum vertices, edges, or bytes) and was refused at the door."""


class DeviceError(ReproError):
    """Inconsistent or unsupported simulated-device specification."""


class DeviceOOMError(DeviceError):
    """An allocation request exceeded the simulated device's memory
    budget.  Survivable: the guarded runner's OOM recovery ladder
    (spill, force-bitmap, checkpoint relief, CPU fallback) turns this
    into a slower-but-correct answer."""


class DeviceLostError(DeviceError):
    """A simulated device dropped off the bus mid-run (the analogue of
    an Xid / fallen-off-the-bus event): everything resident on it —
    graph shard, traversal state, working sets — is gone.  Survivable
    in sharded runs: the shard is restored from its checkpoint onto a
    surviving device or the run degrades to the CPU baseline."""


class LaunchError(ReproError):
    """A kernel launch configuration violates device limits."""


class KernelError(ReproError):
    """A simulated kernel was invoked with inconsistent arguments."""


class NonConvergenceError(KernelError):
    """A traversal exhausted its iteration or wall-clock budget without
    emptying the working set (the watchdog's verdict)."""


class WorksetError(ReproError):
    """Working-set (bitmap / queue) misuse, e.g. capacity overflow."""


class MemoryFaultError(DeviceError):
    """Simulated device-memory corruption detected mid-traversal (the
    analogue of an ECC double-bit error): the traversal state on the
    device can no longer be trusted and must be restored."""


class CheckpointError(ReproError):
    """A checkpoint failed its integrity verification on restore: one
    of its state fields no longer matches the SHA-256 digest captured
    at save time, so resuming from it would silently corrupt the run."""


class RuntimeConfigError(ReproError):
    """Invalid adaptive-runtime configuration (thresholds, policy, ...)."""


class FaultPlanError(RuntimeConfigError):
    """A declarative fault-injection plan is malformed (bad rates,
    unparseable JSON, unknown fault kind)."""


class TuningError(ReproError):
    """Threshold-tuning procedure failed or got degenerate inputs."""


class DatasetError(ReproError):
    """A named dataset analogue could not be generated as requested."""
