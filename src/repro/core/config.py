"""Configuration of the adaptive runtime.

The defaults encode the paper's tuned values for the Tesla C2070
(Section VII.B): T1 = 32 (the warp size), T2 = 192 threads/block x 14
SMs = 2,688, and T3 expressed as a fraction of the node count (the
Figure 13 sweep; 6 % is a good default across the six datasets).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.errors import RuntimeConfigError
from repro.gpusim.device import DeviceSpec
from repro.kernels.variants import THREAD_MAPPING_TPB

__all__ = ["RuntimeConfig"]


@dataclass(frozen=True)
class RuntimeConfig:
    """Thresholds and monitoring knobs of the adaptive runtime."""

    #: average-outdegree threshold discriminating thread vs. block
    #: mapping; ``None`` derives the warp size from the device (= T1)
    t1: Optional[float] = None
    #: working-set size below which block mapping is always used;
    #: ``None`` derives threads-per-block x num_SMs from the device (= T2)
    t2: Optional[int] = None
    #: working-set fraction of |V| above which the bitmap representation
    #: is used (= T3 / num_nodes); the paper tunes this per dataset in
    #: the 1-13 % band (Figure 13) — 3 % is this simulator's sweet spot
    t3_fraction: float = 0.03
    #: re-evaluate the decision every this many iterations (sampling,
    #: Section VI.E); 1 = every iteration
    sampling_interval: int = 1
    #: monitor the working set's own average outdegree with an extra
    #: reduction kernel (precise mode) instead of using the whole-graph
    #: average computed once at load time (the paper's default)
    monitor_workset_degree: bool = False
    #: how representation switches are charged: "shared" (the paper's
    #: shared update vector -> free) or "rebuild" (a naive runtime that
    #: re-materializes the working set on every representation change)
    switch_mode: str = "shared"
    #: extension: let the decision maker select the virtual-warp mapping
    #: for mid-range average outdegrees (outside the paper's space)
    use_warp_mapping: bool = False
    #: extension: lower degree bound of the warp-mapping band; ``None``
    #: derives warp_size / 8 from the device
    t1_low: Optional[float] = None
    #: queue-generation scheme: "atomic" (the paper's baseline), "scan"
    #: (Merrill-style prefix scan) or "hierarchical" (Luo-style
    #: shared-memory queues)
    queue_gen: str = "atomic"
    #: pin the working-set representation ("bitmap" or "queue")
    #: regardless of the decision maker's choice; the guard's OOM ladder
    #: uses "bitmap" to cap the footprint at O(|V|/8)
    force_workset: Optional[str] = None
    #: device-memory pressure (used/capacity) above which the decision
    #: maker switches to footprint-minimal choices
    pressure_threshold: float = 0.85

    def __post_init__(self):
        if self.t1 is not None and self.t1 <= 0:
            raise RuntimeConfigError(f"t1 must be > 0, got {self.t1}")
        if self.t2 is not None and self.t2 < 0:
            raise RuntimeConfigError(f"t2 must be >= 0, got {self.t2}")
        if not 0.0 < self.t3_fraction <= 1.0:
            raise RuntimeConfigError(
                f"t3_fraction must be in (0, 1], got {self.t3_fraction}"
            )
        if self.sampling_interval < 1:
            raise RuntimeConfigError(
                f"sampling_interval must be >= 1, got {self.sampling_interval}"
            )
        if self.switch_mode not in ("shared", "rebuild"):
            raise RuntimeConfigError(
                f"switch_mode must be 'shared' or 'rebuild', got {self.switch_mode!r}"
            )
        if self.t1_low is not None and self.t1_low <= 0:
            raise RuntimeConfigError(f"t1_low must be > 0, got {self.t1_low}")
        if self.queue_gen not in ("atomic", "scan", "hierarchical"):
            raise RuntimeConfigError(
                f"queue_gen must be 'atomic', 'scan' or 'hierarchical', "
                f"got {self.queue_gen!r}"
            )
        if self.force_workset not in (None, "bitmap", "queue"):
            raise RuntimeConfigError(
                f"force_workset must be None, 'bitmap' or 'queue', "
                f"got {self.force_workset!r}"
            )
        if not 0.0 < self.pressure_threshold <= 1.0:
            raise RuntimeConfigError(
                f"pressure_threshold must be in (0, 1], got {self.pressure_threshold}"
            )

    def resolve_t1(self, device: DeviceSpec) -> float:
        """T1: below-warp average outdegrees underutilize block mapping."""
        return float(self.t1) if self.t1 is not None else float(device.warp_size)

    def resolve_t2(self, device: DeviceSpec) -> int:
        """T2: working sets below threads/block x #SMs leave SMs idle
        under thread mapping (192 x 14 = 2,688 on the C2070)."""
        if self.t2 is not None:
            return int(self.t2)
        return THREAD_MAPPING_TPB * device.num_sms

    def resolve_t3(self, num_nodes: int) -> int:
        """T3 in absolute nodes for a graph of *num_nodes*."""
        return max(1, int(round(self.t3_fraction * num_nodes)))

    def resolve_t1_low(self, device: DeviceSpec) -> float:
        """Lower bound of the extended warp-mapping degree band."""
        if self.t1_low is not None:
            return float(self.t1_low)
        return device.warp_size / 8.0

    def resolve_thresholds(self, device: DeviceSpec, num_nodes: int):
        """All four thresholds for one (graph, device) pair, with the
        degenerate-ordering clamp applied (``T3 >= T2`` — tiny graphs
        otherwise resolve T3 below T2 and invert the Figure-11 regions).
        """
        from repro.core.decision import Thresholds

        t1 = self.resolve_t1(device)
        return Thresholds(
            t1=t1,
            t2=self.resolve_t2(device),
            t3=self.resolve_t3(num_nodes),
            t1_low=min(self.resolve_t1_low(device), t1),
        ).resolved()

    def with_overrides(self, **kwargs) -> "RuntimeConfig":
        return replace(self, **kwargs)
