"""Decision traces: what the adaptive runtime chose, when, and why.

Besides variant decisions, a trace records *reliability events*
(:class:`FaultEvent`): every fault injected or observed during a guarded
execution, together with the recovery action the guard took (retry,
variant fallback, checkpoint restore, CPU degradation).  A trace
therefore explains not only which implementation ran each iteration but
also why an execution path was taken at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["Decision", "DecisionTrace", "FaultEvent", "RECOVERY_ACTIONS"]

#: the guard's recovery ladder, in escalation order; "absorbed" marks
#: faults that perturb timing only and need no recovery (latency
#: spikes).  The three ``device_oom`` rungs (workset spill, forced
#: bitmap representation, checkpoint relief) sit between retry and CPU
#: degradation: each trades performance for footprint while keeping
#: answers bit-identical.
RECOVERY_ACTIONS = (
    "absorbed",
    "retry",
    "variant_fallback",
    "checkpoint_restore",
    "workset_spill",
    "force_bitmap",
    "checkpoint_relief",
    "cpu_degradation",
)


@dataclass(frozen=True)
class Decision:
    """One decision-maker invocation."""

    iteration: int
    workset_size: int
    avg_out_degree: float
    variant: str
    region: str
    switched: bool
    #: device-memory pressure (used/capacity) at decision time; 0.0
    #: when no budget is attached
    memory_pressure: float = 0.0
    #: True when memory pressure or a footprint fit-check overrode the
    #: performance-optimal choice
    forced_by_memory: bool = False


@dataclass(frozen=True)
class FaultEvent:
    """One fault plus the recovery action that answered it."""

    #: guarded-execution attempt (1-based) during which the fault fired
    attempt: int
    #: traversal iteration at injection time (-1 if outside the loop)
    iteration: int
    #: fault kind: "launch_failure", "memory_fault" or "latency_spike"
    kind: str
    #: kernel or site the fault hit (tally/launch name, "frame", ...)
    site: str
    #: recovery action taken (one of :data:`RECOVERY_ACTIONS`)
    action: str
    #: free-form detail (backoff applied, checkpoint iteration, ...)
    detail: str = ""


@dataclass
class DecisionTrace:
    """Ordered record of every decision taken during one traversal."""

    decisions: List[Decision] = field(default_factory=list)
    faults: List[FaultEvent] = field(default_factory=list)

    def record(self, decision: Decision) -> None:
        self.decisions.append(decision)

    def record_fault(self, event: FaultEvent) -> None:
        self.faults.append(event)

    @property
    def num_switches(self) -> int:
        return sum(1 for d in self.decisions if d.switched)

    @property
    def num_decisions(self) -> int:
        return len(self.decisions)

    @property
    def num_faults(self) -> int:
        return len(self.faults)

    def variants_chosen(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for d in self.decisions:
            out[d.variant] = out.get(d.variant, 0) + 1
        return out

    def recovery_actions(self) -> Dict[str, int]:
        """Fault counts grouped by the recovery action taken."""
        out: Dict[str, int] = {}
        for f in self.faults:
            out[f.action] = out.get(f.action, 0) + 1
        return out

    def switch_iterations(self) -> List[int]:
        return [d.iteration for d in self.decisions if d.switched]

    @property
    def num_memory_forced(self) -> int:
        """Decisions where memory pressure overrode the optimal variant."""
        return sum(1 for d in self.decisions if d.forced_by_memory)

    @property
    def peak_memory_pressure(self) -> float:
        """Highest device-memory pressure seen at any decision point."""
        return max((d.memory_pressure for d in self.decisions), default=0.0)
