"""Decision traces: what the adaptive runtime chose, when, and why."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["Decision", "DecisionTrace"]


@dataclass(frozen=True)
class Decision:
    """One decision-maker invocation."""

    iteration: int
    workset_size: int
    avg_out_degree: float
    variant: str
    region: str
    switched: bool


@dataclass
class DecisionTrace:
    """Ordered record of every decision taken during one traversal."""

    decisions: List[Decision] = field(default_factory=list)

    def record(self, decision: Decision) -> None:
        self.decisions.append(decision)

    @property
    def num_switches(self) -> int:
        return sum(1 for d in self.decisions if d.switched)

    @property
    def num_decisions(self) -> int:
        return len(self.decisions)

    def variants_chosen(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for d in self.decisions:
            out[d.variant] = out.get(d.variant, 0) + 1
        return out

    def switch_iterations(self) -> List[int]:
        return [d.iteration for d in self.decisions if d.switched]
