"""The graph inspector (Section VI.A).

The inspector supplies the decision maker's two inputs:

- **static attributes** of the graph (node/edge counts, min/max/average
  outdegree), computed once when the graph is loaded — "a value computed
  only once when reading the graph" (Section VI.E);
- **runtime attributes** — the working-set size (free: the generation
  kernel's queue counter) and optionally the working set's *own* average
  outdegree, which costs an extra reduction kernel and is therefore
  sampled (Section VI.E's overhead-reduction design: whole-graph average
  by default, sampling when precise monitoring is on).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.graph.csr import CSRGraph
from repro.gpusim.device import DeviceSpec
from repro.gpusim.kernel import KernelTally
from repro.gpusim.reduction import reduction_tallies

__all__ = ["StaticAttributes", "GraphInspector"]


@dataclass(frozen=True)
class StaticAttributes:
    """Topology attributes inspected once at graph-load time."""

    num_nodes: int
    num_edges: int
    min_out_degree: int
    max_out_degree: int
    avg_out_degree: float

    @classmethod
    def of(cls, graph: CSRGraph) -> "StaticAttributes":
        deg = graph.out_degrees
        if graph.num_nodes == 0:
            return cls(0, 0, 0, 0, 0.0)
        return cls(
            num_nodes=graph.num_nodes,
            num_edges=graph.num_edges,
            min_out_degree=int(deg.min()),
            max_out_degree=int(deg.max()),
            avg_out_degree=float(deg.mean()),
        )


class GraphInspector:
    """Monitors the attributes the decision maker consumes.

    Parameters
    ----------
    graph:
        The traversed graph (static attributes are derived immediately).
    sampling_interval:
        Measure runtime attributes only every k-th iteration; between
        samples the last measured values are reused.
    monitor_workset_degree:
        When true, each sample also measures the current working set's
        average outdegree with a reduction kernel whose cost the caller
        must charge (see :meth:`consume_overhead_tallies`).
    """

    def __init__(
        self,
        graph: CSRGraph,
        *,
        sampling_interval: int = 1,
        monitor_workset_degree: bool = False,
    ):
        if sampling_interval < 1:
            raise ValueError(
                f"sampling_interval must be >= 1, got {sampling_interval}"
            )
        self.graph = graph
        self.static = StaticAttributes.of(graph)
        self.sampling_interval = int(sampling_interval)
        self.monitor_workset_degree = bool(monitor_workset_degree)
        self._last_ws_size: int = 0
        self._last_avg_degree: float = self.static.avg_out_degree
        self._samples_taken: int = 0
        self._pending_tallies: List[KernelTally] = []

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------

    def should_sample(self, iteration: int) -> bool:
        return iteration % self.sampling_interval == 0

    def observe(
        self,
        iteration: int,
        workset_size: int,
        workset_nodes: Optional[np.ndarray] = None,
        device: Optional[DeviceSpec] = None,
    ) -> None:
        """Record this iteration's runtime attributes (if due for a sample).

        *workset_nodes* enables the precise per-working-set outdegree
        measurement; its reduction cost is queued as pending tallies.
        """
        if not self.should_sample(iteration):
            return
        self._samples_taken += 1
        self._last_ws_size = int(workset_size)
        if self.monitor_workset_degree and workset_nodes is not None and workset_nodes.size:
            degrees = self.graph.out_degrees[workset_nodes]
            self._last_avg_degree = float(degrees.mean())
            if device is not None:
                # One reduction pass over the working set's degrees.
                self._pending_tallies.extend(
                    reduction_tallies(
                        int(workset_nodes.size), device, name="inspector_degree"
                    )
                )

    def consume_overhead_tallies(self) -> List[KernelTally]:
        """Drain the monitoring kernels queued since the last call."""
        out, self._pending_tallies = self._pending_tallies, []
        return out

    # ------------------------------------------------------------------
    # Attribute reads
    # ------------------------------------------------------------------

    @property
    def workset_size(self) -> int:
        return self._last_ws_size

    @property
    def avg_out_degree(self) -> float:
        """The decision maker's degree input: the whole-graph average by
        default, the sampled working-set average in precise mode."""
        return self._last_avg_degree

    @property
    def samples_taken(self) -> int:
        return self._samples_taken
