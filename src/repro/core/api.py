"""The public graph API (Section VI.A, Figure 10: "we expose to the user
an API consisting of an abstract graph data type ... as well as
functions to run the SSSP and BFS algorithms").

:class:`Graph` wraps a CSR graph together with a device and runtime
configuration; its :meth:`Graph.bfs` and :meth:`Graph.sssp` run
adaptively by default, or under any named static variant.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple, Union

import numpy as np

from repro.core.config import RuntimeConfig
from repro.core.runtime import AdaptiveResult, adaptive_bfs, adaptive_sssp, run_static
from repro.errors import GraphError
from repro.graph.builder import from_edge_list
from repro.graph.csr import CSRGraph
from repro.graph.generators import attach_uniform_weights
from repro.gpusim.device import DeviceSpec, TESLA_C2070
from repro.gpusim.kernel import CostParams
from repro.kernels.frame import TraversalResult

__all__ = ["Graph"]

ResultLike = Union[AdaptiveResult, TraversalResult]


class Graph:
    """A graph bound to a simulated device and an adaptive runtime.

    >>> g = Graph.from_edges([(0, 1), (1, 2)], num_nodes=3)
    >>> result = g.bfs(source=0)
    >>> result.values.tolist()
    [0, 1, 2]
    """

    def __init__(
        self,
        csr: CSRGraph,
        *,
        device: DeviceSpec = TESLA_C2070,
        config: Optional[RuntimeConfig] = None,
        cost_params: Optional[CostParams] = None,
    ):
        self.csr = csr
        self.device = device
        self.config = config or RuntimeConfig()
        self.cost_params = cost_params

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[int, int]],
        *,
        weights=None,
        num_nodes: Optional[int] = None,
        symmetric: bool = False,
        name: str = "graph",
        **kwargs,
    ) -> "Graph":
        """Build from an iterable of ``(u, v)`` pairs."""
        pairs = np.asarray(list(edges), dtype=np.int64).reshape(-1, 2)
        csr = from_edge_list(
            pairs[:, 0],
            pairs[:, 1],
            weights,
            num_nodes=num_nodes,
            symmetric=symmetric,
            name=name,
        )
        return cls(csr, **kwargs)

    def with_random_weights(
        self, low: float = 1.0, high: float = 100.0, seed: int = 0
    ) -> "Graph":
        """A copy of this graph with uniform random edge weights."""
        return Graph(
            attach_uniform_weights(self.csr, low=low, high=high, seed=seed),
            device=self.device,
            config=self.config,
            cost_params=self.cost_params,
        )

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return self.csr.num_nodes

    @property
    def num_edges(self) -> int:
        return self.csr.num_edges

    @property
    def avg_out_degree(self) -> float:
        return self.csr.avg_out_degree

    # ------------------------------------------------------------------
    # Algorithms
    # ------------------------------------------------------------------

    def bfs(self, source: int, *, mode: str = "adaptive") -> ResultLike:
        """Breadth-first search from *source*.

        *mode* is ``"adaptive"`` (default) or a static variant code like
        ``"U_B_QU"``.  Returns levels in ``result.values`` (-1 means
        unreachable).
        """
        if mode == "adaptive":
            return adaptive_bfs(
                self.csr,
                source,
                config=self.config,
                device=self.device,
                cost_params=self.cost_params,
            )
        return run_static(
            self.csr,
            source,
            "bfs",
            mode,
            device=self.device,
            cost_params=self.cost_params,
        )

    def sssp(self, source: int, *, mode: str = "adaptive") -> ResultLike:
        """Single-source shortest paths from *source*.

        Requires edge weights (see :meth:`with_random_weights`).  Returns
        distances in ``result.values`` (``inf`` means unreachable).
        """
        if self.csr.weights is None:
            raise GraphError(
                "sssp requires edge weights; call with_random_weights() or "
                "construct the graph with a weights array"
            )
        if mode == "adaptive":
            return adaptive_sssp(
                self.csr,
                source,
                config=self.config,
                device=self.device,
                cost_params=self.cost_params,
            )
        return run_static(
            self.csr,
            source,
            "sssp",
            mode,
            device=self.device,
            cost_params=self.cost_params,
        )

    def connected_components(self, *, mode: str = "adaptive") -> ResultLike:
        """Weakly connected components (extension algorithm).

        ``result.values[i]`` is the minimum node id in node *i*'s
        component.  Directed graphs are symmetrized internally.
        """
        from repro.core.runtime import adaptive_cc
        from repro.kernels.cc import run_cc

        if mode == "adaptive":
            return adaptive_cc(
                self.csr,
                config=self.config,
                device=self.device,
                cost_params=self.cost_params,
            )
        return run_cc(
            self.csr, mode, device=self.device, cost_params=self.cost_params
        )

    def pagerank(
        self,
        *,
        damping: float = 0.85,
        tolerance: float = 1e-6,
        mode: str = "adaptive",
    ) -> ResultLike:
        """Push-based PageRank (extension algorithm).

        ``result.values`` are unnormalized ranks (they sum to just under
        1; divide by the sum for a probability vector).
        """
        from repro.core.runtime import adaptive_pagerank
        from repro.kernels.pagerank import run_pagerank

        if mode == "adaptive":
            return adaptive_pagerank(
                self.csr,
                damping=damping,
                tolerance=tolerance,
                config=self.config,
                device=self.device,
                cost_params=self.cost_params,
            )
        return run_pagerank(
            self.csr,
            mode,
            damping=damping,
            tolerance=tolerance,
            device=self.device,
            cost_params=self.cost_params,
        )

    def __repr__(self) -> str:
        return (
            f"Graph({self.csr!r}, device={self.device.name!r}, "
            f"t3={self.config.t3_fraction:.0%})"
        )
