"""Hybrid CPU-GPU execution (extension: the Hong et al. [13] approach).

The paper positions itself against Hong et al.'s adaptive solution
"that alternates CPU and GPU execution.  We, on the other hand, focus on
the automatic selection of different GPU solutions."  This module
implements the alternating approach on top of the same substrates so
the two adaptivity axes can be compared (``bench_extension_hybrid``):

- iterations whose frontier is tiny run on the *host* — a serial sweep
  costs nanoseconds per edge and skips the kernel-launch plus
  loop-readback overhead entirely (the cost that makes the GPU lose on
  road networks);
- iterations with large frontiers run on the simulated GPU under the
  paper's adaptive variant selection;
- every device transition pays a state synchronization over PCIe (the
  level/distance array plus the frontier), so the policy uses hysteresis
  to avoid ping-ponging.

The per-iteration device choice compares the serial cost estimate of
the upcoming sweep (``nodes, expected edges`` priced by the CPU model)
against the GPU's fixed per-iteration floor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.config import RuntimeConfig
from repro.core.policies import AdaptivePolicy
from repro.cpu.costmodel import CpuModel, DEFAULT_CPU
from repro.errors import KernelError
from repro.graph.csr import CSRGraph
from repro.gpusim.device import DeviceSpec, TESLA_C2070
from repro.gpusim.kernel import CostModel, CostParams
from repro.gpusim.timeline import Timeline
from repro.gpusim.transfer import record_transfer
from repro.kernels.computation import INF, UNSET_LEVEL, bfs_relax, sssp_relax
from repro.kernels.frame import (
    IterationRecord,
    TraversalResult,
    _final_transfers,
    _initial_transfers,
    _readback,
    _tpb_for,
)
from repro.kernels.computation import bfs_step, sssp_step
from repro.kernels.workset import Workset, workset_gen_tallies

__all__ = ["HybridConfig", "HybridResult", "hybrid_bfs", "hybrid_sssp"]


@dataclass(frozen=True)
class HybridConfig:
    """Policy knobs of the hybrid executor."""

    #: run the sweep on the CPU when its estimated serial time is below
    #: this multiple of the GPU's fixed per-iteration floor
    cpu_advantage: float = 1.0
    #: consecutive iterations a device is kept after a switch (hysteresis)
    min_run_length: int = 2
    #: serial-CPU cost model for host-side sweeps
    cpu: CpuModel = DEFAULT_CPU


@dataclass
class HybridResult:
    """Traversal outcome plus the device schedule."""

    traversal: TraversalResult
    devices: List[str]  # "cpu" or "gpu" per iteration
    transitions: int

    @property
    def values(self) -> np.ndarray:
        return self.traversal.values

    @property
    def total_seconds(self) -> float:
        return self.traversal.total_seconds

    @property
    def cpu_iterations(self) -> int:
        return sum(1 for d in self.devices if d == "cpu")

    @property
    def gpu_iterations(self) -> int:
        return sum(1 for d in self.devices if d == "gpu")


def _gpu_iteration_floor(device: DeviceSpec) -> float:
    """The fixed cost of one GPU iteration: two kernel launches plus the
    loop-condition readback."""
    return 2 * device.kernel_launch_overhead_s + device.pcie_latency_s


def _state_sync_bytes(num_nodes: int, frontier_size: int) -> int:
    """Bytes moved when execution changes device: the state array plus
    the current frontier."""
    return 4 * num_nodes + 4 * frontier_size


def _run_hybrid(
    graph: CSRGraph,
    source: int,
    algorithm: str,
    *,
    hybrid_config: HybridConfig,
    runtime_config: Optional[RuntimeConfig],
    device: DeviceSpec,
    cost_params: Optional[CostParams],
    max_iterations: Optional[int],
) -> HybridResult:
    graph._check_node(source)
    weighted = algorithm == "sssp"
    if weighted and graph.weights is None:
        raise KernelError("hybrid SSSP requires a weighted graph")

    model = CostModel(device, cost_params)
    policy = AdaptivePolicy(graph, runtime_config, device=device)
    cpu = hybrid_config.cpu
    timeline = Timeline()
    _initial_transfers(graph, timeline, device)

    n = graph.num_nodes
    if weighted:
        state = np.full(n, INF, dtype=np.float64)
        state[source] = 0.0
    else:
        state = np.full(n, UNSET_LEVEL, dtype=np.int64)
        state[source] = 0

    frontier = np.array([source], dtype=np.int64)
    out_degrees = graph.out_degrees
    gpu_floor = _gpu_iteration_floor(device)

    records: List[IterationRecord] = []
    devices: List[str] = []
    location = "gpu"  # the initial transfers put the state on the device
    transitions = 0
    run_length = hybrid_config.min_run_length  # free first choice
    iteration = 0
    cap = max_iterations if max_iterations is not None else 16 * n + 64

    while frontier.size:
        if iteration >= cap:
            raise KernelError(f"hybrid {algorithm} exceeded {cap} iterations")

        # --- device decision (with hysteresis) -------------------------
        # The host holds the row offsets, so the upcoming sweep's edge
        # count is known exactly — no average-degree estimate needed.
        est_edges = int(out_degrees[frontier].sum())
        est_cpu = cpu.bfs_seconds(int(frontier.size), est_edges, 0)
        want = "cpu" if est_cpu < hybrid_config.cpu_advantage * gpu_floor else "gpu"
        if want != location and run_length < hybrid_config.min_run_length:
            want = location
        if want != location:
            timeline.add_transfer(
                record_transfer(
                    "h2d" if want == "gpu" else "d2h",
                    _state_sync_bytes(n, int(frontier.size)),
                    device,
                )
            )
            location = want
            transitions += 1
            run_length = 0
        run_length += 1

        # --- execute the sweep -----------------------------------------
        if location == "cpu":
            if weighted:
                updated, _, improved, edges = sssp_relax(graph, frontier, state)
            else:
                updated, _, improved, edges = bfs_relax(graph, frontier, state)
            seconds = cpu.bfs_seconds(int(frontier.size), edges, 0)
            timeline.add_host_seconds(seconds)
            record = IterationRecord(
                iteration=iteration,
                variant="cpu",
                workset_size=int(frontier.size),
                processed=int(frontier.size),
                updated=int(updated.size),
                edges_scanned=edges,
                improved_relaxations=improved,
                seconds=seconds,
            )
        else:
            variant = policy.choose(iteration, int(frontier.size))
            tpb = _tpb_for(variant, graph, device)
            workset = Workset.from_update_ids(frontier, variant.workset)
            step = (
                sssp_step(graph, workset, state, variant, tpb, device)
                if weighted
                else bfs_step(graph, workset, state, variant, tpb, device)
            )
            comp_cost = model.price(step.tally)
            timeline.add_kernel(iteration, step.tally, comp_cost, variant.code)
            seconds = comp_cost.seconds
            for tally in workset_gen_tallies(
                n, int(step.updated.size), variant.workset, device
            ):
                cost = model.price(tally)
                timeline.add_kernel(iteration, tally, cost, variant.code)
                seconds += cost.seconds
            _readback(timeline, device)
            updated = step.updated
            record = IterationRecord(
                iteration=iteration,
                variant=variant.code,
                workset_size=workset.size,
                processed=step.processed,
                updated=int(updated.size),
                edges_scanned=step.edges_scanned,
                improved_relaxations=step.improved_relaxations,
                seconds=seconds,
            )

        records.append(record)
        devices.append(location)
        frontier = updated
        iteration += 1

    if location == "gpu":
        _final_transfers(graph, timeline, device)

    traversal = TraversalResult(
        algorithm=f"hybrid_{algorithm}",
        source=source,
        values=state,
        iterations=records,
        timeline=timeline,
        device=device,
        policy_name="hybrid",
    )
    return HybridResult(traversal=traversal, devices=devices, transitions=transitions)


def hybrid_bfs(
    graph: CSRGraph,
    source: int,
    *,
    hybrid_config: Optional[HybridConfig] = None,
    config: Optional[RuntimeConfig] = None,
    device: DeviceSpec = TESLA_C2070,
    cost_params: Optional[CostParams] = None,
    max_iterations: Optional[int] = None,
) -> HybridResult:
    """BFS with per-iteration CPU/GPU placement."""
    return _run_hybrid(
        graph,
        source,
        "bfs",
        hybrid_config=hybrid_config or HybridConfig(),
        runtime_config=config,
        device=device,
        cost_params=cost_params,
        max_iterations=max_iterations,
    )


def hybrid_sssp(
    graph: CSRGraph,
    source: int,
    *,
    hybrid_config: Optional[HybridConfig] = None,
    config: Optional[RuntimeConfig] = None,
    device: DeviceSpec = TESLA_C2070,
    cost_params: Optional[CostParams] = None,
    max_iterations: Optional[int] = None,
) -> HybridResult:
    """SSSP with per-iteration CPU/GPU placement."""
    return _run_hybrid(
        graph,
        source,
        "sssp",
        hybrid_config=hybrid_config or HybridConfig(),
        runtime_config=config,
        device=device,
        cost_params=cost_params,
        max_iterations=max_iterations,
    )
