"""The paper's contribution: the adaptive runtime (Section VI).

Architecture (Figure 10): a graph API on top, a runtime layer made of a
*graph inspector* and a *decision maker* in the middle, and the BFS/SSSP
variant libraries below.

- :mod:`repro.core.api` — the user-facing :class:`Graph` type;
- :mod:`repro.core.inspector` — static + monitored runtime attributes;
- :mod:`repro.core.decision` — the Figure-11 decision space (T1/T2/T3);
- :mod:`repro.core.learned` — the fitted decision-tree alternative
  (offline ``fit_policy`` from manifests, online ``LearnedPolicy``);
- :mod:`repro.core.policies` — the adaptive policy driving the frame;
- :mod:`repro.core.runtime` — ``adaptive_bfs`` / ``adaptive_sssp``;
- :mod:`repro.core.tuning` — threshold derivation and the T2/T3 sweeps;
- :mod:`repro.core.config` / :mod:`repro.core.telemetry` — knobs, traces.
"""

from repro.core.api import Graph
from repro.core.config import RuntimeConfig
from repro.core.decision import DecisionMaker, Thresholds
from repro.core.hybrid import HybridConfig, HybridResult, hybrid_bfs, hybrid_sssp
from repro.core.inspector import GraphInspector, StaticAttributes
from repro.core.learned import (
    FEATURE_NAMES,
    LearnedDecisionMaker,
    LearnedPolicy,
    PolicyArtifact,
    extract_samples,
    fit_policy,
    load_manifest_corpus,
    load_policy,
    resolve_policy,
    variant_costs,
)
from repro.core.oracle import (
    DecisionQuality,
    IterationCosts,
    OracleReport,
    decision_quality,
    per_iteration_oracle,
)
from repro.core.policies import AdaptivePolicy, FixedPolicy
from repro.core.runtime import (
    AdaptiveResult,
    adaptive_bfs,
    adaptive_cc,
    adaptive_kcore,
    adaptive_pagerank,
    adaptive_run,
    adaptive_sssp,
    run_static,
)
from repro.core.telemetry import RECOVERY_ACTIONS, Decision, DecisionTrace, FaultEvent
from repro.core.tuning import (
    derive_t1,
    derive_t2,
    measure_t2_crossover,
    sweep_t3,
    tune_t3,
)

__all__ = [
    "Graph",
    "RuntimeConfig",
    "DecisionMaker",
    "Thresholds",
    "GraphInspector",
    "StaticAttributes",
    "AdaptivePolicy",
    "FixedPolicy",
    "FEATURE_NAMES",
    "LearnedDecisionMaker",
    "LearnedPolicy",
    "PolicyArtifact",
    "extract_samples",
    "fit_policy",
    "load_manifest_corpus",
    "load_policy",
    "resolve_policy",
    "variant_costs",
    "AdaptiveResult",
    "adaptive_run",
    "adaptive_bfs",
    "adaptive_sssp",
    "adaptive_cc",
    "adaptive_pagerank",
    "adaptive_kcore",
    "run_static",
    "hybrid_bfs",
    "hybrid_sssp",
    "HybridConfig",
    "HybridResult",
    "per_iteration_oracle",
    "decision_quality",
    "OracleReport",
    "IterationCosts",
    "DecisionQuality",
    "Decision",
    "DecisionTrace",
    "FaultEvent",
    "RECOVERY_ACTIONS",
    "derive_t1",
    "derive_t2",
    "measure_t2_crossover",
    "sweep_t3",
    "tune_t3",
]
