"""Experimental tuning of the runtime thresholds (Section VII.B).

- :func:`derive_t1` / :func:`derive_t2` — the analytical values (warp
  size; threads-per-block x #SMs);
- :func:`measure_t2_crossover` — the paper's empirical confirmation:
  measure per-kernel time of ``T_QU`` vs ``B_QU`` across working-set
  sizes and find where thread mapping starts winning ("B_QU outperforms
  T_QU for working set sizes smaller than ~3000");
- :func:`sweep_t3` — Figure 13: total execution time of the adaptive
  runtime as T3 sweeps over fractions of the node count;
- :func:`tune_t3` — pick the best fraction from a sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import RuntimeConfig
from repro.core.runtime import adaptive_bfs, adaptive_sssp
from repro.errors import TuningError
from repro.graph.csr import CSRGraph
from repro.gpusim.device import DeviceSpec, TESLA_C2070
from repro.gpusim.kernel import CostModel, CostParams
from repro.kernels import costs
from repro.kernels.mapping import ComputationShape, computation_tally
from repro.kernels.variants import (
    Mapping,
    THREAD_MAPPING_TPB,
    WorksetRepr,
    block_mapping_tpb,
)

__all__ = [
    "derive_t1",
    "derive_t2",
    "measure_t2_crossover",
    "T3SweepPoint",
    "sweep_t3",
    "tune_t3",
]


def derive_t1(device: DeviceSpec) -> float:
    """T1 = warp size: below it, block mapping idles cores (Section VII.B)."""
    return float(device.warp_size)


def derive_t2(device: DeviceSpec, threads_per_block: int = THREAD_MAPPING_TPB) -> int:
    """T2 = threads/block x #SMs: smaller working sets leave SMs idle
    under thread mapping (192 x 14 = 2,688 on the C2070)."""
    return threads_per_block * device.num_sms


def measure_t2_crossover(
    graph: CSRGraph,
    *,
    device: DeviceSpec = TESLA_C2070,
    cost_params: Optional[CostParams] = None,
    sizes: Optional[Sequence[int]] = None,
    seed: int = 0,
) -> Tuple[int, List[Tuple[int, float, float]]]:
    """Empirical T2: smallest working-set size where ``T_QU``'s kernel is
    at least as fast as ``B_QU``'s.

    Returns ``(crossover_size, [(size, t_qu_seconds, b_qu_seconds), ...])``.
    Working sets are random node samples of each requested size, priced
    through the same tally machinery the traversals use.
    """
    if graph.num_nodes < 2:
        raise TuningError("graph too small to measure a crossover")
    rng = np.random.default_rng(seed)
    if sizes is None:
        sizes = [2**k for k in range(4, 18) if 2**k <= graph.num_nodes]
    model = CostModel(device, cost_params)
    rows: List[Tuple[int, float, float]] = []
    crossover = graph.num_nodes
    for size in sizes:
        nodes = np.sort(rng.choice(graph.num_nodes, size=size, replace=False))
        degrees = graph.out_degrees[nodes]
        t_qu = _price_queue_kernel(graph, nodes, degrees, Mapping.THREAD, model, device)
        b_qu = _price_queue_kernel(graph, nodes, degrees, Mapping.BLOCK, model, device)
        rows.append((int(size), t_qu, b_qu))
    # Smallest size from which thread mapping stays ahead: scan downward
    # so sub-warp noise at tiny sizes does not fake an early crossover.
    crossover = graph.num_nodes
    for size, t_qu, b_qu in reversed(rows):
        if t_qu <= b_qu:
            crossover = size
        else:
            break
    return crossover, rows


def _price_queue_kernel(
    graph: CSRGraph,
    nodes: np.ndarray,
    degrees: np.ndarray,
    mapping: Mapping,
    model: CostModel,
    device: DeviceSpec,
) -> float:
    tpb = (
        THREAD_MAPPING_TPB
        if mapping is Mapping.THREAD
        else block_mapping_tpb(graph.avg_out_degree, device)
    )
    shape = ComputationShape(
        name="t2_probe",
        num_nodes=graph.num_nodes,
        active_ids=nodes,
        degrees=degrees,
        edge_cost=costs.C_EDGE,
        improved=int(degrees.sum() // 2),
        updated_count=max(1, int(degrees.sum() // 4)),
    )
    tally = computation_tally(shape, mapping, WorksetRepr.QUEUE, tpb, device)
    return model.price(tally).seconds


@dataclass(frozen=True)
class T3SweepPoint:
    """One Figure-13 data point."""

    t3_fraction: float
    seconds: float
    num_switches: int


def sweep_t3(
    graph: CSRGraph,
    source: int,
    algorithm: str = "sssp",
    *,
    fractions: Sequence[float] = tuple(f / 100 for f in range(1, 14)),
    base_config: Optional[RuntimeConfig] = None,
    device: DeviceSpec = TESLA_C2070,
    cost_params: Optional[CostParams] = None,
) -> List[T3SweepPoint]:
    """Adaptive-runtime execution time as T3 sweeps 1 %..13 % of |V|
    (the x-axis of Figure 13)."""
    base = base_config or RuntimeConfig()
    runner = adaptive_sssp if algorithm == "sssp" else adaptive_bfs
    points: List[T3SweepPoint] = []
    for fraction in fractions:
        config = base.with_overrides(t3_fraction=float(fraction))
        result = runner(
            graph, source, config=config, device=device, cost_params=cost_params
        )
        points.append(
            T3SweepPoint(
                t3_fraction=float(fraction),
                seconds=result.total_seconds,
                num_switches=result.num_switches,
            )
        )
    return points


def tune_t3(points: Sequence[T3SweepPoint]) -> float:
    """The best T3 fraction from a sweep (minimum execution time)."""
    if not points:
        raise TuningError("cannot tune T3 from an empty sweep")
    best = min(points, key=lambda p: p.seconds)
    return best.t3_fraction
