"""The adaptive runtime's entry points (Section VI).

``adaptive_bfs`` / ``adaptive_sssp`` run a traversal under the
inspector + decision-maker policy and return an
:class:`AdaptiveResult` bundling the traversal outcome with the decision
trace.  ``run_static`` is the matching one-variant runner so comparisons
share an identical code path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Union

from repro.core.config import RuntimeConfig
from repro.core.decision import Thresholds
from repro.core.policies import AdaptivePolicy
from repro.core.telemetry import DecisionTrace
from repro.graph.csr import CSRGraph
from repro.gpusim.allocator import MemoryBudget, MemoryReport
from repro.gpusim.device import DeviceSpec, TESLA_C2070
from repro.gpusim.kernel import CostParams
from repro.kernels.frame import (
    StaticPolicy,
    TraversalResult,
    traverse_bfs,
    traverse_sssp,
)
from repro.kernels.variants import Variant
from repro.obs.context import current_observer, observing

__all__ = [
    "AdaptiveResult",
    "adaptive_bfs",
    "adaptive_sssp",
    "adaptive_cc",
    "adaptive_pagerank",
    "adaptive_kcore",
    "run_static",
]


@dataclass
class AdaptiveResult:
    """A traversal result plus the adaptive runtime's decision trace."""

    traversal: TraversalResult
    trace: DecisionTrace
    thresholds: Thresholds
    #: device-memory accounting snapshot (None when no budget attached)
    memory: Optional[MemoryReport] = None

    # Convenience pass-throughs ----------------------------------------

    @property
    def values(self):
        return self.traversal.values

    @property
    def total_seconds(self) -> float:
        return self.traversal.total_seconds

    @property
    def num_iterations(self) -> int:
        return self.traversal.num_iterations

    @property
    def num_switches(self) -> int:
        return self.trace.num_switches

    def variants_used(self) -> Dict[str, int]:
        return self.traversal.variants_used()


def _observed_traverse(span_name: str, run, trace: DecisionTrace):
    """Run *run()* under the current observer's span (if any) and report
    the trace's decision counts into its metrics registry afterwards."""
    observer = current_observer()
    if observer is None:
        return run()
    with observer.span(span_name):
        result = run()
    metrics = observer.metrics
    metrics.counter("runtime.decisions").inc(trace.num_decisions)
    metrics.counter("runtime.switches").inc(trace.num_switches)
    metrics.counter("runtime.memory_forced").inc(trace.num_memory_forced)
    return result


def adaptive_bfs(
    graph: CSRGraph,
    source: int,
    *,
    config: Optional[RuntimeConfig] = None,
    device: DeviceSpec = TESLA_C2070,
    cost_params: Optional[CostParams] = None,
    max_iterations: Optional[int] = None,
    watchdog=None,
    checkpoint_keeper=None,
    resume_from=None,
    fault_hook=None,
    memory: Optional[MemoryBudget] = None,
    observe=None,
) -> AdaptiveResult:
    """BFS under the adaptive runtime.

    The reliability keywords (*watchdog*, *checkpoint_keeper*,
    *resume_from*, *fault_hook*) are pass-throughs to the traversal
    frame, used by :mod:`repro.reliability`'s guarded runners.
    *memory* attaches a device-memory budget: the policy folds its
    pressure into variant decisions and the frame charges every
    allocation against it.  *observe* installs a
    :class:`~repro.obs.Observer` for the duration of the run, so every
    instrumented layer reports metrics and spans into it."""
    policy = AdaptivePolicy(graph, config, device=device, memory=memory)
    with observing(observe):
        result = _observed_traverse(
            "adaptive_bfs",
            lambda: traverse_bfs(
                graph,
                source,
                policy,
                device=device,
                cost_params=cost_params,
                queue_gen=policy.config.queue_gen,
                max_iterations=max_iterations,
                watchdog=watchdog,
                checkpoint_keeper=checkpoint_keeper,
                resume_from=resume_from,
                fault_hook=fault_hook,
                memory=memory,
            ),
            policy.trace,
        )
    return AdaptiveResult(
        traversal=result,
        trace=policy.trace,
        thresholds=policy.thresholds,
        memory=memory.report() if memory is not None else None,
    )


def adaptive_sssp(
    graph: CSRGraph,
    source: int,
    *,
    config: Optional[RuntimeConfig] = None,
    device: DeviceSpec = TESLA_C2070,
    cost_params: Optional[CostParams] = None,
    max_iterations: Optional[int] = None,
    watchdog=None,
    checkpoint_keeper=None,
    resume_from=None,
    fault_hook=None,
    memory: Optional[MemoryBudget] = None,
    observe=None,
) -> AdaptiveResult:
    """SSSP under the adaptive runtime (unordered variants only,
    Section VI.A).  Reliability, *memory* and *observe* keywords as in
    :func:`adaptive_bfs`."""
    policy = AdaptivePolicy(graph, config, device=device, memory=memory)
    with observing(observe):
        result = _observed_traverse(
            "adaptive_sssp",
            lambda: traverse_sssp(
                graph,
                source,
                policy,
                device=device,
                cost_params=cost_params,
                queue_gen=policy.config.queue_gen,
                max_iterations=max_iterations,
                watchdog=watchdog,
                checkpoint_keeper=checkpoint_keeper,
                resume_from=resume_from,
                fault_hook=fault_hook,
                memory=memory,
            ),
            policy.trace,
        )
    return AdaptiveResult(
        traversal=result,
        trace=policy.trace,
        thresholds=policy.thresholds,
        memory=memory.report() if memory is not None else None,
    )


def adaptive_cc(
    graph: CSRGraph,
    *,
    config: Optional[RuntimeConfig] = None,
    device: DeviceSpec = TESLA_C2070,
    cost_params: Optional[CostParams] = None,
) -> AdaptiveResult:
    """Connected components under the adaptive runtime.

    The extension algorithm (label propagation shares BFS/SSSP's
    iterative working-set pattern, so the same inspector/decision-maker
    pair drives it — Section I's generalization claim).
    """
    from repro.kernels.cc import traverse_cc

    policy = AdaptivePolicy(graph, config, device=device)
    result = traverse_cc(
        graph,
        policy,
        device=device,
        cost_params=cost_params,
        queue_gen=policy.config.queue_gen,
    )
    return AdaptiveResult(
        traversal=result, trace=policy.trace, thresholds=policy.thresholds
    )


def adaptive_pagerank(
    graph: CSRGraph,
    *,
    damping: float = 0.85,
    tolerance: float = 1e-6,
    config: Optional[RuntimeConfig] = None,
    device: DeviceSpec = TESLA_C2070,
    cost_params: Optional[CostParams] = None,
) -> AdaptiveResult:
    """Push-based PageRank under the adaptive runtime (extension
    algorithm; see :mod:`repro.kernels.pagerank`)."""
    from repro.kernels.pagerank import traverse_pagerank

    policy = AdaptivePolicy(graph, config, device=device)
    result = traverse_pagerank(
        graph,
        policy,
        damping=damping,
        tolerance=tolerance,
        device=device,
        cost_params=cost_params,
        queue_gen=policy.config.queue_gen,
    )
    return AdaptiveResult(
        traversal=result, trace=policy.trace, thresholds=policy.thresholds
    )


def adaptive_kcore(
    graph: CSRGraph,
    *,
    config: Optional[RuntimeConfig] = None,
    device: DeviceSpec = TESLA_C2070,
    cost_params: Optional[CostParams] = None,
) -> AdaptiveResult:
    """k-core decomposition under the adaptive runtime (extension
    algorithm; see :mod:`repro.kernels.kcore`)."""
    from repro.kernels.kcore import traverse_kcore

    policy = AdaptivePolicy(graph, config, device=device)
    result = traverse_kcore(
        graph,
        policy,
        device=device,
        cost_params=cost_params,
        queue_gen=policy.config.queue_gen,
    )
    return AdaptiveResult(
        traversal=result, trace=policy.trace, thresholds=policy.thresholds
    )


def run_static(
    graph: CSRGraph,
    source: int,
    algorithm: str,
    variant: Union[Variant, str],
    *,
    device: DeviceSpec = TESLA_C2070,
    cost_params: Optional[CostParams] = None,
    max_iterations: Optional[int] = None,
    watchdog=None,
    checkpoint_keeper=None,
    resume_from=None,
    fault_hook=None,
    memory: Optional[MemoryBudget] = None,
    observe=None,
) -> TraversalResult:
    """Run one static variant of *algorithm* (``"bfs"`` or ``"sssp"``).

    *observe* installs an :class:`~repro.obs.Observer` for the run, as
    in :func:`adaptive_bfs`."""
    if isinstance(variant, str):
        variant = Variant.parse(variant)
    policy = StaticPolicy(variant)
    kwargs = dict(
        device=device,
        cost_params=cost_params,
        max_iterations=max_iterations,
        watchdog=watchdog,
        checkpoint_keeper=checkpoint_keeper,
        resume_from=resume_from,
        fault_hook=fault_hook,
        memory=memory,
    )
    if algorithm not in ("bfs", "sssp"):
        raise ValueError(
            f"unknown algorithm {algorithm!r} (expected 'bfs' or 'sssp')"
        )
    runner = traverse_bfs if algorithm == "bfs" else traverse_sssp
    with observing(observe):
        observer = current_observer()
        if observer is None:
            return runner(graph, source, policy, **kwargs)
        with observer.span(f"static_{algorithm}", variant=variant.code):
            return runner(graph, source, policy, **kwargs)
