"""The adaptive runtime's entry points (Section VI).

:func:`adaptive_run` runs any registered algorithm under the
inspector + decision-maker policy and returns an
:class:`AdaptiveResult` bundling the traversal outcome with the decision
trace; ``adaptive_bfs`` .. ``adaptive_kcore`` are its named wrappers.
:func:`run_static` is the matching one-variant runner so comparisons
share an identical code path — both dispatch through the
:mod:`algorithm registry <repro.engine.registry>`, so a newly
registered algorithm gets both entry points for free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Union

from repro.core.config import RuntimeConfig
from repro.core.decision import Thresholds
from repro.core.policies import AdaptivePolicy
from repro.core.telemetry import DecisionTrace
from repro.engine.registry import get_algorithm
from repro.engine.types import StaticPolicy, TraversalResult
from repro.errors import KernelError
from repro.graph.csr import CSRGraph
from repro.gpusim.allocator import MemoryBudget, MemoryReport
from repro.gpusim.device import DeviceSpec, TESLA_C2070
from repro.gpusim.kernel import CostParams
from repro.kernels.variants import Variant
from repro.obs.context import current_observer, observing

__all__ = [
    "AdaptiveResult",
    "adaptive_run",
    "adaptive_bfs",
    "adaptive_sssp",
    "adaptive_cc",
    "adaptive_pagerank",
    "adaptive_kcore",
    "run_static",
]


@dataclass
class AdaptiveResult:
    """A traversal result plus the adaptive runtime's decision trace."""

    traversal: TraversalResult
    trace: DecisionTrace
    thresholds: Thresholds
    #: device-memory accounting snapshot (None when no budget attached)
    memory: Optional[MemoryReport] = None
    #: learned-policy provenance (kind, artifact digest, tree shape);
    #: None under the threshold policy
    policy: Optional[Dict] = None

    # Convenience pass-throughs ----------------------------------------

    @property
    def values(self):
        return self.traversal.values

    @property
    def total_seconds(self) -> float:
        return self.traversal.total_seconds

    @property
    def num_iterations(self) -> int:
        return self.traversal.num_iterations

    @property
    def num_switches(self) -> int:
        return self.trace.num_switches

    def variants_used(self) -> Dict[str, int]:
        return self.traversal.variants_used()


def _observed_traverse(span_name: str, run, trace: DecisionTrace, policy=None):
    """Run *run()* under the current observer's span (if any) and report
    the trace's decision counts — plus the learned policy's ``policy.*``
    telemetry, when one drives the run — into its metrics registry."""
    observer = current_observer()
    if observer is None:
        return run()
    with observer.span(span_name):
        result = run()
    metrics = observer.metrics
    metrics.counter("runtime.decisions").inc(trace.num_decisions)
    metrics.counter("runtime.switches").inc(trace.num_switches)
    metrics.counter("runtime.memory_forced").inc(trace.num_memory_forced)
    dm = getattr(policy, "decision_maker", None)
    if dm is not None and hasattr(dm, "leaf_depths"):
        metrics.counter("policy.evaluations").inc(dm.evaluations)
        metrics.counter("policy.overrides").inc(dm.overrides)
        depth_hist = metrics.histogram("policy.leaf_depth")
        for depth in dm.leaf_depths:
            depth_hist.observe(depth)
    return result


def adaptive_run(
    graph: CSRGraph,
    algorithm: str = "bfs",
    source: Optional[int] = None,
    *,
    config: Optional[RuntimeConfig] = None,
    device: DeviceSpec = TESLA_C2070,
    cost_params: Optional[CostParams] = None,
    max_iterations: Optional[int] = None,
    watchdog=None,
    checkpoint_keeper=None,
    resume_from=None,
    fault_hook=None,
    memory: Optional[MemoryBudget] = None,
    observe=None,
    policy=None,
    fuse: bool = False,
    **params,
) -> AdaptiveResult:
    """Run any registered *algorithm* under the adaptive runtime.

    The registry supplies the traversal entry point; the same
    inspector + decision-maker policy drives every adaptive-eligible
    algorithm (Section I's generalization claim).  Whole-graph
    algorithms (``source_based`` False) ignore *source*.

    *policy* swaps the threshold decision maker for a fitted one: pass
    a ``"learned:<policy.json>"`` spec or a loaded
    :class:`~repro.core.learned.PolicyArtifact` and the run is driven
    by a :class:`~repro.core.learned.LearnedPolicy` instead (same
    sampling cadence, same memory-pressure overrides); the artifact's
    digest lands in :attr:`AdaptiveResult.policy` and the run's
    manifest.

    The reliability keywords (*watchdog*, *checkpoint_keeper*,
    *resume_from*, *fault_hook*) are pass-throughs to the traversal
    frame, used by :mod:`repro.reliability`'s guarded runners.
    *memory* attaches a device-memory budget: the policy folds its
    pressure into variant decisions and the frame charges every
    allocation against it.  *observe* installs a
    :class:`~repro.obs.Observer` for the duration of the run, so every
    instrumented layer reports metrics and spans into it.  Extra
    keyword arguments (*params*) are forwarded to the algorithm
    (PageRank's ``damping``/``tolerance``).  *fuse* lowers the spec
    through :mod:`repro.engine.fusion` and runs under the fused launch
    plan — values and decisions are identical; only launch pricing
    changes."""
    info = get_algorithm(algorithm)
    if not info.adaptive_eligible:
        raise KernelError(
            f"{algorithm!r} is not adaptive-eligible (it does not use the "
            "unordered working-set variants the decision maker switches)"
        )
    if info.source_based:
        if source is None:
            raise KernelError(f"{algorithm!r} requires a source node")
        # Validate up front: a bad source must fail with one clear
        # GraphError, not a raw IndexError deep in the kernels.
        graph._check_node(source)
    else:
        source = -1
    if policy is not None:
        from repro.core.learned import LearnedPolicy, resolve_policy

        artifact = resolve_policy(policy)
        driver = LearnedPolicy(
            graph, artifact, config, device=device, memory=memory
        )
    else:
        driver = AdaptivePolicy(graph, config, device=device, memory=memory)
    with observing(observe):
        result = _observed_traverse(
            f"{driver.name}_{algorithm}",
            lambda: info.traverse(
                graph,
                source,
                driver,
                device=device,
                cost_params=cost_params,
                queue_gen=driver.config.queue_gen,
                max_iterations=max_iterations,
                watchdog=watchdog,
                checkpoint_keeper=checkpoint_keeper,
                resume_from=resume_from,
                fault_hook=fault_hook,
                memory=memory,
                fusion=fuse or None,
                **params,
            ),
            driver.trace,
            policy=driver,
        )
    return AdaptiveResult(
        traversal=result,
        trace=driver.trace,
        thresholds=driver.thresholds,
        memory=memory.report() if memory is not None else None,
        policy=driver.policy_info() if hasattr(driver, "policy_info") else None,
    )


def adaptive_bfs(graph: CSRGraph, source: int, **kwargs) -> AdaptiveResult:
    """BFS under the adaptive runtime (see :func:`adaptive_run`)."""
    return adaptive_run(graph, "bfs", source, **kwargs)


def adaptive_sssp(graph: CSRGraph, source: int, **kwargs) -> AdaptiveResult:
    """SSSP under the adaptive runtime (unordered variants only,
    Section VI.A; see :func:`adaptive_run`)."""
    return adaptive_run(graph, "sssp", source, **kwargs)


def adaptive_cc(graph: CSRGraph, **kwargs) -> AdaptiveResult:
    """Connected components under the adaptive runtime (see
    :func:`adaptive_run`)."""
    return adaptive_run(graph, "cc", **kwargs)


def adaptive_pagerank(
    graph: CSRGraph, *, damping: float = 0.85, tolerance: float = 1e-6, **kwargs
) -> AdaptiveResult:
    """Push-based PageRank under the adaptive runtime (see
    :func:`adaptive_run`)."""
    return adaptive_run(
        graph, "pagerank", damping=damping, tolerance=tolerance, **kwargs
    )


def adaptive_kcore(graph: CSRGraph, **kwargs) -> AdaptiveResult:
    """k-core decomposition under the adaptive runtime (see
    :func:`adaptive_run`)."""
    return adaptive_run(graph, "kcore", **kwargs)


def run_static(
    graph: CSRGraph,
    source: int,
    algorithm: str,
    variant: Union[Variant, str],
    *,
    device: DeviceSpec = TESLA_C2070,
    cost_params: Optional[CostParams] = None,
    max_iterations: Optional[int] = None,
    watchdog=None,
    checkpoint_keeper=None,
    resume_from=None,
    fault_hook=None,
    memory: Optional[MemoryBudget] = None,
    observe=None,
    fuse: bool = False,
    **params,
) -> TraversalResult:
    """Run one static variant of any registered *algorithm*.

    *observe* installs an :class:`~repro.obs.Observer` for the run, as
    in :func:`adaptive_run`; *fuse* runs under a fused launch plan
    (pinned variants fuse every iteration)."""
    info = get_algorithm(algorithm)
    if not info.supports_variants:
        raise KernelError(
            f"{algorithm!r} does not run the static {{mapping}} x {{workset}} "
            "variants"
        )
    if isinstance(variant, str):
        variant = Variant.parse(variant)
    policy = StaticPolicy(variant)
    if info.source_based:
        graph._check_node(source)
    src = source if info.source_based else -1
    kwargs = dict(
        device=device,
        cost_params=cost_params,
        max_iterations=max_iterations,
        watchdog=watchdog,
        checkpoint_keeper=checkpoint_keeper,
        resume_from=resume_from,
        fault_hook=fault_hook,
        memory=memory,
        fusion=fuse or None,
        **params,
    )
    with observing(observe):
        observer = current_observer()
        if observer is None:
            return info.traverse(graph, src, policy, **kwargs)
        with observer.span(f"static_{algorithm}", variant=variant.code):
            return info.traverse(graph, src, policy, **kwargs)
