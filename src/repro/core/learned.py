"""Learned decision maker: fit offline from manifests, infer online.

The paper's decision maker is a hand-tuned rule (three thresholds over
two graph properties, Figure 11).  Merrill's follow-up line of work —
"Using Graph Properties to Speed-up GPU-based Graph Traversal: A
Model-driven Approach" (see PAPERS.md) — shows per-step *predictive
models* beat fixed heuristics, and everything needed for training
already rides in this library's :class:`~repro.obs.RunManifest`
documents: every decision's iteration index, working-set size, average
outdegree and memory pressure.  This module closes that loop:

1. **Features** (:data:`FEATURE_NAMES`) come straight from a manifest's
   per-iteration decision trace.
2. **Labels** are the oracle-best variant per decision, obtained by
   re-pricing all four unordered variants on a surrogate frontier
   reconstructed from the recorded properties — through the *same*
   :func:`~repro.kernels.mapping.computation_tally` /
   :func:`~repro.kernels.workset.workset_gen_tallies` /
   :class:`~repro.gpusim.kernel.CostModel` stack the per-iteration
   oracle uses (:func:`variant_costs`).
3. **Model**: a dependency-free, cost-sensitive CART
   (:func:`fit_policy`) whose splits minimize total *regret* — the sum
   of each leaf's best-single-variant cost — rather than label
   impurity, so a near-tie between variants never forces a split.
4. **Artifact**: a versioned, digest-pinned JSON document
   (:class:`PolicyArtifact`) that :class:`LearnedDecisionMaker` loads
   as a drop-in :class:`~repro.core.decision.DecisionMaker`
   replacement — including the memory-pressure overrides, which are
   *borrowed from* ``DecisionMaker`` rather than re-implemented.

``repro fit-policy runs/*.json --out policy.json`` drives the offline
step; ``repro run --policy learned:policy.json`` deploys the artifact.
See ``docs/learned-policy.md`` for the full workflow.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.decision import DecisionMaker
from repro.core.policies import AdaptivePolicy
from repro.errors import ReproError, RuntimeConfigError
from repro.gpusim.device import DeviceSpec, TESLA_C2070, device_registry
from repro.gpusim.kernel import CostModel, CostParams
from repro.kernels import costs as kcosts
from repro.kernels.mapping import ComputationShape, computation_tally
from repro.kernels.variants import Mapping, Variant, unordered_variants
from repro.kernels.workset import workset_gen_tallies
from repro.obs.manifest import RunManifest

__all__ = [
    "POLICY_SCHEMA_VERSION",
    "FEATURE_NAMES",
    "TrainingSample",
    "PolicyArtifact",
    "variant_costs",
    "extract_samples",
    "load_manifest_corpus",
    "fit_policy",
    "load_policy",
    "resolve_policy",
    "LearnedDecisionMaker",
    "LearnedPolicy",
]

#: bump when the artifact document shape changes incompatibly
POLICY_SCHEMA_VERSION = 1

#: the model family this build fits and evaluates
POLICY_KIND = "decision_tree"

#: per-decision features, in artifact column order — all recoverable
#: from a RunManifest's decision trace without re-running anything, and
#: all observable by the running policy *before* the iteration executes
#: ("growth" is the frontier's size relative to the previous decision's,
#: the momentum signal that predicts how big the next workset — and so
#: the generation kernel's bill — will be)
FEATURE_NAMES: Tuple[str, ...] = (
    "iteration",
    "workset_size",
    "workset_ratio",
    "avg_out_degree",
    "growth",
    "memory_pressure",
)


# ----------------------------------------------------------------------
# Labels: surrogate per-variant pricing
# ----------------------------------------------------------------------

def _surrogate_frontier(
    workset_size: int, avg_out_degree: float, num_nodes: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Reconstruct a frontier with the recorded aggregate properties.

    Node ids are spread evenly over the id space (a scattered frontier,
    the common case — warp packing under the bitmap representation is
    priced from the ids themselves); degrees are as uniform as integers
    allow while summing to ``round(workset_size * avg_out_degree)``.
    """
    size = max(1, min(int(workset_size), int(num_nodes)))
    ids = np.unique(
        np.linspace(0, max(0, num_nodes - 1), size).round().astype(np.int64)
    )
    edges = int(round(size * max(0.0, avg_out_degree)))
    base, extra = divmod(edges, size)
    degrees = np.full(size, base, dtype=np.int64)
    degrees[:extra] += 1
    if ids.size != size:  # collapsed duplicates: keep arrays parallel
        degrees = degrees[: ids.size]
    return ids, degrees


def variant_costs(
    workset_size: int,
    avg_out_degree: float,
    num_nodes: int,
    device: DeviceSpec = TESLA_C2070,
    *,
    updated_count: Optional[int] = None,
    weighted: bool = False,
    cost_params: Optional[CostParams] = None,
    candidates: Optional[Sequence[Variant]] = None,
) -> Dict[str, float]:
    """Price every candidate variant on a surrogate frontier.

    This is the per-iteration oracle's pricing loop
    (:func:`~repro.core.oracle.per_iteration_oracle`) applied to a
    frontier *reconstructed* from (size, average outdegree) instead of
    materialized by a traversal — which is exactly the information a
    manifest's decision trace records, so training labels can be
    derived offline from manifests alone.
    """
    if num_nodes <= 0:
        raise ReproError(f"num_nodes must be > 0, got {num_nodes}")
    DecisionMaker._check_inputs(workset_size, avg_out_degree)
    ids, degrees = _surrogate_frontier(workset_size, avg_out_degree, num_nodes)
    if updated_count is None:
        updated_count = int(ids.size)
    updated_count = max(0, min(int(updated_count), int(num_nodes)))
    model = CostModel(device, cost_params)
    shape = ComputationShape(
        name="policy_label",
        num_nodes=int(num_nodes),
        active_ids=ids,
        degrees=degrees,
        edge_cost=kcosts.C_EDGE_WEIGHTED if weighted else kcosts.C_EDGE,
        improved=updated_count,
        updated_count=updated_count,
        weight_streams=1 if weighted else 0,
    )
    out: Dict[str, float] = {}
    for variant in candidates if candidates is not None else unordered_variants():
        tpb = variant.threads_per_block(avg_out_degree, device)
        seconds = model.price(
            computation_tally(shape, variant.mapping, variant.workset, tpb, device)
        ).seconds
        for tally in workset_gen_tallies(
            int(num_nodes), updated_count, variant.workset, device
        ):
            seconds += model.price(tally).seconds
        out[variant.code] = seconds
    return out


# ----------------------------------------------------------------------
# Feature extraction from manifests
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class TrainingSample:
    """One decision-trace row, featurized and labeled with per-variant
    costs (the label is implicit: the cost-minimal variant)."""

    features: Tuple[float, ...]
    costs: Dict[str, float]
    algorithm: str
    graph: str


def _device_for(manifest: RunManifest) -> DeviceSpec:
    """The device a manifest ran on, resolved from the registry by name
    (unknown or absent names fall back to the C2070 default)."""
    name = (manifest.device or {}).get("name")
    for spec in device_registry().values():
        if spec.name == name:
            return spec
    return TESLA_C2070


def extract_samples(
    manifest: RunManifest,
    *,
    cost_params: Optional[CostParams] = None,
) -> List[TrainingSample]:
    """Featurize and label every decision in one manifest's trace.

    Each decision contributes one sample; the *next* decision's
    working-set size stands in for the iteration's updated count (the
    generated frontier), which the trace would not otherwise record.
    Manifests without a decision trace (static, batch, serve modes)
    contribute nothing.
    """
    num_nodes = int(manifest.graph.get("num_nodes", 0))
    if num_nodes <= 0 or not manifest.decisions:
        return []
    device = _device_for(manifest)
    weighted = manifest.algorithm == "sssp"
    samples: List[TrainingSample] = []
    for i, decision in enumerate(manifest.decisions):
        ws = int(decision["workset_size"])
        deg = float(decision["avg_out_degree"])
        nxt = manifest.decisions[i + 1] if i + 1 < len(manifest.decisions) else None
        updated = int(nxt["workset_size"]) if nxt is not None else None
        prev = (
            int(manifest.decisions[i - 1]["workset_size"]) if i > 0 else ws
        )
        samples.append(
            TrainingSample(
                features=(
                    float(decision["iteration"]),
                    float(ws),
                    ws / num_nodes,
                    deg,
                    ws / max(1, prev),
                    float(decision.get("memory_pressure", 0.0)),
                ),
                costs=variant_costs(
                    ws,
                    deg,
                    num_nodes,
                    device,
                    updated_count=updated,
                    weighted=weighted,
                    cost_params=cost_params,
                ),
                algorithm=manifest.algorithm,
                graph=manifest.graph.get("name", "unknown"),
            )
        )
    return samples


def load_manifest_corpus(
    paths: Sequence[Union[str, os.PathLike]]
) -> List[Tuple[str, RunManifest]]:
    """Read a manifest corpus, failing loudly per file.

    Schema-version mismatches and malformed documents surface as one
    :class:`~repro.errors.ReproError` naming the offending file, so a
    stale corpus member cannot silently skew the fit.
    """
    corpus: List[Tuple[str, RunManifest]] = []
    for path in paths:
        try:
            corpus.append((str(path), RunManifest.read(path)))
        except (ValueError, OSError) as exc:
            raise ReproError(f"fit-policy: {path}: {exc}") from exc
    return corpus


# ----------------------------------------------------------------------
# Cost-sensitive tree fitting
# ----------------------------------------------------------------------

def _leaf(classes: Sequence[str], regret_matrix: np.ndarray) -> dict:
    totals = regret_matrix.sum(axis=0)
    best = int(np.argmin(totals))
    return {
        "variant": classes[best],
        "samples": int(regret_matrix.shape[0]),
        "regret": float(totals[best]),
    }


def _best_split(
    X: np.ndarray, regret_matrix: np.ndarray, min_samples_leaf: int
) -> Optional[Tuple[int, float, float]]:
    """The (feature, threshold, resulting-regret) split minimizing the
    sum of the two children's best-single-variant regrets; None when no
    legal split exists."""
    n = X.shape[0]
    best: Optional[Tuple[int, float, float]] = None
    for f in range(X.shape[1]):
        order = np.argsort(X[:, f], kind="stable")
        values = X[order, f]
        prefix = np.cumsum(regret_matrix[order], axis=0)
        total = prefix[-1]
        # split after position i (1-based count = i+1) requires a value
        # change, so both children are non-empty and reachable at
        # inference time
        cut = np.flatnonzero(np.diff(values) > 0) + 1
        cut = cut[(cut >= min_samples_leaf) & (cut <= n - min_samples_leaf)]
        if cut.size == 0:
            continue
        left = prefix[cut - 1].min(axis=1)
        right = (total - prefix[cut - 1]).min(axis=1)
        combined = left + right
        k = int(np.argmin(combined))
        cost = float(combined[k])
        if best is None or cost < best[2]:
            threshold = float((values[cut[k] - 1] + values[cut[k]]) / 2.0)
            best = (f, threshold, cost)
    return best


def _impurity_split(
    X: np.ndarray, regret_matrix: np.ndarray, min_samples_leaf: int
) -> Optional[Tuple[int, float, float]]:
    """Fallback criterion when the regret objective stalls: weighted
    Gini impurity over the per-sample best-variant labels, each sample
    weighted by how much a wrong pick would cost it (its regret
    spread).  Greedy regret minimization can hit nodes where every
    single split's gains cancel exactly even though a two-level split
    would help (the classic XOR failure of greedy CART); impurity
    strictly decreases on any separating split, so it tunnels through
    such plateaus and lets regret-improving splits reappear deeper."""
    labels = np.argmin(regret_matrix, axis=1)
    weights = regret_matrix.max(axis=1)
    if np.unique(labels).size < 2 or weights.sum() <= 0:
        return None
    n = X.shape[0]
    num_classes = regret_matrix.shape[1]
    onehot = np.zeros((n, num_classes))
    onehot[np.arange(n), labels] = weights
    best: Optional[Tuple[int, float, float]] = None
    for f in range(X.shape[1]):
        order = np.argsort(X[:, f], kind="stable")
        values = X[order, f]
        prefix = np.cumsum(onehot[order], axis=0)
        total = prefix[-1]
        cut = np.flatnonzero(np.diff(values) > 0) + 1
        cut = cut[(cut >= min_samples_leaf) & (cut <= n - min_samples_leaf)]
        if cut.size == 0:
            continue
        left = prefix[cut - 1]
        right = total - left
        lw = left.sum(axis=1)
        rw = right.sum(axis=1)
        with np.errstate(divide="ignore", invalid="ignore"):
            gini = np.where(
                lw > 0, lw - (left ** 2).sum(axis=1) / np.maximum(lw, 1e-300), 0.0
            ) + np.where(
                rw > 0, rw - (right ** 2).sum(axis=1) / np.maximum(rw, 1e-300), 0.0
            )
        k = int(np.argmin(gini))
        score = float(gini[k])
        if best is None or score < best[2]:
            threshold = float((values[cut[k] - 1] + values[cut[k]]) / 2.0)
            best = (f, threshold, score)
    if best is None:
        return None
    parent = weights.sum() - float((onehot.sum(axis=0) ** 2).sum()) / weights.sum()
    if best[2] >= parent - 1e-15:
        return None
    return best


def _fit_node(
    X: np.ndarray,
    regret_matrix: np.ndarray,
    classes: Sequence[str],
    depth: int,
    max_depth: int,
    min_samples_leaf: int,
) -> dict:
    leaf = _leaf(classes, regret_matrix)
    if depth >= max_depth or X.shape[0] < 2 * min_samples_leaf:
        return leaf
    split = _best_split(X, regret_matrix, min_samples_leaf)
    if split is None or split[2] >= leaf["regret"] - 1e-15:
        split = _impurity_split(X, regret_matrix, min_samples_leaf)
        if split is None:
            return leaf
    f, threshold, _ = split
    mask = X[:, f] <= threshold
    return {
        "feature": FEATURE_NAMES[f],
        "threshold": threshold,
        "samples": int(X.shape[0]),
        "left": _fit_node(
            X[mask], regret_matrix[mask], classes, depth + 1, max_depth,
            min_samples_leaf,
        ),
        "right": _fit_node(
            X[~mask], regret_matrix[~mask], classes, depth + 1, max_depth,
            min_samples_leaf,
        ),
    }


def _prune(node: dict) -> dict:
    """Collapse subtrees whose leaves all agree (impurity-fallback
    splits can leave same-variant siblings behind)."""
    if "variant" in node:
        return node
    left = _prune(node["left"])
    right = _prune(node["right"])
    if (
        "variant" in left
        and "variant" in right
        and left["variant"] == right["variant"]
    ):
        return {
            "variant": left["variant"],
            "samples": node["samples"],
            "regret": left["regret"] + right["regret"],
        }
    return {**node, "left": left, "right": right}


def _tree_stats(node: dict) -> Tuple[int, int]:
    """(num_leaves, max_depth) of a fitted tree."""
    if "variant" in node:
        return 1, 0
    left_leaves, left_depth = _tree_stats(node["left"])
    right_leaves, right_depth = _tree_stats(node["right"])
    return left_leaves + right_leaves, 1 + max(left_depth, right_depth)


# ----------------------------------------------------------------------
# The versioned, digest-pinned artifact
# ----------------------------------------------------------------------

def _artifact_digest(doc: dict) -> str:
    """SHA-256 over the canonical JSON of everything but the digest."""
    body = {k: v for k, v in doc.items() if k != "digest"}
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class PolicyArtifact:
    """A fitted policy as a plain, versioned JSON document.

    The digest pins the exact tree that was fitted: it is recomputed on
    load and on every :meth:`from_dict`, so a hand-edited artifact (or a
    corrupted transfer) is rejected rather than silently deployed.  Runs
    deployed with ``--policy learned:…`` record this digest in their
    manifest, closing the provenance loop.
    """

    tree: dict
    classes: Tuple[str, ...]
    feature_names: Tuple[str, ...] = FEATURE_NAMES
    schema_version: int = POLICY_SCHEMA_VERSION
    kind: str = POLICY_KIND
    training: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.kind != POLICY_KIND:
            raise ReproError(
                f"unsupported policy kind {self.kind!r} "
                f"(this build evaluates {POLICY_KIND!r})"
            )
        if tuple(self.feature_names) != FEATURE_NAMES:
            raise ReproError(
                f"policy feature schema {list(self.feature_names)} does not "
                f"match this build's {list(FEATURE_NAMES)}"
            )

    @property
    def digest(self) -> str:
        return _artifact_digest(self._body())

    @property
    def num_leaves(self) -> int:
        return _tree_stats(self.tree)[0]

    @property
    def depth(self) -> int:
        return _tree_stats(self.tree)[1]

    def _body(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "kind": self.kind,
            "feature_names": list(self.feature_names),
            "classes": list(self.classes),
            "tree": self.tree,
            "training": self.training,
        }

    def to_dict(self) -> dict:
        doc = self._body()
        doc["digest"] = _artifact_digest(doc)
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "PolicyArtifact":
        version = doc.get("schema_version")
        if version != POLICY_SCHEMA_VERSION:
            raise ReproError(
                f"unsupported policy schema_version {version!r} "
                f"(this build reads {POLICY_SCHEMA_VERSION})"
            )
        expected = doc.get("digest")
        if expected is not None and expected != _artifact_digest(doc):
            raise ReproError(
                "policy artifact digest mismatch: the document was modified "
                "after fitting (refit or restore the original artifact)"
            )
        try:
            return cls(
                tree=doc["tree"],
                classes=tuple(doc["classes"]),
                feature_names=tuple(doc["feature_names"]),
                schema_version=version,
                kind=doc.get("kind", POLICY_KIND),
                training=doc.get("training", {}),
            )
        except KeyError as exc:
            raise ReproError(f"policy artifact is missing field {exc}") from exc

    def save(self, path: Union[str, os.PathLike]) -> str:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        return str(path)

    @classmethod
    def load(cls, path: Union[str, os.PathLike]) -> "PolicyArtifact":
        try:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise ReproError(f"cannot load policy artifact {path}: {exc}") from exc
        return cls.from_dict(doc)


def fit_policy(
    corpus: Sequence[Union[RunManifest, Tuple[str, RunManifest]]],
    *,
    max_depth: int = 8,
    min_samples_leaf: int = 2,
    cost_params: Optional[CostParams] = None,
) -> PolicyArtifact:
    """Fit a decision-tree policy from a corpus of run manifests.

    Mixed-algorithm corpora are welcome — the labels are priced with
    each manifest's own algorithm's edge cost, and the fitted tree just
    sees more of the feature space.  An empty corpus, or one whose
    manifests carry no decision traces (static/batch/serve runs), is an
    error: there is nothing to fit.
    """
    if max_depth < 1:
        raise ReproError(f"max_depth must be >= 1, got {max_depth}")
    if min_samples_leaf < 1:
        raise ReproError(f"min_samples_leaf must be >= 1, got {min_samples_leaf}")
    pairs = [
        item if isinstance(item, tuple) else (f"manifest[{i}]", item)
        for i, item in enumerate(corpus)
    ]
    if not pairs:
        raise ReproError(
            "fit-policy: empty manifest corpus (pass at least one "
            "RunManifest JSON written by `repro profile`)"
        )
    samples: List[TrainingSample] = []
    sources: List[dict] = []
    for name, manifest in pairs:
        extracted = extract_samples(manifest, cost_params=cost_params)
        samples.extend(extracted)
        sources.append(
            {
                "manifest": os.path.basename(str(name)),
                "graph": manifest.graph.get("name", "unknown"),
                "graph_digest": manifest.graph.get("digest", ""),
                "algorithm": manifest.algorithm,
                "mode": manifest.mode,
                "decisions": len(extracted),
            }
        )
    if not samples:
        raise ReproError(
            "fit-policy: no decision traces in the corpus (profile with "
            "--mode adaptive so manifests carry per-iteration decisions)"
        )
    classes = tuple(v.code for v in unordered_variants())
    X = np.array([s.features for s in samples], dtype=np.float64)
    cost_matrix = np.array(
        [[s.costs[c] for c in classes] for s in samples], dtype=np.float64
    )
    # Normalize each row to *relative* regret (cost / best - 1): every
    # decision counts equally in the objective regardless of how
    # expensive its graph's iterations are in absolute seconds, which
    # is also exactly the fractional-regret metric the benches report.
    row_min = cost_matrix.min(axis=1, keepdims=True)
    regret_matrix = cost_matrix / np.maximum(row_min, 1e-300) - 1.0
    tree = _prune(
        _fit_node(X, regret_matrix, classes, 0, max_depth, min_samples_leaf)
    )
    training = {
        "samples": len(samples),
        "algorithms": sorted({s.algorithm for s in samples}),
        "max_depth": int(max_depth),
        "min_samples_leaf": int(min_samples_leaf),
        "manifests": sources,
    }
    return PolicyArtifact(tree=tree, classes=classes, training=training)


# ----------------------------------------------------------------------
# Deployment: spec parsing + the drop-in decision maker / policy
# ----------------------------------------------------------------------

def load_policy(path: Union[str, os.PathLike]) -> PolicyArtifact:
    """Load and digest-verify a policy artifact from disk."""
    return PolicyArtifact.load(path)


def resolve_policy(spec: Union[str, PolicyArtifact]) -> PolicyArtifact:
    """Resolve a ``--policy`` spec: ``learned:<path>`` or an artifact."""
    if isinstance(spec, PolicyArtifact):
        return spec
    if isinstance(spec, str) and spec.startswith("learned:"):
        path = spec[len("learned:"):]
        if not path:
            raise ReproError("--policy learned: requires an artifact path")
        return load_policy(path)
    raise ReproError(
        f"unknown policy spec {spec!r} (supported: 'learned:<policy.json>')"
    )


class LearnedDecisionMaker:
    """Evaluates a fitted tree as a drop-in
    :class:`~repro.core.decision.DecisionMaker` replacement.

    The memory-pressure overrides are *the* PR-2 overrides — the
    footprint-minimal representation pick and the BLOCK→THREAD demotion
    are borrowed from ``DecisionMaker`` unchanged, so a learned policy
    under pressure behaves exactly like the threshold policy under
    pressure (the tree only replaces the Figure-11 region lookup).
    """

    # Reuse, not reimplementation: the pressure helpers are shared with
    # the threshold decision maker.
    under_pressure = DecisionMaker.under_pressure
    _minimal_workset = DecisionMaker._minimal_workset
    _check_inputs = staticmethod(DecisionMaker._check_inputs)

    def __init__(
        self,
        artifact: PolicyArtifact,
        *,
        num_nodes: Optional[int] = None,
        pressure_threshold: float = 0.85,
    ):
        self.artifact = artifact
        self.num_nodes = num_nodes
        if not 0.0 < pressure_threshold <= 1.0:
            raise RuntimeConfigError(
                f"pressure_threshold must be in (0, 1], got {pressure_threshold}"
            )
        self.pressure_threshold = float(pressure_threshold)
        #: telemetry for the policy.* catalog metrics
        self.evaluations = 0
        self.overrides = 0
        self.leaf_depths: List[int] = []

    def _features(
        self, iteration: int, workset_size: int, avg_out_degree: float,
        growth: float, memory_pressure: float,
    ) -> Tuple[float, ...]:
        ratio = (
            workset_size / self.num_nodes
            if self.num_nodes
            else 0.0
        )
        return (
            float(iteration),
            float(workset_size),
            ratio,
            float(avg_out_degree),
            float(growth),
            float(memory_pressure),
        )

    def _evaluate(self, features: Sequence[float]) -> Tuple[str, int]:
        index = {name: i for i, name in enumerate(self.artifact.feature_names)}
        node = self.artifact.tree
        depth = 0
        while "variant" not in node:
            value = features[index[node["feature"]]]
            node = node["left"] if value <= node["threshold"] else node["right"]
            depth += 1
        self.evaluations += 1
        self.leaf_depths.append(depth)
        return node["variant"], depth

    def decide(
        self,
        workset_size: int,
        avg_out_degree: float,
        *,
        iteration: int = 0,
        growth: float = 1.0,
        memory_pressure: float = 0.0,
    ) -> Variant:
        """Tree lookup, then the shared memory-pressure override."""
        self._check_inputs(workset_size, avg_out_degree)
        code, _ = self._evaluate(
            self._features(
                iteration, workset_size, avg_out_degree, growth, memory_pressure
            )
        )
        variant = Variant.parse(code)
        if self.under_pressure(memory_pressure):
            workset = self._minimal_workset(workset_size)
            mapping = variant.mapping
            if mapping is Mapping.BLOCK:
                mapping = Mapping.THREAD
            if variant.workset is not workset or variant.mapping is not mapping:
                self.overrides += 1
            variant = Variant(variant.ordering, mapping, workset)
        return variant

    def region(
        self,
        workset_size: int,
        avg_out_degree: float,
        *,
        iteration: int = 0,
        growth: float = 1.0,
        memory_pressure: float = 0.0,
    ) -> str:
        """Leaf-depth region label (telemetry / decision traces)."""
        self._check_inputs(workset_size, avg_out_degree)
        index = {name: i for i, name in enumerate(self.artifact.feature_names)}
        features = self._features(
            iteration, workset_size, avg_out_degree, growth, memory_pressure
        )
        node = self.artifact.tree
        depth = 0
        while "variant" not in node:
            value = features[index[node["feature"]]]
            node = node["left"] if value <= node["threshold"] else node["right"]
            depth += 1
        suffix = "/mem-pressure" if self.under_pressure(memory_pressure) else ""
        return f"learned/leaf-depth-{depth}{suffix}"


class LearnedPolicy(AdaptivePolicy):
    """The adaptive runtime's policy with the tree in the driver's seat.

    Everything around the decision is inherited from
    :class:`~repro.core.policies.AdaptivePolicy` — the inspector's
    sampling cadence, precise-mode degree monitoring, the ``rebuild``
    switch-cost ablation and the budget fit-check — only the
    decision-maker consultation (:meth:`_decide`) is replaced, so the
    learned and threshold policies are directly comparable run-for-run.
    """

    def __init__(
        self,
        graph,
        artifact: PolicyArtifact,
        config=None,
        *,
        device: DeviceSpec,
        memory=None,
    ):
        super().__init__(graph, config, device=device, memory=memory)
        self.artifact = artifact
        self.decision_maker = LearnedDecisionMaker(
            artifact,
            num_nodes=graph.num_nodes,
            pressure_threshold=self.config.pressure_threshold,
        )
        self.name = "learned"
        self._last_workset: Optional[int] = None

    def _decide(self, iteration: int, workset_size: int, pressure: float):
        dm = self.decision_maker
        # Frontier momentum, measured exactly as training saw it: this
        # decision's size over the previous *decision's* (samples, not
        # raw iterations, when sampling_interval > 1).
        growth = (
            workset_size / max(1, self._last_workset)
            if self._last_workset is not None
            else 1.0
        )
        self._last_workset = workset_size
        unconstrained = dm.decide(
            workset_size, self._avg_degree, iteration=iteration, growth=growth
        )
        variant = dm.decide(
            workset_size,
            self._avg_degree,
            iteration=iteration,
            growth=growth,
            memory_pressure=pressure,
        )
        region = dm.region(
            workset_size,
            self._avg_degree,
            iteration=iteration,
            growth=growth,
            memory_pressure=pressure,
        )
        return unconstrained, variant, region

    def policy_info(self) -> dict:
        """Provenance dict recorded in :class:`AdaptiveResult` and the
        run's manifest."""
        return {
            "kind": self.artifact.kind,
            "digest": self.artifact.digest,
            "classes": list(self.artifact.classes),
            "num_leaves": self.artifact.num_leaves,
            "depth": self.artifact.depth,
        }
