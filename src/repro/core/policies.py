"""Variant-selection policies for the traversal frame.

:class:`AdaptivePolicy` is the paper's runtime: a graph inspector feeding
a decision maker, with sampling to bound monitoring overhead and a
decision trace for telemetry.  :class:`FixedPolicy` re-exports the static
behaviour under the policy interface (used by the benches' baselines).
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.config import RuntimeConfig
from repro.core.decision import DecisionMaker
from repro.core.inspector import GraphInspector
from repro.core.telemetry import Decision, DecisionTrace
from repro.graph.csr import CSRGraph
from repro.gpusim.allocator import MemoryBudget
from repro.gpusim.device import DeviceSpec
from repro.gpusim.kernel import KernelTally
from repro.gpusim.memory import workset_device_bytes
from repro.gpusim.reduction import reduction_tallies
from repro.kernels.frame import IterationRecord, StaticPolicy, VariantPolicy
from repro.kernels.variants import Variant, WorksetRepr
from repro.kernels.workset import workset_gen_tallies

__all__ = ["AdaptivePolicy", "FixedPolicy"]


class FixedPolicy(StaticPolicy):
    """Alias of :class:`~repro.kernels.frame.StaticPolicy` under the
    adaptive-runtime vocabulary."""


class AdaptivePolicy(VariantPolicy):
    """The adaptive runtime's policy: inspector + decision maker.

    The decision is (re-)evaluated on iteration 0 and then every
    ``sampling_interval`` iterations; between samples the current variant
    is kept (Section VI.E's sampling trade-off).  In precise-monitoring
    mode the working set's own average outdegree replaces the whole-graph
    average, at the cost of one reduction kernel per sample.
    """

    def __init__(
        self,
        graph: CSRGraph,
        config: Optional[RuntimeConfig] = None,
        *,
        device: DeviceSpec,
        memory: Optional[MemoryBudget] = None,
    ):
        self.config = config or RuntimeConfig()
        self.device = device
        self.memory = memory
        self.inspector = GraphInspector(
            graph,
            sampling_interval=self.config.sampling_interval,
            monitor_workset_degree=self.config.monitor_workset_degree,
        )
        self.thresholds = self.config.resolve_thresholds(device, graph.num_nodes)
        self.decision_maker = DecisionMaker(
            self.thresholds,
            use_warp_mapping=self.config.use_warp_mapping,
            num_nodes=graph.num_nodes,
            pressure_threshold=self.config.pressure_threshold,
        )
        self.trace = DecisionTrace()
        self.name = "adaptive"
        self._num_nodes = graph.num_nodes
        self._current: Optional[Variant] = None
        self._avg_degree: float = self.inspector.static.avg_out_degree
        self._pending: List[KernelTally] = []

    # ------------------------------------------------------------------
    # VariantPolicy interface
    # ------------------------------------------------------------------

    def choose(self, iteration: int, workset_size: int) -> Variant:
        if self._current is not None and not self.inspector.should_sample(iteration):
            return self._current
        self.inspector.observe(iteration, workset_size)
        pressure = self.memory.pressure if self.memory is not None else 0.0
        unconstrained, variant, region = self._decide(
            iteration, workset_size, pressure
        )
        variant = self._apply_memory_constraints(variant, workset_size)
        forced = variant != unconstrained
        switched = self._current is not None and variant != self._current
        self.trace.record(
            Decision(
                iteration=iteration,
                workset_size=workset_size,
                avg_out_degree=self._avg_degree,
                variant=variant.code,
                region=region,
                switched=switched,
                memory_pressure=pressure,
                forced_by_memory=forced,
            )
        )
        if (
            switched
            and self.config.switch_mode == "rebuild"
            and self._current is not None
            and variant.workset is not self._current.workset
        ):
            # Naive runtime ablation: a representation change costs a full
            # re-materialization pass instead of riding the shared update
            # vector.
            self._pending.extend(
                workset_gen_tallies(
                    self._num_nodes,
                    min(workset_size, self._num_nodes),
                    variant.workset,
                    self.device,
                    name="switch_rebuild",
                )
            )
        self._current = variant
        return variant

    def _decide(self, iteration: int, workset_size: int, pressure: float):
        """One decision-maker consultation: (unconstrained, pressured,
        region-label).  The learned policy overrides this seam — and
        only this seam — so sampling, tracing, the fit-check and the
        switch-cost ablation stay shared between the two runtimes."""
        dm = self.decision_maker
        unconstrained = dm.decide(workset_size, self._avg_degree)
        variant = dm.decide(
            workset_size, self._avg_degree, memory_pressure=pressure
        )
        region = dm.region(
            workset_size, self._avg_degree, memory_pressure=pressure
        )
        return unconstrained, variant, region

    def _apply_memory_constraints(self, variant: Variant, workset_size: int) -> Variant:
        """Footprint fit-check and configured representation pin.

        A ``force_workset`` pin (the guard's OOM ladder sets ``"bitmap"``)
        wins outright.  Otherwise, if the chosen representation does not
        fit the budget's workset headroom but the alternative does, swap
        to the one that fits — the decision maker optimizes time, the
        budget decides feasibility.
        """
        if self.config.force_workset is not None:
            pinned = {
                "bitmap": WorksetRepr.BITMAP,
                "queue": WorksetRepr.QUEUE,
            }[self.config.force_workset]
            if variant.workset is not pinned:
                variant = Variant(variant.ordering, variant.mapping, pinned)
            return variant
        if self.memory is None:
            return variant
        headroom = self.memory.workset_headroom_bytes()
        chosen = workset_device_bytes(variant.workset, workset_size, self._num_nodes)
        if chosen <= headroom:
            return variant
        alt = (
            WorksetRepr.BITMAP
            if variant.workset is WorksetRepr.QUEUE
            else WorksetRepr.QUEUE
        )
        if workset_device_bytes(alt, workset_size, self._num_nodes) <= headroom:
            return Variant(variant.ordering, variant.mapping, alt)
        return variant

    def notify(self, record: IterationRecord) -> None:
        if not self.config.monitor_workset_degree:
            return
        if not self.inspector.should_sample(record.iteration):
            return
        # Precise mode: the working set's own average outdegree, measured
        # by a reduction over the active elements' degrees.
        if record.processed > 0:
            self._avg_degree = record.edges_scanned / record.processed
        self._pending.extend(
            reduction_tallies(
                max(1, record.workset_size), self.device, name="inspector_degree"
            )
        )

    def overhead_tallies(
        self, iteration: int, workset_size: int, num_nodes: int, device: DeviceSpec
    ) -> List[KernelTally]:
        out, self._pending = self._pending, []
        return out

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------

    @property
    def num_switches(self) -> int:
        return self.trace.num_switches
