"""The decision maker (Sections VI.B-VI.D and Figure 11).

The decision space is two-dimensional — working-set size on the x-axis,
average outdegree on the y-axis — split into regions by three thresholds:

- left of **T2** (tiny working sets): always ``B_QU``; thread mapping
  cannot fill the SMs, and a bitmap would launch mostly-idle threads;
- between **T2** and **T3**: queue representation; mapping chosen by
  **T1** (thread if the average outdegree is below the warp size — else
  block, which needs >= a warp of neighbors per element to pay off);
- right of **T3** (large working sets): bitmap representation (queue
  generation atomics now cost more than the bitmap's wasted threads);
  mapping again chosen by T1.

Only unordered variants are selected: "our adaptive framework uses only
unordered versions of SSSP and BFS" (Section VI.A).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.errors import RuntimeConfigError
from repro.kernels.variants import Mapping, Ordering, Variant, WorksetRepr

__all__ = ["Thresholds", "DecisionMaker"]


@dataclass(frozen=True)
class Thresholds:
    """Resolved absolute thresholds for one (graph, device) pair.

    ``t1_low`` only matters in the extended (virtual-warp) decision
    space: average outdegrees in ``[t1_low, t1)`` map to warp mapping.
    """

    t1: float
    t2: int
    t3: int
    t1_low: float = 4.0

    def __post_init__(self):
        if not math.isfinite(self.t1) or self.t1 <= 0:
            raise RuntimeConfigError(f"T1 must be finite and > 0, got {self.t1}")
        if self.t2 < 0 or self.t3 < 0:
            raise RuntimeConfigError("T2 and T3 must be >= 0")
        if not 0 < self.t1_low <= self.t1:
            raise RuntimeConfigError(
                f"t1_low must be in (0, T1]; got {self.t1_low} with T1={self.t1}"
            )

    def resolved(self) -> "Thresholds":
        """Clamp ``T3 >= T2`` so the Figure-11 regions stay ordered.

        On tiny graphs the T3 fraction of ``num_nodes`` can resolve
        below T2, inverting the mid/large working-set regions (a size in
        ``[T3, T2)`` would read as both "small" and "large").  Clamping
        changes no decision outcome — the T3 comparison is only reached
        when ``size >= T2``, where a clamped ``T3 == T2`` still selects
        the bitmap — but keeps the region labels and any downstream
        consumer of the thresholds consistent with the paper's picture.
        """
        if self.t3 >= self.t2:
            return self
        return Thresholds(
            t1=self.t1, t2=self.t2, t3=self.t2, t1_low=self.t1_low
        )


class DecisionMaker:
    """Maps (working-set size, average outdegree) to a variant.

    With ``use_warp_mapping`` (an extension beyond the paper's space)
    the mid/high-degree band splits in two: degrees in ``[t1_low, t1)``
    select the virtual-warp mapping, which parallelizes each element's
    neighborhood without dedicating a whole block to it.

    Memory awareness (beyond Figure 11): when the caller reports device
    memory pressure at or above ``pressure_threshold``, the decision
    flips to footprint-minimal choices — the representation with fewer
    device bytes (the fixed ``|V|/8`` bitmap unless the queue is
    genuinely smaller) and thread mapping (whose 192-thread blocks hold
    no per-block neighbor-staging buffers).  Verstraaten et al. and
    Hong et al. both treat footprint as a first-class selection axis;
    this is that axis grafted onto the paper's decision space.
    """

    def __init__(
        self,
        thresholds: Thresholds,
        *,
        use_warp_mapping: bool = False,
        num_nodes: Optional[int] = None,
        pressure_threshold: float = 0.85,
    ):
        self.thresholds = thresholds
        self.use_warp_mapping = bool(use_warp_mapping)
        self.num_nodes = num_nodes
        if not 0.0 < pressure_threshold <= 1.0:
            raise RuntimeConfigError(
                f"pressure_threshold must be in (0, 1], got {pressure_threshold}"
            )
        self.pressure_threshold = float(pressure_threshold)

    def _mapping_for_degree(self, avg_out_degree: float) -> Mapping:
        t = self.thresholds
        if avg_out_degree >= t.t1:
            return Mapping.BLOCK
        if self.use_warp_mapping and avg_out_degree >= t.t1_low:
            return Mapping.WARP
        return Mapping.THREAD

    def _minimal_workset(self, workset_size: int) -> WorksetRepr:
        """The representation with the smaller device footprint."""
        if self.num_nodes is None:
            return WorksetRepr.BITMAP
        queue_bytes = 4 * workset_size
        bitmap_bytes = (self.num_nodes + 7) // 8
        return WorksetRepr.QUEUE if queue_bytes < bitmap_bytes else WorksetRepr.BITMAP

    def under_pressure(self, memory_pressure: float) -> bool:
        return memory_pressure >= self.pressure_threshold

    @staticmethod
    def _check_inputs(workset_size: int, avg_out_degree: float) -> None:
        """Reject inputs outside the decision space's domain.

        A NaN average outdegree would silently fall through every
        threshold comparison into the thread-mapped region; fail loudly
        instead.  A zero average outdegree is valid input (an
        all-zero-outdegree working set) and lands in the thread-mapped
        region by design — below any sensible T1.
        """
        if workset_size < 0:
            raise RuntimeConfigError(
                f"workset_size must be >= 0, got {workset_size}"
            )
        if not math.isfinite(avg_out_degree) or avg_out_degree < 0:
            raise RuntimeConfigError(
                f"avg_out_degree must be finite and >= 0, got {avg_out_degree}"
            )

    def decide(
        self,
        workset_size: int,
        avg_out_degree: float,
        *,
        memory_pressure: float = 0.0,
    ) -> Variant:
        """The Figure-11 region lookup, with a memory-pressure override."""
        self._check_inputs(workset_size, avg_out_degree)
        t = self.thresholds
        if workset_size < t.t2:
            mapping = Mapping.BLOCK
            workset = WorksetRepr.QUEUE
        else:
            mapping = self._mapping_for_degree(avg_out_degree)
            workset = (
                WorksetRepr.QUEUE if workset_size < t.t3 else WorksetRepr.BITMAP
            )
        if self.under_pressure(memory_pressure):
            workset = self._minimal_workset(workset_size)
            if mapping is Mapping.BLOCK:
                mapping = Mapping.THREAD
        return Variant(Ordering.UNORDERED, mapping, workset)

    def region(
        self, workset_size: int, avg_out_degree: float, *, memory_pressure: float = 0.0
    ) -> str:
        """Human-readable region label (telemetry / debugging)."""
        self._check_inputs(workset_size, avg_out_degree)
        t = self.thresholds
        suffix = "/mem-pressure" if self.under_pressure(memory_pressure) else ""
        if workset_size < t.t2:
            return "small-ws" + suffix
        size_part = "mid-ws" if workset_size < t.t3 else "large-ws"
        mapping = self._mapping_for_degree(avg_out_degree)
        degree_part = {
            Mapping.THREAD: "low-degree",
            Mapping.WARP: "mid-degree",
            Mapping.BLOCK: "high-degree",
        }[mapping]
        return f"{size_part}/{degree_part}{suffix}"
