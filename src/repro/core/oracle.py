"""Per-iteration oracle: how good are the adaptive runtime's decisions?

Because every variant computes the same functional result, a single
traversal can price *all* candidate variants on each iteration's actual
frontier and take the per-iteration minimum — a lower bound no realizable
runtime can beat (it requires knowing each iteration's cost in advance).
Comparing the adaptive runtime against this oracle quantifies decision
quality: the *agreement rate* (how often the decision maker picks the
oracle's variant) and the *regret* (time lost to wrong picks).

This is analysis tooling beyond the paper, built to evaluate its
contribution the way a follow-up study would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.inspector import StaticAttributes
from repro.core.runtime import AdaptiveResult
from repro.errors import KernelError
from repro.graph.csr import CSRGraph
from repro.gpusim.device import DeviceSpec, TESLA_C2070
from repro.gpusim.kernel import CostModel, CostParams
from repro.gpusim.transfer import transfer_seconds
from repro.kernels import costs as kcosts
from repro.kernels.computation import INF, UNSET_LEVEL, bfs_relax, sssp_relax
from repro.kernels.frame import TraversalResult
from repro.kernels.mapping import ComputationShape, computation_tally
from repro.kernels.variants import Variant, unordered_variants
from repro.kernels.workset import workset_gen_tallies

__all__ = [
    "IterationCosts",
    "OracleReport",
    "DecisionQuality",
    "per_iteration_oracle",
    "decision_quality",
]


@dataclass(frozen=True)
class IterationCosts:
    """All candidate variants priced on one iteration's actual frontier."""

    iteration: int
    workset_size: int
    seconds_by_variant: Dict[str, float]

    @property
    def best_variant(self) -> str:
        return min(self.seconds_by_variant, key=self.seconds_by_variant.get)

    @property
    def best_seconds(self) -> float:
        return self.seconds_by_variant[self.best_variant]

    @property
    def worst_seconds(self) -> float:
        return max(self.seconds_by_variant.values())


@dataclass
class OracleReport:
    """The full per-iteration cost matrix of one traversal."""

    algorithm: str
    iterations: List[IterationCosts] = field(default_factory=list)
    fixed_seconds: float = 0.0  # transfers + per-iteration readbacks

    @property
    def oracle_seconds(self) -> float:
        """Total time with perfect per-iteration variant selection."""
        return self.fixed_seconds + sum(it.best_seconds for it in self.iterations)

    def seconds_for(self, chooser) -> float:
        """Total time under an arbitrary per-iteration chooser
        ``chooser(iteration_costs) -> variant_code``."""
        total = self.fixed_seconds
        for it in self.iterations:
            total += it.seconds_by_variant[chooser(it)]
        return total

    def static_seconds(self, code: str) -> float:
        """Total time if *code* were used for every iteration."""
        return self.seconds_for(lambda it: code)

    def best_static(self) -> Tuple[str, float]:
        """The best single-variant schedule computable in hindsight."""
        codes = self.iterations[0].seconds_by_variant if self.iterations else {}
        if not codes:
            raise KernelError("empty oracle report")
        totals = {code: self.static_seconds(code) for code in codes}
        best = min(totals, key=totals.get)
        return best, totals[best]


def per_iteration_oracle(
    graph: CSRGraph,
    source: int,
    algorithm: str = "bfs",
    *,
    variants: Optional[Sequence[Union[Variant, str]]] = None,
    device: DeviceSpec = TESLA_C2070,
    cost_params: Optional[CostParams] = None,
    max_iterations: Optional[int] = None,
) -> OracleReport:
    """Price every candidate variant on every iteration of one traversal.

    The functional state advances once per iteration (the result does not
    depend on the variant); each candidate's computation + generation
    kernels are tallied against the same frontier.
    """
    graph._check_node(source)
    weighted = algorithm == "sssp"
    if weighted and graph.weights is None:
        raise KernelError("SSSP requires a weighted graph")
    candidates = [
        Variant.parse(v) if isinstance(v, str) else v
        for v in (variants if variants is not None else unordered_variants())
    ]

    # One source of graph properties for the whole report: the inspector's
    # static profile.  The block-mapping launch geometry depends on the
    # average outdegree, and recomputing it per variant per iteration
    # (the old inner-loop `graph.avg_out_degree` read) both repeated the
    # reduction |variants| x |iterations| times and left the door open to
    # the oracle's labels and a learned policy's features disagreeing.
    static = StaticAttributes.of(graph)
    avg_out_degree = static.avg_out_degree
    assert avg_out_degree == graph.avg_out_degree, (
        "profiled average outdegree diverged from the graph's own "
        f"({avg_out_degree} != {graph.avg_out_degree})"
    )
    tpb_by_code = {
        v.code: v.threads_per_block(avg_out_degree, device) for v in candidates
    }

    model = CostModel(device, cost_params)
    n = graph.num_nodes
    if weighted:
        state = np.full(n, INF, dtype=np.float64)
        state[source] = 0.0
    else:
        state = np.full(n, UNSET_LEVEL, dtype=np.int64)
        state[source] = 0

    report = OracleReport(algorithm=algorithm)
    # Fixed costs mirror the frame: initial H2D, final D2H.
    state_bytes = 4 * n + n + 4 * n + n // 8
    report.fixed_seconds += transfer_seconds(
        graph.device_bytes() + state_bytes, device
    )
    report.fixed_seconds += transfer_seconds(4 * n, device)

    frontier = np.array([source], dtype=np.int64)
    iteration = 0
    cap = max_iterations if max_iterations is not None else 16 * n + 64
    while frontier.size:
        if iteration >= cap:
            raise KernelError(f"oracle traversal exceeded {cap} iterations")
        degrees = graph.out_degrees[frontier]
        if weighted:
            updated, _, improved, edges = sssp_relax(graph, frontier, state)
        else:
            updated, _, improved, edges = bfs_relax(graph, frontier, state)

        shape = ComputationShape(
            name=f"{algorithm}_comp",
            num_nodes=n,
            active_ids=frontier,
            degrees=degrees,
            edge_cost=kcosts.C_EDGE_WEIGHTED if weighted else kcosts.C_EDGE,
            improved=improved,
            updated_count=int(updated.size),
            weight_streams=1 if weighted else 0,
        )
        per_variant: Dict[str, float] = {}
        for variant in candidates:
            tpb = tpb_by_code[variant.code]
            seconds = model.price(
                computation_tally(shape, variant.mapping, variant.workset, tpb, device)
            ).seconds
            for tally in workset_gen_tallies(
                n, int(updated.size), variant.workset, device
            ):
                seconds += model.price(tally).seconds
            per_variant[variant.code] = seconds

        report.iterations.append(
            IterationCosts(
                iteration=iteration,
                workset_size=int(frontier.size),
                seconds_by_variant=per_variant,
            )
        )
        report.fixed_seconds += transfer_seconds(4, device)  # readback
        frontier = updated
        iteration += 1
    return report


@dataclass(frozen=True)
class DecisionQuality:
    """Agreement and regret of a realized schedule vs the oracle."""

    agreement: float
    realized_seconds: float
    oracle_seconds: float

    @property
    def regret(self) -> float:
        """Fractional time lost to non-oracle decisions (>= 0)."""
        if self.oracle_seconds <= 0:
            return 0.0
        return max(0.0, self.realized_seconds / self.oracle_seconds - 1.0)


def decision_quality(
    result: Union[AdaptiveResult, TraversalResult], report: OracleReport
) -> DecisionQuality:
    """Score a traversal's per-iteration variant choices against the oracle.

    The realized schedule is re-priced *inside the oracle's cost matrix*
    so agreement and regret compare decisions, not incidental cost-model
    noise.
    """
    traversal = result.traversal if isinstance(result, AdaptiveResult) else result
    if len(traversal.iterations) != len(report.iterations):
        raise KernelError(
            f"iteration count mismatch: traversal has "
            f"{len(traversal.iterations)}, oracle has {len(report.iterations)}"
        )
    agree = 0
    realized = report.fixed_seconds
    for rec, it in zip(traversal.iterations, report.iterations):
        if rec.variant not in it.seconds_by_variant:
            raise KernelError(
                f"variant {rec.variant} not in the oracle's candidate set"
            )
        realized += it.seconds_by_variant[rec.variant]
        if rec.variant == it.best_variant:
            agree += 1
    total = max(1, len(report.iterations))
    return DecisionQuality(
        agreement=agree / total,
        realized_seconds=realized,
        oracle_seconds=report.oracle_seconds,
    )
