"""Guarded traversal execution: retry, fall back, degrade — but answer.

``resilient_run`` wraps any registered algorithm (``resilient_bfs`` /
``resilient_sssp`` are its named wrappers) under the adaptive runtime
(:mod:`repro.core.runtime`) in a recovery ladder:

1. **retry** — a transient failure (injected or genuine launch error)
   re-runs the query, resuming from the last checkpoint, after an
   exponential backoff with jitter;
2. **checkpoint restore** — a memory fault invalidates the live state,
   so the retry *must* restore the last known-good snapshot;
3. **variant fallback** — repeated failures without forward progress
   abandon the current implementation (the adaptive policy first, then
   each unordered static variant in turn), the reliability counterpart
   of the paper's performance-motivated variant switching;
4. **CPU degradation** — when the simulated GPU cannot finish (ladder
   exhausted, or the watchdog declares non-convergence), the query is
   answered by the serial :mod:`repro.cpu` baseline.  Slow, but correct
   and fault-free.

Orthogonal to the failure ladder, a **device-OOM ladder** answers
:class:`~repro.errors.DeviceOOMError` when a memory budget
(``GuardConfig.mem_budget``) is attached.  Each OOM escalates one rung,
trading performance for footprint while keeping answers bit-identical:

1. **workset spill** — re-run with spill mode on: working sets and
   checkpoint staging that do not fit overflow to host memory, priced
   as extra PCIe traffic;
2. **force bitmap** — additionally pin the working-set representation
   to the bitmap, capping the footprint at ``O(|V|/8)``;
3. **checkpoint relief** — additionally stop taking new checkpoints
   (existing snapshots remain valid for restores);
4. **CPU degradation** — the host always has room.

Because every GPU variant and the CPU baseline compute identical
levels/distances, both ladders preserve bit-identical answers no matter
which rung served the query; only latency changes.  Every fault and
the action that answered it is recorded as a
:class:`~repro.core.telemetry.FaultEvent` in the result's trace.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.core.config import RuntimeConfig
from repro.core.runtime import adaptive_run, run_static
from repro.core.telemetry import DecisionTrace, FaultEvent
from repro.engine.registry import get_algorithm
from repro.errors import (
    KernelError,
    DeviceOOMError,
    MemoryFaultError,
    NonConvergenceError,
    ReproError,
    RuntimeConfigError,
)
from repro.graph.csr import CSRGraph
from repro.gpusim.allocator import MemoryBudget, MemoryReport, parse_mem_size
from repro.gpusim.device import DeviceSpec, TESLA_C2070
from repro.gpusim.kernel import CostParams
from repro.kernels.variants import Variant, WorksetRepr, unordered_variants
from repro.obs.context import current_observer, observing
from repro.reliability.checkpoint import CheckpointKeeper
from repro.reliability.faults import FaultInjector, FaultPlan
from repro.reliability.watchdog import Watchdog

__all__ = [
    "GuardConfig",
    "ResilientResult",
    "resilient_run",
    "resilient_bfs",
    "resilient_sssp",
    "guarded_query",
]


@dataclass(frozen=True)
class GuardConfig:
    """Knobs of the guarded runner."""

    #: consecutive no-progress failures tolerated before skipping the
    #: rest of the ladder and degrading to the CPU (None = let the
    #: ladder run its full course)
    max_retries: Optional[int] = None
    #: consecutive no-progress failures of one stage before falling back
    #: to the next implementation
    retries_per_stage: int = 3
    #: exponential backoff between retries (host wall-clock seconds)
    backoff_base_s: float = 0.0
    backoff_factor: float = 2.0
    backoff_max_s: float = 0.5
    #: +/- fraction of each backoff randomized (decorrelates retry storms)
    jitter: float = 0.25
    #: real wall-clock deadline for the whole query (None = unbounded)
    deadline_s: Optional[float] = None
    #: iteration budget across the whole query, retries included
    max_iterations: Optional[int] = None
    #: answer from the serial CPU baseline as a last resort; with False
    #: an exhausted ladder re-raises the final error
    degrade_to_cpu: bool = True
    #: checkpoint every N iterations (None = cost-aware policy)
    checkpoint_every: Optional[int] = None
    #: overhead budget of the cost-aware checkpoint policy
    checkpoint_budget: float = 0.02
    #: device-memory budget for every GPU attempt (bytes, or a
    #: human-readable size like ``"512M"``); ``None`` disables memory
    #: accounting.  A :class:`~repro.errors.DeviceOOMError` escalates
    #: the OOM ladder: spill -> force bitmap -> checkpoint relief -> CPU
    mem_budget: Optional[object] = None
    #: seed of the backoff-jitter stream
    seed: int = 0
    #: sleep function (tests and benches inject a no-op)
    sleeper: Callable[[float], None] = time.sleep

    def __post_init__(self):
        if self.max_retries is not None and self.max_retries < 1:
            raise RuntimeConfigError(
                f"max_retries must be >= 1, got {self.max_retries}"
            )
        if self.retries_per_stage < 1:
            raise RuntimeConfigError(
                f"retries_per_stage must be >= 1, got {self.retries_per_stage}"
            )
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise RuntimeConfigError("backoff durations must be >= 0")
        if self.backoff_factor < 1.0:
            raise RuntimeConfigError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise RuntimeConfigError(f"jitter must be in [0, 1), got {self.jitter}")
        if self.mem_budget is not None:
            parse_mem_size(self.mem_budget)  # fail fast on nonsense sizes


@dataclass
class ResilientResult:
    """Outcome of a guarded query: the answer plus its recovery story."""

    algorithm: str
    source: int
    #: levels / distances — bit-identical to a fault-free run
    values: np.ndarray
    #: decision trace of the winning attempt, fault events included
    trace: DecisionTrace
    #: ladder rung that produced the answer ("adaptive", a variant code,
    #: or "cpu")
    stage: str
    #: total execution attempts (1 = no recovery needed)
    attempts: int
    #: True when the CPU baseline answered
    degraded: bool
    #: the winning attempt's full result (AdaptiveResult,
    #: TraversalResult, or a CPU result object)
    result: object
    #: simulated seconds of the winning attempt (checkpoint copies
    #: included); the number to compare against an unguarded run
    final_seconds: float
    #: simulated compute re-executed or wasted by failed attempts
    replayed_seconds: float
    #: host wall-clock spent in backoff sleeps
    backoff_seconds: float
    checkpoints_saved: int
    restores: int
    faults: List[FaultEvent] = field(default_factory=list)
    #: device-memory accounting of the winning attempt (None without a
    #: budget, or when the CPU answered)
    memory: Optional[MemoryReport] = None
    #: highest OOM-ladder rung reached (0 = memory never overflowed)
    oom_rung: int = 0

    @property
    def total_seconds(self) -> float:
        return self.final_seconds

    @property
    def num_faults(self) -> int:
        return len(self.faults)

    def recovery_actions(self):
        return self.trace.recovery_actions()


def resilient_run(
    graph: CSRGraph,
    algorithm: str = "bfs",
    source: Optional[int] = None,
    *,
    config: Optional[RuntimeConfig] = None,
    device: DeviceSpec = TESLA_C2070,
    cost_params: Optional[CostParams] = None,
    guard: Optional[GuardConfig] = None,
    plan: Optional[FaultPlan] = None,
    observe=None,
    **params,
) -> ResilientResult:
    """Run any registered *algorithm* with the full recovery ladder.

    The ladder's stages come from the registry's capability flags: an
    adaptive-eligible algorithm starts on the adaptive policy and falls
    back through the unordered static variants; an algorithm without
    variants (DOBFS) runs its default entry point, then degrades
    straight to the CPU.  Whole-graph algorithms ignore *source*.

    *observe* installs an :class:`~repro.obs.Observer` for the run, so
    guard metrics (attempts, faults, OOM rung, degradations) land in it
    alongside the traversal's own metrics and spans.  Extra keyword
    arguments (*params*) are forwarded to the algorithm (PageRank's
    ``damping``/``tolerance``)."""
    info = get_algorithm(algorithm)
    if info.source_based:
        if source is None:
            raise KernelError(f"{algorithm!r} requires a source node")
        # An invalid source is a bad request, not a transient fault:
        # reject it here instead of burning the whole retry/fallback
        # ladder (and its backoff sleeps) on a query that can never
        # succeed.
        graph._check_node(source)
    else:
        source = -1
    with observing(observe):
        return _resilient(
            algorithm, graph, source, config, device, cost_params, guard, plan,
            params,
        )


def resilient_bfs(
    graph: CSRGraph,
    source: int,
    *,
    config: Optional[RuntimeConfig] = None,
    device: DeviceSpec = TESLA_C2070,
    cost_params: Optional[CostParams] = None,
    guard: Optional[GuardConfig] = None,
    plan: Optional[FaultPlan] = None,
    observe=None,
) -> ResilientResult:
    """BFS with the full recovery ladder (see :func:`resilient_run`)."""
    return resilient_run(
        graph, "bfs", source, config=config, device=device,
        cost_params=cost_params, guard=guard, plan=plan, observe=observe,
    )


def resilient_sssp(
    graph: CSRGraph,
    source: int,
    *,
    config: Optional[RuntimeConfig] = None,
    device: DeviceSpec = TESLA_C2070,
    cost_params: Optional[CostParams] = None,
    guard: Optional[GuardConfig] = None,
    plan: Optional[FaultPlan] = None,
    observe=None,
) -> ResilientResult:
    """SSSP with the full recovery ladder (see :func:`resilient_run`)."""
    return resilient_run(
        graph, "sssp", source, config=config, device=device,
        cost_params=cost_params, guard=guard, plan=plan, observe=observe,
    )


def guarded_query(run, *, label: str = "query"):
    """Run one query's entry point with batch-grade failure isolation.

    The batched serving path (:mod:`repro.serve`) executes many queries
    in one process; one query failing — an invalid request, a
    non-converging traversal, an OOM — must not take its batchmates
    down.  ``guarded_query(run)`` calls *run()* and returns
    ``(result, None)`` on success or ``(None, message)`` when it raised
    a :class:`~repro.errors.ReproError`, reporting the failure into the
    current observer under ``guard.query_failures``.  Non-``ReproError``
    exceptions propagate: those are bugs, not query faults.
    """
    try:
        return run(), None
    except ReproError as exc:
        observer = current_observer()
        if observer is not None:
            observer.metrics.counter("guard.query_failures").inc()
        return None, f"{label}: {exc}"


# ----------------------------------------------------------------------
# Internals
# ----------------------------------------------------------------------

_RAISING_KINDS = {"launch_failure", "memory_fault"}


def _observe_guard(attempts: int, num_faults: int, oom_rung: int, degraded: bool):
    """Report the finished ladder's story into the current observer."""
    observer = current_observer()
    if observer is None:
        return
    metrics = observer.metrics
    metrics.counter("guard.attempts").inc(attempts)
    metrics.counter("guard.faults").inc(num_faults)
    metrics.gauge("guard.oom_rung").set(oom_rung)
    if degraded:
        metrics.counter("guard.cpu_degradations").inc()

#: the OOM ladder's rungs, in escalation order (rung i -> action[i-1])
_OOM_ACTIONS = ("workset_spill", "force_bitmap", "checkpoint_relief")


def _stages_for(info) -> List[str]:
    """The failure ladder's implementation rungs, per capability flags."""
    stages: List[str] = []
    if info.adaptive_eligible:
        stages.append("adaptive")
    if info.supports_variants:
        stages.extend(v.code for v in unordered_variants())
    if not stages:
        # No variant axis to fall back along (DOBFS): retry the default
        # entry point, then degrade.
        stages.append("default")
    return stages


def _resilient(
    algorithm: str,
    graph: CSRGraph,
    source: int,
    config: Optional[RuntimeConfig],
    device: DeviceSpec,
    cost_params: Optional[CostParams],
    guard: Optional[GuardConfig],
    plan: Optional[FaultPlan],
    params: Optional[dict] = None,
) -> ResilientResult:
    guard = guard or GuardConfig()
    params = params or {}
    info = get_algorithm(algorithm)
    injector = FaultInjector(plan) if plan is not None and not plan.is_empty else None
    # Armed up front: the guard's deadline covers the whole ladder —
    # every retry, backoff sleep and fallback attempt shares one clock.
    watchdog = Watchdog(
        max_iterations=guard.max_iterations, deadline_s=guard.deadline_s
    ).arm()
    keeper = CheckpointKeeper(
        every=guard.checkpoint_every,
        budget=guard.checkpoint_budget,
        device=device,
    )
    stages = _stages_for(info)
    jitter_rng = np.random.default_rng(guard.seed)

    events: List[FaultEvent] = []
    attempts = 0
    stage_idx = 0
    stage_failures = 0
    no_progress = 0
    oom_rung = 0
    backoff_total = 0.0
    last_marker = -1
    last_error: Optional[ReproError] = None

    while True:
        attempts += 1
        stage = stages[stage_idx]
        resume = keeper.restore(algorithm, source) if keeper.latest is not None else None
        # OOM-ladder posture for this attempt: each budget is fresh (the
        # previous attempt's charges died with it), spill mode from rung
        # 1, bitmap pinning from rung 2, checkpoint relief from rung 3.
        memory = None
        if guard.mem_budget is not None:
            memory = MemoryBudget(
                guard.mem_budget, device=device, spill=oom_rung >= 1
            )
        run_config = config
        force_bitmap = oom_rung >= 2
        if force_bitmap:
            run_config = (config or RuntimeConfig()).with_overrides(
                force_workset="bitmap"
            )
        run_keeper = None if oom_rung >= 3 else keeper
        try:
            if injector is not None:
                with injector.installed():
                    outcome = _run_stage(
                        algorithm, stage, graph, source, run_config, device,
                        cost_params, watchdog, run_keeper, resume, injector,
                        memory, force_bitmap, params,
                    )
            else:
                outcome = _run_stage(
                    algorithm, stage, graph, source, run_config, device,
                    cost_params, watchdog, run_keeper, resume, None,
                    memory, force_bitmap, params,
                )
        except DeviceOOMError as exc:
            last_error = exc
            oom_rung += 1
            if oom_rung <= len(_OOM_ACTIONS):
                action = _OOM_ACTIONS[oom_rung - 1]
                detail = f"rung {oom_rung}: {str(exc)[:100]}"
            else:
                action = "cpu_degradation" if guard.degrade_to_cpu else "raised"
                detail = f"OOM ladder exhausted: {str(exc)[:90]}"
            _drain(injector, events, attempts, absorbed_only=True)
            events.append(
                FaultEvent(
                    attempt=attempts,
                    iteration=-1,
                    kind="device_oom",
                    site="allocator",
                    action=action,
                    detail=detail,
                )
            )
            if oom_rung > len(_OOM_ACTIONS):
                if not guard.degrade_to_cpu:
                    raise
                return _degrade(
                    algorithm, graph, source, keeper, events, attempts,
                    backoff_total, oom_rung=oom_rung, params=params,
                )
            continue
        except NonConvergenceError as exc:
            last_error = exc
            _drain(injector, events, attempts, absorbed_only=True)
            events.append(
                FaultEvent(
                    attempt=attempts,
                    iteration=-1,
                    kind="non_convergence",
                    site="watchdog",
                    action="cpu_degradation" if guard.degrade_to_cpu else "raised",
                    detail=str(exc)[:120],
                )
            )
            if not guard.degrade_to_cpu:
                raise
            return _degrade(
                algorithm, graph, source, keeper, events, attempts,
                backoff_total, params=params,
            )
        except ReproError as exc:
            last_error = exc
            marker = keeper.latest.next_iteration if keeper.latest is not None else -1
            progressed = marker > last_marker
            last_marker = marker
            if progressed:
                stage_failures = 0
                no_progress = 0
            stage_failures += 1
            no_progress += 1

            exhausted = (
                guard.max_retries is not None and no_progress > guard.max_retries
            )
            fall_back = not exhausted and stage_failures >= guard.retries_per_stage
            if fall_back:
                stage_idx += 1
                stage_failures = 0
                if stage_idx >= len(stages):
                    exhausted = True
            if exhausted:
                action = "cpu_degradation" if guard.degrade_to_cpu else "raised"
            elif fall_back:
                action = "variant_fallback"
            elif isinstance(exc, MemoryFaultError) and keeper.latest is not None:
                action = "checkpoint_restore"
            else:
                action = "retry"
            detail = action
            if action == "variant_fallback" and stage_idx < len(stages):
                detail = f"fallback to {stages[stage_idx]}"
            elif action == "checkpoint_restore":
                detail = f"restored iteration {keeper.latest.next_iteration}"
            tagged = _drain(
                injector, events, attempts, last_action=action, last_detail=detail
            )
            if not tagged:
                # The failure was not an injected fault — record it so the
                # trace still explains the path taken.
                events.append(
                    FaultEvent(
                        attempt=attempts,
                        iteration=-1,
                        kind="error",
                        site=type(exc).__name__,
                        action=action,
                        detail=str(exc)[:120],
                    )
                )
            if exhausted:
                if not guard.degrade_to_cpu:
                    raise
                return _degrade(
                    algorithm, graph, source, keeper, events, attempts,
                    backoff_total, params=params,
                )
            backoff_total += _backoff(guard, no_progress, jitter_rng)
            continue

        # ---------------- success ----------------
        _drain(injector, events, attempts, absorbed_only=True)
        traversal = getattr(outcome, "traversal", outcome)
        trace = getattr(outcome, "trace", None) or DecisionTrace()
        for event in events:
            trace.record_fault(event)
        useful = sum(r.seconds for r in traversal.iterations)
        replayed = max(0.0, keeper.work_seconds - useful)
        watchdog.bank_simulated(traversal.total_seconds)
        _observe_guard(attempts, len(trace.faults), oom_rung, degraded=False)
        return ResilientResult(
            algorithm=algorithm,
            source=source,
            values=traversal.values,
            trace=trace,
            stage=stage,
            attempts=attempts,
            degraded=False,
            result=outcome,
            final_seconds=traversal.total_seconds,
            replayed_seconds=replayed,
            backoff_seconds=backoff_total,
            checkpoints_saved=keeper.saves,
            restores=keeper.restores,
            faults=list(trace.faults),
            memory=memory.report() if memory is not None else None,
            oom_rung=oom_rung,
        )


def _run_stage(
    algorithm, stage, graph, source, config, device, cost_params,
    watchdog, keeper, resume, injector, memory=None, force_bitmap=False,
    params=None,
):
    params = params or {}
    kwargs = dict(
        device=device,
        cost_params=cost_params,
        watchdog=watchdog,
        checkpoint_keeper=keeper,
        resume_from=resume,
        fault_hook=injector,
        memory=memory,
        **params,
    )
    if stage == "adaptive":
        return adaptive_run(graph, algorithm, source, config=config, **kwargs)
    if stage == "default":
        # Variant-less algorithms (DOBFS) run their registered default
        # entry point; the OOM ladder's bitmap pin does not apply.
        run_default = get_algorithm(algorithm).run_default
        return run_default(graph, source, **kwargs)
    variant = Variant.parse(stage)
    if force_bitmap and variant.workset is not WorksetRepr.BITMAP:
        # The OOM ladder's bitmap pin applies to static stages too.
        variant = Variant(variant.ordering, variant.mapping, WorksetRepr.BITMAP)
    return run_static(graph, source, algorithm, variant, **kwargs)


def _drain(
    injector: Optional[FaultInjector],
    events: List[FaultEvent],
    attempt: int,
    *,
    absorbed_only: bool = False,
    last_action: str = "retry",
    last_detail: str = "",
) -> bool:
    """Convert the injector's pending faults into trace events.

    Latency spikes never abort an attempt — they are "absorbed".  The
    fault that raised (always the last pending one) is tagged with the
    recovery action the guard chose.  Returns True when a raising fault
    was tagged (i.e. the failure was injected, not genuine).
    """
    if injector is None:
        return False
    tagged = False
    pending = injector.drain_pending()
    for i, fault in enumerate(pending):
        is_last = i == len(pending) - 1
        if not absorbed_only and is_last and fault.kind in _RAISING_KINDS:
            action, detail = last_action, last_detail or fault.detail
            tagged = True
        else:
            action, detail = "absorbed", fault.detail
        events.append(
            FaultEvent(
                attempt=attempt,
                iteration=fault.iteration,
                kind=fault.kind,
                site=fault.site,
                action=action,
                detail=detail,
            )
        )
    return tagged


def _backoff(guard: GuardConfig, consecutive: int, rng: np.random.Generator) -> float:
    if guard.backoff_base_s <= 0:
        return 0.0
    delay = min(
        guard.backoff_max_s,
        guard.backoff_base_s * guard.backoff_factor ** max(0, consecutive - 1),
    )
    if guard.jitter > 0:
        delay *= float(rng.uniform(1.0 - guard.jitter, 1.0 + guard.jitter))
    if delay > 0:
        guard.sleeper(delay)
    return delay


def _degrade(
    algorithm, graph, source, keeper, events, attempts, backoff_total,
    oom_rung: int = 0, params=None,
) -> ResilientResult:
    """Last rung: answer from the registered serial CPU baseline."""
    values, cpu = get_algorithm(algorithm).cpu_run(graph, source, **(params or {}))
    trace = DecisionTrace()
    for event in events:
        trace.record_fault(event)
    _observe_guard(attempts, len(trace.faults), oom_rung, degraded=True)
    return ResilientResult(
        algorithm=algorithm,
        source=source,
        values=values,
        trace=trace,
        stage="cpu",
        attempts=attempts,
        degraded=True,
        result=cpu,
        final_seconds=cpu.seconds,
        replayed_seconds=keeper.work_seconds,
        backoff_seconds=backoff_total,
        checkpoints_saved=keeper.saves,
        restores=keeper.restores,
        faults=list(trace.faults),
        oom_rung=oom_rung,
    )
