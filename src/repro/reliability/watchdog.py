"""Execution watchdog: iteration and wall-clock budgets.

A production traversal service cannot let one query spin forever — a
non-converging query (negative-weight-like pathologies, corrupted
state that keeps re-activating nodes, adversarial inputs) must be cut
off deterministically.  The :class:`Watchdog` is consulted by the
traversal frame at the top of every iteration and raises
:class:`~repro.errors.NonConvergenceError` naming the exhausted budget.

Budgets:

- ``max_iterations`` — iterations across the whole guarded query
  (shared across retries: a retry resuming from iteration *k* has *k*
  iterations already on the meter via the checkpointed records);
- ``deadline_s`` — *real* wall-clock seconds for the whole query (the
  service-level deadline);
- ``simulated_deadline_s`` — simulated seconds budget, useful when the
  simulated device is the thing being modelled.

The deadline clock starts when the watchdog is **armed**
(:meth:`Watchdog.arm`), not when it is constructed.  That distinction
is what lets the serving layer start a query's deadline at *admission*
— queue wait counts against the budget — while the guarded runner arms
immediately and batch rows arm when their query enters the system.  A
watchdog that is never armed explicitly arms itself on its first
:meth:`check`, so single-query callers that just pass one into a frame
keep their old behavior.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from repro.errors import NonConvergenceError

__all__ = ["Watchdog"]


class Watchdog:
    """Enforces iteration / wall-clock budgets over one guarded query."""

    def __init__(
        self,
        *,
        max_iterations: Optional[int] = None,
        deadline_s: Optional[float] = None,
        simulated_deadline_s: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_iterations is not None and max_iterations < 1:
            raise NonConvergenceError(
                f"max_iterations budget must be >= 1, got {max_iterations}"
            )
        self.max_iterations = max_iterations
        self.deadline_s = deadline_s
        self.simulated_deadline_s = simulated_deadline_s
        self._clock = clock
        self._started_at: Optional[float] = None
        self._simulated_s = 0.0

    def arm(self) -> "Watchdog":
        """Start the deadline clock.  Idempotent: the first call wins, so
        a guard retrying a query does not reset the budget.  Returns
        ``self`` so construction and arming can be one expression."""
        if self._started_at is None:
            self._started_at = self._clock()
        return self

    @property
    def armed(self) -> bool:
        return self._started_at is not None

    @property
    def elapsed_s(self) -> float:
        """Real seconds since the watchdog was armed (0.0 before)."""
        if self._started_at is None:
            return 0.0
        return self._clock() - self._started_at

    @property
    def simulated_s(self) -> float:
        return self._simulated_s

    @property
    def remaining_s(self) -> Optional[float]:
        """Wall-clock budget left (None without a deadline; never
        negative — an expired budget reads 0.0)."""
        if self.deadline_s is None:
            return None
        return max(0.0, self.deadline_s - self.elapsed_s)

    def check(self, iteration: int, simulated_seconds: float = 0.0) -> None:
        """Called at the top of each traversal iteration.

        *simulated_seconds* is the simulated time accumulated *this
        attempt*; the watchdog adds it to time banked by prior attempts
        via :meth:`bank_simulated`.  An unarmed watchdog arms itself
        here, so direct single-query callers need no extra call.
        """
        self.arm()
        if self.max_iterations is not None and iteration >= self.max_iterations:
            raise NonConvergenceError(
                f"traversal exceeded its iteration budget of "
                f"{self.max_iterations} iterations without convergence"
            )
        if self.deadline_s is not None and self.elapsed_s > self.deadline_s:
            raise NonConvergenceError(
                f"traversal exceeded its wall-clock deadline of "
                f"{self.deadline_s} s (elapsed {self.elapsed_s:.3f} s)"
            )
        if (
            self.simulated_deadline_s is not None
            and self._simulated_s + simulated_seconds > self.simulated_deadline_s
        ):
            raise NonConvergenceError(
                f"traversal exceeded its simulated-time budget of "
                f"{self.simulated_deadline_s} s"
            )

    def bank_simulated(self, seconds: float) -> None:
        """Credit simulated time spent by a finished (or failed) attempt
        so the budget spans retries."""
        self._simulated_s += max(0.0, float(seconds))
