"""Circuit breaker: stop sending queries down a path that keeps failing.

The guarded runner (:mod:`repro.reliability.guard`) makes one query
survive one failure.  A *service* has the complementary problem: when a
whole (algorithm, path) combination is broken — a variant whose fused
kernel keeps faulting, a fallback ladder that burns its full retry
budget on every query — re-walking the ladder per query multiplies the
damage.  The :class:`CircuitBreaker` watches failures per routing key
and, after ``failure_threshold`` consecutive failures, *trips*: the
serving layer routes around the path (batch rows go straight to the
single-source fallback; a broken fallback is answered with an explicit
error) instead of paying the failure again.

States per key, the classic three:

- **closed** — healthy; failures are counted, a success resets them.
- **open** — tripped; :meth:`allow` answers False until ``cooldown_s``
  wall-clock seconds (or ``cooldown_probes`` denied requests, whichever
  comes first) have passed.
- **half-open** — cooldown elapsed; one probe request is allowed
  through.  Success closes the circuit, failure re-opens it and
  restarts the cooldown.

Trips, short-circuited requests and resets are reported to the current
observer (``breaker.*`` in the metrics catalog),
:meth:`CircuitBreaker.snapshot` is JSON-shaped for the serve manifest,
and every state transition is appended to
:meth:`CircuitBreaker.transition_log` — (key, from, to, cause) — so a
chaos run can show *which* path tripped and when, not just that some
trip happened.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional

from repro.errors import ReproError, RuntimeConfigError
from repro.obs.context import current_observer

__all__ = ["BreakerOpenError", "CircuitBreaker"]


class BreakerOpenError(ReproError):
    """A query was refused because its routing path's circuit is open
    (the path kept failing and is cooling down)."""


@dataclass
class _Circuit:
    """Per-key breaker state (private)."""

    state: str = "closed"  # "closed" | "open" | "half_open"
    consecutive_failures: int = 0
    trips: int = 0
    short_circuits: int = 0
    opened_at: float = 0.0
    denied_since_open: int = 0
    probe_in_flight: bool = False


class CircuitBreaker:
    """Tracks failure streaks per routing key and trips open.

    Keys are anything hashable — the serving layer uses
    ``(path, algorithm, mode)`` tuples so a broken ``("batch", "sssp",
    "U_T_BM")`` slab does not take ``("batch", "bfs", "adaptive")``
    down with it.
    """

    def __init__(
        self,
        *,
        failure_threshold: int = 3,
        cooldown_s: float = 30.0,
        cooldown_probes: Optional[int] = 8,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise RuntimeConfigError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown_s < 0:
            raise RuntimeConfigError(f"cooldown_s must be >= 0, got {cooldown_s}")
        if cooldown_probes is not None and cooldown_probes < 1:
            raise RuntimeConfigError(
                f"cooldown_probes must be >= 1, got {cooldown_probes}"
            )
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.cooldown_probes = cooldown_probes
        self._clock = clock
        self._circuits: Dict[Hashable, _Circuit] = {}
        self._transitions: List[dict] = []

    # ------------------------------------------------------------------

    def _circuit(self, key: Hashable) -> _Circuit:
        circuit = self._circuits.get(key)
        if circuit is None:
            circuit = self._circuits[key] = _Circuit()
        return circuit

    def _move(
        self, key: Hashable, circuit: _Circuit, to_state: str, cause: str
    ) -> None:
        """Move *circuit* to *to_state*, logging the transition."""
        self._transitions.append(
            {
                "key": self._key_str(key),
                "from": circuit.state,
                "to": to_state,
                "cause": cause,
            }
        )
        circuit.state = to_state

    def state(self, key: Hashable) -> str:
        """The key's current state ("closed" / "open" / "half_open")."""
        return self._refresh(key, self._circuit(key)).state

    def _refresh(self, key: Hashable, circuit: _Circuit) -> _Circuit:
        if circuit.state == "open":
            cooled = self._clock() - circuit.opened_at >= self.cooldown_s
            probed_out = (
                self.cooldown_probes is not None
                and circuit.denied_since_open >= self.cooldown_probes
            )
            if cooled or probed_out:
                self._move(key, circuit, "half_open", "cooldown")
                circuit.probe_in_flight = False
        return circuit

    def allow(self, key: Hashable) -> bool:
        """May a request take this path right now?

        Closed circuits always allow.  Open circuits deny (counted as a
        short-circuit).  A half-open circuit allows exactly one probe at
        a time; its outcome decides the next state.
        """
        circuit = self._refresh(key, self._circuit(key))
        if circuit.state == "closed":
            return True
        if circuit.state == "half_open" and not circuit.probe_in_flight:
            circuit.probe_in_flight = True
            return True
        circuit.short_circuits += 1
        circuit.denied_since_open += 1
        self._observe("short_circuits")
        return False

    def record_success(self, key: Hashable) -> None:
        """A request on this path succeeded: reset the streak; a
        successful half-open probe closes the circuit."""
        circuit = self._circuit(key)
        if circuit.state != "closed":
            self._observe("resets")
            self._move(key, circuit, "closed", "reset")
        circuit.consecutive_failures = 0
        circuit.probe_in_flight = False

    def record_failure(self, key: Hashable) -> bool:
        """A request on this path failed.  Returns True when this
        failure tripped (or re-tripped) the circuit open."""
        circuit = self._refresh(key, self._circuit(key))
        circuit.consecutive_failures += 1
        circuit.probe_in_flight = False
        should_trip = (
            circuit.state == "half_open"
            or circuit.consecutive_failures >= self.failure_threshold
        )
        if should_trip and circuit.state != "open":
            self._move(key, circuit, "open", "trip")
            circuit.trips += 1
            circuit.opened_at = self._clock()
            circuit.denied_since_open = 0
            self._observe("trips")
            return True
        return False

    # ------------------------------------------------------------------

    @property
    def open_count(self) -> int:
        return sum(
            1
            for key, c in self._circuits.items()
            if self._refresh(key, c).state == "open"
        )

    @property
    def total_trips(self) -> int:
        return sum(c.trips for c in self._circuits.values())

    @property
    def total_short_circuits(self) -> int:
        return sum(c.short_circuits for c in self._circuits.values())

    def snapshot(self) -> dict:
        """JSON-shaped per-key state for the serve manifest."""
        return {
            self._key_str(key): {
                "state": self._refresh(key, circuit).state,
                "consecutive_failures": circuit.consecutive_failures,
                "trips": circuit.trips,
                "short_circuits": circuit.short_circuits,
            }
            for key, circuit in sorted(
                self._circuits.items(), key=lambda kv: self._key_str(kv[0])
            )
        }

    def transition_log(self) -> List[dict]:
        """Every state transition so far, in order: JSON-shaped dicts
        with ``key`` / ``from`` / ``to`` / ``cause`` (``trip``,
        ``cooldown``, or ``reset``)."""
        return list(self._transitions)

    @staticmethod
    def _key_str(key: Hashable) -> str:
        if isinstance(key, tuple):
            return "/".join(str(part) for part in key)
        return str(key)

    def _observe(self, event: str) -> None:
        observer = current_observer()
        if observer is not None:
            observer.metrics.counter(f"breaker.{event}").inc()
            observer.metrics.gauge("breaker.open_circuits").set(self.open_count)
