"""Reliability layer: fault injection, guarded execution, checkpoints.

The paper argues the adaptive runtime is "more robust to the
irregularities typical of real world graphs"; this package extends that
robustness from *topology* irregularity to *execution* irregularity —
the transient kernel failures, memory corruptions and latency spikes a
production traversal service actually sees.

- :mod:`repro.reliability.faults` — declarative, seeded fault plans and
  the injector wired into the simulator's launch/kernel paths;
- :mod:`repro.reliability.checkpoint` — iteration-granular snapshots of
  traversal state with a cost-aware (Young/Daly-style) save policy;
- :mod:`repro.reliability.watchdog` — iteration and deadline budgets
  with :class:`~repro.errors.NonConvergenceError`;
- :mod:`repro.reliability.guard` — ``resilient_bfs`` /
  ``resilient_sssp``: retry with backoff, variant fallback, checkpoint
  restore and CPU degradation, every step recorded in the decision
  trace;
- :mod:`repro.reliability.breaker` — a per-(algorithm, path) circuit
  breaker the serving layer uses to route around paths that keep
  failing instead of re-walking the guard ladder per query.

See ``docs/reliability.md`` for the fault model and guarantees.
"""

from repro.reliability.breaker import BreakerOpenError, CircuitBreaker
from repro.reliability.checkpoint import CheckpointKeeper, TraversalCheckpoint
from repro.reliability.faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    InjectedFault,
    load_fault_plan,
)
from repro.reliability.guard import (
    GuardConfig,
    ResilientResult,
    guarded_query,
    resilient_bfs,
    resilient_run,
    resilient_sssp,
)
from repro.reliability.watchdog import Watchdog

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "FaultInjector",
    "InjectedFault",
    "load_fault_plan",
    "TraversalCheckpoint",
    "CheckpointKeeper",
    "Watchdog",
    "GuardConfig",
    "ResilientResult",
    "resilient_run",
    "resilient_bfs",
    "resilient_sssp",
    "guarded_query",
    "BreakerOpenError",
    "CircuitBreaker",
]
