"""Deterministic, seeded fault injection for the simulated GPU.

A :class:`FaultPlan` declares *what* can go wrong and how often; a
:class:`FaultInjector` executes the plan against one guarded query.
Three fault kinds, mirroring what a CUDA service actually sees:

- **launch failure** — a transient ``cudaErrorLaunchFailure``: the
  launch validation raises :class:`~repro.errors.LaunchError` before
  any device state changes.  Recoverable by a plain retry.
- **memory fault** — an ECC-detected corruption of the traversal state
  (levels/distances): the injector *actually corrupts the live arrays*
  and raises :class:`~repro.errors.MemoryFaultError`; the state can
  only be recovered from a checkpoint.
- **latency spike** — one kernel's simulated time dilated by a factor;
  no error is raised, the fault is absorbed (and recorded).
- **device loss** — the whole device drops off the bus
  (:class:`~repro.errors.DeviceLostError`): everything resident on it
  is gone.  Only meaningful in sharded runs, where it is survivable by
  the shard-recovery ladder (:mod:`repro.engine.shard`).

A plan may also carry a **device scope** (``device=N``): in a sharded
run only the shard homed on device *N* sees the plan's faults, so a
chaos drill exercises exactly one fault domain.  ``device=None`` (the
default) scopes the plan to every device.

Determinism: every potential injection site draws from one seeded
``numpy`` generator in call order, so a given plan against a given
query produces the same fault sequence every run — tests can assert
bit-identical recovery and the bench can replay incidents.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import (
    DeviceLostError,
    FaultPlanError,
    LaunchError,
    MemoryFaultError,
)
from repro.gpusim.launch import GpuFaultHook, LaunchConfig, install_fault_hook

__all__ = ["FAULT_KINDS", "FaultPlan", "InjectedFault", "FaultInjector", "load_fault_plan"]

FAULT_KINDS = ("launch_failure", "memory_fault", "latency_spike", "device_loss")

#: state-array entries scribbled over by one memory fault
_CORRUPT_ENTRIES = 8


@dataclass(frozen=True)
class FaultPlan:
    """Declarative description of the faults to inject (all rates are
    independent per-site probabilities in [0, 1])."""

    seed: int = 0
    #: probability a kernel-launch validation fails transiently
    launch_failure_rate: float = 0.0
    #: probability an iteration starts with corrupted state arrays
    memory_fault_rate: float = 0.0
    #: probability a priced kernel suffers a latency spike
    latency_spike_rate: float = 0.0
    #: dilation factor of a spiked kernel's simulated time
    latency_spike_factor: float = 10.0
    #: probability (per shard, per super-iteration) a whole device is
    #: lost; only fires in sharded runs
    device_loss_rate: float = 0.0
    #: fault-domain scope: restrict every injection to the shard homed
    #: on this device index (None = all devices)
    device: Optional[int] = None
    #: enabled fault kinds (None = all of :data:`FAULT_KINDS`)
    kinds: Optional[Tuple[str, ...]] = None
    #: stop injecting after this many faults (None = unlimited)
    max_faults: Optional[int] = None

    def __post_init__(self):
        for name in (
            "launch_failure_rate",
            "memory_fault_rate",
            "latency_spike_rate",
            "device_loss_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise FaultPlanError(f"{name} must be in [0, 1], got {rate}")
        if self.latency_spike_factor < 1.0:
            raise FaultPlanError(
                f"latency_spike_factor must be >= 1, got {self.latency_spike_factor}"
            )
        if self.max_faults is not None and self.max_faults < 0:
            raise FaultPlanError(f"max_faults must be >= 0, got {self.max_faults}")
        if self.device is not None and self.device < 0:
            raise FaultPlanError(f"device must be >= 0, got {self.device}")
        if self.kinds is not None:
            object.__setattr__(self, "kinds", tuple(self.kinds))
            for kind in self.kinds:
                if kind not in FAULT_KINDS:
                    raise FaultPlanError(
                        f"unknown fault kind {kind!r}; expected one of: "
                        f"{', '.join(FAULT_KINDS)}"
                    )

    def enables(self, kind: str) -> bool:
        """Is *kind* enabled by this plan's ``kinds`` filter?"""
        return self.kinds is None or kind in self.kinds

    @property
    def is_empty(self) -> bool:
        """True when the plan can never inject anything."""
        return (
            self.launch_failure_rate == 0.0
            and self.memory_fault_rate == 0.0
            and self.latency_spike_rate == 0.0
            and self.device_loss_rate == 0.0
        ) or self.max_faults == 0 or self.kinds == ()

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        known = {f.name for f in dataclasses.fields(cls)}
        for key in data:
            if key not in known:
                raise FaultPlanError(
                    f"unknown fault-plan key {key!r}; expected one of: "
                    f"{', '.join(sorted(known))}"
                )
        return cls(**data)

    def for_device(self, device_index: int, num_devices: int) -> Optional["FaultPlan"]:
        """Derive the per-device plan a sharded run hands device
        *device_index*'s injector.

        Returns None when the plan's ``device`` scope excludes this
        device.  Otherwise the derived plan is seeded per device
        (deterministically, from the base seed) so every fault domain
        draws an independent, reproducible fault sequence.
        """
        if self.device is not None and self.device >= num_devices:
            raise FaultPlanError(
                f"fault plan scopes device {self.device} but the run has "
                f"only {num_devices} devices"
            )
        if self.device is not None and self.device != device_index:
            return None
        return dataclasses.replace(
            self, seed=self.seed + 1_000_003 * (device_index + 1), device=None
        )

    def to_dict(self) -> dict:
        doc = dataclasses.asdict(self)
        if doc.get("kinds") is not None:
            doc["kinds"] = list(doc["kinds"])
        return doc


def load_fault_plan(spec: str) -> FaultPlan:
    """Parse a fault plan from inline JSON or a JSON file path."""
    text = spec
    if not spec.lstrip().startswith("{"):
        if not os.path.exists(spec):
            raise FaultPlanError(f"fault-plan file not found: {spec!r}")
        with open(spec, "r", encoding="utf-8") as fh:
            text = fh.read()
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise FaultPlanError(f"fault plan is not valid JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise FaultPlanError("fault plan JSON must be an object")
    return FaultPlan.from_dict(data)


@dataclass(frozen=True)
class InjectedFault:
    """One fault the injector actually fired."""

    sequence: int
    kind: str
    site: str
    iteration: int
    detail: str = ""
    #: fault domain the injector is scoped to (-1 = unscoped / single
    #: device), set by the sharded driver so every fault is attributed
    #: to exactly one device
    device: int = -1


@dataclass
class _InjectorState:
    launches_seen: int = 0
    kernels_priced: int = 0
    iterations_seen: int = 0
    super_iterations_seen: int = 0


class FaultInjector(GpuFaultHook):
    """Executes a :class:`FaultPlan` against one guarded query.

    Doubles as the simulator hook (:class:`GpuFaultHook`: launch
    failures, latency spikes) and the traversal frame's per-iteration
    hook (memory faults).  ``log`` holds every fault ever injected;
    ``drain_pending()`` hands the guard the faults since it last asked,
    so each can be annotated with the recovery action taken.
    """

    def __init__(self, plan: FaultPlan, *, device_index: int = -1):
        self.plan = plan
        #: fault domain this injector belongs to (sharded runs; -1 when
        #: unscoped)
        self.device_index = device_index
        self.rng = np.random.default_rng(plan.seed)
        self.counters = _InjectorState()
        self.log: List[InjectedFault] = []
        self._pending: List[InjectedFault] = []
        self._iteration = -1

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------

    @property
    def num_injected(self) -> int:
        return len(self.log)

    def _budget_left(self) -> bool:
        return self.plan.max_faults is None or self.num_injected < self.plan.max_faults

    def _record(self, kind: str, site: str, detail: str = "") -> InjectedFault:
        fault = InjectedFault(
            sequence=self.num_injected,
            kind=kind,
            site=site,
            iteration=self._iteration,
            detail=detail,
            device=self.device_index,
        )
        self.log.append(fault)
        self._pending.append(fault)
        return fault

    def drain_pending(self) -> List[InjectedFault]:
        """Faults injected since the last drain (guard-side)."""
        out, self._pending = self._pending, []
        return out

    def installed(self):
        """Context manager wiring this injector into the simulator's
        launch/kernel paths for the scope of one attempt."""
        return install_fault_hook(self)

    # ------------------------------------------------------------------
    # GpuFaultHook interface (simulator side)
    # ------------------------------------------------------------------

    def on_launch(self, config: LaunchConfig) -> None:
        self.counters.launches_seen += 1
        if (
            self.plan.launch_failure_rate <= 0.0
            or not self.plan.enables("launch_failure")
            or not self._budget_left()
        ):
            return
        if self.rng.random() < self.plan.launch_failure_rate:
            fault = self._record(
                "launch_failure",
                site=f"launch<<<{config.grid_blocks},{config.threads_per_block}>>>",
                detail=f"launch #{self.counters.launches_seen}",
            )
            raise LaunchError(
                f"injected transient launch failure "
                f"(fault #{fault.sequence}, {fault.site})"
            )

    def latency_multiplier(self, kernel_name: str) -> float:
        self.counters.kernels_priced += 1
        if (
            self.plan.latency_spike_rate <= 0.0
            or not self.plan.enables("latency_spike")
            or not self._budget_left()
        ):
            return 1.0
        if self.rng.random() < self.plan.latency_spike_rate:
            self._record(
                "latency_spike",
                site=kernel_name,
                detail=f"x{self.plan.latency_spike_factor:g}",
            )
            return self.plan.latency_spike_factor
        return 1.0

    def on_super_iteration(self, super_iteration: int) -> None:
        """Called by the sharded driver at the top of each
        super-iteration; may raise :class:`DeviceLostError` (this
        injector's whole fault domain drops off the bus)."""
        self._iteration = super_iteration
        self.counters.super_iterations_seen += 1
        if (
            self.plan.device_loss_rate <= 0.0
            or not self.plan.enables("device_loss")
            or not self._budget_left()
        ):
            return
        if self.rng.random() < self.plan.device_loss_rate:
            fault = self._record(
                "device_loss",
                site=f"device{self.device_index}",
                detail=f"super-iteration {super_iteration}",
            )
            raise DeviceLostError(
                f"injected device loss on device {self.device_index} at "
                f"super-iteration {super_iteration} (fault #{fault.sequence})"
            )

    # ------------------------------------------------------------------
    # Frame hook (traversal side)
    # ------------------------------------------------------------------

    def on_iteration(
        self, iteration: int, values: np.ndarray, frontier: np.ndarray
    ) -> None:
        """Called at the top of every traversal iteration; may corrupt
        the live state arrays and raise :class:`MemoryFaultError`."""
        self._iteration = iteration
        self.counters.iterations_seen += 1
        if (
            self.plan.memory_fault_rate <= 0.0
            or not self.plan.enables("memory_fault")
            or not self._budget_left()
        ):
            return
        if self.rng.random() >= self.plan.memory_fault_rate:
            return
        # Scribble over a handful of state entries (the ECC event), then
        # report it: the traversal must not trust these arrays anymore.
        n = values.size
        hit = self.rng.integers(0, n, size=min(_CORRUPT_ENTRIES, n))
        if values.dtype.kind == "f":
            values[hit] = np.nan
        else:
            values[hit] = -(self.rng.integers(2, 2**31, size=hit.size))
        if frontier.size:
            frontier[: min(2, frontier.size)] = 0
        fault = self._record(
            "memory_fault",
            site="state_arrays",
            detail=f"{hit.size} entries corrupted",
        )
        raise MemoryFaultError(
            f"injected memory fault at iteration {iteration} "
            f"(fault #{fault.sequence}: {fault.detail})"
        )
