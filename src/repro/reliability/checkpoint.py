"""Iteration-granular checkpointing of traversal state.

A :class:`TraversalCheckpoint` is everything the traversal frame needs
to resume a query from the end of a known-good iteration: the value
array (levels/distances), the next frontier, the iteration index, and
the per-iteration records accumulated so far.  Arrays are deep copies —
a later memory fault corrupting the live traversal state cannot reach
the checkpoint.

The :class:`CheckpointKeeper` decides *when* to checkpoint and charges
the simulated cost of doing so (a device-to-host copy of the state
arrays).  Two policies:

- ``every=N`` — fixed interval, used by tests and fault drills that
  want tight recovery points;
- cost-aware (the default) — checkpoint only once enough simulated
  compute has accumulated since the last checkpoint that the copy stays
  within an overhead *budget* (a simplified Young/Daly rule: with
  checkpoint cost ``C`` and budget ``b``, checkpoint every ``C / b``
  simulated seconds, so steady-state overhead is at most ``b``).

Every checkpoint is **integrity-sealed** at capture: SHA-256 digests of
``values``, ``frontier``, and ``extra`` are computed when the snapshot
is taken, and :meth:`TraversalCheckpoint.verify` recomputes them on
restore.  A mismatch raises :class:`~repro.errors.CheckpointError`
naming the corrupted field — resuming from a silently-rotted checkpoint
would corrupt the whole run, so the keeper refuses.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import CheckpointError, KernelError
from repro.gpusim.device import DeviceSpec
from repro.gpusim.transfer import transfer_seconds

__all__ = ["TraversalCheckpoint", "CheckpointKeeper"]


def _extra_bytes(extra: Optional[dict]) -> int:
    """Device bytes of an algorithm-private checkpoint payload (scalars
    count as one 8-byte word)."""
    if not extra:
        return 0
    return sum(
        int(v.nbytes) if isinstance(v, np.ndarray) else 8 for v in extra.values()
    )


def _array_digest(array: np.ndarray) -> str:
    """SHA-256 of an array's raw bytes (C-contiguous canonical form)."""
    return hashlib.sha256(np.ascontiguousarray(array).tobytes()).hexdigest()


def _extra_digest(extra: Optional[dict]) -> str:
    """SHA-256 over an algorithm-private payload: keys in sorted order,
    arrays by raw bytes, scalars by repr."""
    h = hashlib.sha256()
    if extra:
        for key in sorted(extra):
            value = extra[key]
            h.update(key.encode("utf-8"))
            if isinstance(value, np.ndarray):
                h.update(np.ascontiguousarray(value).tobytes())
            else:
                h.update(repr(value).encode("utf-8"))
    return h.hexdigest()


@dataclass(frozen=True)
class TraversalCheckpoint:
    """Resumable traversal state as of the end of one iteration."""

    #: which frame produced this ("bfs" or "sssp"; unordered frames only)
    algorithm: str
    source: int
    #: the iteration the resumed traversal should execute next
    next_iteration: int
    #: levels / distances after the checkpointed iteration (private copy)
    values: np.ndarray
    #: the frontier the next iteration consumes (private copy)
    frontier: np.ndarray
    #: variant chosen for the next iteration (informational; the policy
    #: re-decides on resume and agrees under deterministic configs)
    variant_code: str
    #: iteration records 0..next_iteration-1 (immutable snapshot)
    records: Tuple
    #: algorithm-private payload beyond (values, frontier) — PageRank's
    #: residuals, k-core's degrees (private copies; None for BFS/SSSP)
    extra: Optional[dict] = None
    #: integrity seals computed at capture (never pass explicitly)
    values_sha256: str = field(default="")
    frontier_sha256: str = field(default="")
    extra_sha256: str = field(default="")

    def __post_init__(self):
        if not self.values_sha256:
            object.__setattr__(self, "values_sha256", _array_digest(self.values))
        if not self.frontier_sha256:
            object.__setattr__(
                self, "frontier_sha256", _array_digest(self.frontier)
            )
        if not self.extra_sha256:
            object.__setattr__(self, "extra_sha256", _extra_digest(self.extra))

    @property
    def state_bytes(self) -> int:
        """Device bytes a real runtime would copy out for this state."""
        return int(self.values.nbytes + self.frontier.nbytes + 8) + _extra_bytes(
            self.extra
        )

    def matches(self, algorithm: str, source: int) -> bool:
        return self.algorithm == algorithm and self.source == source

    def verify(self) -> None:
        """Recompute the integrity seals; raise
        :class:`~repro.errors.CheckpointError` naming the first field
        whose current bytes no longer match the digest taken at
        capture."""
        checks = (
            ("values", self.values_sha256, lambda: _array_digest(self.values)),
            (
                "frontier",
                self.frontier_sha256,
                lambda: _array_digest(self.frontier),
            ),
            ("extra", self.extra_sha256, lambda: _extra_digest(self.extra)),
        )
        for name, sealed, recompute in checks:
            current = recompute()
            if current != sealed:
                raise CheckpointError(
                    f"checkpoint integrity failure: field {name!r} of the "
                    f"{self.algorithm} source={self.source} checkpoint "
                    f"(next_iteration={self.next_iteration}) does not match "
                    f"its capture-time digest "
                    f"({current[:12]}… != {sealed[:12]}…)"
                )


class CheckpointKeeper:
    """Owns checkpoint policy and storage for one guarded query.

    The traversal frame calls :meth:`offer` after every completed
    iteration; the keeper snapshots the state when its policy says so
    and returns the number of bytes to charge as a device-to-host
    transfer (0 when it declined).
    """

    def __init__(
        self,
        *,
        every: Optional[int] = None,
        budget: float = 0.02,
        device: Optional[DeviceSpec] = None,
    ):
        if every is not None and every < 1:
            raise KernelError(f"checkpoint interval must be >= 1, got {every}")
        if not 0.0 < budget <= 1.0:
            raise KernelError(f"checkpoint budget must be in (0, 1], got {budget}")
        self.every = every
        self.budget = budget
        self.device = device
        self.latest: Optional[TraversalCheckpoint] = None
        self.saves = 0
        self.restores = 0
        #: simulated seconds of traversal work since the last checkpoint
        self._since_last_s = 0.0
        #: simulated iteration seconds ever offered (across retries —
        #: replayed iterations count again, so the guard can report the
        #: compute cost of recovery)
        self.work_seconds = 0.0

    # ------------------------------------------------------------------
    # Policy
    # ------------------------------------------------------------------

    def _should_save(self, iteration: int, state_bytes: int) -> bool:
        if self.every is not None:
            return (iteration + 1) % self.every == 0
        if self.device is None:
            return False
        cost_s = transfer_seconds(state_bytes, self.device)
        return self._since_last_s >= cost_s / self.budget

    # ------------------------------------------------------------------
    # Frame interface
    # ------------------------------------------------------------------

    def offer(
        self,
        *,
        algorithm: str,
        source: int,
        iteration: int,
        values: np.ndarray,
        frontier: np.ndarray,
        variant_code: str,
        records: Sequence,
        seconds: float,
        extra: Optional[dict] = None,
    ) -> int:
        """Consider checkpointing after *iteration* finished; return the
        bytes to charge to the timeline (0 if no checkpoint was taken).

        *extra* is the algorithm's private payload beyond (values,
        frontier) — arrays are deep-copied like the core state and their
        bytes are charged too."""
        self._since_last_s += float(seconds)
        self.work_seconds += float(seconds)
        state_bytes = int(values.nbytes + frontier.nbytes + 8) + _extra_bytes(extra)
        if not self._should_save(iteration, state_bytes):
            return 0
        self.latest = TraversalCheckpoint(
            algorithm=algorithm,
            source=source,
            next_iteration=iteration + 1,
            values=values.copy(),
            frontier=frontier.copy(),
            variant_code=variant_code,
            records=tuple(records),
            extra=None
            if extra is None
            else {
                k: (v.copy() if isinstance(v, np.ndarray) else v)
                for k, v in extra.items()
            },
        )
        self.saves += 1
        self._since_last_s = 0.0
        return state_bytes

    # ------------------------------------------------------------------
    # Guard interface
    # ------------------------------------------------------------------

    def restore(self, algorithm: str, source: int) -> Optional[TraversalCheckpoint]:
        """The checkpoint to resume from after a failure (None = restart
        from scratch).  Verifies the integrity seals before handing the
        checkpoint out; counts the restore for telemetry."""
        cp = self.latest
        if cp is None:
            return None
        if not cp.matches(algorithm, source):
            raise KernelError(
                f"checkpoint for {cp.algorithm!r} source {cp.source} cannot "
                f"resume a {algorithm!r} query from source {source}"
            )
        cp.verify()
        self.restores += 1
        return cp
