"""The algorithm registry: one name -> everything runnable about it.

Each registered :class:`AlgorithmInfo` bundles an algorithm's
capability flags (what the CLI's ``repro algorithms`` lists and the
generic runners check), its spec factory for the engine, its
policy-driven traversal entry point, and its serial CPU reference.
The adaptive runtime (:func:`repro.core.runtime.adaptive_run`), the
guarded runner (:func:`repro.reliability.guard.resilient_run`), the
manifest builder and the CLI all dispatch through here, so adding an
algorithm to the registry lights it up across every layer at once.

Built-in algorithms register themselves when their module is imported;
:func:`get_algorithm` imports lazily so ``import repro`` stays cheap
and the registry never creates import cycles.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import KernelError

__all__ = [
    "AlgorithmInfo",
    "register_algorithm",
    "get_algorithm",
    "registered_algorithms",
]


@dataclass(frozen=True)
class AlgorithmInfo:
    """Registry entry: capability flags + the algorithm's entry points."""

    name: str
    #: one-line description (CLI listing)
    summary: str
    #: spec factory; keyword args are the algorithm's parameters
    #: (PageRank's damping/tolerance, CC's assume_symmetric, ...)
    make_spec: Callable[..., object]
    #: policy-driven traversal: ``traverse(graph, source, policy, **kw)``
    #: (None for algorithms that own their policy, e.g. DOBFS)
    traverse: Optional[Callable] = None
    #: default entry point for algorithms without variant policies:
    #: ``run_default(graph, source, **kw)``
    run_default: Optional[Callable] = None
    #: serial reference: ``cpu_run(graph, source, **params)`` returning
    #: ``(values, cpu_result)`` — the guard's degradation rung
    cpu_run: Optional[Callable] = None
    source_based: bool = True
    weighted: bool = False
    ordered_support: bool = False
    checkpointable: bool = True
    adaptive_eligible: bool = True
    supports_variants: bool = True
    default_variant: str = "U_T_BM"
    #: CPU reference reproduces GPU values bit-identically
    cpu_exact: bool = True
    #: the spec supports the batched multi-source frame
    #: (:mod:`repro.serve` stacks per-query frontiers into one loop);
    #: algorithms without it fall back to per-query single-source runs
    batchable: bool = False
    #: names of the spec-level parameters ``**params`` may carry
    param_names: Tuple[str, ...] = field(default_factory=tuple)

    def capability_flags(self) -> Dict[str, bool]:
        """The flags ``repro algorithms`` lists."""
        return {
            "source_based": self.source_based,
            "weighted": self.weighted,
            "ordered_support": self.ordered_support,
            "checkpointable": self.checkpointable,
            "adaptive_eligible": self.adaptive_eligible,
            "supports_variants": self.supports_variants,
            "cpu_exact": self.cpu_exact,
            "batchable": self.batchable,
        }


_REGISTRY: Dict[str, AlgorithmInfo] = {}

#: module that registers each built-in algorithm (imported on demand)
_BUILTIN_MODULES: Dict[str, str] = {
    "bfs": "repro.kernels.frame",
    "sssp": "repro.kernels.frame",
    "pagerank": "repro.kernels.pagerank",
    "cc": "repro.kernels.cc",
    "kcore": "repro.kernels.kcore",
    "dobfs": "repro.kernels.dobfs",
    "triangles": "repro.kernels.triangles",
}


def register_algorithm(info: AlgorithmInfo) -> AlgorithmInfo:
    """Add *info* to the registry (last registration wins, so tests can
    shadow built-ins with instrumented doubles)."""
    _REGISTRY[info.name] = info
    return info


def get_algorithm(name: str) -> AlgorithmInfo:
    """The registry entry for *name*; raises KernelError with the known
    names when it is not registered."""
    if name not in _REGISTRY and name in _BUILTIN_MODULES:
        importlib.import_module(_BUILTIN_MODULES[name])
    if name not in _REGISTRY:
        known = ", ".join(sorted(set(_REGISTRY) | set(_BUILTIN_MODULES)))
        raise KernelError(
            f"unknown algorithm {name!r} (registered algorithms: {known})"
        )
    return _REGISTRY[name]


def registered_algorithms() -> List[AlgorithmInfo]:
    """All registered algorithms, built-ins included, sorted by name."""
    for name in _BUILTIN_MODULES:
        if name not in _REGISTRY:
            importlib.import_module(_BUILTIN_MODULES[name])
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]
