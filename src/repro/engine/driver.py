"""The one host-side iteration driver (the paper's Figure 8).

::

    1: Create data structures on CPU and GPU
    2: Initialize working set on CPU
    3: Transfer working set and support data from CPU to GPU
    4: while working set is not empty do
    5:   Invoke CUDA_computation kernel
    6:   Invoke CUDA_workingset_generation kernel
    7: end while

:func:`run_frame` is that loop, generic over an
:class:`~repro.engine.spec.AlgorithmSpec` (the algorithm-specific
pieces) and a :class:`~repro.engine.types.VariantPolicy` (the
implementation choice per iteration) — the same frame drives the static
variants, the adaptive runtime, and every extension algorithm, so the
cross-cutting seams exist exactly once:

- the per-iteration 4-byte working-set-size readback (the ``while``
  condition is host code — a real PCIe latency every iteration);
- watchdog budgets, checkpoint offers, resume, fault-injection hooks
  (:mod:`repro.reliability`), all ``None`` by default and free when
  absent;
- :class:`~repro.gpusim.allocator.MemoryBudget` charging of graph,
  state, per-iteration worksets and checkpoint staging;
- observer metrics and simulated-clock-aligned spans
  (:mod:`repro.obs`).

A resumed traversal's :class:`~repro.engine.types.TraversalResult`
carries the full iteration history (prior records come from the
checkpoint) but its timeline covers only the work executed by this
attempt — the guarded runner accounts for time across attempts.
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from repro.engine.fusion import FusionStats, LaunchPlan, fuse_tallies, lower
from repro.engine.spec import AlgorithmSpec, FrameState, StepOutcome
from repro.engine.types import (
    HOST_INIT_PER_NODE_S,
    IterationRecord,
    TraversalResult,
    VariantPolicy,
)
from repro.errors import KernelError, NonConvergenceError
from repro.graph.csr import CSRGraph
from repro.gpusim.device import DeviceSpec, TESLA_C2070
from repro.gpusim.kernel import CostModel, CostParams, KernelTally
from repro.gpusim.memory import traversal_state_bytes
from repro.gpusim.timeline import Timeline
from repro.gpusim.transfer import record_transfer
from repro.kernels.variants import Variant, WorksetRepr
from repro.kernels.workset import workset_gen_tallies
from repro.obs.context import current_observer

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpusim.allocator import MemoryBudget
    from repro.reliability.checkpoint import CheckpointKeeper, TraversalCheckpoint
    from repro.reliability.watchdog import Watchdog

__all__ = ["FrameContext", "run_frame"]


class FrameContext:
    """What a spec's hooks may touch mid-iteration: the work graph, the
    device/cost model, and kernel pricing against the shared timeline."""

    def __init__(
        self,
        graph: CSRGraph,
        device: DeviceSpec,
        model: CostModel,
        timeline: Timeline,
        queue_gen: str,
        source: int,
    ):
        self.graph = graph
        self.device = device
        self.model = model
        self.timeline = timeline
        self.queue_gen = queue_gen
        self.source = source
        #: the run's variant policy (ordered SSSP derives its working-set
        #: structure from the policy's first choice)
        self.policy: Optional[VariantPolicy] = None
        self.iteration = 0
        self.label = ""
        #: simulated seconds accumulated into the current iteration's
        #: record (reset by the driver at each iteration start)
        self.seconds = 0.0
        #: when set (by the driver, around ``spec.compute`` under a
        #: fusible :class:`~repro.engine.fusion.LaunchPlan`), ``price``
        #: defers ``(tally, label)`` pairs here instead of pricing, so
        #: the computation kernel can merge with the generation kernel
        #: into one fused launch
        self.collect: Optional[List] = None

    def price(self, tally: KernelTally, label: Optional[str] = None) -> None:
        """Price a kernel into the current iteration's record."""
        if self.collect is not None:
            self.collect.append((tally, label or self.label))
            return
        cost = self.model.price(tally)
        self.timeline.add_kernel(self.iteration, tally, cost, label or self.label)
        self.seconds += cost.seconds

    def price_unattributed(self, tally: KernelTally) -> None:
        """Price a kernel outside any iteration record (stage-seeding
        kernels like k-core's filter: on the timeline, but not part of
        an iteration's seconds)."""
        cost = self.model.price(tally)
        self.timeline.add_kernel(self.iteration, tally, cost, self.label)

    def readback(self) -> None:
        _readback(self.timeline, self.device)


# ----------------------------------------------------------------------
# Shared frame pieces
# ----------------------------------------------------------------------

def _observe_iteration(observer, record: IterationRecord) -> None:
    """Report one finished iteration into the current observer.

    Called only when an observer is installed (:mod:`repro.obs`); the
    span advance keeps the profiler's simulated clock aligned with the
    kernel stream so spans and kernels merge onto one Perfetto axis.
    """
    metrics = observer.metrics
    metrics.counter("frame.iterations").inc()
    metrics.counter("frame.processed_nodes").inc(record.processed)
    metrics.counter("frame.edges_scanned").inc(record.edges_scanned)
    metrics.histogram("frame.workset_size").observe(record.workset_size)
    observer.spans.add_span(
        "iteration",
        sim_seconds=record.seconds,
        iteration=record.iteration,
        variant=record.variant,
        workset_size=record.workset_size,
    )


def _initial_transfers(
    graph: CSRGraph,
    timeline: Timeline,
    device: DeviceSpec,
    memory: Optional["MemoryBudget"] = None,
    *,
    resident: bool = False,
) -> None:
    """Price the opening host-to-device copies.

    *resident* is the incremental-recompute path: the CSR arrays are
    already on the device (the compaction shipped the delta), so only
    the traversal state crosses PCIe — the graph is still *allocated*
    against the budget (it occupies device memory either way), it just
    isn't re-transferred.
    """
    n = graph.num_nodes
    state_bytes = 4 * n + n + 4 * n + n // 8
    if memory is not None:
        # Budgeted path: the CSR arrays and traversal state are charged
        # as resident (never-spillable) allocations; the per-iteration
        # working set is charged separately by the loop.  An overflow
        # raises DeviceOOMError — survivable by the guard's OOM ladder,
        # unlike the hard KernelError below.
        memory.allocate(
            graph.device_bytes(), "graph", label=f"CSR arrays of {graph.name!r}"
        )
        memory.allocate(
            traversal_state_bytes(n), "state", label="traversal state arrays"
        )
        # Same initial h2d payload as the legacy path below (state init
        # includes zeroing the workset capacity), so a budget is
        # time-neutral until it actually intervenes.
        total_bytes = state_bytes if resident else graph.device_bytes() + state_bytes
        timeline.add_transfer(record_transfer("h2d", total_bytes, device))
        timeline.add_host_seconds(n * HOST_INIT_PER_NODE_S)
        return
    # Legacy (unbudgeted) capacity check: graph arrays + state array
    # (4 B/node) + update flags (1 B/node) + queue capacity (4 B/node)
    # + bitmap (1 bit/node).
    total_bytes = graph.device_bytes() + state_bytes
    if total_bytes > device.global_mem_bytes:
        raise KernelError(
            f"graph {graph.name!r} needs {total_bytes / 2**30:.2f} GiB of device "
            f"memory but {device.name} has {device.global_mem_bytes / 2**30:.2f} GiB "
            "(the paper's system keeps the whole CSR resident)"
        )
    timeline.add_transfer(
        record_transfer("h2d", state_bytes if resident else total_bytes, device)
    )
    timeline.add_host_seconds(n * HOST_INIT_PER_NODE_S)


def _final_transfers(graph: CSRGraph, timeline: Timeline, device: DeviceSpec) -> None:
    timeline.add_transfer(record_transfer("d2h", 4 * graph.num_nodes, device))


def _readback(timeline: Timeline, device: DeviceSpec) -> None:
    """The per-iteration working-set-size readback (loop condition)."""
    timeline.add_transfer(record_transfer("d2h", 4, device))


def _tpb_for(variant: Variant, graph: CSRGraph, device: DeviceSpec) -> int:
    return variant.threads_per_block(graph.avg_out_degree, device)


def _restore_state(resume_from: "TraversalCheckpoint", algorithm: str, source: int):
    """Private copies of a checkpoint's state, ready to resume from."""
    if not resume_from.matches(algorithm, source):
        raise KernelError(
            f"checkpoint holds a {resume_from.algorithm!r} query from source "
            f"{resume_from.source}; cannot resume {algorithm!r} from {source}"
        )
    return (
        resume_from.values.copy(),
        resume_from.frontier.copy(),
        list(resume_from.records),
        resume_from.next_iteration,
    )


def _offer_checkpoint(
    keeper: Optional["CheckpointKeeper"],
    timeline: Timeline,
    device: DeviceSpec,
    memory: Optional["MemoryBudget"] = None,
    **state,
) -> None:
    """Let the keeper snapshot post-iteration state; price the copy."""
    if keeper is None:
        return
    nbytes = keeper.offer(**state)
    if not nbytes:
        return
    observer = current_observer()
    if observer is not None:
        observer.metrics.counter("frame.checkpoint_bytes").inc(nbytes)
    if memory is not None:
        # The staging buffer lives on the device only for the copy's
        # duration; under spill mode the part that does not fit stages
        # from host memory directly and costs nothing extra (the d2h
        # copy below moves every byte off-device regardless).
        with memory.transient(nbytes, "checkpoint", label="checkpoint staging"):
            timeline.add_transfer(record_transfer("d2h", nbytes, device))
        return
    timeline.add_transfer(record_transfer("d2h", nbytes, device))


def _charge_workset(
    memory: Optional["MemoryBudget"],
    variant: Variant,
    workset_size: int,
    graph: CSRGraph,
    timeline: Timeline,
    device: DeviceSpec,
    *,
    entry_bytes: int = 4,
) -> None:
    """Charge this iteration's materialized working set against the
    budget.  In spill mode the overflow lives in host memory: the frame
    prices it as one write-out plus one read-back over PCIe (the
    generation kernel emits it, the computation kernel consumes it)."""
    if memory is None:
        return
    spilled = memory.charge_workset(
        variant.workset, workset_size, graph.num_nodes, entry_bytes=entry_bytes
    )
    if spilled:
        timeline.add_transfer(record_transfer("d2h", spilled, device))
        timeline.add_transfer(record_transfer("h2d", spilled, device))


# ----------------------------------------------------------------------
# The driver
# ----------------------------------------------------------------------

def run_frame(
    graph: CSRGraph,
    source: int,
    policy: VariantPolicy,
    spec: AlgorithmSpec,
    *,
    device: DeviceSpec = TESLA_C2070,
    cost_params: Optional[CostParams] = None,
    max_iterations: Optional[int] = None,
    queue_gen: str = "atomic",
    watchdog: Optional["Watchdog"] = None,
    checkpoint_keeper: Optional["CheckpointKeeper"] = None,
    resume_from: Optional["TraversalCheckpoint"] = None,
    fault_hook=None,
    memory: Optional["MemoryBudget"] = None,
    fusion=None,
) -> TraversalResult:
    """Run *spec* from *source* under *policy* on the generic frame.

    *fusion* enables the spec-fusion lowering pass
    (:mod:`repro.engine.fusion`): ``True`` lowers *spec* + *policy*
    here, or pass a pre-lowered :class:`~repro.engine.fusion.LaunchPlan`.
    Fusion merges the computation and workset-generation launches when
    the plan permits, hoists loop-invariant H2D payloads, and records a
    :class:`~repro.engine.fusion.FusionStats` on the result — values
    and decision traces are bit-identical to the unfused run; only the
    priced launch stream changes.

    *queue_gen* selects the queue-generation scheme: ``"atomic"``
    (the paper's baseline), ``"scan"`` (Merrill-style prefix scan) or
    ``"hierarchical"`` (Luo-style shared-memory queues) — Section
    V.C's orthogonal optimizations.

    *memory* attaches a :class:`~repro.gpusim.MemoryBudget`: the CSR
    arrays, traversal state, per-iteration working sets and checkpoint
    staging copies are charged against it, raising
    :class:`~repro.errors.DeviceOOMError` on overflow (or pricing the
    spilled bytes as PCIe traffic in spill mode).
    """
    spec.validate(graph, source)
    if not spec.checkpointable and (
        checkpoint_keeper is not None
        or resume_from is not None
        or fault_hook is not None
    ):
        raise KernelError(
            f"{spec.name} does not support checkpoint/resume or fault hooks"
        )
    model = CostModel(device, cost_params)
    timeline = Timeline()
    work_graph, host_prep_seconds = spec.prepare(graph)
    _initial_transfers(
        work_graph, timeline, device, memory, resident=spec.graph_resident
    )
    if host_prep_seconds:
        timeline.add_host_seconds(host_prep_seconds)
    ctx = FrameContext(work_graph, device, model, timeline, queue_gen, source)
    ctx.policy = policy
    spec.extra_transfers(ctx)
    plan: Optional[LaunchPlan] = None
    fusion_stats: Optional[FusionStats] = None
    if fusion:
        plan = (
            fusion
            if isinstance(fusion, LaunchPlan)
            else lower(spec, policy, queue_gen=queue_gen)
        )
        fusion_stats = FusionStats(plan=plan)
    hoist_bytes = plan.hoist_h2d_bytes if plan is not None and plan.fusible else 0
    hoisted_iterations = 0
    if hoist_bytes:
        # Invariant hoisting: the per-iteration H2D payload is
        # loop-invariant, so the plan ships it once ahead of the loop
        # instead of before every computation launch.
        timeline.add_transfer(record_transfer("h2d", hoist_bytes, device))
    observer = current_observer()
    if observer is not None:
        # Keep the profiler's simulated clock aligned with the Chrome
        # trace layout, which lays the opening h2d copies before kernels.
        observer.spans.advance_sim(timeline.transfer_seconds)

    if resume_from is not None:
        values, frontier, records, iteration = _restore_state(
            resume_from, spec.name, source
        )
        state = spec.resume_state(values, frontier, resume_from)
    else:
        state = spec.init_state(ctx)
        records: List[IterationRecord] = []
        iteration = 0
    n = work_graph.num_nodes
    cap = (
        max_iterations if max_iterations is not None else spec.default_cap(work_graph)
    )
    elapsed_s = 0.0
    variant: Optional[Variant] = None
    if not spec.chooses_at_top:
        # The paper's decision point is *after* each computation kernel;
        # the pre-loop choice covers iteration 0 only.  A hint of 0
        # means the loop exits before any kernel launches, so neither
        # the policy nor its priced overhead region may run.
        hint = spec.first_choose_size(state)
        if hint:
            variant = policy.choose(iteration, hint)
        elif hint is None and spec.work_remaining(state):
            variant = policy.choose(iteration, spec.work_remaining(state))
        if variant is not None:
            ctx.label = variant.code

    while True:
        ctx.iteration = iteration
        size = spec.work_remaining(state)
        if not size:
            # Multi-phase algorithms re-seed here (k-core's next-k
            # filter); single-phase ones converge.
            refreshed = spec.refill(ctx, state)
            if refreshed is None:
                break
            state.frontier = refreshed
            continue
        if iteration >= cap:
            raise NonConvergenceError(spec.cap_message(cap))
        if watchdog is not None:
            watchdog.check(iteration, elapsed_s)
        if fault_hook is not None:
            fault_hook.on_iteration(iteration, state.values, state.frontier)
        if spec.chooses_at_top:
            variant = policy.choose(iteration, size)
        ctx.label = variant.code
        ctx.seconds = 0.0
        tpb = spec.tpb(variant, work_graph, device)
        _charge_workset(
            memory, variant, size, work_graph, timeline, device,
            entry_bytes=spec.workset_entry_bytes,
        )

        if spec.iteration_h2d_bytes:
            if hoist_bytes:
                hoisted_iterations += 1
            else:
                timeline.add_transfer(
                    record_transfer("h2d", spec.iteration_h2d_bytes, device)
                )

        fusing = plan is not None and plan.fusible
        if fusing:
            ctx.collect = []
        outcome = spec.compute(ctx, state, variant, tpb)
        deferred = ctx.collect
        ctx.collect = None
        if outcome is None:
            # The step itself detected termination (DOBFS's pull sweep
            # with nothing left to visit): no generation, no readback.
            if deferred:
                for dtally, dlabel in deferred:
                    ctx.price(dtally, dlabel)
            break

        # Decide the next iteration's variant now: the generation kernel
        # below materializes whichever representation it will read.
        next_size = outcome.updated_count
        if spec.chooses_at_top:
            next_variant = variant
        else:
            next_variant = (
                policy.choose(iteration + 1, next_size) if next_size else variant
            )
        label = outcome.label or variant.code
        for tally in policy.overhead_tallies(iteration, size, n, device):
            ctx.price(tally, label)

        gen_count = next_size if outcome.gen_count is None else outcome.gen_count
        gen_tallies = workset_gen_tallies(
            n, gen_count, next_variant.workset, device, scheme=queue_gen,
            entry_bytes=spec.workset_entry_bytes,
        )
        if (
            deferred is not None
            and len(deferred) == 1
            and len(gen_tallies) == 1
            and (
                plan.fuse_always
                or next_variant.workset is WorksetRepr.BITMAP
            )
        ):
            # One computation kernel, one generation kernel, and the
            # plan guarantees the representation: merge them into one
            # fused launch.  The readback below survives — the host
            # still needs the next size either way.
            fused = fuse_tallies([deferred[0][0], gen_tallies[0]])
            ctx.price(fused, label)
            fusion_stats.fused_iterations += 1
            fusion_stats.launches_eliminated += 1
            fusion_stats.overhead_saved_s += device.kernel_launch_overhead_s
        else:
            if deferred is not None:
                fusion_stats.refused_iterations += 1
                for dtally, dlabel in deferred:
                    ctx.price(dtally, dlabel)
            for tally in gen_tallies:
                ctx.price(tally, label)
        _readback(timeline, device)

        record = IterationRecord(
            iteration=iteration,
            variant=label,
            workset_size=size,
            processed=outcome.processed,
            updated=next_size,
            edges_scanned=outcome.edges_scanned,
            improved_relaxations=outcome.improved_relaxations,
            seconds=ctx.seconds,
        )
        records.append(record)
        policy.notify(record)
        if observer is not None:
            _observe_iteration(observer, record)
        elapsed_s += ctx.seconds
        _offer_checkpoint(
            checkpoint_keeper,
            timeline,
            device,
            memory,
            algorithm=spec.name,
            source=source,
            iteration=iteration,
            values=state.values,
            frontier=outcome.next_frontier,
            variant_code=next_variant.code,
            records=records,
            seconds=ctx.seconds,
            extra=spec.checkpoint_extra(state),
        )
        if outcome.next_frontier is not None:
            state.frontier = outcome.next_frontier
        variant = next_variant
        ctx.label = variant.code
        iteration += 1

    if memory is not None:
        memory.release_workset()
    _final_transfers(work_graph, timeline, device)
    if fusion_stats is not None:
        if hoist_bytes:
            fusion_stats.hoisted_h2d_bytes = hoist_bytes * max(
                0, hoisted_iterations - 1
            )
        if observer is not None:
            metrics = observer.metrics
            metrics.counter("fusion.fused_launches").inc(
                fusion_stats.fused_iterations
            )
            metrics.counter("fusion.launches_eliminated").inc(
                fusion_stats.launches_eliminated
            )
            metrics.counter("fusion.overhead_saved_s").inc(
                fusion_stats.overhead_saved_s
            )
            metrics.counter("fusion.hoisted_h2d_bytes").inc(
                fusion_stats.hoisted_h2d_bytes
            )
            metrics.counter("fusion.refused_iterations").inc(
                fusion_stats.refused_iterations
            )
    return TraversalResult(
        algorithm=spec.result_algorithm(policy),
        source=source,
        values=spec.final_values(state),
        iterations=records,
        timeline=timeline,
        device=device,
        policy_name=policy.name,
        fusion=fusion_stats,
    )
