"""The batched multi-source driver: many queries, one Figure-8 loop.

:func:`run_batch_frame` executes a batch of ``(spec, source, policy)``
queries over one device-resident graph by stacking the per-query
frontiers into rows of a single host loop.  Each *super-iteration*
advances every still-active query by exactly one iteration:

- queries currently running the same variant share one **fused
  computation launch** (:func:`repro.kernels.multisource.fused_computation_tally`),
- queries generating the same next representation share one **fused
  workset-generation launch**, and
- the whole batch shares one **fused size readback** per super-iteration
  instead of one 4-byte PCIe round trip per query — the dominant saving
  on latency-bound traversals, where the paper's per-iteration readback
  is most of the wall clock.

Everything *functional* stays per-query: each row owns its value array,
frontier, variant policy and decision trace, and the driver mirrors
:func:`repro.engine.driver.run_frame`'s decision points exactly — the
pre-loop choice, then ``choose(iteration + 1, next_size)`` after each
computation step — so a batched query's values and decision trace are
bit-identical to its single-source run.  Only the *pricing* is fused.

Failure isolation: a query that fails validation or exceeds its
iteration budget is marked failed and dropped from subsequent
super-iterations; the rest of the batch completes normally.

Per-query :class:`~repro.engine.types.IterationRecord` entries carry
``seconds=0.0``: fused launches are shared, so simulated time lives on
the batch's single timeline rather than being attributed per query.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.engine.spec import AlgorithmSpec, FrameState
from repro.engine.types import HOST_INIT_PER_NODE_S, IterationRecord, VariantPolicy
from repro.errors import KernelError, ReproError
from repro.graph.csr import CSRGraph
from repro.gpusim.device import DeviceSpec, TESLA_C2070
from repro.gpusim.kernel import CostModel, CostParams
from repro.gpusim.timeline import Timeline
from repro.gpusim.transfer import record_transfer
from repro.kernels.multisource import (
    RowRelaxation,
    fused_computation_tally,
    fused_readback_bytes,
    fused_workset_gen_tallies,
)
from repro.kernels.variants import Variant
from repro.obs.context import current_observer

__all__ = ["QueryPlan", "BatchQueryResult", "BatchFrameResult", "run_batch_frame"]


@dataclass(frozen=True)
class QueryPlan:
    """One query of a batch: the algorithm spec, its source node, and a
    private variant policy (policies are stateful — never share one
    across queries)."""

    spec: AlgorithmSpec
    source: int
    policy: VariantPolicy


@dataclass
class BatchQueryResult:
    """One query's outcome inside a batch."""

    index: int
    algorithm: str
    source: int
    policy_name: str
    #: the algorithm's answer array; None when the query failed
    values: Optional[np.ndarray]
    iterations: List[IterationRecord]
    #: why the query failed (validation or non-convergence); None = ok
    error: Optional[str] = None
    #: the policy's decision trace when it keeps one (AdaptivePolicy)
    trace: Optional[object] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def num_iterations(self) -> int:
        return len(self.iterations)


@dataclass
class BatchFrameResult:
    """Everything one batched run produced."""

    queries: List[BatchQueryResult]
    timeline: Timeline
    device: DeviceSpec
    #: host-loop passes (== the longest surviving query's iterations)
    super_iterations: int
    #: fused kernel launches actually priced
    fused_launches: int
    #: launches a sequential run would have made minus the fused ones
    launches_saved: int
    #: per-iteration readbacks avoided by the fused size readback
    readbacks_saved: int

    @property
    def total_seconds(self) -> float:
        return self.timeline.total_seconds

    @property
    def ok_count(self) -> int:
        return sum(1 for q in self.queries if q.ok)


class _Row:
    """Mutable per-query loop state (private to the driver)."""

    def __init__(self, index: int, plan: QueryPlan):
        self.index = index
        self.spec = plan.spec
        self.source = plan.source
        self.policy = plan.policy
        self.state: Optional[FrameState] = None
        self.variant: Optional[Variant] = None
        self.records: List[IterationRecord] = []
        self.iteration = 0
        self.cap = 0
        self.error: Optional[str] = None
        self.pending = None  # (updated, improved, edges, size) within a pass

    def result(self) -> BatchQueryResult:
        values = None
        if self.error is None and self.state is not None:
            values = self.spec.final_values(self.state)
        return BatchQueryResult(
            index=self.index,
            algorithm=self.spec.name,
            source=self.source,
            policy_name=self.policy.name,
            values=values,
            iterations=self.records,
            error=self.error,
            trace=getattr(self.policy, "trace", None),
        )


class _RowContext:
    """The minimal FrameContext stand-in ``spec.init_state`` reads."""

    def __init__(self, graph: CSRGraph, device: DeviceSpec, source: int,
                 policy: VariantPolicy):
        self.graph = graph
        self.device = device
        self.source = source
        self.policy = policy


def run_batch_frame(
    graph: CSRGraph,
    plans: Sequence[QueryPlan],
    *,
    device: DeviceSpec = TESLA_C2070,
    cost_params: Optional[CostParams] = None,
    max_iterations: Optional[int] = None,
    queue_gen: str = "atomic",
) -> BatchFrameResult:
    """Run every query of *plans* on the batched multi-source frame.

    Every spec must be :attr:`~repro.engine.spec.AlgorithmSpec.batchable`
    (callers route non-batchable algorithms through the single-source
    fallback instead — that is a dispatch decision, not a per-query
    fault, so it raises).  Mixed-algorithm batches are fine: only
    same-variant same-algorithm rows fuse into one launch.
    """
    if not plans:
        raise KernelError("run_batch_frame needs at least one query")
    for plan in plans:
        if not plan.spec.batchable:
            raise KernelError(
                f"{plan.spec.name} does not support batched multi-source "
                "execution (route it through the single-source fallback)"
            )
    model = CostModel(device, cost_params)
    timeline = Timeline()
    rows = [_Row(i, plan) for i, plan in enumerate(plans)]

    # Per-query validation: a bad query is isolated, not fatal.
    for row in rows:
        try:
            row.spec.validate(graph, row.source)
        except ReproError as exc:
            row.error = str(exc)
    live = [r for r in rows if r.error is None]

    # One initial transfer for the whole batch: the graph goes up once,
    # plus every query's state block, behind a single PCIe latency.
    n = graph.num_nodes
    state_bytes = 4 * n + n + 4 * n + n // 8
    if live:
        total_bytes = graph.device_bytes() + len(live) * state_bytes
        if total_bytes > device.global_mem_bytes:
            raise KernelError(
                f"batch of {len(live)} queries on {graph.name!r} needs "
                f"{total_bytes / 2**30:.2f} GiB of device memory but "
                f"{device.name} has {device.global_mem_bytes / 2**30:.2f} GiB "
                "(shrink the batch)"
            )
        timeline.add_transfer(record_transfer("h2d", total_bytes, device))
        timeline.add_host_seconds(len(live) * n * HOST_INIT_PER_NODE_S)

    # Per-query init + the pre-loop variant choice, mirroring run_frame:
    # the paper's decision point is after each computation kernel, so the
    # pre-loop choice covers iteration 0 only.
    for row in live:
        ctx = _RowContext(graph, device, row.source, row.policy)
        row.state = row.spec.init_state(ctx)
        row.cap = (
            max_iterations
            if max_iterations is not None
            else row.spec.default_cap(graph)
        )
        hint = row.spec.first_choose_size(row.state)
        if hint is not None:
            row.variant = row.policy.choose(0, hint)
        elif row.spec.work_remaining(row.state):
            row.variant = row.policy.choose(0, row.spec.work_remaining(row.state))

    fused_launches = 0
    launches_saved = 0
    readbacks_saved = 0
    super_it = 0

    while True:
        active = [
            r for r in live
            if r.error is None and r.spec.work_remaining(r.state)
        ]
        if not active:
            break
        for row in active:
            if row.iteration >= row.cap:
                row.error = row.spec.cap_message(row.cap)
        active = [r for r in active if r.error is None]
        if not active:
            break

        # --- fused computation: group rows by (algorithm, variant, tpb)
        groups: dict = {}
        for row in active:
            tpb = row.spec.tpb(row.variant, graph, device)
            key = (row.spec.name, row.variant.code, tpb)
            groups.setdefault(key, []).append(row)

        pass_seconds = 0.0
        for (alg, code, tpb), members in groups.items():
            relaxations = []
            for row in members:
                size = int(row.spec.work_remaining(row.state))
                updated, degrees, improved, edges = row.spec.batch_relax(
                    graph, row.state
                )
                row.pending = (updated, improved, edges, size)
                relaxations.append(
                    RowRelaxation(
                        active_ids=row.state.frontier,
                        degrees=degrees,
                        improved=improved,
                        updated_count=int(updated.size),
                    )
                )
            edge_cost, weight_streams = members[0].spec.batch_kernel_profile()
            tally = fused_computation_tally(
                relaxations,
                members[0].variant,
                tpb,
                n,
                device,
                edge_cost=edge_cost,
                weight_streams=weight_streams,
                name=f"batch_{alg}_comp",
            )
            cost = model.price(tally)
            timeline.add_kernel(super_it, tally, cost, f"batch:{code}")
            pass_seconds += cost.seconds
            fused_launches += 1
            launches_saved += len(members) - 1

        # --- per-query decision point + bookkeeping (exactly run_frame's
        # sequence: choose(iteration + 1, next_size) when work remains,
        # keep the current variant when the query just drained)
        gen_groups: dict = {}
        for row in active:
            updated, improved, edges, size = row.pending
            row.pending = None
            next_size = int(updated.size)
            next_variant = (
                row.policy.choose(row.iteration + 1, next_size)
                if next_size
                else row.variant
            )
            for tally in row.policy.overhead_tallies(
                row.iteration, size, n, device
            ):
                cost = model.price(tally)
                timeline.add_kernel(
                    super_it, tally, cost, f"batch:{row.variant.code}"
                )
                pass_seconds += cost.seconds
            gen_groups.setdefault(next_variant.workset, []).append(next_size)
            record = IterationRecord(
                iteration=row.iteration,
                variant=row.variant.code,
                workset_size=size,
                processed=size,
                updated=next_size,
                edges_scanned=edges,
                improved_relaxations=improved,
                seconds=0.0,
            )
            row.records.append(record)
            row.policy.notify(record)
            row.state.frontier = updated
            row.variant = next_variant
            row.iteration += 1

        # --- fused workset generation: one launch per emitted
        # representation, covering every row headed there (rows that just
        # drained still sweep — discovering emptiness is the kernel's job,
        # exactly as in the single-source frame)
        for representation, counts in gen_groups.items():
            for tally in fused_workset_gen_tallies(
                n, counts, representation, device, scheme=queue_gen
            ):
                cost = model.price(tally)
                timeline.add_kernel(super_it, tally, cost, "batch:gen")
                pass_seconds += cost.seconds
            fused_launches += 1
            launches_saved += len(counts) - 1

        # --- one fused readback for the whole batch: every active row's
        # 4-byte working-set size behind a single PCIe latency
        timeline.add_transfer(
            record_transfer("d2h", fused_readback_bytes(len(active)), device)
        )
        readbacks_saved += len(active) - 1
        super_it += 1

    # One final d2h for every completed query's value array.
    done_ok = [r for r in live if r.error is None]
    if done_ok:
        timeline.add_transfer(
            record_transfer("d2h", len(done_ok) * 4 * n, device)
        )

    observer = current_observer()
    if observer is not None:
        metrics = observer.metrics
        metrics.counter("batch.queries").inc(len(rows))
        metrics.counter("batch.queries_failed").inc(
            sum(1 for r in rows if r.error is not None)
        )
        metrics.counter("batch.super_iterations").inc(super_it)
        metrics.counter("batch.fused_launches").inc(fused_launches)
        metrics.counter("batch.launches_saved").inc(launches_saved)
        metrics.counter("batch.readbacks_saved").inc(readbacks_saved)
        observer.spans.add_span(
            "batch_frame",
            sim_seconds=timeline.total_seconds,
            queries=len(rows),
            super_iterations=super_it,
        )

    return BatchFrameResult(
        queries=[r.result() for r in rows],
        timeline=timeline,
        device=device,
        super_iterations=super_it,
        fused_launches=fused_launches,
        launches_saved=launches_saved,
        readbacks_saved=readbacks_saved,
    )
