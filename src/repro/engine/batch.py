"""The batched multi-source driver: many queries, one Figure-8 loop.

:class:`BatchFrame` executes a batch of ``(spec, source, policy)``
queries over one device-resident graph by stacking the per-query
frontiers into rows of a single host loop.  Each *super-iteration*
(:meth:`BatchFrame.step`) advances every still-active query by exactly
one iteration:

- queries currently running the same variant share one **fused
  computation launch** (:func:`repro.kernels.multisource.fused_computation_tally`),
- queries generating the same next representation share one **fused
  workset-generation launch**, and
- the whole batch shares one **fused size readback** per super-iteration
  instead of one 4-byte PCIe round trip per query — the dominant saving
  on latency-bound traversals, where the paper's per-iteration readback
  is most of the wall clock.

Everything *functional* stays per-query: each row owns its value array,
frontier, variant policy and decision trace, and the driver mirrors
:func:`repro.engine.driver.run_frame`'s decision points exactly — the
pre-loop choice, then ``choose(iteration + 1, next_size)`` after each
computation step — so a batched query's values and decision trace are
bit-identical to its single-source run.  Only the *pricing* is fused.

**Continuous batching**: rows do not all have to arrive up front.
:meth:`BatchFrame.admit` can be called between super-iterations, so a
serving loop (:mod:`repro.serve.loop`) lets new queries join the fused
frame at the next super-iteration instead of waiting for the running
batch to drain.  :func:`run_batch_frame` is the one-shot wrapper —
admit everything, step until done — and prices exactly what it always
did.

**Fault isolation is per row.**  A fault attributable to one query — a
memory fault injected into its state arrays, a launch failure of a
fused group it rode in, a watchdog deadline armed at admission — *ejects*
that row (``BatchQueryResult.ejected``) while the rest of the slab
keeps running bit-identical results.  Ejected rows are the serving
layer's cue to re-run the query through the guarded single-source
fallback; they are never silently dropped.

Per-query :class:`~repro.engine.types.IterationRecord` entries carry
``seconds=0.0``: fused launches are shared, so simulated time lives on
the batch's single timeline rather than being attributed per query
(each row does accumulate its *share* of the passes it rode in
``BatchQueryResult.sim_seconds``, which is what SLO latency reporting
uses).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.engine.fusion import fuse_tallies
from repro.engine.spec import AlgorithmSpec, FrameState
from repro.engine.types import HOST_INIT_PER_NODE_S, IterationRecord, VariantPolicy
from repro.errors import KernelError, NonConvergenceError, ReproError
from repro.graph.csr import CSRGraph
from repro.gpusim.device import DeviceSpec, TESLA_C2070
from repro.gpusim.kernel import CostModel, CostParams
from repro.gpusim.timeline import Timeline
from repro.gpusim.transfer import record_transfer
from repro.kernels.multisource import (
    RowRelaxation,
    fused_computation_tally,
    fused_readback_bytes,
    fused_workset_gen_tallies,
)
from repro.kernels.variants import Variant
from repro.obs.context import current_observer

__all__ = [
    "QueryPlan",
    "BatchQueryResult",
    "BatchFrameResult",
    "BatchFrame",
    "run_batch_frame",
]


@dataclass(frozen=True)
class QueryPlan:
    """One query of a batch: the algorithm spec, its source node, and a
    private variant policy (policies are stateful — never share one
    across queries)."""

    spec: AlgorithmSpec
    source: int
    policy: VariantPolicy


@dataclass
class BatchQueryResult:
    """One query's outcome inside a batch."""

    index: int
    algorithm: str
    source: int
    policy_name: str
    #: the algorithm's answer array; None when the query failed
    values: Optional[np.ndarray]
    iterations: List[IterationRecord]
    #: why the query failed (validation, non-convergence, or the fault
    #: that ejected it); None = ok
    error: Optional[str] = None
    #: the policy's decision trace when it keeps one (AdaptivePolicy)
    trace: Optional[object] = None
    #: True when a per-row fault/deadline ejected this row mid-flight;
    #: the serving layer routes ejected queries to the single-source
    #: fallback instead of answering the error directly
    ejected: bool = False
    #: what ejected the row: "fault" (retryable via fallback) or
    #: "deadline" (the admission-armed watchdog expired); None otherwise
    eject_kind: Optional[str] = None
    #: the row's share of the simulated seconds of every super-iteration
    #: it was active in (SLO latency accounting; the batch's authoritative
    #: total stays on the shared timeline)
    sim_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def num_iterations(self) -> int:
        return len(self.iterations)


@dataclass
class BatchFrameResult:
    """Everything one batched run produced."""

    queries: List[BatchQueryResult]
    timeline: Timeline
    device: DeviceSpec
    #: host-loop passes (== the longest surviving query's iterations)
    super_iterations: int
    #: fused kernel launches actually priced
    fused_launches: int
    #: launches a sequential run would have made minus the fused ones
    launches_saved: int
    #: per-iteration readbacks avoided by the fused size readback
    readbacks_saved: int
    #: rows ejected by per-row faults or admission deadlines
    rows_ejected: int = 0
    #: super-iterations whose computation+generation launches merged
    #: into one fused launch (spec-fusion pass; 0 when fusion is off)
    fused_supersteps: int = 0
    #: eliminated ``kernel_launch_overhead_s`` charges, in seconds
    fusion_overhead_saved_s: float = 0.0

    @property
    def total_seconds(self) -> float:
        return self.timeline.total_seconds

    @property
    def ok_count(self) -> int:
        return sum(1 for q in self.queries if q.ok)


class _Row:
    """Mutable per-query loop state (private to the driver)."""

    def __init__(self, index: int, plan: QueryPlan, watchdog=None):
        self.index = index
        self.spec = plan.spec
        self.source = plan.source
        self.policy = plan.policy
        self.watchdog = watchdog
        self.state: Optional[FrameState] = None
        self.variant: Optional[Variant] = None
        self.records: List[IterationRecord] = []
        self.iteration = 0
        self.cap = 0
        self.error: Optional[str] = None
        self.ejected = False
        self.eject_kind: Optional[str] = None
        self.sim_seconds = 0.0
        self.resident = False  # state block charged against device memory
        self.pending = None  # (updated, improved, edges, size) within a pass

    def result(self) -> BatchQueryResult:
        values = None
        if self.error is None and self.state is not None:
            values = self.spec.final_values(self.state)
        return BatchQueryResult(
            index=self.index,
            algorithm=self.spec.name,
            source=self.source,
            policy_name=self.policy.name,
            values=values,
            iterations=self.records,
            error=self.error,
            trace=getattr(self.policy, "trace", None),
            ejected=self.ejected,
            eject_kind=self.eject_kind,
            sim_seconds=self.sim_seconds,
        )


class _RowContext:
    """The minimal FrameContext stand-in ``spec.init_state`` reads."""

    def __init__(self, graph: CSRGraph, device: DeviceSpec, source: int,
                 policy: VariantPolicy):
        self.graph = graph
        self.device = device
        self.source = source
        self.policy = policy


class BatchFrame:
    """A running batched multi-source frame that rows can join and leave.

    The one-shot path is :func:`run_batch_frame`; a serving loop holds a
    ``BatchFrame`` open instead, calling :meth:`admit` between
    :meth:`step` calls so new queries join at the next super-iteration
    (continuous batching), and :meth:`take_finished` after each step to
    collect rows that completed or were ejected.

    *fault_hook* is the same per-iteration seam the single-source driver
    exposes (``on_iteration(iteration, values, frontier)``); here it is
    called once per active row per super-iteration, and a
    :class:`~repro.errors.ReproError` it raises ejects only that row.
    The caller owns installing any gpusim-side hook
    (``FaultInjector.installed()``) around :meth:`step`.
    """

    def __init__(
        self,
        graph: CSRGraph,
        *,
        device: DeviceSpec = TESLA_C2070,
        cost_params: Optional[CostParams] = None,
        max_iterations: Optional[int] = None,
        queue_gen: str = "atomic",
        fault_hook=None,
        fusion: bool = False,
    ):
        self.graph = graph
        self.device = device
        self.model = CostModel(device, cost_params)
        self.timeline = Timeline()
        self.max_iterations = max_iterations
        self.queue_gen = queue_gen
        self.fault_hook = fault_hook
        #: spec-fusion: merge the super-iteration's computation launch
        #: with its generation launch when the pass is uniform (one
        #: comp group, pinned policies, single-kernel generation)
        self.fusion = bool(fusion)
        self.fused_supersteps = 0
        self.fusion_refused_supersteps = 0
        self.fusion_overhead_saved_s = 0.0
        self.rows: List[_Row] = []
        self.super_iterations = 0
        self.fused_launches = 0
        self.launches_saved = 0
        self.readbacks_saved = 0
        self.rows_ejected = 0
        n = graph.num_nodes
        self._n = n
        #: per-row device footprint: values + membership + frontier + bitmap
        self._state_bytes = 4 * n + n + 4 * n + n // 8
        self._graph_resident = False
        self._resident_rows = 0
        #: rows that finished ok but whose value readback is not priced yet
        self._unpriced: List[_Row] = []
        #: rows finished (ok, failed or ejected) not yet handed to the caller
        self._finished: List[_Row] = []

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------

    @property
    def resident_bytes(self) -> int:
        graph_bytes = self.graph.device_bytes() if self._graph_resident else 0
        return graph_bytes + self._resident_rows * self._state_bytes

    def admit(
        self,
        plans: Sequence[QueryPlan],
        *,
        watchdogs: Optional[Sequence] = None,
        isolate_capacity: bool = False,
    ) -> List[_Row]:
        """Add *plans* as new rows, joining at the next super-iteration.

        Non-batchable specs raise :class:`~repro.errors.KernelError` —
        that is a dispatch bug, not a query fault.  Per-query problems
        (bad source) mark the row failed without raising.  When the new
        rows' state blocks do not fit device memory the whole call
        raises, unless *isolate_capacity* is set — then overflowing rows
        are individually marked failed (the serving layer routes them to
        the fallback) and the rest are admitted.

        *watchdogs* (parallel to *plans*) attaches per-row deadline
        clocks; arm them at admission so queue wait counts.
        """
        for plan in plans:
            if not plan.spec.batchable:
                raise KernelError(
                    f"{plan.spec.name} does not support batched multi-source "
                    "execution (route it through the single-source fallback)"
                )
        new_rows: List[_Row] = []
        for offset, plan in enumerate(plans):
            watchdog = watchdogs[offset] if watchdogs is not None else None
            row = _Row(len(self.rows), plan, watchdog=watchdog)
            self.rows.append(row)
            new_rows.append(row)
            try:
                row.spec.validate(self.graph, row.source)
            except ReproError as exc:
                row.error = str(exc)
                self._finished.append(row)
        live = [r for r in new_rows if r.error is None]

        # One h2d for the admission wave: the graph (first wave only)
        # plus every new live row's state block, behind one PCIe latency.
        graph_bytes = 0 if self._graph_resident else self.graph.device_bytes()
        capacity = self.device.global_mem_bytes
        admitted: List[_Row] = []
        for row in live:
            needed = graph_bytes + self.resident_bytes + (
                (len(admitted) + 1) * self._state_bytes
            )
            if needed > capacity:
                if not isolate_capacity:
                    raise KernelError(
                        f"batch of {len(live)} queries on {self.graph.name!r} "
                        f"needs {needed / 2**30:.2f} GiB of device memory but "
                        f"{self.device.name} has {capacity / 2**30:.2f} GiB "
                        "(shrink the batch)"
                    )
                row.error = (
                    f"admission refused: row state would exceed "
                    f"{self.device.name}'s device memory"
                )
                self._finished.append(row)
                continue
            admitted.append(row)
        if admitted or graph_bytes:
            total_bytes = graph_bytes + len(admitted) * self._state_bytes
            if admitted:
                self.timeline.add_transfer(
                    record_transfer("h2d", total_bytes, self.device)
                )
                self.timeline.add_host_seconds(
                    len(admitted) * self._n * HOST_INIT_PER_NODE_S
                )
                self._graph_resident = True
                self._resident_rows += len(admitted)
                for row in admitted:
                    row.resident = True

        # Per-query init + the pre-loop variant choice, mirroring
        # run_frame: the paper's decision point is after each computation
        # kernel, so the pre-loop choice covers iteration 0 only.
        for row in admitted:
            ctx = _RowContext(self.graph, self.device, row.source, row.policy)
            row.state = row.spec.init_state(ctx)
            row.cap = (
                self.max_iterations
                if self.max_iterations is not None
                else row.spec.default_cap(self.graph)
            )
            # A hint of 0 means this row's loop never runs a kernel, so
            # the policy must not be consulted (mirrors run_frame).
            hint = row.spec.first_choose_size(row.state)
            if hint:
                row.variant = row.policy.choose(0, hint)
            elif hint is None and row.spec.work_remaining(row.state):
                row.variant = row.policy.choose(
                    0, row.spec.work_remaining(row.state)
                )
        return new_rows

    # ------------------------------------------------------------------
    # Row retirement
    # ------------------------------------------------------------------

    def _retire(self, row: _Row) -> None:
        if row.resident:
            row.resident = False
            self._resident_rows -= 1
        self._finished.append(row)

    def _eject(self, row: _Row, reason: str, kind: str) -> None:
        """Remove one faulting/expired row; the slab keeps running."""
        row.ejected = True
        row.eject_kind = kind
        row.error = reason
        row.pending = None
        self.rows_ejected += 1
        observer = current_observer()
        if observer is not None:
            observer.metrics.counter("batch.rows_ejected").inc()
        self._retire(row)

    def take_finished(self) -> List[BatchQueryResult]:
        """Results of rows that completed, failed or were ejected since
        the last call (continuous-serving interface).  Prices the fused
        value readback for the ok rows taken."""
        self._price_value_readbacks()
        out, self._finished = self._finished, []
        return [row.result() for row in out]

    def _price_value_readbacks(self) -> None:
        done_ok = [r for r in self._unpriced]
        if done_ok:
            self.timeline.add_transfer(
                record_transfer("d2h", len(done_ok) * 4 * self._n, self.device)
            )
        self._unpriced = []

    # ------------------------------------------------------------------
    # The super-iteration
    # ------------------------------------------------------------------

    @property
    def active_rows(self) -> List[_Row]:
        return [
            r for r in self.rows
            if r.error is None and r.state is not None
            and r.spec.work_remaining(r.state)
        ]

    @property
    def has_work(self) -> bool:
        return bool(self.active_rows)

    def step(self) -> bool:
        """Advance every active row by one iteration (one fused pass).

        Returns False — without stepping — when no row has work left.
        """
        active = self.active_rows
        if not active:
            # Rows that drained on a previous pass retire here (the
            # one-shot wrapper retires them in bulk at the end).
            return False

        pass_start = self.timeline.total_seconds

        survivors = []
        for row in active:
            if row.iteration >= row.cap:
                row.error = row.spec.cap_message(row.cap)
                self._retire(row)
                continue
            if row.watchdog is not None:
                try:
                    row.watchdog.check(row.iteration, row.sim_seconds)
                except NonConvergenceError as exc:
                    self._eject(row, str(exc), kind="deadline")
                    continue
            if self.fault_hook is not None:
                try:
                    self.fault_hook.on_iteration(
                        row.iteration, row.state.values, row.state.frontier
                    )
                except ReproError as exc:
                    self._eject(row, str(exc), kind="fault")
                    continue
            survivors.append(row)
        active = survivors
        if not active:
            return False

        # --- fused computation: group rows by (algorithm, variant, tpb)
        groups: dict = {}
        for row in active:
            tpb = row.spec.tpb(row.variant, self.graph, self.device)
            key = (row.spec.name, row.variant.code, tpb)
            groups.setdefault(key, []).append(row)

        # Spec-fusion precondition: one uniform computation group of
        # pinned (specialized) rows and a single-kernel generation
        # scheme — then the pass's generation launch merges into the
        # computation launch below.  Pricing of the held tally is
        # merely deferred; fault injection still fires at tally
        # construction inside the group loop.
        defer_fusion = (
            self.fusion
            and len(groups) == 1
            and self.queue_gen != "scan"
            and all(
                getattr(row.policy, "variant", None) is not None
                for row in active
            )
        )
        held_comp = None

        for (alg, code, tpb), members in groups.items():
            relaxations = []
            healthy = []
            for row in members:
                size = int(row.spec.work_remaining(row.state))
                try:
                    updated, degrees, improved, edges = row.spec.batch_relax(
                        self.graph, row.state
                    )
                except ReproError as exc:
                    self._eject(row, str(exc), kind="fault")
                    continue
                row.pending = (updated, improved, edges, size)
                healthy.append(row)
                relaxations.append(
                    RowRelaxation(
                        active_ids=row.state.frontier,
                        degrees=degrees,
                        improved=improved,
                        updated_count=int(updated.size),
                    )
                )
            if not healthy:
                continue
            edge_cost, weight_streams = healthy[0].spec.batch_kernel_profile()
            try:
                tally = fused_computation_tally(
                    relaxations,
                    healthy[0].variant,
                    tpb,
                    self._n,
                    self.device,
                    edge_cost=edge_cost,
                    weight_streams=weight_streams,
                    name=f"batch_{alg}_comp",
                )
            except ReproError as exc:
                # A launch failure hits the whole fused launch: every
                # rider is ejected (their relaxation already mutated
                # state, so only a from-scratch fallback rerun is
                # bit-safe); other groups keep running.
                for row in healthy:
                    self._eject(
                        row, f"fused launch failed: {exc}", kind="fault"
                    )
                continue
            if defer_fusion:
                held_comp = (tally, code, healthy)
                continue
            cost = self.model.price(tally)
            self.timeline.add_kernel(self.super_iterations, tally, cost,
                                     f"batch:{code}")
            self.fused_launches += 1
            self.launches_saved += len(healthy) - 1

        active = [r for r in active if r.pending is not None]

        # --- per-query decision point + bookkeeping (exactly run_frame's
        # sequence: choose(iteration + 1, next_size) when work remains,
        # keep the current variant when the query just drained)
        gen_groups: dict = {}
        for row in active:
            updated, improved, edges, size = row.pending
            row.pending = None
            next_size = int(updated.size)
            next_variant = (
                row.policy.choose(row.iteration + 1, next_size)
                if next_size
                else row.variant
            )
            for tally in row.policy.overhead_tallies(
                row.iteration, size, self._n, self.device
            ):
                cost = self.model.price(tally)
                self.timeline.add_kernel(
                    self.super_iterations, tally, cost,
                    f"batch:{row.variant.code}",
                )
            entry = gen_groups.setdefault(next_variant.workset, ([], []))
            entry[0].append(next_size)
            entry[1].append(row)
            record = IterationRecord(
                iteration=row.iteration,
                variant=row.variant.code,
                workset_size=size,
                processed=size,
                updated=next_size,
                edges_scanned=edges,
                improved_relaxations=improved,
                seconds=0.0,
            )
            row.records.append(record)
            row.policy.notify(record)
            row.state.frontier = updated
            row.variant = next_variant
            row.iteration += 1

        # --- fused workset generation: one launch per emitted
        # representation, covering every row headed there (rows that just
        # drained still sweep — discovering emptiness is the kernel's job,
        # exactly as in the single-source frame)
        for representation, (counts, members) in gen_groups.items():
            # Mixed-spec groups share one stride; every batchable spec
            # emits 4-byte ids today, but honor the declared width.
            entry_bytes = max(
                row.spec.workset_entry_bytes for row in members
            )
            try:
                gen_tallies = fused_workset_gen_tallies(
                    self._n, counts, representation, self.device,
                    scheme=self.queue_gen, entry_bytes=entry_bytes,
                )
                if (
                    held_comp is not None
                    and len(gen_groups) == 1
                    and len(gen_tallies) == 1
                ):
                    comp_tally, code, comp_members = held_comp
                    held_comp = None
                    merged = fuse_tallies([comp_tally, gen_tallies[0]])
                    cost = self.model.price(merged)
                    self.timeline.add_kernel(
                        self.super_iterations, merged, cost, f"batch:{code}"
                    )
                    self.fused_launches += 1
                    # The merged launch replaces one per surviving comp
                    # rider, one per gen rider, and the gen launch itself.
                    self.launches_saved += (
                        (len(comp_members) - 1) + (len(counts) - 1) + 1
                    )
                    self.fused_supersteps += 1
                    self.fusion_overhead_saved_s += (
                        self.device.kernel_launch_overhead_s
                    )
                    continue
                for tally in gen_tallies:
                    cost = self.model.price(tally)
                    self.timeline.add_kernel(
                        self.super_iterations, tally, cost, "batch:gen"
                    )
            except ReproError as exc:
                if held_comp is not None:
                    # The merged launch failed as a unit: its comp
                    # riders fall with the gen riders.
                    for row in held_comp[2]:
                        if row.error is None and not row.ejected:
                            self._eject(
                                row, f"fused launch failed: {exc}",
                                kind="fault",
                            )
                    held_comp = None
                for row in members:
                    if row.error is None and not row.ejected:
                        self._eject(
                            row, f"fused generation launch failed: {exc}",
                            kind="fault",
                        )
                continue
            self.fused_launches += 1
            self.launches_saved += len(counts) - 1

        if held_comp is not None:
            # Fusion armed but no generation launch to merge with (every
            # rider ejected mid-pass): price the held computation as-is.
            tally, code, healthy = held_comp
            cost = self.model.price(tally)
            self.timeline.add_kernel(
                self.super_iterations, tally, cost, f"batch:{code}"
            )
            self.fused_launches += 1
            self.launches_saved += len(healthy) - 1
            self.fusion_refused_supersteps += 1

        # --- one fused readback for the whole batch: every surviving
        # row's 4-byte working-set size behind a single PCIe latency
        survivors = [r for r in active if not r.ejected and r.error is None]
        if survivors:
            self.timeline.add_transfer(
                record_transfer(
                    "d2h", fused_readback_bytes(len(survivors)), self.device
                )
            )
            self.readbacks_saved += len(survivors) - 1
        self.super_iterations += 1

        # Attribute this pass's simulated time to every row that rode it
        # (shared slab: each rider experiences the whole pass latency).
        pass_seconds = self.timeline.total_seconds - pass_start
        for row in survivors:
            row.sim_seconds += pass_seconds

        # Rows that just drained are complete: queue their value
        # readback and hand them to the caller.
        for row in survivors:
            if not row.spec.work_remaining(row.state):
                self._unpriced.append(row)
                self._retire(row)
        return True

    # ------------------------------------------------------------------

    def finish(self) -> BatchFrameResult:
        """Run to completion and assemble the batch result."""
        while self.step():
            pass
        self._price_value_readbacks()
        self._finished = []

        observer = current_observer()
        if observer is not None:
            metrics = observer.metrics
            metrics.counter("batch.queries").inc(len(self.rows))
            metrics.counter("batch.queries_failed").inc(
                sum(1 for r in self.rows if r.error is not None)
            )
            metrics.counter("batch.super_iterations").inc(self.super_iterations)
            metrics.counter("batch.fused_launches").inc(self.fused_launches)
            metrics.counter("batch.launches_saved").inc(self.launches_saved)
            metrics.counter("batch.readbacks_saved").inc(self.readbacks_saved)
            if self.fusion:
                metrics.counter("fusion.fused_launches").inc(
                    self.fused_supersteps
                )
                metrics.counter("fusion.launches_eliminated").inc(
                    self.fused_supersteps
                )
                metrics.counter("fusion.overhead_saved_s").inc(
                    self.fusion_overhead_saved_s
                )
                metrics.counter("fusion.refused_iterations").inc(
                    self.fusion_refused_supersteps
                )
            observer.spans.add_span(
                "batch_frame",
                sim_seconds=self.timeline.total_seconds,
                queries=len(self.rows),
                super_iterations=self.super_iterations,
            )

        return BatchFrameResult(
            queries=[r.result() for r in self.rows],
            timeline=self.timeline,
            device=self.device,
            super_iterations=self.super_iterations,
            fused_launches=self.fused_launches,
            launches_saved=self.launches_saved,
            readbacks_saved=self.readbacks_saved,
            rows_ejected=self.rows_ejected,
            fused_supersteps=self.fused_supersteps,
            fusion_overhead_saved_s=self.fusion_overhead_saved_s,
        )


def run_batch_frame(
    graph: CSRGraph,
    plans: Sequence[QueryPlan],
    *,
    device: DeviceSpec = TESLA_C2070,
    cost_params: Optional[CostParams] = None,
    max_iterations: Optional[int] = None,
    queue_gen: str = "atomic",
    fault_hook=None,
    watchdogs: Optional[Sequence] = None,
    fusion: bool = False,
) -> BatchFrameResult:
    """Run every query of *plans* on the batched multi-source frame.

    Every spec must be :attr:`~repro.engine.spec.AlgorithmSpec.batchable`
    (callers route non-batchable algorithms through the single-source
    fallback instead — that is a dispatch decision, not a per-query
    fault, so it raises).  Mixed-algorithm batches are fine: only
    same-variant same-algorithm rows fuse into one launch.

    This is the one-shot form of :class:`BatchFrame` — all rows admitted
    up front, stepped until drained — and prices the same transfers and
    launches the pre-continuous driver did.
    """
    if not plans:
        raise KernelError("run_batch_frame needs at least one query")
    frame = BatchFrame(
        graph,
        device=device,
        cost_params=cost_params,
        max_iterations=max_iterations,
        queue_gen=queue_gen,
        fault_hook=fault_hook,
        fusion=fusion,
    )
    frame.admit(plans, watchdogs=watchdogs)
    return frame.finish()
