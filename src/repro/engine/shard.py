"""Fault-tolerant multi-device sharded traversal.

Scaling past one GPU: the CSR is 1D-partitioned across ``N`` simulated
devices (:func:`repro.graph.partition_graph`), each shard relaxes its
*owned* slice of the global frontier every **super-iteration**, and the
shards meet at an exchange barrier where ghost-vertex updates are
min-combined into the global state and shipped between devices over the
interconnect model (:mod:`repro.gpusim.interconnect`).

**Bit-identity.**  Each shard relaxes its owned frontier subset against
a private scratch copy of the pre-round global values; the barrier
min-combines every shard's proposed improvements.  Because the BFS/SSSP
relaxation is an associative, commutative min-reduction, the combined
values and the next frontier (the sorted unique set of improved
vertices) are exactly what the one-device kernel produces — so a
4-device run is SHA-identical to a 1-device run, fault-free or not.

**Fault domains and recovery.**  Every device is one fault domain with
its own seeded :class:`~repro.reliability.FaultInjector` (derived via
``FaultPlan.for_device``), its own :class:`~repro.gpusim.MemoryBudget`
and a :class:`~repro.reliability.CircuitBreaker` circuit keyed
``("device", i)``.  Shards capture **exchange-consistent** checkpoints:
every ``checkpoint_every`` super-iterations all shards snapshot their
owned slice at the same barrier (host-resident, so checkpoints survive
the device they describe).  The recovery ladder:

1. **retry** — a transient launch failure re-runs the shard's round on
   its own device (the scratch copy makes replays side-effect-free);
2. **restore** — device loss or state corruption rolls every shard back
   to the last coordinated checkpoint and replays; a *lost* device's
   shards are first migrated to the least-loaded surviving device
   (graph + state re-uploaded over PCIe, charged against the survivor's
   memory budget);
3. **cpu** — no surviving device (or the restore budget is exhausted):
   the whole graph degrades to the algorithm's serial CPU reference.

Straggler detection compares each shard's per-round simulated compute
time against the round median; a shard slower than
``straggler_factor x median`` is recorded (``shard.stragglers``).

See ``docs/sharding.md`` for the full protocol.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.policies import AdaptivePolicy
from repro.engine.registry import get_algorithm
from repro.engine.spec import AlgorithmSpec, FrameState
from repro.engine.types import HOST_INIT_PER_NODE_S, IterationRecord
from repro.errors import (
    DeviceLostError,
    DeviceOOMError,
    KernelError,
    LaunchError,
    MemoryFaultError,
    NonConvergenceError,
)
from repro.graph.csr import CSRGraph
from repro.graph.partition import GraphShard, partition_graph
from repro.gpusim.allocator import MemoryBudget
from repro.gpusim.device import DeviceSpec, TESLA_C2070
from repro.gpusim.interconnect import (
    InterconnectSpec,
    PCIE_P2P,
    peer_transfer_seconds,
)
from repro.gpusim.kernel import CostModel
from repro.gpusim.memory import traversal_state_bytes
from repro.gpusim.transfer import transfer_seconds
from repro.kernels.multisource import RowRelaxation, fused_computation_tally
from repro.kernels.workset import workset_gen_tallies
from repro.obs.context import current_observer
from repro.reliability.breaker import CircuitBreaker
from repro.reliability.checkpoint import CheckpointKeeper
from repro.reliability.faults import FaultInjector, FaultPlan
from repro.reliability.watchdog import Watchdog

__all__ = ["RECOVERY_RUNGS", "RecoveryEvent", "ShardedResult", "run_sharded"]

#: the device-loss recovery ladder, mildest first
RECOVERY_RUNGS = ("none", "retry", "restore", "cpu")

_RUNG_RANK = {name: rank for rank, name in enumerate(RECOVERY_RUNGS)}


@dataclass(frozen=True)
class RecoveryEvent:
    """One recovery action the sharded driver took, attributed to
    exactly one shard's fault domain."""

    super_iteration: int
    shard_index: int
    device_index: int
    fault_kind: str
    rung: str
    detail: str = ""


@dataclass
class ShardedResult:
    """One sharded run's full story: values, cost, recovery verdict."""

    algorithm: str
    source: int
    values: np.ndarray
    num_devices: int
    partition: str
    #: committed super-iterations (replays not double-counted)
    super_iterations: int
    #: super-iterations re-executed after rollbacks
    replayed_super_iterations: int
    #: end-to-end simulated makespan (slowest device per round, plus
    #: exchange, checkpoints and recovery overhead)
    sim_seconds: float
    exchange_bytes: int
    exchange_transfers: int
    exchange_seconds: float
    recovery_rung: str
    recovery_events: List[RecoveryEvent] = field(default_factory=list)
    degraded: bool = False
    #: every injected fault, each attributed to one device (fault domain)
    faults: List[dict] = field(default_factory=list)
    shard_reports: List[dict] = field(default_factory=list)
    #: per-shard decision traces, each entry tagged ``shard_index``
    decisions: List[dict] = field(default_factory=list)
    stragglers: int = 0
    device_losses: int = 0
    migrations: int = 0
    restores: int = 0
    checkpoints_saved: int = 0

    @property
    def values_sha256(self) -> str:
        return hashlib.sha256(
            np.ascontiguousarray(self.values).tobytes()
        ).hexdigest()

    def reliability_dict(self) -> dict:
        """The manifest's recovery story."""
        return {
            "recovery_rung": self.recovery_rung,
            "degraded": self.degraded,
            "device_losses": self.device_losses,
            "migrations": self.migrations,
            "restores": self.restores,
            "replayed_super_iterations": self.replayed_super_iterations,
            "checkpoints_saved": self.checkpoints_saved,
            "events": [dataclasses.asdict(e) for e in self.recovery_events],
        }

    def result_dict(self) -> dict:
        """The manifest's free-form ``result`` payload (JSON-shaped)."""
        return {
            "kind": "sharded",
            "algorithm": self.algorithm,
            "source": self.source,
            "num_devices": self.num_devices,
            "partition": self.partition,
            "super_iterations": self.super_iterations,
            "sim_seconds": self.sim_seconds,
            "values_sha256": self.values_sha256,
            "exchange": {
                "bytes": self.exchange_bytes,
                "transfers": self.exchange_transfers,
                "seconds": self.exchange_seconds,
            },
            "stragglers": self.stragglers,
            "shards": self.shard_reports,
            "reliability": self.reliability_dict(),
        }


# ----------------------------------------------------------------------
# Internal run state
# ----------------------------------------------------------------------


@dataclass
class _DeviceState:
    """One simulated device: the fault domain the plan scopes to."""

    index: int
    spec: DeviceSpec
    budget: Optional[MemoryBudget]
    injector: Optional[FaultInjector]
    lost: bool = False


@dataclass
class _ShardRun:
    """One shard's mutable execution state across super-iterations."""

    shard: GraphShard
    policy: AdaptivePolicy
    keeper: CheckpointKeeper
    device_index: int
    last_variant_code: str = ""
    compute_seconds: float = 0.0
    rounds_active: int = 0
    records: List[IterationRecord] = field(default_factory=list)


class _RoundFault(Exception):
    """Internal: a round must be abandoned and recovered (not a user
    error — always caught by :func:`run_sharded`)."""

    def __init__(
        self,
        device_index: int,
        shard_index: int,
        kind: str,
        detail: str,
        *,
        lose_device: bool,
    ):
        super().__init__(detail)
        self.device_index = device_index
        self.shard_index = shard_index
        self.kind = kind
        self.detail = detail
        self.lose_device = lose_device


class _Degrade(Exception):
    """Internal: no recovery path on any device — fall to the CPU."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


class _NullContext:
    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


def _installed(injector: Optional[FaultInjector]):
    return injector.installed() if injector is not None else _NullContext()


def _combine_floor(dtype: np.dtype):
    """The identity of the min-combine for this value dtype."""
    if np.issubdtype(dtype, np.floating):
        return np.inf
    return np.iinfo(dtype).max


def _shard_resident_bytes(shard: GraphShard) -> int:
    """Device bytes one shard keeps resident: CSR slice + its owned
    slice of the traversal state."""
    return shard.csr.device_bytes() + traversal_state_bytes(
        max(1, shard.num_owned)
    )


def _shard_h2d_bytes(shard: GraphShard) -> int:
    """Initial host-to-device payload for one shard (mirrors the
    single-device frame's opening copy, scaled to the owned range)."""
    o = shard.num_owned
    return shard.csr.device_bytes() + 4 * o + o + 4 * o + o // 8


def _inc(name: str, amount: int = 1) -> None:
    observer = current_observer()
    if observer is not None:
        observer.metrics.counter(name).inc(amount)


def _observe_hist(name: str, value: float) -> None:
    observer = current_observer()
    if observer is not None:
        observer.metrics.histogram(name).observe(value)


# ----------------------------------------------------------------------
# The driver
# ----------------------------------------------------------------------


def run_sharded(
    graph: CSRGraph,
    source: int,
    *,
    algorithm: str = "bfs",
    num_devices: int = 2,
    partition: str = "contiguous",
    device: DeviceSpec = TESLA_C2070,
    config=None,
    interconnect: InterconnectSpec = PCIE_P2P,
    fault_plan: Optional[FaultPlan] = None,
    checkpoint_every: int = 4,
    max_retries: int = 2,
    max_restores: int = 4,
    mem_budget=None,
    queue_gen: str = "atomic",
    max_super_iterations: Optional[int] = None,
    straggler_factor: float = 4.0,
    watchdog: Optional[Watchdog] = None,
    breaker: Optional[CircuitBreaker] = None,
    **params,
) -> ShardedResult:
    """Run *algorithm* from *source* sharded across *num_devices*
    simulated devices, surviving the faults *fault_plan* injects.

    Only batchable algorithms (BFS, SSSP) shard: their relaxation is
    the min-combine the exchange barrier relies on for bit-identity.
    *mem_budget* (bytes or a ``"512M"``-style string) attaches one
    :class:`~repro.gpusim.MemoryBudget` per device in spill mode, so
    worksets and checkpoint staging overflow to the host instead of
    failing.  *checkpoint_every* is the coordinated-checkpoint cadence
    in super-iterations; *max_retries* bounds same-device launch
    retries per incident and *max_restores* bounds checkpoint rollbacks
    before the run degrades to the CPU reference.
    """
    info = get_algorithm(algorithm)
    spec: AlgorithmSpec = info.make_spec(**params)
    if not spec.batchable:
        raise KernelError(
            f"{spec.name} does not support sharded execution (the exchange "
            "barrier needs the batchable min-combine relaxation)"
        )
    if checkpoint_every < 1:
        raise KernelError(
            f"checkpoint_every must be >= 1, got {checkpoint_every}"
        )
    spec.validate(graph, source)
    shards = partition_graph(graph, num_devices, strategy=partition)
    n = graph.num_nodes
    model = CostModel(device)
    breaker = breaker if breaker is not None else CircuitBreaker()
    plan = fault_plan if fault_plan is not None and not fault_plan.is_empty else None

    devices: List[_DeviceState] = []
    for i in range(num_devices):
        injector = None
        if plan is not None:
            derived = plan.for_device(i, num_devices)
            if derived is not None:
                injector = FaultInjector(derived, device_index=i)
        budget = (
            MemoryBudget(mem_budget, device=device, spill=True)
            if mem_budget is not None
            else None
        )
        devices.append(_DeviceState(i, device, budget, injector))

    runs: List[_ShardRun] = []
    for shard in shards:
        runs.append(
            _ShardRun(
                shard=shard,
                policy=AdaptivePolicy(
                    shard.view(n),
                    config,
                    device=device,
                    memory=devices[shard.shard_index].budget,
                ),
                keeper=CheckpointKeeper(every=1, device=device),
                device_index=shard.shard_index,
            )
        )

    # -- initial state and transfers (parallel h2d across devices) -----
    values, frontier = _initial_state(spec, graph, source, model, device,
                                      queue_gen)
    sim_seconds = _initial_transfers(runs, devices, device)
    sim_seconds += n * HOST_INIT_PER_NODE_S

    cap = (
        max_super_iterations
        if max_super_iterations is not None
        else spec.default_cap(graph)
    )
    edge_cost, weight_streams = spec.batch_kernel_profile()

    events: List[RecoveryEvent] = []
    rung = "none"
    degraded = False
    k = 0
    replayed = 0
    restores_used = 0
    exchange_bytes = 0
    exchange_transfers = 0
    exchange_seconds = 0.0
    stragglers = 0
    device_losses = 0
    migrations = 0
    checkpoints_saved = 0

    def _raise_rung(name: str) -> None:
        nonlocal rung
        if _RUNG_RANK[name] > _RUNG_RANK[rung]:
            rung = name

    while frontier.size:
        if k >= cap:
            raise NonConvergenceError(spec.cap_message(cap))
        if watchdog is not None:
            watchdog.check(k, sim_seconds)
        try:
            round_out = _execute_round(
                k,
                frontier,
                values,
                runs,
                devices,
                spec,
                model,
                device,
                queue_gen,
                edge_cost,
                weight_streams,
                n,
                breaker,
                max_retries,
                events,
                _raise_rung,
                interconnect,
                straggler_factor,
            )
        except _RoundFault as fault:
            _inc("shard.restores")
            _raise_rung("restore")
            try:
                if fault.lose_device:
                    device_losses += 1
                    _inc("shard.device_losses")
                    moved, move_seconds = _lose_device(
                        devices[fault.device_index], devices, runs, k,
                        fault, events,
                    )
                    migrations += moved
                    sim_seconds += move_seconds
                else:
                    events.append(
                        RecoveryEvent(
                            super_iteration=k,
                            shard_index=fault.shard_index,
                            device_index=fault.device_index,
                            fault_kind=fault.kind,
                            rung="restore",
                            detail=fault.detail,
                        )
                    )
                restores_used += 1
                if restores_used > max_restores:
                    raise _Degrade(
                        f"restore budget exhausted ({max_restores} rollbacks)"
                    )
                values, frontier, restored_k = _rollback(
                    runs, spec, graph, source, values.dtype, model, device,
                    queue_gen,
                )
                replayed += k - restored_k
                _inc("shard.replayed_super_iterations", max(0, k - restored_k))
                k = restored_k
                continue
            except _Degrade as fall:
                values, cpu_seconds = _cpu_degrade(
                    info, graph, source, fall.reason, k, events, params
                )
                sim_seconds += cpu_seconds
                _raise_rung("cpu")
                degraded = True
                break

        (
            frontier,
            round_seconds,
            round_exchange_bytes,
            round_exchange_transfers,
            round_exchange_seconds,
            round_stragglers,
        ) = round_out
        sim_seconds += round_seconds
        exchange_bytes += round_exchange_bytes
        exchange_transfers += round_exchange_transfers
        exchange_seconds += round_exchange_seconds
        stragglers += round_stragglers
        _inc("shard.super_iterations")

        if (k + 1) % checkpoint_every == 0:
            cp_seconds, cp_saves = _coordinated_checkpoint(
                runs, devices, spec, source, k, values, frontier, device
            )
            sim_seconds += cp_seconds
            checkpoints_saved += cp_saves
        k += 1

    if not degraded:
        # Final owned-values readback, one d2h per device in parallel.
        per_device = [0] * num_devices
        for run in runs:
            per_device[run.device_index] += 4 * run.shard.num_owned
        sim_seconds += max(
            (transfer_seconds(b, device) for b in per_device if b), default=0.0
        )

    faults: List[dict] = []
    for dev in devices:
        if dev.injector is not None:
            faults.extend(dataclasses.asdict(f) for f in dev.injector.log)

    decisions: List[dict] = []
    shard_reports: List[dict] = []
    for run in runs:
        for decision in run.policy.trace.decisions:
            doc = dataclasses.asdict(decision)
            doc["shard_index"] = run.shard.shard_index
            decisions.append(doc)
        shard_reports.append(
            {
                "shard_index": run.shard.shard_index,
                "device_index": run.device_index,
                "start": run.shard.start,
                "stop": run.shard.stop,
                "num_owned": run.shard.num_owned,
                "num_edges": run.shard.num_edges,
                "num_ghosts": run.shard.num_ghosts,
                "rounds_active": run.rounds_active,
                "compute_seconds": run.compute_seconds,
                "checkpoint_saves": run.keeper.saves,
                "checkpoint_restores": run.keeper.restores,
            }
        )

    return ShardedResult(
        algorithm=spec.name,
        source=source,
        values=values,
        num_devices=num_devices,
        partition=partition,
        super_iterations=k,
        replayed_super_iterations=replayed,
        sim_seconds=sim_seconds,
        exchange_bytes=exchange_bytes,
        exchange_transfers=exchange_transfers,
        exchange_seconds=exchange_seconds,
        recovery_rung=rung,
        recovery_events=events,
        degraded=degraded,
        faults=faults,
        shard_reports=shard_reports,
        decisions=decisions,
        stragglers=stragglers,
        device_losses=device_losses,
        migrations=migrations,
        restores=restores_used,
        checkpoints_saved=checkpoints_saved,
    )


# ----------------------------------------------------------------------
# Round execution
# ----------------------------------------------------------------------


def _initial_state(spec, graph, source, model, device, queue_gen):
    """The algorithm's global initial (values, frontier)."""
    from repro.engine.driver import FrameContext
    from repro.gpusim.timeline import Timeline

    ctx = FrameContext(graph, device, model, Timeline(), queue_gen, source)
    state = spec.init_state(ctx)
    return state.values, np.sort(np.asarray(state.frontier, dtype=np.int64))


def _initial_transfers(
    runs: Sequence[_ShardRun],
    devices: Sequence[_DeviceState],
    device: DeviceSpec,
) -> float:
    """Charge each device's resident allocations and price the opening
    h2d copies (devices upload in parallel: the makespan term is the
    slowest device)."""
    per_device_bytes = [0] * len(devices)
    for run in runs:
        dev = devices[run.device_index]
        if dev.budget is not None:
            dev.budget.allocate(
                run.shard.csr.device_bytes(),
                "graph",
                label=f"CSR slice of shard {run.shard.shard_index}",
            )
            dev.budget.allocate(
                traversal_state_bytes(max(1, run.shard.num_owned)),
                "state",
                label=f"state slice of shard {run.shard.shard_index}",
            )
        per_device_bytes[run.device_index] += _shard_h2d_bytes(run.shard)
    return max(
        (transfer_seconds(b, device) for b in per_device_bytes if b),
        default=0.0,
    )


def _execute_round(
    k: int,
    frontier: np.ndarray,
    values: np.ndarray,
    runs: Sequence[_ShardRun],
    devices: Sequence[_DeviceState],
    spec: AlgorithmSpec,
    model: CostModel,
    device: DeviceSpec,
    queue_gen: str,
    edge_cost: float,
    weight_streams: int,
    n: int,
    breaker: CircuitBreaker,
    max_retries: int,
    events: List[RecoveryEvent],
    raise_rung,
    interconnect: InterconnectSpec,
    straggler_factor: float,
) -> Tuple[np.ndarray, float, int, int, float, int]:
    """One super-iteration: per-shard relaxation, barrier min-combine,
    ghost exchange.  Mutates *values* only on successful commit.

    Returns ``(next_frontier, makespan_seconds, exchange_bytes,
    exchange_transfers, exchange_seconds, stragglers)``.  Raises
    :class:`_RoundFault` when the round must be rolled back.
    """
    # Device-loss site: one draw per fault domain per super-iteration.
    for dev in devices:
        if dev.lost or dev.injector is None:
            continue
        try:
            dev.injector.on_super_iteration(k)
        except DeviceLostError as exc:
            domain = next(
                (r.shard.shard_index for r in runs
                 if r.device_index == dev.index),
                dev.index,
            )
            raise _RoundFault(
                dev.index, domain, "device_loss", str(exc), lose_device=True
            ) from exc

    per_device_seconds: Dict[int, float] = {}
    shard_seconds: List[Tuple[_ShardRun, float]] = []
    proposals: List[Tuple[_ShardRun, np.ndarray, np.ndarray]] = []
    active = 0
    for run in runs:
        owned = run.shard.owned_slice(frontier)
        if owned.size == 0:
            continue
        active += 1
        dev = devices[run.device_index]
        attempt = 0
        while True:
            try:
                seconds, updated, proposed = _relax_shard(
                    run, owned, values, k, dev, spec, model, device,
                    queue_gen, edge_cost, weight_streams, n,
                )
                breaker.record_success(("device", dev.index))
                break
            except LaunchError as exc:
                attempt += 1
                tripped = breaker.record_failure(("device", dev.index))
                if tripped:
                    raise _RoundFault(
                        dev.index,
                        run.shard.shard_index,
                        "launch_failure",
                        f"breaker tripped for device {dev.index}: {exc}",
                        lose_device=True,
                    ) from exc
                if attempt > max_retries:
                    raise _RoundFault(
                        dev.index,
                        run.shard.shard_index,
                        "launch_failure",
                        f"retries exhausted on device {dev.index}: {exc}",
                        lose_device=True,
                    ) from exc
                raise_rung("retry")
                events.append(
                    RecoveryEvent(
                        super_iteration=k,
                        shard_index=run.shard.shard_index,
                        device_index=dev.index,
                        fault_kind="launch_failure",
                        rung="retry",
                        detail=f"attempt {attempt}/{max_retries}: {exc}",
                    )
                )
            except MemoryFaultError as exc:
                raise _RoundFault(
                    dev.index,
                    run.shard.shard_index,
                    "memory_fault",
                    str(exc),
                    lose_device=False,
                ) from exc
        per_device_seconds[dev.index] = (
            per_device_seconds.get(dev.index, 0.0) + seconds
        )
        shard_seconds.append((run, seconds))
        if updated.size:
            proposals.append((run, updated, proposed))

    _observe_hist("shard.active_shards", active)

    # -- barrier: min-combine every shard's proposals ------------------
    if proposals:
        ids = np.concatenate([p[1] for p in proposals])
        vals = np.concatenate([p[2] for p in proposals])
        uniq, inverse = np.unique(ids, return_inverse=True)
        best = np.full(uniq.size, _combine_floor(vals.dtype), dtype=vals.dtype)
        np.minimum.at(best, inverse, vals)
        values[uniq] = best
        next_frontier = uniq
    else:
        next_frontier = np.empty(0, dtype=np.int64)

    # -- ghost exchange: ship cross-shard updates over the interconnect
    bounds = np.array([r.shard.start for r in runs] + [n], dtype=np.int64)
    exch_bytes = 0
    exch_transfers = 0
    per_device_exchange: Dict[int, float] = {}
    entry_bytes = 4 + values.dtype.itemsize
    for run, updated, _ in proposals:
        owners = np.searchsorted(bounds, updated, side="right") - 1
        src_dev = run.device_index
        for owner_index in np.unique(owners):
            owner_run = runs[int(owner_index)]
            if owner_run.shard.shard_index == run.shard.shard_index:
                continue
            count = int(np.count_nonzero(owners == owner_index))
            dst_dev = owner_run.device_index
            if dst_dev == src_dev:
                continue  # co-resident after migration: no link traffic
            nbytes = count * entry_bytes
            exch_bytes += nbytes
            exch_transfers += 1
            seconds = peer_transfer_seconds(nbytes, interconnect, device=device)
            src_budget = devices[src_dev].budget
            if src_budget is not None:
                with src_budget.transient(
                    nbytes, "other", label="exchange staging"
                ):
                    pass
            per_device_exchange[src_dev] = (
                per_device_exchange.get(src_dev, 0.0) + seconds
            )
    exch_seconds = max(per_device_exchange.values(), default=0.0)
    _inc("shard.exchange_bytes", exch_bytes)
    _inc("shard.exchange_transfers", exch_transfers)

    # -- straggler detection over this round's compute times -----------
    round_stragglers = 0
    if len(shard_seconds) >= 2:
        times = np.array([s for _, s in shard_seconds])
        median = float(np.median(times))
        if median > 0:
            for run, seconds in shard_seconds:
                if seconds > straggler_factor * median:
                    round_stragglers += 1
                    _inc("shard.stragglers")

    # Fused per-shard size readbacks land in parallel: one PCIe latency.
    readback = transfer_seconds(4, device) if active else 0.0
    makespan = max(per_device_seconds.values(), default=0.0)
    return (
        next_frontier,
        makespan + exch_seconds + readback,
        exch_bytes,
        exch_transfers,
        exch_seconds,
        round_stragglers,
    )


def _relax_shard(
    run: _ShardRun,
    owned: np.ndarray,
    values: np.ndarray,
    k: int,
    dev: _DeviceState,
    spec: AlgorithmSpec,
    model: CostModel,
    device: DeviceSpec,
    queue_gen: str,
    edge_cost: float,
    weight_streams: int,
    n: int,
) -> Tuple[float, np.ndarray, np.ndarray]:
    """One shard's relaxation of its owned frontier on a scratch copy.

    The scratch copy is what makes every recovery rung safe: a faulted
    or retried attempt never touched the committed global state, so
    replays are exact.  Returns ``(simulated_seconds, updated_global_ids,
    proposed_values)``.
    """
    shard = run.shard
    policy = run.policy
    variant = policy.choose(k, int(owned.size))
    run.last_variant_code = variant.code
    scratch = values.copy()
    work = owned.astype(np.int64, copy=True)
    seconds = 0.0
    with _installed(dev.injector):
        if dev.injector is not None:
            # Memory-fault site: corruption lands on the scratch copy
            # (the simulated device's resident slice), never on the
            # committed host-side state.
            dev.injector.on_iteration(k, scratch, work)
        updated, degrees, improved, edges_scanned = spec.batch_relax(
            shard.view(n), FrameState(scratch, work)
        )
        local_ids = work - shard.start
        tpb = variant.threads_per_block(
            shard.csr.avg_out_degree if shard.num_owned else 1.0, device
        )
        tally = fused_computation_tally(
            [RowRelaxation(local_ids, degrees, int(improved), int(updated.size))],
            variant,
            tpb,
            max(1, shard.num_owned),
            device,
            edge_cost=edge_cost,
            weight_streams=weight_streams,
            name=f"shard{shard.shard_index}_comp",
        )
        seconds += model.price(tally).seconds
        for overhead in policy.overhead_tallies(k, int(owned.size), n, device):
            seconds += model.price(overhead).seconds
        # The shard's update vector is full graph width (ghost vertices
        # must be flaggable), so generation scans n flags, not num_owned.
        for gen in workset_gen_tallies(
            max(1, n),
            int(updated.size),
            variant.workset,
            device,
            scheme=queue_gen,
            name=f"shard{shard.shard_index}_workset_gen",
        ):
            seconds += model.price(gen).seconds
    if dev.budget is not None:
        spilled = dev.budget.charge_workset(
            variant.workset,
            int(updated.size),
            max(1, n),
            entry_bytes=spec.workset_entry_bytes,
        )
        if spilled:
            seconds += 2 * transfer_seconds(spilled, device)
    record = IterationRecord(
        iteration=k,
        variant=variant.code,
        workset_size=int(owned.size),
        processed=int(owned.size),
        updated=int(updated.size),
        edges_scanned=int(edges_scanned),
        improved_relaxations=int(improved),
        seconds=seconds,
    )
    run.records.append(record)
    policy.notify(record)
    run.compute_seconds += seconds
    run.rounds_active += 1
    return seconds, updated, scratch[updated].copy()


# ----------------------------------------------------------------------
# Checkpoints and the recovery ladder
# ----------------------------------------------------------------------


def _coordinated_checkpoint(
    runs: Sequence[_ShardRun],
    devices: Sequence[_DeviceState],
    spec: AlgorithmSpec,
    source: int,
    k: int,
    values: np.ndarray,
    frontier: np.ndarray,
    device: DeviceSpec,
) -> Tuple[float, int]:
    """Every shard snapshots its owned slice at the same barrier, so
    the checkpoint set is exchange-consistent (one global rollback
    point).  Copies are host-resident: they survive device loss."""
    per_device_seconds: Dict[int, float] = {}
    saves = 0
    for run in runs:
        shard = run.shard
        nbytes = run.keeper.offer(
            algorithm=spec.name,
            source=source,
            iteration=k,
            values=values[shard.start : shard.stop],
            frontier=shard.owned_slice(frontier),
            variant_code=run.last_variant_code,
            records=run.records,
            seconds=0.0,
        )
        if not nbytes:
            continue
        saves += 1
        _inc("frame.checkpoint_bytes", nbytes)
        dev = devices[run.device_index]
        seconds = transfer_seconds(nbytes, device)
        if dev.budget is not None:
            with dev.budget.transient(
                nbytes, "checkpoint", label="checkpoint staging"
            ):
                pass
        per_device_seconds[dev.index] = (
            per_device_seconds.get(dev.index, 0.0) + seconds
        )
    return max(per_device_seconds.values(), default=0.0), saves


def _rollback(
    runs: Sequence[_ShardRun],
    spec: AlgorithmSpec,
    graph: CSRGraph,
    source: int,
    values_dtype,
    model: CostModel,
    device: DeviceSpec,
    queue_gen: str,
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Restore the last exchange-consistent checkpoint set (or restart
    from scratch when none was taken).  Returns ``(values, frontier,
    super_iteration)`` to resume from."""
    checkpoints = [run.keeper.restore(spec.name, source) for run in runs]
    if any(cp is None for cp in checkpoints):
        values, frontier = _initial_state(
            spec, graph, source, model, device, queue_gen
        )
        for run in runs:
            run.records = []
        return values, frontier, 0
    target = checkpoints[0].next_iteration
    values = np.empty(graph.num_nodes, dtype=values_dtype)
    pieces = []
    for run, cp in zip(runs, checkpoints):
        if cp.next_iteration != target:
            raise KernelError(
                "checkpoint set is not exchange-consistent: shard "
                f"{run.shard.shard_index} is at super-iteration "
                f"{cp.next_iteration}, expected {target}"
            )
        values[run.shard.start : run.shard.stop] = cp.values
        pieces.append(cp.frontier)
        run.records = list(cp.records)
    frontier = np.sort(np.concatenate(pieces)) if pieces else np.empty(
        0, dtype=np.int64
    )
    return values, frontier.astype(np.int64, copy=False), target


def _lose_device(
    lost: _DeviceState,
    devices: Sequence[_DeviceState],
    runs: Sequence[_ShardRun],
    k: int,
    fault: _RoundFault,
    events: List[RecoveryEvent],
) -> Tuple[int, float]:
    """Mark *lost* dead and migrate its shards to the least-loaded
    surviving device (graph + state re-uploaded, charged against the
    survivor's budget).  Raises :class:`_Degrade` when no survivor can
    take the load."""
    lost.lost = True
    survivors = [d for d in devices if not d.lost]
    if not survivors:
        raise _Degrade(f"device {lost.index} lost; no surviving devices")

    def _load(dev: _DeviceState) -> int:
        return sum(
            _shard_resident_bytes(r.shard)
            for r in runs
            if r.device_index == dev.index
        )

    moved = 0
    move_seconds = 0.0
    for run in runs:
        if run.device_index != lost.index:
            continue
        placed = False
        for target in sorted(survivors, key=_load):
            if target.budget is not None:
                try:
                    target.budget.allocate(
                        run.shard.csr.device_bytes(),
                        "graph",
                        label=(
                            f"migrated CSR slice of shard "
                            f"{run.shard.shard_index}"
                        ),
                    )
                    target.budget.allocate(
                        traversal_state_bytes(max(1, run.shard.num_owned)),
                        "state",
                        label=(
                            f"migrated state slice of shard "
                            f"{run.shard.shard_index}"
                        ),
                    )
                except DeviceOOMError:
                    continue
            run.device_index = target.index
            run.policy.memory = target.budget
            move_seconds += transfer_seconds(
                _shard_h2d_bytes(run.shard), target.spec
            )
            moved += 1
            _inc("shard.migrations")
            events.append(
                RecoveryEvent(
                    super_iteration=k,
                    shard_index=run.shard.shard_index,
                    device_index=lost.index,
                    fault_kind=fault.kind,
                    rung="restore",
                    detail=(
                        f"shard {run.shard.shard_index} migrated from lost "
                        f"device {lost.index} to device {target.index}"
                    ),
                )
            )
            placed = True
            break
        if not placed:
            raise _Degrade(
                f"no surviving device can host shard "
                f"{run.shard.shard_index} after losing device {lost.index}"
            )
    return moved, move_seconds


def _cpu_degrade(
    info,
    graph: CSRGraph,
    source: int,
    reason: str,
    k: int,
    events: List[RecoveryEvent],
    params: dict,
) -> Tuple[np.ndarray, float]:
    """The ladder's last rung: the whole graph on the CPU reference."""
    if info.cpu_run is None:
        raise KernelError(
            f"{info.name} has no CPU reference to degrade to ({reason})"
        )
    values, cpu_result = info.cpu_run(graph, source, **params)
    events.append(
        RecoveryEvent(
            super_iteration=k,
            shard_index=-1,
            device_index=-1,
            fault_kind="degradation",
            rung="cpu",
            detail=reason,
        )
    )
    return np.asarray(values), float(getattr(cpu_result, "seconds", 0.0))
