"""Incremental recompute: warm-start traversals after graph mutations.

"Exploring the Design Space of Static and Incremental Graph
Connectivity Algorithms on GPUs" (see ``docs/paper-map.md``) shows that
re-running connectivity from scratch after a small update batch wastes
orders of magnitude of work.  :func:`run_incremental` is that idea on
this codebase's engine: instead of re-initializing the traversal state,
it *seeds* the frame with the previous run's values and a frontier
covering only the vertices a :class:`~repro.graph.dynamic.MutationDelta`
could have affected, then lets the ordinary
:func:`~repro.engine.driver.run_frame` loop converge — watchdog,
checkpoints, memory budget, fault hooks and observers all apply
unchanged, and the fixed point the warm frame reaches is *bit-identical*
to a from-scratch run on the compacted graph.

Seeding rules per algorithm:

- **cc** — inserted edges can only merge components, so min-label
  propagation restarted from the old labels with the inserted
  endpoints as the frontier reaches the same fixed point.  A deletion
  can split a component, so every old component touched by a deleted
  edge is reset to identity labels and fully re-seeded (the scoped
  recompute: old components are vertex-disjoint, so the blast radius
  never leaks past them).
- **bfs / sssp** — inserted edges only shorten distances, so the old
  values are valid upper bounds and the relaxation is min-based: the
  frontier re-seeds from the inserted edges' source endpoints.  A
  deletion can lengthen distances, so the *tight-edge closure* of the
  deleted edges (every vertex whose old distance could have been
  derived through one) is reset to unreached, and the frontier re-seeds
  from the boundary: still-valid vertices with an edge into the reset
  region.

Because the base graph is already device-resident from the previous
run, the warm frame's spec sets
:attr:`~repro.engine.spec.AlgorithmSpec.graph_resident`: the initial
h2d transfer ships only the traversal state (the delta itself was
priced by :meth:`~repro.graph.dynamic.DeltaOverlayGraph.compact`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Union

import numpy as np

from repro.engine.driver import run_frame
from repro.engine.spec import FrameState
from repro.errors import KernelError
from repro.graph.csr import CSRGraph
from repro.graph.dynamic import DeltaOverlayGraph, MutationDelta
from repro.graph.properties import _ragged_gather_indices
from repro.gpusim.device import DeviceSpec, TESLA_C2070
from repro.kernels.cc import CcSpec
from repro.kernels.computation import INF, UNSET_LEVEL
from repro.kernels.frame import BfsSpec, SsspSpec, TraversalResult
from repro.obs.context import current_observer, observing

__all__ = [
    "IncrementalResult",
    "IncrementalCcSpec",
    "IncrementalBfsSpec",
    "IncrementalSsspSpec",
    "run_incremental",
]

#: host-side cost of one edge scanned by the seeding passes (same
#: per-edge constant as the builder/symmetrize passes)
SEED_SECONDS_PER_EDGE = 12e-9

INCREMENTAL_ALGORITHMS = ("cc", "bfs", "sssp")


# ----------------------------------------------------------------------
# Warm-start specs: ordinary specs whose initial state is seeded
# ----------------------------------------------------------------------

class IncrementalCcSpec(CcSpec):
    """CC warm-started from prior labels and an affected-vertex frontier."""

    graph_resident = True

    def __init__(
        self,
        seed_values: np.ndarray,
        seed_frontier: np.ndarray,
        *,
        assume_symmetric: bool = False,
        seed_host_seconds: float = 0.0,
    ):
        super().__init__(assume_symmetric=assume_symmetric)
        self._seed_values = seed_values
        self._seed_frontier = seed_frontier
        self._seed_host_seconds = seed_host_seconds

    def prepare(self, graph: CSRGraph):
        work_graph, host_seconds = super().prepare(graph)
        return work_graph, host_seconds + self._seed_host_seconds

    def init_state(self, ctx) -> FrameState:
        return FrameState(
            self._seed_values.copy(), self._seed_frontier.copy()
        )

    def first_choose_size(self, state: FrameState) -> int:
        # The warm frontier can legitimately be empty (a mutation batch
        # that moved nothing): 0 must skip the policy entirely.
        return int(state.frontier.size)


class IncrementalBfsSpec(BfsSpec):
    """BFS warm-started from prior levels and a re-seeded frontier."""

    graph_resident = True

    def __init__(
        self,
        seed_values: np.ndarray,
        seed_frontier: np.ndarray,
        *,
        seed_host_seconds: float = 0.0,
    ):
        self._seed_values = seed_values
        self._seed_frontier = seed_frontier
        self._seed_host_seconds = seed_host_seconds

    def prepare(self, graph: CSRGraph):
        return graph, self._seed_host_seconds

    def init_state(self, ctx) -> FrameState:
        return FrameState(
            self._seed_values.copy(), self._seed_frontier.copy()
        )


class IncrementalSsspSpec(SsspSpec):
    """Unordered SSSP warm-started from prior distances."""

    graph_resident = True

    def __init__(
        self,
        seed_values: np.ndarray,
        seed_frontier: np.ndarray,
        *,
        seed_host_seconds: float = 0.0,
    ):
        self._seed_values = seed_values
        self._seed_frontier = seed_frontier
        self._seed_host_seconds = seed_host_seconds

    def prepare(self, graph: CSRGraph):
        return graph, self._seed_host_seconds

    def init_state(self, ctx) -> FrameState:
        return FrameState(
            self._seed_values.copy(), self._seed_frontier.copy()
        )


# ----------------------------------------------------------------------
# Seeding passes (host-side, vectorized)
# ----------------------------------------------------------------------

def _unique_concat(parts) -> np.ndarray:
    parts = [np.asarray(p, dtype=np.int64) for p in parts if len(p)]
    if not parts:
        return np.empty(0, dtype=np.int64)
    return np.unique(np.concatenate(parts))


def _cc_seed(prev: np.ndarray, delta: MutationDelta, num_nodes: int):
    """Seed labels/frontier for incremental CC.

    Returns ``(labels, frontier, affected_count, host_edges_scanned)``.
    """
    labels = np.arange(num_nodes, dtype=np.int64)
    labels[: prev.size] = prev
    parts = []
    affected = 0
    if delta.num_deletes:
        # Scoped recompute: reset every old component a deleted edge
        # touched to identity labels and re-seed all of its vertices.
        touched = _unique_concat(
            [labels[delta.del_src], labels[delta.del_dst]]
        )
        nodes = np.flatnonzero(np.isin(labels, touched))
        labels[nodes] = nodes
        parts.append(nodes)
        affected = int(nodes.size)
    if delta.num_inserts:
        # Re-union only inserted edges that actually bridge two labels:
        # an intra-component insert cannot move the fixed point, and a
        # reset component already has every vertex in the frontier, so
        # dropping its (identity-labelled) coincidences is sound too.
        bridges = labels[delta.ins_src] != labels[delta.ins_dst]
        parts.append(delta.ins_src[bridges])
        parts.append(delta.ins_dst[bridges])
    frontier = _unique_concat(parts)
    return labels, frontier, affected, 0


def _distance_seed(
    graph: CSRGraph,
    prev: np.ndarray,
    delta: MutationDelta,
    *,
    unset,
    source: int,
    unit_weight: bool,
):
    """Seed values/frontier for incremental BFS (unit weights) or SSSP.

    Returns ``(values, frontier, affected_count, host_edges_scanned)``.
    """
    n = graph.num_nodes
    values = np.full(n, unset, dtype=prev.dtype)
    values[: prev.size] = prev
    offsets, cols = graph.row_offsets, graph.col_indices
    weights = graph.weights
    host_edges = 0
    affected = np.zeros(n, dtype=bool)

    if delta.num_deletes:
        # Tight-edge closure: a deleted edge (u, v) invalidates v when
        # v's old value was derived through it; invalidation then flows
        # along every still-tight edge of the new graph.  Conservative
        # (a vertex with an alternative tight path is reset too) but
        # sound — the relaxation below restores it to the same value.
        du, dv = delta.del_src, delta.del_dst
        if unit_weight:
            tight = (values[du] != unset) & (values[dv] == values[du] + 1)
        else:
            dw = delta.del_weight
            tight = np.isfinite(values[du]) & (values[dv] == values[du] + dw)
        wave = np.unique(dv[tight])
        wave = wave[wave != source]
        while wave.size:
            affected[wave] = True
            starts, ends = offsets[wave], offsets[wave + 1]
            idx = _ragged_gather_indices(starts, ends)
            host_edges += int(idx.size)
            if idx.size == 0:
                break
            dst = cols[idx].astype(np.int64)
            src_vals = np.repeat(values[wave], (ends - starts))
            if unit_weight:
                step_tight = (src_vals != unset) & (values[dst] == src_vals + 1)
            else:
                step_tight = np.isfinite(src_vals) & (
                    values[dst] == src_vals + weights[idx]
                )
            nxt = dst[step_tight]
            nxt = nxt[(~affected[nxt]) & (nxt != source)]
            wave = np.unique(nxt)
        reset_nodes = np.flatnonzero(affected)
        values[reset_nodes] = unset

    parts = []
    if affected.any():
        # Boundary re-seed: still-valid vertices with an edge into the
        # reset region push their values back in.
        src_all = np.repeat(np.arange(n, dtype=np.int64), graph.out_degrees)
        host_edges += int(cols.size)
        pick = affected[cols] & ~affected[src_all] & (values[src_all] != unset)
        parts.append(np.unique(src_all[pick]))
    if delta.num_inserts:
        # Inserted edges only shorten paths, and (u, v) can only move
        # the fixed point through the one new relaxation u -> v: seed u
        # only when that relaxation actually improves v.  (An unset u
        # is re-derived by the delete frontier first; once its value
        # lands it re-enters the frontier and pushes the new edge.)
        iu, iv = delta.ins_src, delta.ins_dst
        if unit_weight:
            improves = (values[iu] != unset) & (
                (values[iv] == unset) | (values[iv] > values[iu] + 1)
            )
        else:
            # Compare with the weight the kernel will see (float32
            # storage), not the raw op value, so marginal improvements
            # are judged with the traversal's own arithmetic.
            iw = delta.ins_weight.astype(np.float32)
            improves = np.isfinite(values[iu]) & (values[iv] > values[iu] + iw)
        parts.append(np.unique(iu[improves]))
    frontier = _unique_concat(parts)
    return values, frontier, int(affected.sum()), host_edges


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------

@dataclass
class IncrementalResult:
    """An incremental traversal plus what the warm start reused."""

    traversal: TraversalResult
    trace: object
    thresholds: object
    delta: MutationDelta
    #: vertices the seeding pass invalidated (0 for insert-only deltas)
    affected_nodes: int
    #: size of the warm frontier the frame started from
    seed_frontier_size: int
    memory: Optional[object] = None
    policy: Optional[Dict] = None

    @property
    def values(self):
        return self.traversal.values

    @property
    def total_seconds(self) -> float:
        return self.traversal.total_seconds

    @property
    def num_iterations(self) -> int:
        return self.traversal.num_iterations


def _previous_values(previous) -> np.ndarray:
    if isinstance(previous, np.ndarray):
        return previous
    values = getattr(previous, "values", None)
    if values is None:
        raise KernelError(
            "previous must be a values array or a result with a .values "
            f"attribute, got {type(previous).__name__}"
        )
    return np.asarray(values)


def run_incremental(
    graph: Union[CSRGraph, DeltaOverlayGraph],
    algorithm: str,
    previous,
    delta: MutationDelta,
    *,
    source: Optional[int] = None,
    config=None,
    device: DeviceSpec = TESLA_C2070,
    cost_params=None,
    max_iterations: Optional[int] = None,
    watchdog=None,
    checkpoint_keeper=None,
    fault_hook=None,
    memory=None,
    observe=None,
    policy=None,
    assume_symmetric: bool = False,
) -> IncrementalResult:
    """Recompute *algorithm* after *delta*, warm-starting from *previous*.

    *graph* is the post-mutation graph — a
    :class:`~repro.graph.dynamic.DeltaOverlayGraph` (materialized here)
    or an already-compacted :class:`~repro.graph.csr.CSRGraph`.
    *previous* is the previous run's values (array, or any result object
    with ``.values``) on the pre-mutation graph; *delta* is what
    :meth:`~repro.graph.dynamic.DeltaOverlayGraph.apply` returned.

    The run goes through the ordinary adaptive machinery —
    :class:`~repro.core.policies.AdaptivePolicy` (or a learned policy
    artifact via *policy*, as in :func:`~repro.core.runtime.adaptive_run`)
    over :func:`~repro.engine.driver.run_frame` — so every reliability
    and observability seam applies.  The returned values are
    bit-identical to a from-scratch run on the same graph.
    """
    if algorithm not in INCREMENTAL_ALGORITHMS:
        raise KernelError(
            f"incremental recompute supports {INCREMENTAL_ALGORITHMS}, "
            f"got {algorithm!r}"
        )
    work_graph = (
        graph.materialize() if isinstance(graph, DeltaOverlayGraph) else graph
    )
    if not isinstance(work_graph, CSRGraph):
        raise KernelError(
            f"graph must be a CSRGraph or DeltaOverlayGraph, got "
            f"{type(graph).__name__}"
        )
    prev = _previous_values(previous)
    n = work_graph.num_nodes
    if prev.size > n:
        raise KernelError(
            f"previous values cover {prev.size} nodes but the mutated "
            f"graph has only {n}"
        )

    if algorithm == "cc":
        seed_values, frontier, affected, host_edges = _cc_seed(
            prev.astype(np.int64, copy=False), delta, n
        )
        run_source = -1
        spec = IncrementalCcSpec(
            seed_values,
            frontier,
            assume_symmetric=assume_symmetric,
            seed_host_seconds=host_edges * SEED_SECONDS_PER_EDGE,
        )
    else:
        if source is None:
            raise KernelError(f"incremental {algorithm} requires a source node")
        work_graph._check_node(source)
        if algorithm == "sssp" and work_graph.weights is None:
            raise KernelError(
                f"SSSP requires edge weights; graph {work_graph.name!r} has none"
            )
        unset = UNSET_LEVEL if algorithm == "bfs" else INF
        dtype = np.int64 if algorithm == "bfs" else np.float64
        prev = prev.astype(dtype, copy=False)
        if source >= prev.size or prev[source] != 0:
            raise KernelError(
                f"previous values are not a {algorithm} run from source "
                f"{source} (previous[source] must be 0)"
            )
        seed_values, frontier, affected, host_edges = _distance_seed(
            work_graph,
            prev,
            delta,
            unset=unset,
            source=source,
            unit_weight=algorithm == "bfs",
        )
        run_source = source
        spec_cls = IncrementalBfsSpec if algorithm == "bfs" else IncrementalSsspSpec
        spec = spec_cls(
            seed_values,
            frontier,
            seed_host_seconds=host_edges * SEED_SECONDS_PER_EDGE,
        )

    # The adaptive policy layer lives above the engine; import lazily to
    # keep repro.engine importable on its own (same pattern as sharding).
    from repro.core.policies import AdaptivePolicy

    if policy is not None:
        from repro.core.learned import LearnedPolicy, resolve_policy

        artifact = resolve_policy(policy)
        driver = LearnedPolicy(
            work_graph, artifact, config, device=device, memory=memory
        )
    else:
        driver = AdaptivePolicy(work_graph, config, device=device, memory=memory)

    with observing(observe):
        observer = current_observer()
        if observer is not None:
            observer.metrics.counter("dynamic.incremental_runs").inc()
            observer.metrics.histogram("dynamic.affected_nodes").observe(affected)
            observer.metrics.histogram("dynamic.seed_frontier").observe(
                int(frontier.size)
            )
            with observer.span(
                f"incremental_{algorithm}",
                affected=affected,
                seed_frontier=int(frontier.size),
            ):
                traversal = run_frame(
                    work_graph,
                    run_source,
                    driver,
                    spec,
                    device=device,
                    cost_params=cost_params,
                    max_iterations=max_iterations,
                    queue_gen=driver.config.queue_gen,
                    watchdog=watchdog,
                    checkpoint_keeper=checkpoint_keeper,
                    fault_hook=fault_hook,
                    memory=memory,
                )
        else:
            traversal = run_frame(
                work_graph,
                run_source,
                driver,
                spec,
                device=device,
                cost_params=cost_params,
                max_iterations=max_iterations,
                queue_gen=driver.config.queue_gen,
                watchdog=watchdog,
                checkpoint_keeper=checkpoint_keeper,
                fault_hook=fault_hook,
                memory=memory,
            )

    return IncrementalResult(
        traversal=traversal,
        trace=driver.trace,
        thresholds=driver.thresholds,
        delta=delta,
        affected_nodes=affected,
        seed_frontier_size=int(frontier.size),
        memory=memory.report() if memory is not None else None,
        policy=driver.policy_info() if hasattr(driver, "policy_info") else None,
    )
