"""The ``AlgorithmSpec`` protocol: what an algorithm tells the engine.

The paper's Figure 8 host loop is algorithm-agnostic: create state,
loop while the working set is non-empty, run the computation kernel,
run the working-set generation kernel, read the new size back.  An
:class:`AlgorithmSpec` supplies exactly the algorithm-specific pieces —
initial state, the computation step, convergence bookkeeping, the
checkpoint payload and a CPU reference — while the single driver
(:func:`repro.engine.driver.run_frame`) owns everything cross-cutting:
variant policy dispatch, per-iteration readback, watchdog, checkpoints,
resume, fault hooks, memory charging and observer metrics/spans.

A new algorithm is one subclass (typically < 50 lines; see
``docs/engine.md``) plus a registry entry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, TYPE_CHECKING

import numpy as np

from repro.errors import KernelError
from repro.graph.csr import CSRGraph
from repro.gpusim.device import DeviceSpec

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.driver import FrameContext
    from repro.engine.types import VariantPolicy
    from repro.kernels.variants import Variant
    from repro.reliability.checkpoint import TraversalCheckpoint

__all__ = ["AlgorithmSpec", "FrameState", "StepOutcome"]


class FrameState:
    """Mutable per-run state the engine threads through the loop.

    ``values`` is the algorithm's answer array (what fault injection
    corrupts and checkpoints snapshot); ``frontier`` is the current
    working set's node ids.  Specs attach whatever else they need as
    extra attributes (PageRank's residuals, k-core's degrees, ...).
    """

    def __init__(self, values: np.ndarray, frontier: np.ndarray, **extra):
        self.values = values
        self.frontier = frontier
        for key, val in extra.items():
            setattr(self, key, val)


@dataclass
class StepOutcome:
    """What one computation step tells the driver.

    The step prices its own computation kernels through the context
    (some algorithms run more than one — ordered SSSP's findmin — or
    label them specially — DOBFS's push/pull); the driver prices the
    policy-overhead and workset-generation kernels afterwards.
    """

    #: the next working set's node ids (None when the spec tracks the
    #: working set internally, e.g. the ordered SSSP pair multiset)
    next_frontier: Optional[np.ndarray]
    #: size of the next working set (drives the policy's next choice
    #: and the generation kernel)
    updated_count: int
    processed: int
    edges_scanned: int
    improved_relaxations: int
    #: record/kernel label override (DOBFS's "push"/"pull"); defaults
    #: to the variant code
    label: Optional[str] = None
    #: element count the generation kernel emits when it differs from
    #: ``updated_count`` (ordered SSSP caps it at ``num_nodes``)
    gen_count: Optional[int] = None


class AlgorithmSpec:
    """Base class for algorithm specifications.

    Class attributes are the registry's capability flags; methods are
    the hooks :func:`~repro.engine.driver.run_frame` calls.  Defaults
    implement the common unordered BFS-like shape, so simple algorithms
    override only :meth:`init_state`, :meth:`compute` and a cap.
    """

    #: registry key; also tags checkpoints and (by default) results
    name: str = "algorithm"
    #: takes a source node (False: whole-graph algorithms use source -1)
    source_based: bool = True
    #: requires edge weights
    weighted: bool = False
    #: has an ordered (priority-driven) frame variant
    ordered_support: bool = False
    #: supports checkpoint/resume and fault hooks
    checkpointable: bool = True
    #: can run under the adaptive policy (unordered working-set shape)
    adaptive_eligible: bool = True
    #: static {mapping} x {workset} variant codes apply
    supports_variants: bool = True
    #: default static variant code
    default_variant: str = "U_T_BM"
    #: bytes per materialized working-set entry (ordered queues hold
    #: (node, key) pairs: 8 B)
    workset_entry_bytes: int = 4
    #: the policy is consulted at the top of each iteration with the
    #: current size (ordered frames) instead of after the computation
    #: kernel with the next size (the paper's unordered decision point)
    chooses_at_top: bool = False
    #: supports the batched multi-source frame
    #: (:func:`repro.engine.batch.run_batch_frame`): the spec's step
    #: decomposes into :meth:`batch_relax` (per-query functional update)
    #: plus one fused multi-source computation launch
    batchable: bool = False
    #: the CPU reference reproduces GPU values bit-identically (floats
    #: accumulated in a different order are only close, e.g. PageRank)
    cpu_exact: bool = True
    #: the CSR arrays are already resident on the device (incremental
    #: recompute after a delta compaction): the initial h2d transfer
    #: ships only the traversal state, never the graph
    graph_resident: bool = False
    #: loop-invariant per-iteration H2D payload (bytes) the host ships
    #: before every computation launch (e.g. a chunk-schedule
    #: descriptor).  The driver prices it each iteration; a fused
    #: :class:`~repro.engine.fusion.LaunchPlan` hoists it out of the
    #: loop and ships it once.  0 = no such payload.
    iteration_h2d_bytes: int = 0

    # -- setup ---------------------------------------------------------

    def validate(self, graph: CSRGraph, source: int) -> None:
        """Reject impossible runs before any simulated cost accrues."""
        if self.source_based:
            graph._check_node(source)

    def prepare(self, graph: CSRGraph):
        """Return ``(work_graph, host_prep_seconds)`` — e.g. CC and
        k-core symmetrize directed inputs on the host first."""
        return graph, 0.0

    def extra_transfers(self, ctx: "FrameContext") -> None:
        """Extra h2d payload riding the initial transfer (DOBFS's
        reverse CSR)."""

    def init_state(self, ctx: "FrameContext") -> FrameState:
        raise NotImplementedError  # pragma: no cover

    def default_cap(self, graph: CSRGraph) -> int:
        raise NotImplementedError  # pragma: no cover

    def cap_message(self, cap: int) -> str:
        return (
            f"{self.name} exceeded its iteration budget of {cap} iterations "
            "(non-convergence)"
        )

    def first_choose_size(self, state: FrameState) -> Optional[int]:
        """Working-set size for the pre-loop variant choice; None means
        gate on the frontier size (BFS-style: no choice when empty)."""
        return None

    # -- per-iteration -------------------------------------------------

    def work_remaining(self, state: FrameState) -> int:
        return int(state.frontier.size)

    def refill(self, ctx: "FrameContext", state: FrameState):
        """Re-seed an empty working set (k-core's next-k filter kernel).
        Return the new frontier array, or None when the run converged.
        The default single-phase behaviour is to stop."""
        return None

    def tpb(self, variant: "Variant", graph: CSRGraph, device: DeviceSpec) -> int:
        return variant.threads_per_block(graph.avg_out_degree, device)

    def compute(
        self, ctx: "FrameContext", state: FrameState, variant: "Variant", tpb: int
    ) -> Optional[StepOutcome]:
        """One computation step: mutate state, price kernels through
        *ctx*, describe the outcome.  Return None to terminate the loop
        immediately (DOBFS's drained pull sweep)."""
        raise NotImplementedError  # pragma: no cover

    # -- batched multi-source execution --------------------------------

    def batch_relax(self, graph: CSRGraph, state: FrameState):
        """One query-row relaxation of the batched multi-source frame.

        Mutates ``state.values`` in place exactly as the single-source
        computation kernel would (so batched values stay bit-identical)
        and returns ``(updated_ids, degrees, improved_count,
        edges_scanned)``.  Only meaningful when :attr:`batchable`.
        """
        raise KernelError(
            f"{self.name} does not support batched multi-source execution"
        )

    def batch_kernel_profile(self):
        """``(edge_cost, weight_streams)`` of the fused multi-source
        computation launch (see :func:`repro.kernels.multisource`)."""
        raise KernelError(
            f"{self.name} does not support batched multi-source execution"
        )

    # -- results & reliability -----------------------------------------

    def result_algorithm(self, policy: "VariantPolicy") -> str:
        return self.name

    def final_values(self, state: FrameState) -> np.ndarray:
        return state.values

    def checkpoint_extra(self, state: FrameState) -> Optional[dict]:
        """Algorithm-private arrays/scalars a checkpoint must carry on
        top of (values, frontier) — PageRank's residuals, k-core's
        degrees.  None when (values, frontier) suffice."""
        return None

    def resume_state(
        self,
        values: np.ndarray,
        frontier: np.ndarray,
        checkpoint: "TraversalCheckpoint",
    ) -> FrameState:
        """Rebuild run state from a restored checkpoint's private
        copies (the inverse of :meth:`checkpoint_extra`)."""
        return FrameState(values, frontier)

    def _checkpoint_scalar(self, checkpoint, key: str):
        extra = checkpoint.extra or {}
        if key not in extra:
            raise KernelError(
                f"checkpoint for {self.name!r} is missing payload field {key!r}"
            )
        value = extra[key]
        return value.copy() if isinstance(value, np.ndarray) else value
