"""Shared datatypes of the iteration engine.

These used to live in :mod:`repro.kernels.frame`; they moved here so
the generic driver (:mod:`repro.engine.driver`) and the per-algorithm
specs can both import them without a cycle.  ``repro.kernels.frame``
re-exports every name, so existing imports keep working.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.gpusim.device import DeviceSpec
from repro.gpusim.kernel import KernelTally
from repro.gpusim.timeline import Timeline
from repro.kernels.variants import Ordering, Variant

__all__ = [
    "HOST_INIT_PER_NODE_S",
    "IterationRecord",
    "TraversalResult",
    "VariantPolicy",
    "StaticPolicy",
]

#: host-side bookkeeping per traversal node (allocation + init), seconds
HOST_INIT_PER_NODE_S = 1.0e-9


@dataclass(frozen=True)
class IterationRecord:
    """Structure and cost of one ``while``-loop iteration."""

    iteration: int
    variant: str
    workset_size: int
    processed: int
    updated: int
    edges_scanned: int
    improved_relaxations: int
    seconds: float


@dataclass
class TraversalResult:
    """Everything a traversal produced: answers, structure, simulated time."""

    algorithm: str
    source: int
    #: BFS levels (int64, -1 unreached), SSSP distances (float64, inf),
    #: CC labels, PageRank ranks, core numbers — the algorithm's answer
    values: np.ndarray
    iterations: List[IterationRecord]
    timeline: Timeline
    device: DeviceSpec
    policy_name: str
    #: :class:`~repro.engine.fusion.FusionStats` when the run executed
    #: under a fused launch plan (``None`` for ordinary runs)
    fusion: Optional[object] = None

    @property
    def num_iterations(self) -> int:
        return len(self.iterations)

    @property
    def gpu_seconds(self) -> float:
        return self.timeline.gpu_seconds

    @property
    def total_seconds(self) -> float:
        return self.timeline.total_seconds

    @property
    def reached(self) -> int:
        if self.values.dtype.kind == "f":
            return int(np.isfinite(self.values).sum())
        return int((self.values >= 0).sum())

    @property
    def total_edges_scanned(self) -> int:
        return sum(r.edges_scanned for r in self.iterations)

    def workset_curve(self) -> np.ndarray:
        """Working-set size per iteration (Figure 2's series)."""
        return np.array([r.workset_size for r in self.iterations], dtype=np.int64)

    def variants_used(self) -> Dict[str, int]:
        """Iteration counts per variant code (adaptive-runtime telemetry)."""
        out: Dict[str, int] = {}
        for r in self.iterations:
            out[r.variant] = out.get(r.variant, 0) + 1
        return out

    def nodes_per_second(self) -> float:
        """Processing speed in traversed nodes per simulated second
        (Figure 12's metric)."""
        if self.total_seconds <= 0:
            return 0.0
        return self.reached / self.total_seconds


class VariantPolicy:
    """Chooses the implementation variant for each traversal iteration.

    The frame calls :meth:`choose` for iteration ``i + 1`` right after
    iteration ``i``'s computation kernel, when the next working-set size
    is known but before the generation kernel materializes it — the
    paper's decision point, which is what makes representation switches
    free (the generation kernel simply emits the other representation
    from the shared update vector).
    """

    name = "policy"

    def choose(self, iteration: int, workset_size: int) -> Variant:  # pragma: no cover
        raise NotImplementedError

    def is_ordered(self) -> bool:
        """Whether this policy selects ordered variants (decides which
        SSSP frame runs).  Adaptive policies are unordered-only
        (Section VI.A), so the default is False."""
        return False

    def notify(self, record: IterationRecord) -> None:
        """Called after each iteration (for monitoring policies)."""

    def overhead_tallies(
        self, iteration: int, workset_size: int, num_nodes: int, device: DeviceSpec
    ) -> List["KernelTally"]:
        """Extra monitoring kernels this policy ran this iteration (the
        graph inspector's working-set profiling); priced into the
        traversal's timeline by the frame."""
        return []


class StaticPolicy(VariantPolicy):
    """Always the same variant — the paper's static implementations."""

    def __init__(self, variant: Variant):
        self.variant = variant
        self.name = variant.code

    def choose(self, iteration: int, workset_size: int) -> Variant:
        return self.variant

    def is_ordered(self) -> bool:
        return self.variant.ordering is Ordering.ORDERED
