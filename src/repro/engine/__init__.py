"""repro.engine — the algorithm-agnostic iteration engine.

One driver (:func:`run_frame`, the paper's Figure 8 host loop) runs
every algorithm expressed as an :class:`AlgorithmSpec`; the
:class:`AlgorithmRegistry <repro.engine.registry>` maps names to specs
and capability flags so the adaptive runtime, the guarded runner, the
manifest builder and the CLI stay algorithm-generic.
"""

from repro.engine.batch import (
    BatchFrame,
    BatchFrameResult,
    BatchQueryResult,
    QueryPlan,
    run_batch_frame,
)
from repro.engine.driver import FrameContext, run_frame
from repro.engine.registry import (
    AlgorithmInfo,
    get_algorithm,
    register_algorithm,
    registered_algorithms,
)
from repro.engine.spec import AlgorithmSpec, FrameState, StepOutcome
from repro.engine.types import (
    HOST_INIT_PER_NODE_S,
    IterationRecord,
    StaticPolicy,
    TraversalResult,
    VariantPolicy,
)

__all__ = [
    "AlgorithmInfo",
    "BatchFrame",
    "BatchFrameResult",
    "BatchQueryResult",
    "QueryPlan",
    "run_batch_frame",
    "AlgorithmSpec",
    "FrameContext",
    "FrameState",
    "HOST_INIT_PER_NODE_S",
    "IterationRecord",
    "StaticPolicy",
    "StepOutcome",
    "TraversalResult",
    "VariantPolicy",
    "get_algorithm",
    "register_algorithm",
    "registered_algorithms",
    "run_frame",
    "RECOVERY_RUNGS",
    "RecoveryEvent",
    "ShardedResult",
    "run_sharded",
    "IncrementalResult",
    "run_incremental",
]

#: sharding names resolved lazily (PEP 562): repro.engine is imported
#: mid-way through repro.core's own import, and repro.engine.shard needs
#: repro.core.policies — an eager import here would be circular.
_LAZY_SHARD = {"RECOVERY_RUNGS", "RecoveryEvent", "ShardedResult", "run_sharded"}

#: incremental-recompute names, lazy for the same reason (the warm-start
#: runner drives the frame through repro.core's adaptive policies).
_LAZY_INCREMENTAL = {"IncrementalResult", "run_incremental"}


def __getattr__(name):
    if name in _LAZY_SHARD:
        from repro.engine import shard

        return getattr(shard, name)
    if name in _LAZY_INCREMENTAL:
        from repro.engine import incremental

        return getattr(incremental, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
