"""repro — adaptive GPU graph-algorithm runtime on a simulated SIMT GPU.

A reproduction of Li & Becchi, *Deploying Graph Algorithms on GPUs: an
Adaptive Solution* (IPDPS Workshops 2013): eight static GPU
implementations of BFS and SSSP spanning {ordered, unordered} x
{thread, block mapping} x {bitmap, queue working set}, plus an adaptive
runtime that switches between the unordered four at every traversal
iteration based on working-set size and average outdegree.

Since no CUDA hardware is assumed, kernels execute functionally in NumPy
while a SIMT simulator (:mod:`repro.gpusim`) prices warp divergence,
memory coalescing, atomic serialization, SM occupancy, kernel-launch and
PCIe overheads on a Fermi-class device model (Tesla C2070 by default).

Quickstart::

    from repro import Graph
    from repro.graph.datasets import make_dataset

    csr = make_dataset("amazon", scale=0.05, weighted=True, seed=0)
    g = Graph(csr)
    result = g.sssp(source=0)          # adaptive runtime
    static = g.sssp(source=0, mode="U_T_BM")   # one static variant
    print(result.total_seconds, static.total_seconds)
"""

from repro._version import __version__
from repro.core import (
    AdaptiveResult,
    Graph,
    RuntimeConfig,
    adaptive_bfs,
    adaptive_cc,
    adaptive_kcore,
    adaptive_pagerank,
    adaptive_run,
    adaptive_sssp,
    run_static,
)
from repro.engine import (
    AlgorithmInfo,
    AlgorithmSpec,
    get_algorithm,
    register_algorithm,
    registered_algorithms,
)
from repro.graph.csr import CSRGraph
from repro.gpusim.device import DeviceSpec, GTX_580, TESLA_C2070
from repro.kernels import (
    TraversalResult,
    Variant,
    all_variants,
    extended_variants,
    run_bfs,
    run_cc,
    run_kcore,
    run_pagerank,
    run_sssp,
    unordered_variants,
)
from repro.obs import Observer, RunManifest, build_manifest
from repro.reliability import (
    FaultPlan,
    GuardConfig,
    ResilientResult,
    resilient_bfs,
    resilient_run,
    resilient_sssp,
)

__all__ = [
    "__version__",
    "Graph",
    "CSRGraph",
    "RuntimeConfig",
    "AdaptiveResult",
    "TraversalResult",
    "AlgorithmInfo",
    "AlgorithmSpec",
    "adaptive_run",
    "adaptive_bfs",
    "adaptive_sssp",
    "adaptive_cc",
    "adaptive_pagerank",
    "adaptive_kcore",
    "get_algorithm",
    "register_algorithm",
    "registered_algorithms",
    "run_static",
    "run_bfs",
    "run_sssp",
    "run_cc",
    "run_pagerank",
    "run_kcore",
    "Variant",
    "all_variants",
    "unordered_variants",
    "extended_variants",
    "DeviceSpec",
    "TESLA_C2070",
    "GTX_580",
    "Observer",
    "RunManifest",
    "build_manifest",
    "FaultPlan",
    "GuardConfig",
    "ResilientResult",
    "resilient_run",
    "resilient_bfs",
    "resilient_sssp",
]
