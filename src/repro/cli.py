"""Command-line interface: run the paper's experiments from a shell.

::

    python -m repro datasets                 # the six Table-1 analogues
    python -m repro devices                  # simulated device presets
    python -m repro algorithms               # registered algorithms + flags
    python -m repro run --algorithm pagerank --dataset wikipedia --scale 0.02
    python -m repro characterize amazon --scale 0.05
    python -m repro bfs  --dataset google --scale 0.05 --mode adaptive
    python -m repro sssp --dataset amazon --scale 0.05 --mode U_T_BM
    python -m repro compare --dataset citeseer --algorithm sssp
    python -m repro sweep-t3 --dataset google --scale 0.25
    python -m repro reliability --dataset google --scale 0.05 \
        --fault-plan '{"seed": 7, "launch_failure_rate": 0.1}'
    python -m repro profile examples/roadnet.snap.txt \
        --out manifest.json --trace trace.json
    python -m repro batch --file examples/roadnet.snap.txt \
        --queries examples/batch_queries.jsonl --manifest batch.json
    python -m repro serve --dataset co_road < queries.jsonl

``--file`` loads a real DIMACS / SNAP / MatrixMarket graph instead of a
synthetic analogue.

Exit codes: 0 success, 1 verification mismatch, 2 a :class:`ReproError`
(printed as one line on stderr), 130 keyboard interrupt.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional

import numpy as np

from repro._version import __version__
from repro.core import RuntimeConfig, adaptive_bfs, adaptive_sssp, run_static
from repro.errors import ReproError
from repro.core.tuning import sweep_t3, tune_t3
from repro.cpu import cpu_bfs, cpu_dijkstra
from repro.graph.datasets import DATASETS, dataset_keys, make_dataset
from repro.graph.generators import attach_uniform_weights
from repro.graph.io import IngestLimits, IngestReport, load_graph
from repro.graph.properties import (
    characterize,
    largest_out_component_node,
    out_degree_histogram,
)
from repro.gpusim.allocator import MemoryBudget
from repro.gpusim.device import device_registry
from repro.kernels import run_bfs, run_sssp, unordered_variants
from repro.kernels.variants import extended_variants
from repro.utils.tables import Table, format_seconds, format_si

__all__ = ["main", "build_parser"]


# ----------------------------------------------------------------------
# Argument plumbing
# ----------------------------------------------------------------------

def _add_reliability_args(parser: argparse.ArgumentParser):
    parser.add_argument("--fault-plan", default=None, metavar="JSON",
                        help="fault-injection plan: inline JSON or a file path "
                        "(keys: seed, launch_failure_rate, memory_fault_rate, "
                        "latency_spike_rate, latency_spike_factor, "
                        "device_loss_rate, device, kinds, max_faults)")
    parser.add_argument("--max-retries", type=int, default=None,
                        help="consecutive no-progress failures before degrading "
                        "to the CPU baseline (default: exhaust the ladder)")
    parser.add_argument("--deadline", type=float, default=None, metavar="SECONDS",
                        help="wall-clock deadline for the whole guarded query")
    parser.add_argument("--checkpoint-every", type=int, default=None, metavar="N",
                        help="checkpoint every N iterations (default: cost-aware "
                        "policy bounded by a 2%% overhead budget)")


def _add_workload_args(parser: argparse.ArgumentParser, *, weighted_default=False):
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--dataset", choices=dataset_keys(), help="synthetic analogue")
    group.add_argument("--file", help="DIMACS .gr / SNAP edge list / .mtx file")
    parser.add_argument("--scale", type=float, default=0.05,
                        help="dataset scale (fraction of paper size)")
    parser.add_argument("--seed", type=int, default=1, help="generator seed")
    parser.add_argument("--source", type=int, default=None,
                        help="source node (default: a well-connected node)")
    parser.add_argument("--device", choices=sorted(device_registry()),
                        default="c2070", help="simulated GPU")
    parser.add_argument("--mem-budget", default=None, metavar="SIZE",
                        help="device-memory budget (e.g. '256M', '1G'); every "
                        "CSR array, working set and checkpoint copy is charged "
                        "against it, and an overflow raises a DeviceOOMError "
                        "(recovered by --mode resilient)")
    io_group = parser.add_mutually_exclusive_group()
    io_group.add_argument("--strict-io", action="store_true",
                          help="strict ingestion for --file: self-loops, "
                          "duplicate edges and count mismatches are errors")
    io_group.add_argument("--lenient-io", action="store_true",
                          help="lenient ingestion for --file: quarantine and "
                          "repair self-loops / duplicates / dangling ids")
    parser.add_argument("--max-edges", type=int, default=None, metavar="N",
                        help="abort --file ingestion after N edges "
                        "(IngestLimitError, exit code 2)")


def _io_mode(args) -> Optional[str]:
    if getattr(args, "strict_io", False):
        return "strict"
    if getattr(args, "lenient_io", False):
        return "lenient"
    return None


def _resolve_workload(args, *, weighted: bool, resolve_source: bool = True):
    if args.dataset:
        graph = make_dataset(
            args.dataset, scale=args.scale, weighted=weighted, seed=args.seed
        )
    else:
        report = IngestReport()
        limits = (
            IngestLimits(max_edges=args.max_edges)
            if getattr(args, "max_edges", None) is not None
            else None
        )
        graph = load_graph(
            args.file, mode=_io_mode(args), limits=limits, report=report
        )
        if report.repairs or report.notes:
            summary = (
                f"[ingest] {report.path}: repaired {report.repairs} edges "
                f"(self-loops {report.self_loops_dropped}, duplicates "
                f"{report.duplicates_collapsed}, dangling {report.dangling_dropped})"
            )
            print(summary)
            for note in report.notes:
                print(f"[ingest] note: {note}")
        if weighted and not graph.has_weights:
            graph = attach_uniform_weights(graph, seed=args.seed)
    device = device_registry()[args.device]
    if not resolve_source:
        # Batch-style commands: every query carries its own source, so
        # skip the (BFS-powered) well-connected-source search entirely.
        return graph, None, device
    if args.source is not None:
        # Fail a bad --source here with one clear GraphError (exit 2)
        # instead of a raw IndexError deep in the kernels.
        graph._check_node(args.source)
        source = args.source
    else:
        source = largest_out_component_node(graph, seed=0)
    return graph, source, device


def _spec_params(args, info) -> dict:
    """Algorithm parameters (``--damping``, ``--tolerance``, ...) that
    this parser actually carries, keyed by the registry's param names."""
    return {
        name: getattr(args, name)
        for name in info.param_names
        if getattr(args, name, None) is not None
    }


def _values_match(values, oracle) -> bool:
    """Exact for integer-valued results, tolerance-based for floats."""
    values = np.asarray(values)
    if np.issubdtype(values.dtype, np.floating):
        return bool(np.allclose(values, oracle))
    return bool(np.array_equal(values, oracle))


def _make_memory(args, device):
    """Build the device-memory budget requested by ``--mem-budget``."""
    spec = getattr(args, "mem_budget", None)
    if spec is None:
        return None
    return MemoryBudget(spec, device=device)


def _fmt_bytes(nbytes: int) -> str:
    if nbytes >= 2**30:
        return f"{nbytes / 2**30:.2f} GiB"
    if nbytes >= 2**20:
        return f"{nbytes / 2**20:.2f} MiB"
    if nbytes >= 2**10:
        return f"{nbytes / 2**10:.1f} KiB"
    return f"{nbytes} B"


def _add_memory_rows(table, report) -> None:
    """Append a MemoryReport's headline numbers to a result table."""
    if report is None:
        return
    table.add_row(["memory budget", _fmt_bytes(report.capacity_bytes)])
    table.add_row(
        ["memory peak",
         f"{_fmt_bytes(report.peak_bytes)} ({report.peak_pressure:.0%})"]
    )
    if report.spill_events:
        table.add_row(
            ["memory spilled",
             f"{_fmt_bytes(report.spilled_bytes)} in {report.spill_events} events"]
        )
    if report.oom_events:
        table.add_row(["OOM events", report.oom_events])


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------

def cmd_datasets(args) -> int:
    table = Table(
        ["key", "domain", "paper nodes", "paper edges", "avg deg", "description"],
        title="dataset analogues (paper Table 1)",
    )
    for key in dataset_keys():
        spec = DATASETS[key]
        table.add_row(
            [
                key,
                spec.domain,
                format_si(spec.paper_nodes),
                format_si(spec.paper_edges),
                spec.paper_avg_outdegree,
                spec.description,
            ]
        )
    print(table.render())
    return 0


def cmd_devices(args) -> int:
    table = Table(
        ["key", "name", "SMs", "cores", "clock GHz", "mem GB/s"],
        title="simulated device presets",
    )
    for key, dev in device_registry().items():
        table.add_row(
            [key, dev.name, dev.num_sms, dev.total_cores, dev.clock_ghz,
             dev.mem_bandwidth_gbs]
        )
    print(table.render())
    return 0


def cmd_algorithms(args) -> int:
    """List every registered algorithm with its capability flags."""
    from repro.engine import registered_algorithms

    def yn(flag: bool) -> str:
        return "yes" if flag else "no"

    table = Table(
        ["name", "source", "weighted", "ordered", "checkpoint", "adaptive",
         "variants", "summary"],
        title="registered algorithms",
    )
    for info in registered_algorithms():
        flags = info.capability_flags()
        table.add_row(
            [
                info.name,
                yn(flags["source_based"]),
                yn(flags["weighted"]),
                yn(flags["ordered_support"]),
                yn(flags["checkpointable"]),
                yn(flags["adaptive_eligible"]),
                info.default_variant if flags["supports_variants"] else "-",
                info.summary,
            ]
        )
    print(table.render())
    return 0


def _run_sharded_cmd(args, info) -> int:
    """`repro run --devices N`: the sharded multi-device driver."""
    from repro.engine.shard import run_sharded
    from repro.gpusim.interconnect import interconnect_registry
    from repro.obs import Observer, build_shard_manifest, observing

    graph, source, device = _resolve_workload(args, weighted=info.weighted)
    params = _spec_params(args, info)
    plan = None
    if getattr(args, "fault_plan", None):
        from repro.reliability import load_fault_plan

        plan = load_fault_plan(args.fault_plan)
    kwargs = {}
    if getattr(args, "checkpoint_every", None) is not None:
        kwargs["checkpoint_every"] = args.checkpoint_every
    if getattr(args, "max_retries", None) is not None:
        kwargs["max_retries"] = args.max_retries
    if args.mem_budget is not None:
        from repro.gpusim.allocator import parse_mem_size

        kwargs["mem_budget"] = parse_mem_size(args.mem_budget)

    observer = Observer()
    with observing(observer):
        result = run_sharded(
            graph,
            source,
            algorithm=args.algorithm,
            num_devices=args.devices,
            partition=args.partition,
            device=device,
            interconnect=interconnect_registry()[args.interconnect],
            fault_plan=plan,
            **kwargs,
            **params,
        )

    oracle, cpu = info.cpu_run(graph, source, **params)
    ok = _values_match(result.values, oracle)

    table = Table(
        ["metric", "value"],
        title=f"{args.algorithm} on {graph.name} "
        f"(sharded x{args.devices}, {args.partition})",
    )
    table.add_row(["source", source])
    table.add_row(["super-iterations", result.super_iterations])
    table.add_row(["simulated time", format_seconds(result.sim_seconds)])
    table.add_row(["serial CPU baseline", format_seconds(cpu.seconds)])
    table.add_row(["exchange volume", format_si(result.exchange_bytes) + "B"])
    table.add_row(["exchange transfers", result.exchange_transfers])
    table.add_row(["stragglers flagged", result.stragglers])
    table.add_row(["recovery rung", result.recovery_rung])
    if result.device_losses:
        table.add_row(["device losses", result.device_losses])
        table.add_row(["shards migrated", result.migrations])
        table.add_row(["super-iterations replayed",
                       result.replayed_super_iterations])
    table.add_row(["values sha256", result.values_sha256[:16] + "…"])
    table.add_row(["verified vs CPU reference", "yes" if ok else "MISMATCH"])
    print(table.render())
    for event in result.recovery_events:
        print(
            f"[recovery: super-iteration {event.super_iteration} "
            f"shard {event.shard_index} device {event.device_index} "
            f"{event.fault_kind} -> {event.rung}]",
            file=sys.stderr,
        )
    if getattr(args, "manifest", None):
        manifest = build_shard_manifest(
            result, graph=graph, device=device, observer=observer
        )
        manifest.write(args.manifest)
        print(f"[manifest written to {args.manifest}]")
    return 0 if ok else 1


def cmd_run(args) -> int:
    """Registry-driven runner: any registered algorithm through one door."""
    from repro.core import adaptive_run
    from repro.engine import get_algorithm

    info = get_algorithm(args.algorithm)
    if getattr(args, "devices", None) is not None:
        if getattr(args, "fuse", False):
            print(
                "repro run: --fuse applies to single-device runs (the "
                "sharded driver fuses its own exchange phases)",
                file=sys.stderr,
            )
            return 2
        return _run_sharded_cmd(args, info)
    mode = args.mode or ("adaptive" if info.adaptive_eligible else "default")
    policy_spec = getattr(args, "policy", None)
    if policy_spec is not None and mode != "adaptive":
        print(
            "repro run: --policy needs the adaptive runtime "
            f"(got --mode {mode})",
            file=sys.stderr,
        )
        return 2
    fuse = bool(getattr(args, "fuse", False))
    if mode == "resilient":
        if fuse:
            print(
                "repro run: --fuse is a plain-run lowering; the resilient "
                "ladder re-plans per rung (drop --fuse or --mode resilient)",
                file=sys.stderr,
            )
            return 2
        return _run_resilient(args, args.algorithm)
    graph, source, device = _resolve_workload(args, weighted=info.weighted)
    if not info.source_based:
        source = -1
    memory = _make_memory(args, device)
    params = _spec_params(args, info)
    observer = None
    if getattr(args, "manifest", None):
        from repro.obs import Observer

        observer = Observer()
        params["observe"] = observer
    mem_report = None
    extra = ""
    if mode == "adaptive":
        result = adaptive_run(
            graph, args.algorithm, source, device=device, memory=memory,
            policy=policy_spec, fuse=fuse, **params,
        )
        traversal = result.traversal
        mem_report = result.memory
        extra = (
            f"decisions: {result.trace.variants_chosen()}  "
            f"switches: {result.num_switches}"
        )
        if result.policy is not None:
            mode = "learned"
            extra += f"\npolicy digest: {result.policy['digest'][:16]}…"
    elif mode == "default":
        if info.run_default is None:
            print(
                f"repro run: '{args.algorithm}' has no default driver; "
                "use --mode adaptive or a variant code",
                file=sys.stderr,
            )
            return 2
        if fuse:
            params["fusion"] = True
        traversal = info.run_default(
            graph, source, device=device, memory=memory, **params
        )
        mem_report = memory.report() if memory is not None else None
    else:
        traversal = run_static(
            graph, source, args.algorithm, mode, device=device,
            memory=memory, fuse=fuse, **params,
        )
        mem_report = memory.report() if memory is not None else None

    params.pop("observe", None)
    params.pop("fusion", None)
    oracle, cpu = info.cpu_run(graph, source, **params)
    ok = _values_match(traversal.values, oracle)

    table = Table(
        ["metric", "value"],
        title=f"{args.algorithm} on {graph.name} ({mode})",
    )
    if info.source_based:
        table.add_row(["source", source])
        table.add_row(
            ["reached nodes", f"{traversal.reached} / {graph.num_nodes}"]
        )
    table.add_row(["iterations", traversal.num_iterations])
    table.add_row(["simulated GPU time", format_seconds(traversal.total_seconds)])
    table.add_row(["serial CPU baseline", format_seconds(cpu.seconds)])
    table.add_row(["speedup", f"{cpu.seconds / traversal.total_seconds:.2f}x"])
    _add_memory_rows(table, mem_report)
    stats = getattr(traversal, "fusion", None)
    if stats is not None:
        plan = stats.plan
        if plan.fusible:
            table.add_row(
                ["fused launches",
                 f"{stats.fused_iterations} of "
                 f"{stats.fused_iterations + stats.refused_iterations} "
                 "iterations"]
            )
            table.add_row(
                ["launch overhead saved",
                 format_seconds(stats.overhead_saved_s)]
            )
            if stats.hoisted_h2d_bytes:
                table.add_row(
                    ["hoisted H2D payload", f"{stats.hoisted_h2d_bytes} B"]
                )
        else:
            table.add_row(
                ["fusion refused", "; ".join(plan.refusals) or "n/a"]
            )
    table.add_row(["verified vs CPU reference", "yes" if ok else "MISMATCH"])
    print(table.render())
    if extra:
        print(extra)
    if getattr(args, "manifest", None):
        from repro.obs import build_manifest

        result_obj = result if mode in ("adaptive", "learned") else traversal
        manifest = build_manifest(
            result_obj,
            graph=graph,
            algorithm=args.algorithm,
            mode=mode + ("+fused" if fuse else ""),
            source=source,
            device=device,
            observer=observer,
        )
        manifest.write(args.manifest)
        print(f"[manifest written to {args.manifest}]")
    return 0 if ok else 1


def cmd_characterize(args) -> int:
    graph, _, _ = _resolve_workload(args, weighted=False)
    c = characterize(graph, estimate_diameter=args.diameter, seed=0)
    table = Table(["attribute", "value"], title=f"characterization: {graph.name}")
    table.add_row(["nodes", c.num_nodes])
    table.add_row(["edges", c.num_edges])
    table.add_row(["min outdegree", c.min_out_degree])
    table.add_row(["max outdegree", c.max_out_degree])
    table.add_row(["avg outdegree", round(c.avg_out_degree, 2)])
    table.add_row(["outdegree std", round(c.out_degree_std, 2)])
    if c.pseudo_diameter is not None:
        table.add_row(["pseudo-diameter", c.pseudo_diameter])
    print(table.render())

    hist = out_degree_histogram(graph, n_bins=12)
    dist = Table(["outdegree", "nodes", "%"], title="outdegree distribution")
    for label, count, frac in zip(hist.bin_labels(), hist.counts, hist.fractions):
        dist.add_row([label, count, f"{100 * frac:.1f}%"])
    print()
    print(dist.render())
    return 0


def _run_traversal(args, algorithm: str) -> int:
    weighted = algorithm == "sssp"
    if args.mode == "resilient":
        return _run_resilient(args, algorithm)
    graph, source, device = _resolve_workload(args, weighted=weighted)
    memory = _make_memory(args, device)
    config = RuntimeConfig(
        t3_fraction=args.t3,
        sampling_interval=args.sampling_interval,
        use_warp_mapping=args.warp_mapping,
    )
    mem_report = None
    if args.mode == "adaptive":
        runner = adaptive_sssp if weighted else adaptive_bfs
        result = runner(graph, source, config=config, device=device, memory=memory)
        traversal = result.traversal
        mem_report = result.memory
        extra = (
            f"decisions: {result.trace.variants_chosen()}  "
            f"switches: {result.num_switches}"
        )
        if result.trace.num_memory_forced:
            extra += f"  memory-forced: {result.trace.num_memory_forced}"
    else:
        traversal = run_static(
            graph, source, algorithm, args.mode, device=device, memory=memory
        )
        mem_report = memory.report() if memory is not None else None
        extra = ""

    if args.trace:
        from repro.gpusim.traceexport import export_chrome_trace

        export_chrome_trace(traversal.timeline, args.trace)
        print(f"[chrome trace written to {args.trace}]")

    values = traversal.values
    reached = traversal.reached
    cpu = (
        cpu_dijkstra(graph, source) if weighted else cpu_bfs(graph, source)
    )
    oracle = cpu.distances if weighted else cpu.levels
    ok = (
        np.allclose(values, oracle)
        if weighted
        else np.array_equal(values, oracle)
    )

    table = Table(["metric", "value"], title=f"{algorithm.upper()} on {graph.name}")
    table.add_row(["source", source])
    table.add_row(["reached nodes", f"{reached} / {graph.num_nodes}"])
    table.add_row(["iterations", traversal.num_iterations])
    table.add_row(["simulated GPU time", format_seconds(traversal.total_seconds)])
    table.add_row(["serial CPU baseline", format_seconds(cpu.seconds)])
    table.add_row(["speedup", f"{cpu.seconds / traversal.total_seconds:.2f}x"])
    _add_memory_rows(table, mem_report)
    table.add_row(["verified vs CPU oracle", "yes" if ok else "MISMATCH"])
    print(table.render())
    if extra:
        print(extra)
    return 0 if ok else 1


def cmd_bfs(args) -> int:
    return _run_traversal(args, "bfs")


def cmd_sssp(args) -> int:
    return _run_traversal(args, "sssp")


def _run_resilient(args, algorithm: str) -> int:
    """Guarded execution: the reliability layer's CLI entry."""
    from repro.engine import get_algorithm
    from repro.reliability import GuardConfig, load_fault_plan, resilient_run

    info = get_algorithm(algorithm)
    graph, source, device = _resolve_workload(args, weighted=info.weighted)
    if not info.source_based:
        source = -1
    params = _spec_params(args, info)
    plan = load_fault_plan(args.fault_plan) if args.fault_plan else None
    guard = GuardConfig(
        max_retries=args.max_retries,
        deadline_s=args.deadline,
        checkpoint_every=args.checkpoint_every,
        mem_budget=getattr(args, "mem_budget", None),
    )
    result = resilient_run(
        graph, algorithm, source, device=device, guard=guard, plan=plan,
        **params,
    )

    oracle, _ = info.cpu_run(graph, source, **params)
    ok = _values_match(result.values, oracle)

    table = Table(
        ["metric", "value"],
        title=f"guarded {algorithm.upper()} on {graph.name}",
    )
    table.add_row(["served by", result.stage])
    table.add_row(["attempts", result.attempts])
    table.add_row(["faults seen", result.num_faults])
    for action, count in sorted(result.recovery_actions().items()):
        table.add_row([f"  recovery: {action}", count])
    table.add_row(["checkpoints saved", result.checkpoints_saved])
    table.add_row(["checkpoint restores", result.restores])
    table.add_row(["degraded to CPU", "yes" if result.degraded else "no"])
    if result.oom_rung:
        table.add_row(["OOM ladder rung", result.oom_rung])
    _add_memory_rows(table, result.memory)
    table.add_row(["simulated time (final attempt)", format_seconds(result.final_seconds)])
    table.add_row(["replayed simulated time", format_seconds(result.replayed_seconds)])
    table.add_row(["backoff wall-clock", format_seconds(result.backoff_seconds)])
    table.add_row(["verified vs CPU oracle", "yes" if ok else "MISMATCH"])
    print(table.render())
    return 0 if ok else 1


def cmd_reliability(args) -> int:
    return _run_resilient(args, args.algorithm)


def cmd_cc(args) -> int:
    from repro.core import adaptive_cc
    from repro.cpu import cpu_connected_components
    from repro.kernels import run_cc

    graph, _, device = _resolve_workload(args, weighted=False)
    if args.mode == "adaptive":
        result = adaptive_cc(graph, device=device)
        traversal = result.traversal
        extra = f"decisions: {result.trace.variants_chosen()}"
    else:
        traversal = run_cc(graph, args.mode, device=device)
        extra = ""
    cpu = cpu_connected_components(graph)
    ok = np.array_equal(traversal.values, cpu.labels)

    table = Table(["metric", "value"], title=f"connected components on {graph.name}")
    table.add_row(["components", cpu.num_components])
    table.add_row(["iterations", traversal.num_iterations])
    table.add_row(["simulated GPU time", format_seconds(traversal.total_seconds)])
    table.add_row(["serial CPU union-find", format_seconds(cpu.seconds)])
    table.add_row(["speedup", f"{cpu.seconds / traversal.total_seconds:.2f}x"])
    table.add_row(["verified vs union-find", "yes" if ok else "MISMATCH"])
    print(table.render())
    if extra:
        print(extra)
    return 0 if ok else 1


def cmd_kcore(args) -> int:
    from repro.core import adaptive_kcore
    from repro.cpu import cpu_kcore
    from repro.kernels import run_kcore

    graph, _, device = _resolve_workload(args, weighted=False)
    if args.mode == "adaptive":
        result = adaptive_kcore(graph, device=device)
        traversal = result.traversal
        extra = f"decisions: {result.trace.variants_chosen()}"
    else:
        traversal = run_kcore(graph, args.mode, device=device)
        extra = ""
    cpu = cpu_kcore(graph)
    ok = bool(np.array_equal(traversal.values, cpu.coreness))

    table = Table(["metric", "value"], title=f"k-core decomposition on {graph.name}")
    table.add_row(["max core", cpu.max_core])
    table.add_row(["peel iterations", traversal.num_iterations])
    table.add_row(["simulated GPU time", format_seconds(traversal.total_seconds)])
    table.add_row(["serial CPU peeling", format_seconds(cpu.seconds)])
    table.add_row(["verified vs CPU", "yes" if ok else "MISMATCH"])
    print(table.render())
    if extra:
        print(extra)
    return 0 if ok else 1


def cmd_pagerank(args) -> int:
    from repro.core import adaptive_pagerank
    from repro.cpu import cpu_pagerank
    from repro.kernels import run_pagerank

    graph, _, device = _resolve_workload(args, weighted=False)
    if args.mode == "adaptive":
        result = adaptive_pagerank(
            graph, tolerance=args.tolerance, device=device
        )
        traversal = result.traversal
        extra = f"decisions: {result.trace.variants_chosen()}"
    else:
        traversal = run_pagerank(
            graph, args.mode, tolerance=args.tolerance, device=device
        )
        extra = ""
    cpu = cpu_pagerank(graph, tolerance=args.tolerance, method="fast")
    ok = bool(np.abs(traversal.values - cpu.ranks).max() < 1e-9)
    top = np.argsort(traversal.values)[::-1][:5]

    table = Table(["metric", "value"], title=f"PageRank on {graph.name}")
    table.add_row(["iterations", traversal.num_iterations])
    table.add_row(["simulated GPU time", format_seconds(traversal.total_seconds)])
    table.add_row(["serial CPU push", format_seconds(cpu.seconds)])
    table.add_row(["speedup", f"{cpu.seconds / traversal.total_seconds:.2f}x"])
    table.add_row(["verified vs CPU push", "yes" if ok else "MISMATCH"])
    table.add_row(["top nodes", " ".join(str(int(i)) for i in top)])
    print(table.render())
    if extra:
        print(extra)
    return 0 if ok else 1


def cmd_hybrid(args) -> int:
    from repro.core.hybrid import hybrid_bfs, hybrid_sssp

    weighted = args.algorithm == "sssp"
    graph, source, device = _resolve_workload(args, weighted=weighted)
    runner = hybrid_sssp if weighted else hybrid_bfs
    result = runner(graph, source, device=device)
    cpu = cpu_dijkstra(graph, source) if weighted else cpu_bfs(graph, source)
    oracle = cpu.distances if weighted else cpu.levels
    ok = (
        np.allclose(result.values, oracle)
        if weighted
        else np.array_equal(result.values, oracle)
    )

    table = Table(
        ["metric", "value"], title=f"hybrid {args.algorithm.upper()} on {graph.name}"
    )
    table.add_row(["iterations", len(result.devices)])
    table.add_row(["CPU iterations", result.cpu_iterations])
    table.add_row(["GPU iterations", result.gpu_iterations])
    table.add_row(["device transitions", result.transitions])
    table.add_row(["simulated time", format_seconds(result.total_seconds)])
    table.add_row(["pure serial CPU", format_seconds(cpu.seconds)])
    table.add_row(["verified vs CPU oracle", "yes" if ok else "MISMATCH"])
    print(table.render())
    return 0 if ok else 1


def cmd_compare(args) -> int:
    weighted = args.algorithm == "sssp"
    graph, source, device = _resolve_workload(args, weighted=weighted)
    cpu = cpu_dijkstra(graph, source) if weighted else cpu_bfs(graph, source)
    runner = run_sssp if weighted else run_bfs
    variants = extended_variants() if args.extended else unordered_variants()

    table = Table(
        ["implementation", "time", "speedup", "iterations"],
        title=f"{args.algorithm.upper()} variant comparison on {graph.name}",
    )
    for variant in variants:
        result = runner(graph, source, variant, device=device)
        table.add_row(
            [
                variant.code,
                format_seconds(result.total_seconds),
                f"{cpu.seconds / result.total_seconds:.2f}x",
                result.num_iterations,
            ]
        )
    adaptive_runner = adaptive_sssp if weighted else adaptive_bfs
    config = RuntimeConfig(use_warp_mapping=args.extended)
    ad = adaptive_runner(graph, source, config=config, device=device)
    table.add_row(
        [
            "adaptive" + ("+W" if args.extended else ""),
            format_seconds(ad.total_seconds),
            f"{cpu.seconds / ad.total_seconds:.2f}x",
            ad.num_iterations,
        ]
    )
    print(table.render())
    return 0


def cmd_oracle(args) -> int:
    from repro.core import adaptive_bfs as _abfs, adaptive_sssp as _asssp
    from repro.core.oracle import decision_quality, per_iteration_oracle

    weighted = args.algorithm == "sssp"
    graph, source, device = _resolve_workload(args, weighted=weighted)
    report = per_iteration_oracle(graph, source, args.algorithm, device=device)
    runner = _asssp if weighted else _abfs
    ad = runner(graph, source, device=device)
    quality = decision_quality(ad, report)
    best_code, best_secs = report.best_static()

    table = Table(
        ["metric", "value"],
        title=f"decision quality on {graph.name} ({args.algorithm.upper()})",
    )
    table.add_row(["oracle time", format_seconds(report.oracle_seconds)])
    table.add_row(["best static", f"{best_code} ({format_seconds(best_secs)})"])
    table.add_row(["adaptive (re-priced)", format_seconds(quality.realized_seconds)])
    table.add_row(["agreement with oracle", f"{quality.agreement:.0%}"])
    table.add_row(["regret vs oracle", f"{quality.regret:.1%}"])
    print(table.render())
    return 0


def cmd_profile(args) -> int:
    """One traversal under full observability: metrics, spans, manifest."""
    from repro.obs import Observer, build_manifest, export_combined_trace

    if (args.graph_file is None) == (args.dataset is None):
        print(
            "repro profile: give a graph file or --dataset (exactly one)",
            file=sys.stderr,
        )
        return 2
    args.file = args.graph_file
    from repro.engine import get_algorithm

    info = get_algorithm(args.algorithm)
    graph, source, device = _resolve_workload(args, weighted=info.weighted)
    if not info.source_based:
        source = -1
    observer = Observer()
    mode = args.mode
    if mode == "adaptive" and not info.adaptive_eligible:
        mode = "default"
    if getattr(args, "policy", None) is not None and mode != "adaptive":
        print(
            "repro profile: --policy needs the adaptive runtime "
            f"(got mode {mode})",
            file=sys.stderr,
        )
        return 2
    config = None
    trace_obj = None

    if mode == "resilient":
        from repro.reliability import GuardConfig, load_fault_plan, resilient_run

        plan = load_fault_plan(args.fault_plan) if args.fault_plan else None
        guard = GuardConfig(mem_budget=getattr(args, "mem_budget", None))
        result = resilient_run(
            graph, args.algorithm, source, device=device, guard=guard,
            plan=plan, observe=observer,
        )
        values = result.values
        mem_report = result.memory
        trace_obj = result.trace
        inner = getattr(result.result, "traversal", result.result)
        traversal = inner if getattr(inner, "timeline", None) is not None else None
    elif mode == "adaptive":
        from repro.core import adaptive_run

        config = RuntimeConfig()
        memory = _make_memory(args, device)
        result = adaptive_run(
            graph, args.algorithm, source, config=config, device=device,
            memory=memory, observe=observer,
            policy=getattr(args, "policy", None),
        )
        values = result.values
        mem_report = result.memory
        trace_obj = result.trace
        traversal = result.traversal
        if result.policy is not None:
            mode = "learned"
    elif mode == "default":
        if info.run_default is None:
            print(
                f"repro profile: '{args.algorithm}' has no default driver; "
                "use --mode adaptive or a variant code",
                file=sys.stderr,
            )
            return 2
        memory = _make_memory(args, device)
        result = info.run_default(
            graph, source, device=device, memory=memory, observe=observer
        )
        values = result.values
        mem_report = memory.report() if memory is not None else None
        traversal = result
    else:
        memory = _make_memory(args, device)
        result = run_static(
            graph, source, args.algorithm, mode, device=device,
            memory=memory, observe=observer,
        )
        values = result.values
        mem_report = memory.report() if memory is not None else None
        traversal = result

    manifest = build_manifest(
        result,
        graph=graph,
        algorithm=args.algorithm,
        mode=mode,
        source=source,
        device=device,
        config=config,
        observer=observer,
    )
    manifest.write(args.out)

    if args.trace:
        if traversal is not None:
            export_combined_trace(
                traversal.timeline, args.trace, trace=trace_obj,
                observer=observer,
            )
        else:
            print("[no simulated timeline to trace: CPU-degraded run]")

    oracle, _ = info.cpu_run(graph, source)
    ok = _values_match(values, oracle)

    # Every number below is read back from the manifest, so the printed
    # table and the JSON document cannot disagree.
    summary = manifest.result
    metrics = manifest.metrics

    def metric_value(name: str, key: str = "value"):
        return metrics.get(name, {}).get(key, 0)

    table = Table(
        ["metric", "value"],
        title=f"profile: {args.algorithm.upper()} on {graph.name} ({mode})",
    )
    table.add_row(["graph digest", manifest.graph["digest"][:16]])
    table.add_row(["source", manifest.source])
    if "reached" in summary:
        table.add_row(["reached nodes", f"{summary['reached']} / {graph.num_nodes}"])
    if "iterations" in summary:
        table.add_row(["iterations", summary["iterations"]])
    if "total_seconds" in summary:
        table.add_row(["simulated time", format_seconds(summary["total_seconds"])])
    table.add_row(["kernel launches", metric_value("gpusim.kernel_launches")])
    table.add_row(["simulated cycles", metric_value("gpusim.simulated_cycles")])
    table.add_row(["edges scanned", metric_value("frame.edges_scanned")])
    table.add_row(["decisions recorded", len(manifest.decisions)])
    table.add_row(["fault events", len(manifest.faults)])
    table.add_row(["profiler spans", len(manifest.spans)])
    if manifest.reliability is not None:
        table.add_row(["served by", manifest.reliability["stage"]])
        table.add_row(["attempts", manifest.reliability["attempts"]])
    _add_memory_rows(table, mem_report)
    table.add_row(["verified vs CPU oracle", "yes" if ok else "MISMATCH"])
    print(table.render())
    print(f"[manifest written to {args.out}]")
    if args.trace and traversal is not None:
        print(f"[combined trace written to {args.trace} "
              "(open in ui.perfetto.dev or chrome://tracing)]")
    return 0 if ok else 1


def cmd_fit_policy(args) -> int:
    """Fit a learned decision-tree policy from profile manifests."""
    from repro.core import fit_policy, load_manifest_corpus

    corpus = load_manifest_corpus(args.manifests)
    artifact = fit_policy(
        corpus,
        max_depth=args.max_depth,
        min_samples_leaf=args.min_samples_leaf,
    )
    artifact.save(args.out)

    training = artifact.training
    table = Table(["metric", "value"], title="fit-policy")
    table.add_row(["manifests", len(training["manifests"])])
    table.add_row(["training samples", training["samples"]])
    table.add_row(["algorithms", ", ".join(training["algorithms"])])
    table.add_row(["variant classes", ", ".join(artifact.classes)])
    table.add_row(["tree depth", artifact.depth])
    table.add_row(["leaves", artifact.num_leaves])
    table.add_row(["digest", artifact.digest[:16]])
    print(table.render())
    for entry in training["manifests"]:
        print(
            f"  {entry['manifest']}: {entry['graph']} "
            f"{entry['algorithm']}/{entry['mode']} "
            f"({entry['decisions']} decisions)"
        )
    print(f"[policy written to {args.out}]")
    return 0


def cmd_sweep_t3(args) -> int:
    graph, source, device = _resolve_workload(args, weighted=True)
    fractions = [f / 100 for f in range(1, 14)]
    points = sweep_t3(graph, source, "sssp", fractions=fractions, device=device)
    table = Table(["T3 (% of nodes)", "time", "switches"],
                  title=f"T3 sweep on {graph.name}")
    for p in points:
        table.add_row(
            [f"{p.t3_fraction:.0%}", format_seconds(p.seconds), p.num_switches]
        )
    print(table.render())
    print(f"best T3: {tune_t3(points):.0%}")
    return 0


def _batch_weighted(queries) -> bool:
    """Whether any query's algorithm needs edge weights (unknown
    algorithm names are isolated later, not here)."""
    from repro.engine import get_algorithm

    for query in queries:
        try:
            if get_algorithm(query.algorithm).weighted:
                return True
        except ReproError:
            continue
    return False


def _print_batch(batch, cache, title: str) -> None:
    table = Table(
        ["#", "algorithm", "source", "mode", "path", "iters", "result"],
        title=title,
    )
    for q in batch.queries:
        result = (
            f"sha256:{q.values_sha256[:12]}" if q.ok else f"error: {q.error}"
        )
        table.add_row(
            [q.index, q.query.algorithm, q.query.source, q.query.mode,
             "batched" if q.batched else "fallback", q.iterations, result]
        )
    print(table.render())

    summary = Table(["metric", "value"], title="batch amortization")
    summary.add_row(["queries ok", f"{batch.ok_count} / {len(batch.queries)}"])
    summary.add_row(["simulated time", format_seconds(batch.total_seconds)])
    summary.add_row(["  fused batch", format_seconds(batch.batch_seconds)])
    summary.add_row(["  fallback runs", format_seconds(batch.fallback_seconds)])
    summary.add_row(["super-iterations", batch.super_iterations])
    summary.add_row(["fused launches", batch.fused_launches])
    summary.add_row(["launches saved", batch.launches_saved])
    summary.add_row(["readbacks saved", batch.readbacks_saved])
    summary.add_row(
        ["session cache", f"{cache.hits} hits / {cache.misses} misses"]
    )
    print(summary.render())


def cmd_batch(args) -> int:
    """Answer a JSONL file of queries in one batched multi-source run."""
    from repro.obs import Observer, observing
    from repro.serve import BatchRunner, SessionCache, load_queries_jsonl

    queries = load_queries_jsonl(args.queries)
    graph, _, device = _resolve_workload(
        args, weighted=_batch_weighted(queries), resolve_source=False
    )
    observer = Observer()
    cache = SessionCache(capacity=args.cache_size)
    with observing(observer):
        session = cache.get(graph, device=device, config=RuntimeConfig())
        runner = BatchRunner(session, max_iterations=args.max_iterations)
        batch = runner.run(queries)

    if args.manifest:
        manifest = runner.to_manifest(batch, observer=observer)
        manifest.write(args.manifest)

    _print_batch(
        batch, cache,
        f"batch: {len(batch.queries)} queries on {graph.name} "
        f"(digest {batch.graph_digest[:12]})",
    )
    if args.manifest:
        print(f"[manifest written to {args.manifest}]")
    return 0 if batch.ok_count == len(batch.queries) else 1


def cmd_serve(args) -> int:
    """Serve queries from stdin: JSONL requests in, JSON answers out.

    Reads query objects line by line into the resilient
    :class:`~repro.serve.loop.ServeLoop` — a bounded admission queue
    (overload sheds with explicit error responses), per-query deadlines
    armed at admission, continuous batching into a fused multi-source
    frame with per-row fault isolation, and a circuit breaker across
    the batch/fallback paths.  One JSON result object is written per
    query.  Malformed lines become error objects; a library failure
    while serving becomes an error object; neither crashes the server.
    Ctrl-C drains what was already admitted, prints the summary and
    exits 130; a closed output pipe exits quietly.
    """
    import json as _json

    from repro.obs import Observer, observing
    from repro.serve import ServeLoop, SessionCache

    graph, _, device = _resolve_workload(
        args, weighted=True, resolve_source=False
    )
    injector = None
    if getattr(args, "fault_plan", None):
        from repro.reliability import FaultInjector, load_fault_plan

        plan = load_fault_plan(args.fault_plan)
        if not plan.is_empty:
            injector = FaultInjector(plan)

    observer = Observer()
    cache = SessionCache(capacity=args.cache_size)
    served = 0
    interrupted = False
    mutations_on = bool(getattr(args, "mutations", False))
    mutation_events_emitted = 0

    def emit(doc: dict) -> None:
        print(_json.dumps(doc, sort_keys=True), flush=True)

    def emit_responses(loop) -> None:
        nonlocal served, mutation_events_emitted
        for doc in loop.take_responses():
            emit(doc)
            served += 1
        events = loop.report.mutation_events
        while mutation_events_emitted < len(events):
            emit({"mutation": True, **events[mutation_events_emitted]})
            mutation_events_emitted += 1

    with observing(observer):
        session = cache.get(graph, device=device, config=RuntimeConfig())
        loop = ServeLoop(
            session,
            queue_capacity=args.queue_capacity,
            max_batch_rows=args.batch_size,
            default_deadline_s=args.deadline_s,
            scheduler=args.scheduler,
            max_iterations=getattr(args, "max_iterations", None),
            fault_injector=injector,
            cache=cache,
            mutation_mode=_io_mode(args),
        )
        try:
            try:
                for lineno, line in enumerate(sys.stdin, start=1):
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        doc = _json.loads(line)
                        if not isinstance(doc, dict):
                            raise ValueError(
                                "query line must be a JSON object"
                            )
                        if mutations_on and "op" in doc:
                            # A mutation line: validated now (bad ops
                            # answer with a line-numbered error), applied
                            # at the next super-iteration barrier.
                            from repro.graph.dynamic import EdgeBatch

                            loop.submit_mutation(
                                EdgeBatch.from_docs(
                                    [(lineno, doc)], path="<stdin>"
                                )
                            )
                        else:
                            loop.submit(doc, line=lineno)
                    except (ValueError, ReproError) as exc:
                        emit({"line": lineno, "ok": False,
                              "error": str(exc)})
                        continue
                    if len(loop.queue) >= args.batch_size:
                        try:
                            loop.pump()
                        except ReproError as exc:
                            # Isolated per-query failures are already
                            # responses; this is a serving-layer fault —
                            # report it and keep reading.
                            emit({"line": None, "ok": False,
                                  "error": f"serve: {exc}"})
                    emit_responses(loop)
                loop.drain()
            except KeyboardInterrupt:
                # Graceful shutdown: answer what was already admitted.
                interrupted = True
                try:
                    loop.drain()
                except (KeyboardInterrupt, ReproError):
                    pass
            emit_responses(loop)
        except BrokenPipeError:
            # Reader went away: nobody is listening — leave quietly.
            try:
                sys.stdout.close()
            except BrokenPipeError:
                pass
            sys.stdout = open(os.devnull, "w")
            interrupted = interrupted or False
        report = loop.finalize()
    if args.manifest:
        loop.to_manifest(observer=observer).write(args.manifest)
    try:
        if interrupted:
            print(
                "[interrupted: pending queries flushed, shutting down]",
                file=sys.stderr,
            )
        print(
            f"[served {served} queries; cache {cache.hits} hits / "
            f"{cache.misses} misses]",
            file=sys.stderr,
        )
        if mutations_on:
            print(
                f"[mutations: {report.mutations_applied} applied / "
                f"{report.mutations_rejected} rejected; graph epoch "
                f"{report.graph_epoch}; cache patches {cache.patches}]",
                file=sys.stderr,
            )
        wall = report.result_dict()["latency_wall_s"]
        print(
            f"[slo: p50 {wall['p50'] * 1e3:.1f} ms / "
            f"p99 {wall['p99'] * 1e3:.1f} ms wall; "
            f"shed {report.shed}; deadline misses {report.deadline_misses}; "
            f"rows ejected {report.rows_ejected}; "
            f"fallbacks {report.fallbacks}; "
            f"breaker trips {loop.breaker.total_trips}]",
            file=sys.stderr,
        )
        for move in report.breaker_transitions:
            print(
                f"[breaker: {move['key']} {move['from']} -> {move['to']} "
                f"({move['cause']})]",
                file=sys.stderr,
            )
        if args.manifest:
            print(f"[manifest written to {args.manifest}]", file=sys.stderr)
    except BrokenPipeError:  # pragma: no cover - stderr gone too
        pass
    return 130 if interrupted else 0


def _chaos_sharded(args) -> int:
    """`repro chaos --devices N`: device-loss soak over the sharded
    driver; exit 0 iff no crash, exactly-once, SHA parity with the
    1-device run, and every fault attributed to one fault domain."""
    from repro.graph.generators import power_law_graph
    from repro.obs import Observer, build_serve_manifest, observing
    from repro.serve.chaos import default_shard_chaos_plan, run_shard_chaos

    if args.fault_plan:
        from repro.reliability import load_fault_plan

        plan = load_fault_plan(args.fault_plan)
    else:
        plan = default_shard_chaos_plan(args.seed)

    graph = attach_uniform_weights(
        power_law_graph(args.nodes, seed=args.seed, name=f"shardchaos{args.nodes}"),
        seed=args.seed,
    )
    observer = Observer()
    with observing(observer):
        report = run_shard_chaos(
            num_queries=args.queries if args.queries is not None else 12,
            num_devices=args.devices,
            seed=args.seed,
            partition=args.partition,
            fault_plan=plan,
            graph=graph,
        )

    table = Table(["metric", "value"], title=f"shard chaos soak x{args.devices}")
    table.add_row(["queries", report.num_queries])
    table.add_row(["devices", report.num_devices])
    table.add_row(["partition", report.partition])
    table.add_row(["faults injected", report.faults_injected])
    table.add_row(["device losses", report.device_losses])
    table.add_row(["shards migrated", report.migrations])
    table.add_row(["rollbacks", report.restores])
    table.add_row(["cpu degradations", report.degraded_queries])
    table.add_row(["sha mismatches", report.sha_mismatches])
    table.add_row(["unattributed faults", report.unattributed_faults])
    table.add_row(["verdict", "PASS" if report.passed else "FAIL"])
    print(table.render())
    for violation in report.violations:
        print(f"violation: {violation}", file=sys.stderr)
    if args.manifest:
        manifest = build_serve_manifest(
            report.result_dict(), graph=graph, observer=observer
        )
        manifest.write(args.manifest)
        print(f"[manifest written to {args.manifest}]")
    return 0 if report.passed else 1


def cmd_chaos(args) -> int:
    """Seeded chaos soak over the serve loop; exit 0 iff every
    invariant held (no crash, exactly-once, SHA parity)."""
    from repro.obs import Observer, observing
    from repro.obs.manifest import build_serve_manifest
    from repro.serve.chaos import default_chaos_plan, run_chaos

    if getattr(args, "devices", 0) > 1:
        return _chaos_sharded(args)
    if args.fault_plan:
        from repro.reliability import load_fault_plan

        plan = load_fault_plan(args.fault_plan)
    else:
        plan = default_chaos_plan(args.seed)

    observer = Observer()
    with observing(observer):
        report = run_chaos(
            num_queries=args.queries if args.queries is not None else 200,
            num_nodes=args.nodes,
            seed=args.seed,
            fault_plan=plan,
            queue_capacity=args.queue_capacity,
            max_batch_rows=args.batch_size,
            deadline_s=args.deadline_s,
            scheduler=args.scheduler,
            mutation_batches=getattr(args, "mutations", 0),
        )

    doc = report.result_dict()
    table = Table(["metric", "value"], title="chaos soak")
    table.add_row(["queries", report.num_queries])
    table.add_row(["faults injected", report.faults_injected])
    table.add_row(["answered", doc["answered"]])
    table.add_row(["ok", doc["ok"]])
    table.add_row(["errors", doc["errors"]])
    table.add_row(["shed", doc["shed"]])
    table.add_row(["deadline misses", doc["deadline_misses"]])
    table.add_row(["rows ejected", doc["rows_ejected"]])
    table.add_row(["fallbacks", doc["fallbacks"]])
    table.add_row(["super-iterations", doc["super_iterations"]])
    table.add_row(["duplicates", report.duplicate_responses])
    table.add_row(["missing", report.missing_responses])
    table.add_row(["sha mismatches", report.sha_mismatches])
    if report.mutation_batches:
        table.add_row(["mutation batches", report.mutation_batches])
        table.add_row(["graph epoch", doc["graph_epoch"]])
        table.add_row(["digest mismatches", report.mutation_digest_mismatches])
        table.add_row(["cache patches", report.cache_patches])
        table.add_row(["cache evictions", report.cache_evictions])
    table.add_row(["verdict", "PASS" if report.passed else "FAIL"])
    print(table.render())
    for violation in report.violations:
        print(f"violation: {violation}", file=sys.stderr)
    if args.manifest:
        manifest = build_serve_manifest(
            doc,
            graph=report.session.graph,
            device=report.session.device,
            config=report.session.config,
            observer=observer,
        )
        manifest.write(args.manifest)
        print(f"[manifest written to {args.manifest}]")
    return 0 if report.passed else 1


def cmd_mutate(args) -> int:
    """Apply a mutation JSONL stream to a graph through the delta
    overlay, compact, and (optionally) recompute incrementally.

    A malformed or invalid batch fails with one line-numbered
    :class:`~repro.errors.GraphError` (exit 2) before any simulated
    cost accrues — never a retry ladder.  With ``--algorithm`` the
    command also runs the traversal twice — from scratch on the base
    graph, then incrementally after the mutation — and verifies the
    warm-started values are SHA-identical to a from-scratch run on the
    compacted graph.
    """
    import hashlib

    from repro.core import adaptive_run
    from repro.engine.incremental import run_incremental
    from repro.graph.dynamic import DeltaOverlayGraph, EdgeBatch
    from repro.obs import Observer, build_dynamic_manifest, observing

    batch = EdgeBatch.from_jsonl(args.mutations)
    weighted = any(
        op.weight is not None for op in batch.ops if op.op == "insert"
    )
    graph, source, device = _resolve_workload(
        args, weighted=weighted, resolve_source=args.algorithm is not None
    )
    memory = _make_memory(args, device)

    observer = Observer()
    with observing(observer):
        overlay = DeltaOverlayGraph(graph)
        delta = overlay.apply(batch, mode=_io_mode(args))
        compaction = overlay.compact(
            device=device, memory=memory, name=graph.name
        )
    mutated = compaction.graph
    report = delta.report

    table = Table(["metric", "value"], title=f"mutate {graph.name}")
    table.add_row(["ops parsed", report.parsed_ops])
    table.add_row(["edges inserted", report.edges_inserted])
    table.add_row(["edges deleted", report.edges_deleted])
    table.add_row(["nodes added", report.nodes_added])
    if report.quarantined:
        table.add_row(
            ["quarantined",
             f"self-loops {report.self_loops_dropped}, duplicates "
             f"{report.duplicates_collapsed}, dangling "
             f"{report.dangling_dropped}, missing deletes "
             f"{report.missing_deletes_dropped}"]
        )
    table.add_row(["graph", f"{graph.num_nodes} nodes / {graph.num_edges} "
                   f"-> {mutated.num_nodes} / {mutated.num_edges} edges"])
    table.add_row(["epoch", overlay.epoch])
    table.add_row(["delta upload", _fmt_bytes(compaction.delta_bytes)])
    table.add_row(["compaction time", f"{compaction.seconds * 1e3:.3f} ms"])
    _add_memory_rows(table, memory.report() if memory is not None else None)

    result_doc = {
        "kind": "mutate",
        "mutation_events": [delta.event_dict()],
        "mutation_report": report.to_dict(),
        "compaction_seconds": float(compaction.seconds),
        "delta_bytes": int(compaction.delta_bytes),
        "graph_epoch": overlay.epoch,
    }

    exit_code = 0
    if args.algorithm is not None:
        def _sha(values):
            return hashlib.sha256(
                np.ascontiguousarray(values).tobytes()
            ).hexdigest()

        with observing(observer):
            previous = adaptive_run(
                graph, args.algorithm,
                source if args.algorithm != "cc" else None,
            )
            incremental = run_incremental(
                mutated, args.algorithm, previous, delta,
                source=None if args.algorithm == "cc" else source,
                device=device,
            )
            scratch = adaptive_run(
                mutated, args.algorithm,
                source if args.algorithm != "cc" else None,
            )
        parity = _sha(incremental.values) == _sha(scratch.values)
        speedup = scratch.total_seconds / max(
            incremental.total_seconds, 1e-12
        )
        table.add_row(["algorithm", args.algorithm])
        table.add_row(["affected nodes", incremental.affected_nodes])
        table.add_row(["seed frontier", incremental.seed_frontier_size])
        table.add_row(
            ["incremental time",
             f"{incremental.total_seconds * 1e3:.3f} ms "
             f"(from-scratch {scratch.total_seconds * 1e3:.3f} ms, "
             f"{speedup:.1f}x)"]
        )
        table.add_row(["sha parity", "PASS" if parity else "FAIL"])
        result_doc["incremental"] = {
            "algorithm": args.algorithm,
            "affected_nodes": incremental.affected_nodes,
            "seed_frontier": incremental.seed_frontier_size,
            "incremental_seconds": float(incremental.total_seconds),
            "scratch_seconds": float(scratch.total_seconds),
            "values_sha256": _sha(incremental.values),
            "parity": parity,
        }
        if not parity:
            exit_code = 1

    print(table.render())
    if args.out:
        from repro.graph.io import (
            write_dimacs, write_matrix_market, write_snap_edgelist,
        )

        out = str(args.out)
        if out.endswith(".gr"):
            write_dimacs(mutated, out)
        elif out.endswith(".mtx"):
            write_matrix_market(mutated, out)
        else:
            write_snap_edgelist(mutated, out)
        print(f"[mutated graph written to {out}]")
    if args.manifest:
        manifest = build_dynamic_manifest(
            result_doc, graph=mutated, device=device,
            config=RuntimeConfig(), observer=observer,
        )
        manifest.write(args.manifest)
        print(f"[manifest written to {args.manifest}]")
    return exit_code


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Adaptive GPU graph-algorithm runtime (Li & Becchi 2013) "
        "on a simulated SIMT GPU",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list the Table-1 dataset analogues").set_defaults(
        func=cmd_datasets
    )
    sub.add_parser("devices", help="list simulated device presets").set_defaults(
        func=cmd_devices
    )
    sub.add_parser(
        "algorithms",
        help="list registered algorithms and their capability flags",
    ).set_defaults(func=cmd_algorithms)

    from repro.engine import registered_algorithms

    algo_names = [info.name for info in registered_algorithms()]

    p = sub.add_parser(
        "run",
        help="run any registered algorithm by name (registry-driven)",
        description="One registry-driven door to every algorithm: the "
        "entry points, capability checks and CPU reference all come "
        "from the algorithm registry (see `repro algorithms`).",
    )
    _add_workload_args(p)
    p.add_argument("--algorithm", choices=algo_names, default="bfs")
    p.add_argument("--mode", default=None,
                   help="'adaptive', 'resilient', 'default' (the algorithm's "
                   "own driver, e.g. DO-BFS) or a variant code like U_B_QU "
                   "(default: adaptive when eligible, else 'default')")
    p.add_argument("--damping", type=float, default=None,
                   help="PageRank damping factor (pagerank only)")
    p.add_argument("--tolerance", type=float, default=None,
                   help="PageRank convergence tolerance (pagerank only)")
    p.add_argument("--devices", type=int, default=None, metavar="N",
                   help="shard the graph across N simulated devices "
                   "(batchable algorithms only; --devices 1 runs the "
                   "sharded driver on a single device, e.g. as the "
                   "bit-identity reference)")
    p.add_argument("--partition", choices=("contiguous", "balanced"),
                   default="contiguous",
                   help="1D vertex partitioning strategy for --devices")
    p.add_argument("--interconnect", choices=("pcie", "nvlink"),
                   default="pcie",
                   help="peer link pricing for frontier exchange "
                   "(--devices)")
    p.add_argument("--manifest", default=None, metavar="FILE",
                   help="write the run's RunManifest JSON here (works for "
                   "single-device and --devices runs)")
    p.add_argument("--fuse", action="store_true",
                   help="lower the run through the spec-fusion pass "
                   "(repro.engine.fusion): merge computation+generation "
                   "launches and hoist loop-invariant H2D payloads where "
                   "the plan permits; values stay bit-identical")
    p.add_argument("--policy", default=None, metavar="SPEC",
                   help="drive adaptive decisions with a fitted policy "
                   "artifact: 'learned:<policy.json>' (see fit-policy)")
    _add_reliability_args(p)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("characterize", help="Table-1-style graph characterization")
    _add_workload_args(p)
    p.add_argument("--diameter", action="store_true", help="estimate pseudo-diameter")
    p.set_defaults(func=cmd_characterize)

    for algo, fn in (("bfs", cmd_bfs), ("sssp", cmd_sssp)):
        p = sub.add_parser(algo, help=f"run {algo.upper()} on the simulated GPU")
        _add_workload_args(p)
        p.add_argument("--mode", default="adaptive",
                       help="'adaptive', 'resilient' (guarded execution) or a "
                       "variant code like U_B_QU")
        p.add_argument("--t3", type=float, default=0.03, help="T3 fraction of |V|")
        p.add_argument("--sampling-interval", type=int, default=1)
        p.add_argument("--warp-mapping", action="store_true",
                       help="enable the virtual-warp extension")
        p.add_argument("--trace", default=None, metavar="FILE",
                       help="write a chrome://tracing JSON of the traversal")
        _add_reliability_args(p)
        p.set_defaults(func=fn)

    p = sub.add_parser("cc", help="connected components (extension algorithm)")
    _add_workload_args(p)
    p.add_argument("--mode", default="adaptive",
                   help="'adaptive' or an unordered variant code like U_B_QU")
    p.set_defaults(func=cmd_cc)

    p = sub.add_parser("kcore", help="k-core decomposition (extension algorithm)")
    _add_workload_args(p)
    p.add_argument("--mode", default="adaptive",
                   help="'adaptive' or an unordered variant code like U_B_QU")
    p.set_defaults(func=cmd_kcore)

    p = sub.add_parser("pagerank", help="push-based PageRank (extension algorithm)")
    _add_workload_args(p)
    p.add_argument("--mode", default="adaptive",
                   help="'adaptive' or an unordered variant code like U_B_QU")
    p.add_argument("--tolerance", type=float, default=1e-6)
    p.set_defaults(func=cmd_pagerank)

    p = sub.add_parser("hybrid", help="hybrid CPU-GPU execution (extension)")
    _add_workload_args(p)
    p.add_argument("--algorithm", choices=("bfs", "sssp"), default="sssp")
    p.set_defaults(func=cmd_hybrid)

    p = sub.add_parser("compare", help="run every variant plus the adaptive runtime")
    _add_workload_args(p)
    p.add_argument("--algorithm", choices=("bfs", "sssp"), default="sssp")
    p.add_argument("--extended", action="store_true",
                   help="include the virtual-warp variants")
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser(
        "profile",
        help="run one traversal under full observability and write a "
        "RunManifest (plus an optional combined Perfetto trace)",
        description="Run one traversal with an Observer installed and "
        "write a RunManifest: a JSON document with the run's config, "
        "graph fingerprint, decisions, metrics snapshot, memory peaks "
        "and fault events.  The printed table is read back from the "
        "manifest, so the two cannot disagree.",
    )
    p.add_argument("graph_file", nargs="?", default=None,
                   help="graph file (DIMACS .gr / SNAP edge list / .mtx); "
                   "alternative to --dataset")
    p.add_argument("--dataset", choices=dataset_keys(),
                   default=None, help="synthetic analogue")
    p.add_argument("--algorithm", choices=algo_names, default="bfs")
    p.add_argument("--mode", default="adaptive",
                   help="'adaptive', 'resilient', 'default' or a variant "
                   "code like U_B_QU")
    p.add_argument("--out", default="manifest.json", metavar="FILE",
                   help="manifest output path (default: manifest.json)")
    p.add_argument("--trace", default=None, metavar="FILE",
                   help="write the combined Perfetto/chrome-trace JSON: "
                   "kernels, transfers, decisions, faults and profiler "
                   "spans on one timeline")
    p.add_argument("--scale", type=float, default=0.05,
                   help="dataset scale (fraction of paper size)")
    p.add_argument("--seed", type=int, default=1, help="generator seed")
    p.add_argument("--source", type=int, default=None,
                   help="source node (default: a well-connected node)")
    p.add_argument("--device", choices=sorted(device_registry()),
                   default="c2070", help="simulated GPU")
    p.add_argument("--mem-budget", default=None, metavar="SIZE",
                   help="device-memory budget (e.g. '256M', '1G')")
    p.add_argument("--fault-plan", default=None, metavar="JSON",
                   help="fault-injection plan for --mode resilient "
                   "(inline JSON or a file path)")
    p.add_argument("--policy", default=None, metavar="SPEC",
                   help="drive adaptive decisions with a fitted policy "
                   "artifact: 'learned:<policy.json>' (see fit-policy); "
                   "the manifest records mode 'learned' plus the digest")
    p.set_defaults(func=cmd_profile, strict_io=False, lenient_io=False,
                   max_edges=None)

    p = sub.add_parser(
        "fit-policy",
        help="fit a learned decision-tree policy from profile manifests",
        description="Extract per-iteration decision features from one or "
        "more RunManifest JSON files (repro profile --out …), label each "
        "decision with the cheapest kernel variant under the cost model, "
        "and fit a small cost-sensitive decision tree.  The resulting "
        "policy.json is a versioned, digest-pinned artifact accepted by "
        "'repro run --policy learned:policy.json'.",
    )
    p.add_argument("manifests", nargs="+", metavar="MANIFEST",
                   help="RunManifest JSON files with decision traces")
    p.add_argument("--out", default="policy.json", metavar="FILE",
                   help="policy artifact output path (default: policy.json)")
    p.add_argument("--max-depth", type=int, default=8,
                   help="decision-tree depth cap (default: 8)")
    p.add_argument("--min-samples-leaf", type=int, default=2,
                   help="minimum training samples per leaf (default: 2)")
    p.set_defaults(func=cmd_fit_policy)

    p = sub.add_parser(
        "batch",
        help="answer a JSONL file of queries in one batched multi-source "
        "run over a shared graph session",
        description="Ingest the graph once (a GraphSession), then answer "
        "every query of a JSONL file: batch-capable queries share one "
        "fused multi-source host loop (amortizing per-iteration "
        "readbacks and kernel launches), the rest fall back to guarded "
        "single-source runs.  Failed queries are isolated, reported per "
        "row, and turn the exit code to 1 without stopping the batch.",
    )
    _add_workload_args(p)
    p.add_argument("--queries", required=True, metavar="FILE",
                   help="JSONL query file: one JSON object per line with "
                   "keys algorithm (default 'bfs'), source (required), "
                   "mode (default 'adaptive')")
    p.add_argument("--manifest", default=None, metavar="FILE",
                   help="write the batch RunManifest JSON here")
    p.add_argument("--cache-size", type=int, default=4,
                   help="session-cache LRU capacity")
    p.add_argument("--max-iterations", type=int, default=None,
                   help="per-query iteration budget")
    p.set_defaults(func=cmd_batch)

    p = sub.add_parser(
        "serve",
        help="serve queries from stdin against a cached graph session "
        "(JSONL requests in, JSON answers out)",
        description="A resilient continuous-batching server: a bounded "
        "admission queue sheds overload with explicit error responses, "
        "deadlines start at admission, new queries join the running "
        "fused frame at the next super-iteration, and per-row faults "
        "eject one query to the guarded fallback while the rest of the "
        "batch keeps running.",
    )
    _add_workload_args(p)
    p.add_argument("--batch-size", type=int, default=32,
                   help="max rows resident in the fused frame at once")
    p.add_argument("--cache-size", type=int, default=4,
                   help="session-cache LRU capacity")
    p.add_argument("--queue-capacity", type=int, default=64,
                   help="admission-queue bound; overload sheds with "
                   "explicit error responses")
    p.add_argument("--deadline-s", type=float, default=None,
                   help="default per-query wall-clock deadline, armed at "
                   "admission (queries may carry their own deadline_s)")
    p.add_argument("--scheduler", choices=("continuous", "drain"),
                   default="continuous",
                   help="continuous batching vs drain-then-refill")
    p.add_argument("--fault-plan", default=None, metavar="JSON|FILE",
                   help="inject seeded faults while serving (chaos)")
    p.add_argument("--max-iterations", type=int, default=None,
                   help="per-query iteration budget")
    p.add_argument("--mutations", action="store_true",
                   help="accept interleaved mutation lines on stdin "
                   "(JSON objects with an 'op' key: insert/delete/grow); "
                   "batches apply at super-iteration barriers and bump "
                   "the graph epoch tagged on every response")
    p.add_argument("--manifest", default=None, metavar="FILE",
                   help="write the serve RunManifest JSON here on exit")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "chaos",
        help="seeded chaos soak over the serve loop (no crash, "
        "exactly-once, SHA parity)",
        description="Run a seeded query stream through the serve loop "
        "under an aggressive fault plan, deadline pressure and a "
        "bounded queue, then check the resilience invariants against a "
        "fault-free reference run.  Exit 0 iff all invariants held.",
    )
    p.add_argument("--queries", type=int, default=None,
                   help="queries in the soak stream (default: 200 for the "
                   "serve soak, 12 for the sharded --devices soak)")
    p.add_argument("--nodes", type=int, default=600,
                   help="size of the generated chaos graph")
    p.add_argument("--seed", type=int, default=0,
                   help="seed for the graph, query stream and fault plan")
    p.add_argument("--fault-plan", default=None, metavar="JSON|FILE",
                   help="override the default chaos fault plan")
    p.add_argument("--queue-capacity", type=int, default=48,
                   help="admission-queue bound during the soak")
    p.add_argument("--batch-size", type=int, default=16,
                   help="max rows resident in the fused frame")
    p.add_argument("--deadline-s", type=float, default=5.0,
                   help="deadline carried by a slice of the queries")
    p.add_argument("--scheduler", choices=("continuous", "drain"),
                   default="continuous")
    p.add_argument("--devices", type=int, default=0, metavar="N",
                   help="run the device-loss soak over the N-device "
                   "sharded driver instead of the serve loop")
    p.add_argument("--partition", choices=("contiguous", "balanced"),
                   default="contiguous",
                   help="partitioning strategy for the sharded soak")
    p.add_argument("--mutations", type=int, default=0, metavar="N",
                   help="interleave N seeded mutation batches with the "
                   "query stream: the soak turns epoch-aware (per-epoch "
                   "SHA parity, post-compaction digest checks, in-place "
                   "session patching)")
    p.add_argument("--manifest", default=None, metavar="FILE",
                   help="write the soak's RunManifest JSON here")
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser(
        "mutate",
        help="apply a mutation JSONL stream through the delta overlay, "
        "compact, and optionally recompute incrementally",
        description="Validate and apply a JSONL stream of graph "
        "mutations (insert/delete/grow) to a delta-CSR overlay, price "
        "the compaction (host rebuild + delta PCIe upload), and print "
        "the mutation report.  A malformed batch fails with one "
        "line-numbered error (exit 2) before any simulated cost "
        "accrues.  With --algorithm the command warm-starts the "
        "traversal from the pre-mutation values and verifies the "
        "incremental result is SHA-identical to a from-scratch run on "
        "the compacted graph (mismatch: exit 1).",
    )
    _add_workload_args(p)
    p.add_argument("--mutations", required=True, metavar="FILE",
                   help="mutation JSONL: one op per line, e.g. "
                   '{"op": "insert", "u": 0, "v": 9, "weight": 2.0} / '
                   '{"op": "delete", "u": 3, "v": 7} / '
                   '{"op": "grow", "nodes": 16}')
    p.add_argument("--algorithm", choices=("bfs", "sssp", "cc"),
                   default=None,
                   help="also recompute incrementally and verify SHA "
                   "parity against a from-scratch run")
    p.add_argument("--out", default=None, metavar="FILE",
                   help="write the compacted mutated graph (.gr / .mtx "
                   "/ SNAP edge list by extension)")
    p.add_argument("--manifest", default=None, metavar="FILE",
                   help="write a dynamic RunManifest with the mutation "
                   "events here")
    p.set_defaults(func=cmd_mutate)

    p = sub.add_parser("sweep-t3", help="Figure-13-style T3 sensitivity sweep")
    _add_workload_args(p)
    p.set_defaults(func=cmd_sweep_t3)

    p = sub.add_parser(
        "oracle", help="score the adaptive decisions vs a per-iteration oracle"
    )
    _add_workload_args(p)
    p.add_argument("--algorithm", choices=("bfs", "sssp"), default="sssp")
    p.set_defaults(func=cmd_oracle)

    p = sub.add_parser(
        "reliability",
        help="guarded execution under a fault plan (retry / fallback / "
        "checkpoint restore / CPU degradation)",
    )
    _add_workload_args(p)
    p.add_argument("--algorithm", choices=algo_names, default="bfs")
    p.add_argument("--damping", type=float, default=None,
                   help="PageRank damping factor (pagerank only)")
    p.add_argument("--tolerance", type=float, default=None,
                   help="PageRank convergence tolerance (pagerank only)")
    _add_reliability_args(p)
    p.set_defaults(func=cmd_reliability)

    return parser


def main(argv: Optional[list] = None) -> int:
    """CLI entry point; returns a process exit code.

    Library failures (:class:`ReproError`) are reported as one line on
    stderr with exit code 2; a keyboard interrupt exits 130 — a service
    wrapper can discriminate "bad request / bad config" from crashes.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print("repro: interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
