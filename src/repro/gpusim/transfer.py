"""PCIe host-device transfer model.

The paper's measurements include CPU-GPU transfer times (Section VII):
graph arrays and state move host-to-device once before the traversal and
results move back once after.  A transfer costs a fixed latency plus
bytes over effective PCIe bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.device import DeviceSpec

__all__ = ["transfer_seconds", "TransferRecord"]


@dataclass(frozen=True)
class TransferRecord:
    """One host-device copy: direction, payload, simulated cost."""

    direction: str  # "h2d" or "d2h"
    num_bytes: int
    seconds: float


def transfer_seconds(num_bytes: int, device: DeviceSpec) -> float:
    """Simulated seconds to move *num_bytes* across PCIe (either way)."""
    if num_bytes < 0:
        raise ValueError(f"num_bytes must be >= 0, got {num_bytes}")
    if num_bytes == 0:
        return 0.0
    return device.pcie_latency_s + num_bytes / (device.pcie_bandwidth_gbs * 1e9)


def record_transfer(direction: str, num_bytes: int, device: DeviceSpec) -> TransferRecord:
    """Build a :class:`TransferRecord` with its priced cost."""
    if direction not in ("h2d", "d2h"):
        raise ValueError(f"direction must be 'h2d' or 'd2h', got {direction!r}")
    return TransferRecord(
        direction=direction,
        num_bytes=int(num_bytes),
        seconds=transfer_seconds(num_bytes, device),
    )
