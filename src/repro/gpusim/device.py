"""Simulated-device specifications.

:data:`TESLA_C2070` mirrors the paper's evaluation platform (Section VII:
"an Nvidia Tesla C2070 GPU, which contains 14 32-core SMs").  All limits
follow the Fermi (compute capability 2.0) datasheet; anything the cost
model calibrates (instruction costs, atomic costs) lives in
:class:`repro.gpusim.kernel.CostParams` instead, so a device spec is pure
hardware description.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

from repro.errors import DeviceError

__all__ = ["DeviceSpec", "TESLA_C2070", "GTX_580", "QUADRO_2000", "device_registry"]


@dataclass(frozen=True)
class DeviceSpec:
    """Hardware description of a simulated CUDA-class GPU."""

    name: str
    num_sms: int
    cores_per_sm: int
    warp_size: int = 32
    clock_ghz: float = 1.15
    #: peak global-memory bandwidth, GB/s
    mem_bandwidth_gbs: float = 144.0
    #: global-memory latency in core clock cycles
    mem_latency_cycles: int = 400
    #: bytes moved per global-memory transaction
    transaction_bytes: int = 128
    global_mem_bytes: int = 6 * 1024**3
    shared_mem_per_sm_bytes: int = 48 * 1024
    registers_per_sm: int = 32768
    max_threads_per_block: int = 1024
    max_threads_per_sm: int = 1536
    max_blocks_per_sm: int = 8
    max_warps_per_sm: int = 48
    #: register allocation granularity (per warp, Fermi)
    register_alloc_unit: int = 64
    #: shared-memory allocation granularity in bytes
    shared_alloc_unit: int = 128
    #: grid dimension limit per axis (CUDA 4 era: 64K)
    max_grid_dim: int = 65535
    #: host-side fixed cost of one kernel launch, seconds
    kernel_launch_overhead_s: float = 4.0e-6
    #: effective PCIe bandwidth, GB/s, and per-transfer latency, seconds
    pcie_bandwidth_gbs: float = 6.0
    pcie_latency_s: float = 10.0e-6

    def __post_init__(self):
        for attr in (
            "num_sms",
            "cores_per_sm",
            "warp_size",
            "transaction_bytes",
            "max_threads_per_block",
            "max_threads_per_sm",
            "max_blocks_per_sm",
            "max_warps_per_sm",
        ):
            if getattr(self, attr) < 1:
                raise DeviceError(f"{attr} must be >= 1, got {getattr(self, attr)}")
        for attr in ("clock_ghz", "mem_bandwidth_gbs", "pcie_bandwidth_gbs"):
            if getattr(self, attr) <= 0:
                raise DeviceError(f"{attr} must be > 0, got {getattr(self, attr)}")
        if self.max_threads_per_block % self.warp_size != 0:
            raise DeviceError("max_threads_per_block must be a warp multiple")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------

    @property
    def total_cores(self) -> int:
        return self.num_sms * self.cores_per_sm

    @property
    def clock_hz(self) -> float:
        return self.clock_ghz * 1e9

    @property
    def bytes_per_cycle(self) -> float:
        """Whole-device global-memory bytes deliverable per core cycle."""
        return self.mem_bandwidth_gbs * 1e9 / self.clock_hz

    @property
    def warps_per_block_limit(self) -> int:
        return self.max_threads_per_block // self.warp_size

    def cycles_to_seconds(self, cycles: float) -> float:
        return float(cycles) / self.clock_hz

    def seconds_to_cycles(self, seconds: float) -> float:
        return float(seconds) * self.clock_hz

    def with_overrides(self, **kwargs) -> "DeviceSpec":
        """A copy of this spec with some fields replaced (for what-if runs)."""
        return replace(self, **kwargs)

    def make_budget(self, capacity_bytes=None, *, spill: bool = False):
        """A :class:`~repro.gpusim.allocator.MemoryBudget` for this
        device, capped at *capacity_bytes* (default: the full global
        memory).  Accepts human sizes like ``"512M"``."""
        from repro.gpusim.allocator import MemoryBudget

        return MemoryBudget(capacity_bytes, device=self, spill=spill)


#: The paper's platform: Tesla C2070, Fermi GF100, 14 SMs x 32 cores.
TESLA_C2070 = DeviceSpec(
    name="Tesla C2070",
    num_sms=14,
    cores_per_sm=32,
    clock_ghz=1.15,
    mem_bandwidth_gbs=144.0,
    global_mem_bytes=6 * 1024**3,
)

#: A consumer Fermi part (GF110): 16 SMs, higher clock, 192 GB/s.
GTX_580 = DeviceSpec(
    name="GeForce GTX 580",
    num_sms=16,
    cores_per_sm=32,
    clock_ghz=1.544,
    mem_bandwidth_gbs=192.4,
    global_mem_bytes=1536 * 1024**2,
)

#: A small Fermi workstation part (GF106): 4 SMs x 48 cores, 41.6 GB/s.
QUADRO_2000 = DeviceSpec(
    name="Quadro 2000",
    num_sms=4,
    cores_per_sm=48,
    clock_ghz=1.25,
    mem_bandwidth_gbs=41.6,
    global_mem_bytes=1024**3,
)


def device_registry() -> Dict[str, DeviceSpec]:
    """Built-in device presets keyed by a short name."""
    return {
        "c2070": TESLA_C2070,
        "gtx580": GTX_580,
        "quadro2000": QUADRO_2000,
    }
