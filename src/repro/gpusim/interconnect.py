"""Device-to-device interconnect cost model.

Multi-device traversal ships frontier updates between shards at every
exchange barrier; what that costs depends on the link.  An
:class:`InterconnectSpec` is the link description — peer bandwidth and
per-transfer latency — and :func:`peer_transfer_seconds` prices one
peer copy by *reusing* the PCIe transfer formula
(:func:`repro.gpusim.transfer.transfer_seconds`) with the link's
parameters substituted for the device's host-link numbers.

Two presets:

- :data:`PCIE_P2P` — peer-to-peer DMA over the shared PCIe fabric
  (Fermi-era GPUDirect): same bandwidth and latency class as the
  host link;
- :data:`NVLINK` — a point-to-point NVLink-class interconnect: an
  order of magnitude more bandwidth and microsecond latency.

Exchange staging buffers are charged through the PR 2 allocator
(:class:`~repro.gpusim.allocator.MemoryBudget`) by the sharded driver,
so frontier shipping competes for device memory like every other
allocation.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict

from repro.errors import DeviceError
from repro.gpusim.device import DeviceSpec, TESLA_C2070
from repro.gpusim.transfer import transfer_seconds

__all__ = [
    "InterconnectSpec",
    "PCIE_P2P",
    "NVLINK",
    "PeerTransferRecord",
    "interconnect_registry",
    "peer_transfer_seconds",
    "record_peer_transfer",
]


@dataclass(frozen=True)
class InterconnectSpec:
    """One device-to-device link: peer bandwidth and latency."""

    name: str
    #: effective peer bandwidth, GB/s
    bandwidth_gbs: float
    #: fixed per-transfer latency, seconds
    latency_s: float

    def __post_init__(self):
        if self.bandwidth_gbs <= 0:
            raise DeviceError(
                f"bandwidth_gbs must be > 0, got {self.bandwidth_gbs}"
            )
        if self.latency_s < 0:
            raise DeviceError(f"latency_s must be >= 0, got {self.latency_s}")


#: peer-to-peer DMA over the shared PCIe fabric (GPUDirect v2 class)
PCIE_P2P = InterconnectSpec("pcie-p2p", bandwidth_gbs=6.0, latency_s=10.0e-6)

#: an NVLink-class point-to-point link
NVLINK = InterconnectSpec("nvlink", bandwidth_gbs=20.0, latency_s=1.3e-6)


def interconnect_registry() -> Dict[str, InterconnectSpec]:
    """Built-in interconnect presets keyed by a short name."""
    return {"pcie": PCIE_P2P, "nvlink": NVLINK}


@dataclass(frozen=True)
class PeerTransferRecord:
    """One device-to-device copy: endpoints, payload, simulated cost."""

    src_device: int
    dst_device: int
    num_bytes: int
    seconds: float


@lru_cache(maxsize=16)
def _link_device(interconnect: InterconnectSpec, device: DeviceSpec) -> DeviceSpec:
    """A device spec whose host link is replaced by the peer link, so
    :func:`transfer_seconds` prices peer copies unchanged."""
    return device.with_overrides(
        pcie_bandwidth_gbs=interconnect.bandwidth_gbs,
        pcie_latency_s=interconnect.latency_s,
    )


def peer_transfer_seconds(
    num_bytes: int,
    interconnect: InterconnectSpec = PCIE_P2P,
    *,
    device: DeviceSpec = TESLA_C2070,
) -> float:
    """Simulated seconds to move *num_bytes* device-to-device."""
    return transfer_seconds(num_bytes, _link_device(interconnect, device))


def record_peer_transfer(
    src_device: int,
    dst_device: int,
    num_bytes: int,
    interconnect: InterconnectSpec = PCIE_P2P,
    *,
    device: DeviceSpec = TESLA_C2070,
) -> PeerTransferRecord:
    """Build a :class:`PeerTransferRecord` with its priced cost."""
    if src_device == dst_device:
        raise DeviceError(
            f"peer transfer needs two distinct devices, got {src_device} twice"
        )
    return PeerTransferRecord(
        src_device=int(src_device),
        dst_device=int(dst_device),
        num_bytes=int(num_bytes),
        seconds=peer_transfer_seconds(num_bytes, interconnect, device=device),
    )
