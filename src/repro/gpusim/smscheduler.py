"""Scheduling thread-blocks onto streaming multiprocessors.

The GigaThread engine dispatches blocks to SMs as slots free up.  For a
makespan estimate we use the classic list-scheduling bound: the finish
time of greedily scheduled independent jobs on ``S`` identical machines
lies within ``[max(total/S, longest_job), total/S + longest_job]``.  We
take the lower bound plus a configurable imbalance slack — accurate for
the thousands of small blocks graph kernels launch, while still charging
a lone giant block (one hub node under block-mapping) its full serial
cost.
"""

from __future__ import annotations

import numpy as np

from repro.gpusim.device import DeviceSpec

__all__ = ["makespan_cycles", "wave_count"]


def makespan_cycles(
    block_cycles,
    device: DeviceSpec,
    *,
    imbalance_slack: float = 0.05,
) -> float:
    """Estimated cycles to drain the given per-block issue costs.

    ``block_cycles`` may be an array of per-block costs or a pair
    ``(total, longest)`` when the caller has already aggregated.
    """
    if isinstance(block_cycles, tuple):
        total, longest = (float(block_cycles[0]), float(block_cycles[1]))
    else:
        arr = np.asarray(block_cycles, dtype=np.float64).ravel()
        if arr.size == 0:
            return 0.0
        total, longest = float(arr.sum()), float(arr.max())
    ideal = total / device.num_sms
    return max(ideal * (1.0 + imbalance_slack), longest)


def wave_count(num_blocks: int, blocks_per_sm: int, device: DeviceSpec) -> int:
    """Number of full scheduling waves needed for *num_blocks* blocks
    given the occupancy-derived resident-block capacity per SM."""
    capacity = max(1, blocks_per_sm) * device.num_sms
    return max(1, -(-num_blocks // capacity)) if num_blocks > 0 else 0
