"""Execution timeline: the ordered record of priced kernels and copies.

Every traversal accumulates a :class:`Timeline`; benches and the adaptive
runtime's telemetry read per-kernel breakdowns from it, and its totals
are the simulated times the reproduction reports (the paper's results
"include CPU processing, GPU processing and CPU-GPU transfer times").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.gpusim.kernel import KernelCost, KernelTally
from repro.gpusim.transfer import TransferRecord

__all__ = ["KernelRecord", "Timeline"]


@dataclass(frozen=True)
class KernelRecord:
    """One kernel execution: tally, priced cost, and traversal metadata."""

    iteration: int
    tally: KernelTally
    cost: KernelCost
    variant: Optional[str] = None

    @property
    def seconds(self) -> float:
        return self.cost.seconds


@dataclass
class Timeline:
    """Accumulates kernels, transfers and host-side costs in order."""

    kernels: List[KernelRecord] = field(default_factory=list)
    transfers: List[TransferRecord] = field(default_factory=list)
    host_seconds: float = 0.0

    def add_kernel(
        self,
        iteration: int,
        tally: KernelTally,
        cost: KernelCost,
        variant: Optional[str] = None,
    ) -> KernelRecord:
        record = KernelRecord(iteration=iteration, tally=tally, cost=cost, variant=variant)
        self.kernels.append(record)
        return record

    def add_transfer(self, record: TransferRecord) -> None:
        self.transfers.append(record)

    def add_host_seconds(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("host time cannot be negative")
        self.host_seconds += seconds

    # ------------------------------------------------------------------
    # Totals
    # ------------------------------------------------------------------

    @property
    def gpu_seconds(self) -> float:
        return sum(k.seconds for k in self.kernels)

    @property
    def transfer_seconds(self) -> float:
        return sum(t.seconds for t in self.transfers)

    @property
    def total_seconds(self) -> float:
        return self.gpu_seconds + self.transfer_seconds + self.host_seconds

    @property
    def num_launches(self) -> int:
        return len(self.kernels)

    def seconds_by_kernel(self) -> Dict[str, float]:
        """Total simulated seconds grouped by kernel name prefix."""
        out: Dict[str, float] = {}
        for record in self.kernels:
            key = record.tally.name.split("[")[0]
            out[key] = out.get(key, 0.0) + record.seconds
        return out

    def seconds_by_variant(self) -> Dict[str, float]:
        """Total simulated GPU seconds grouped by implementation variant."""
        out: Dict[str, float] = {}
        for record in self.kernels:
            key = record.variant or "-"
            out[key] = out.get(key, 0.0) + record.seconds
        return out

    def iter_iterations(self) -> Iterator[int]:
        seen = set()
        for record in self.kernels:
            if record.iteration not in seen:
                seen.add(record.iteration)
                yield record.iteration
