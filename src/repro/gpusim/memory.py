"""Global-memory transaction model.

Fermi global memory is accessed in 128-byte transactions; a warp's 32
accesses collapse into a handful of transactions when they fall into few
128-byte segments (coalescing) and into up to 32 transactions when
scattered (Section III.C of the paper).  These helpers count transactions
for the access patterns graph kernels produce; the cost model converts
transaction counts into cycles via the device bandwidth.
"""

from __future__ import annotations

import numpy as np

from repro.gpusim.device import DeviceSpec

__all__ = [
    "coalesced_transactions",
    "scattered_transactions",
    "strided_transactions",
    "segment_stream_transactions",
    "bandwidth_cycles",
    "traversal_state_bytes",
    "workset_device_bytes",
]


def coalesced_transactions(
    num_elements, element_bytes: int, device: DeviceSpec
) -> float:
    """Transactions for *num_elements* consecutive accesses by consecutive
    threads — the ideal pattern (queue reads, bitmap sweeps).

    Scalar or ndarray *num_elements* supported.
    """
    bytes_total = np.asarray(num_elements, dtype=np.float64) * element_bytes
    out = np.ceil(bytes_total / device.transaction_bytes)
    return float(out) if np.isscalar(num_elements) else out


def scattered_transactions(num_accesses) -> float:
    """Transactions for fully scattered accesses: one each.

    Neighbor state lookups (``level[dst]``, ``dist[dst]``) land anywhere
    in the arrays, so each access occupies its own transaction.
    """
    arr = np.asarray(num_accesses, dtype=np.float64)
    return float(arr) if np.isscalar(num_accesses) else arr


def strided_transactions(
    num_accesses, stride_bytes: int, element_bytes: int, device: DeviceSpec
) -> float:
    """Transactions when consecutive threads access with a fixed stride.

    With ``stride >= transaction_bytes`` every access is its own
    transaction; below that, ``stride / transaction_bytes`` of a
    transaction is wasted per access.
    """
    arr = np.asarray(num_accesses, dtype=np.float64)
    per_access = min(1.0, max(stride_bytes, element_bytes) / device.transaction_bytes)
    out = np.ceil(arr * per_access)
    return float(out) if np.isscalar(num_accesses) else out


def segment_stream_transactions(
    segment_lengths, element_bytes: int, device: DeviceSpec
) -> float:
    """Transactions for streaming variable-length contiguous segments.

    An adjacency list of ``deg`` neighbors occupies ``deg*element_bytes``
    contiguous bytes but starts at an arbitrary offset, so it costs
    ``ceil(deg*eb / tb) + 1`` transactions in the worst alignment; the
    ``+1``/2 average misalignment is modelled as ``+0.5``.  Accepts an
    array of segment lengths and returns the summed transaction count.
    """
    lengths = np.asarray(segment_lengths, dtype=np.float64)
    if lengths.size == 0:
        return 0.0
    per_segment = np.ceil(lengths * element_bytes / device.transaction_bytes)
    nonzero = lengths > 0
    return float(per_segment[nonzero].sum() + 0.5 * nonzero.sum())


def bandwidth_cycles(transactions: float, device: DeviceSpec) -> float:
    """Core cycles to move *transactions* 128-byte transactions at the
    device's peak bandwidth (the bandwidth-bound lower limit)."""
    bytes_total = float(transactions) * device.transaction_bytes
    return bytes_total / device.bytes_per_cycle


# ----------------------------------------------------------------------
# Device footprints (used by the memory budget, repro.gpusim.allocator)
# ----------------------------------------------------------------------

def traversal_state_bytes(num_nodes: int) -> int:
    """Resident traversal state: a 4-byte value (level/distance slot)
    plus a 1-byte update flag per node.  Working sets and checkpoint
    staging are charged separately — unlike these arrays, their
    footprint varies per iteration."""
    if num_nodes < 0:
        raise ValueError(f"num_nodes must be >= 0, got {num_nodes}")
    return 5 * int(num_nodes)


def workset_device_bytes(
    representation, workset_size: int, num_nodes: int, *, entry_bytes: int = 4
) -> int:
    """Device bytes one materialized working set occupies.

    The bitmap is a fixed ``ceil(n / 8)`` regardless of how full it is;
    a queue grows with the frontier at *entry_bytes* per element (4 for
    plain node ids, 8 for the ordered frame's (node, key) pairs).  This
    asymmetry is the paper's memory axis of variant selection: on large
    frontiers the queue can dwarf the bitmap and decide whether the
    traversal fits on the device at all.

    *representation* is a :class:`~repro.kernels.variants.WorksetRepr`
    or its string value (``"BM"`` / ``"QU"``); duck-typed here to keep
    :mod:`repro.gpusim` free of kernel-layer imports.
    """
    code = getattr(representation, "value", representation)
    if code in ("BM", "bitmap"):
        return (int(num_nodes) + 7) // 8
    if code in ("QU", "queue"):
        return int(workset_size) * int(entry_bytes)
    raise ValueError(f"unknown workset representation {representation!r}")
