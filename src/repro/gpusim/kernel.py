"""Kernel cost assembly: turning structural tallies into simulated time.

A simulated kernel (see :mod:`repro.kernels.computation`) performs its
computation with NumPy and reports *what the GPU would have done* as a
:class:`KernelTally`: warp-instruction issues (divergence included),
memory transactions, serialized atomics, launch shape.  The
:class:`CostModel` prices a tally on a device:

``seconds = launch_overhead
          + cycles(max(issue_pipeline, memory_pipeline) + atomic_serial)``

where the issue pipeline is the SM-scheduler makespan of the issued
warp instructions (each SM issues one warp instruction per cycle), the
memory pipeline is bandwidth cycles inflated by a latency-exposure
factor when too few warps are resident to hide DRAM latency, and
atomics serialize after both.  All tunable coefficients live in
:class:`CostParams` so experiments can ablate them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.errors import KernelError
from repro.gpusim.device import DeviceSpec
from repro.gpusim.launch import LaunchConfig, current_fault_hook
from repro.gpusim.memory import bandwidth_cycles
from repro.gpusim.occupancy import occupancy
from repro.gpusim.smscheduler import makespan_cycles
from repro.obs.context import current_observer

__all__ = ["KernelTally", "CostParams", "CostModel", "KernelCost"]


@dataclass(frozen=True)
class KernelTally:
    """Structural execution profile of one simulated kernel launch."""

    name: str
    launch: LaunchConfig
    #: total warp-instruction issues (per-warp divergence already applied:
    #: each warp contributes the max of its lanes)
    issue_cycles: float = 0.0
    #: useful lane-cycles (for SIMT-efficiency reporting only)
    useful_lane_cycles: float = 0.0
    #: the single most expensive block's issue cycles (critical path)
    max_block_cycles: float = 0.0
    #: 128-byte global-memory transactions
    mem_transactions: float = 0.0
    #: atomic operations serialized on one hot address (queue counter)
    atomics_same_address: float = 0.0
    #: atomic operations spread over many addresses (update flags)
    atomics_multi_address: float = 0.0
    #: distinct addresses for the multi-address atomics
    atomic_address_count: int = 0
    #: active (non-early-exit) threads, for utilization reporting
    active_threads: int = 0
    #: warps that perform real work (memory-latency hiding is supplied by
    #: these, not by warps that early-exit after a flag check); 0 means
    #: "all launched warps are active"
    active_warps: int = 0

    def __post_init__(self):
        for attr in (
            "issue_cycles",
            "useful_lane_cycles",
            "max_block_cycles",
            "mem_transactions",
            "atomics_same_address",
            "atomics_multi_address",
        ):
            if getattr(self, attr) < 0:
                raise KernelError(f"{attr} must be >= 0")

    @property
    def simt_efficiency(self) -> float:
        # Lane-cycles issued = issue_cycles * warp_size; warp size is a
        # device property, but 32 universally in this simulator's scope.
        issued = self.issue_cycles * 32.0
        if issued <= 0:
            return 1.0
        return min(1.0, self.useful_lane_cycles / issued)

    @property
    def thread_utilization(self) -> float:
        total = self.launch.total_threads
        if total <= 0:
            return 1.0
        return min(1.0, self.active_threads / total)


@dataclass(frozen=True)
class CostParams:
    """Calibration coefficients of the timing model.

    The instruction-cost constants are expressed in *warp-instruction
    issues* for one warp doing the operation once.  Defaults are
    calibrated so the static-variant comparison reproduces the paper's
    Table 2/3 structure on the Table 1 dataset analogues (see
    ``benchmarks/``); the ablation benches perturb them.
    """

    #: cycles per same-address atomic (queue-counter serialization;
    #: Fermi-era L2 atomic units sustain a few cycles per same-word op)
    atomic_cycles_per_op: float = 3.0
    #: per-block scheduling/dispatch cost charged to the issue pipeline
    block_dispatch_cycles: float = 40.0
    #: resident warps per SM needed to fully hide DRAM latency
    latency_hiding_warps: float = 16.0
    #: cap on the latency-exposure inflation of memory time
    max_latency_penalty: float = 8.0
    #: list-scheduling imbalance slack on the issue makespan
    imbalance_slack: float = 0.05
    #: registers per thread assumed for occupancy (graph kernels are lean)
    registers_per_thread: int = 20

    def with_overrides(self, **kwargs) -> "CostParams":
        return replace(self, **kwargs)


@dataclass(frozen=True)
class KernelCost:
    """Priced execution of one kernel: the component breakdown."""

    name: str
    seconds: float
    issue_seconds: float
    memory_seconds: float
    atomic_seconds: float
    launch_overhead_seconds: float
    latency_penalty: float
    occupancy: float

    def __post_init__(self):
        if self.seconds < 0:
            raise KernelError("kernel cost cannot be negative")


class CostModel:
    """Prices :class:`KernelTally` objects on a :class:`DeviceSpec`."""

    def __init__(self, device: DeviceSpec, params: Optional[CostParams] = None):
        self.device = device
        self.params = params or CostParams()

    def price(self, tally: KernelTally) -> KernelCost:
        """Simulated wall-clock cost of one kernel launch."""
        device, params = self.device, self.params
        launch = tally.launch

        occ = occupancy(
            device,
            min(launch.threads_per_block, device.max_threads_per_block),
            registers_per_thread=params.registers_per_thread,
        )

        # --- issue pipeline: SMs retire one warp instruction per cycle ---
        dispatch = launch.grid_blocks * params.block_dispatch_cycles
        issue_total = tally.issue_cycles + dispatch
        issue_cycles = makespan_cycles(
            (issue_total, tally.max_block_cycles),
            device,
            imbalance_slack=params.imbalance_slack,
        )

        # --- memory pipeline: bandwidth floor x latency exposure ---
        mem_cycles = bandwidth_cycles(tally.mem_transactions, device)
        resident_warps = self._resident_warps(tally, occ.warps_per_sm)
        if resident_warps >= params.latency_hiding_warps:
            penalty = 1.0
        else:
            penalty = min(
                params.max_latency_penalty,
                params.latency_hiding_warps / max(resident_warps, 1e-9),
            )
        mem_cycles *= penalty

        # --- atomics: serialized after compute/memory overlap ---
        atomic_cycles = tally.atomics_same_address * params.atomic_cycles_per_op
        if tally.atomics_multi_address > 0:
            addresses = max(1, tally.atomic_address_count)
            hottest = tally.atomics_multi_address / addresses
            atomic_cycles += (hottest + hottest**0.5) * params.atomic_cycles_per_op

        total_cycles = max(issue_cycles, mem_cycles) + atomic_cycles
        hook = current_fault_hook()
        if hook is not None:
            # Injected latency spike: the kernel's execution (not the fixed
            # launch overhead) is dilated, as if the SMs stalled.
            total_cycles *= max(1.0, hook.latency_multiplier(tally.name))
        observer = current_observer()
        if observer is not None:
            observer.metrics.counter("gpusim.kernels_priced").inc()
            observer.metrics.counter("gpusim.simulated_cycles").inc(
                int(total_cycles)
            )
        to_s = device.cycles_to_seconds
        return KernelCost(
            name=tally.name,
            seconds=device.kernel_launch_overhead_s + to_s(total_cycles),
            issue_seconds=to_s(issue_cycles),
            memory_seconds=to_s(mem_cycles),
            atomic_seconds=to_s(atomic_cycles),
            launch_overhead_seconds=device.kernel_launch_overhead_s,
            latency_penalty=penalty,
            occupancy=occ.occupancy,
        )

    def _resident_warps(self, tally: KernelTally, occupancy_warps: int) -> float:
        """Average *working* warps resident per SM while the kernel runs.

        Limited both by occupancy (resource ceiling) and by how many
        working warps the grid actually supplies — a 100-thread kernel
        cannot keep 14 SMs busy no matter the occupancy ceiling, and
        warps that early-exit after a membership check retire immediately
        instead of hiding the active warps' memory latency.
        """
        total_warps = tally.launch.total_warps(self.device)
        working = tally.active_warps if tally.active_warps > 0 else total_warps
        supplied = min(working, total_warps) / self.device.num_sms
        return max(0.5, min(float(occupancy_warps), supplied))
