"""Parallel reduction: the GPU ``findmin`` the ordered SSSP needs.

The paper implements the ordered-SSSP ``findmin`` as a parallel
reduction on the GPU, "which is faster than maintaining a heap on CPU"
(Section V.B).  This module provides the functional result (a NumPy
reduction) together with the tally of what the standard tree-reduction
kernel sequence would have cost: each pass launches ``n / (2*block)``
blocks, each block reduces ``2*block`` elements in ``log2`` steps
through shared memory, and passes repeat until one value remains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.gpusim.device import DeviceSpec
from repro.gpusim.kernel import KernelTally
from repro.gpusim.launch import LaunchConfig
from repro.gpusim.sharedmem import reduction_step_cycles

__all__ = ["reduce_min", "reduction_tallies", "ReductionPlan"]

#: warp instructions per shared-memory reduction step (compare, select,
#: sync amortized; the shared-memory traffic is priced separately via
#: the bank-conflict model)
_STEP_COST = 2.0


@dataclass(frozen=True)
class ReductionPlan:
    """The kernel sequence a tree reduction of *n* elements executes."""

    n: int
    threads_per_block: int
    passes: Tuple[int, ...]  # element count entering each pass

    @property
    def num_kernels(self) -> int:
        return len(self.passes)


def plan_reduction(n: int, threads_per_block: int = 256) -> ReductionPlan:
    """Pass structure for reducing *n* elements, 2*block per block/pass."""
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    passes: List[int] = []
    remaining = n
    per_block = 2 * threads_per_block
    while remaining > 1:
        passes.append(remaining)
        remaining = -(-remaining // per_block)
    if not passes and n >= 1:
        passes = [n]
    return ReductionPlan(n=n, threads_per_block=threads_per_block, passes=tuple(passes))


def reduction_tallies(
    n: int,
    device: DeviceSpec,
    *,
    threads_per_block: int = 256,
    name: str = "reduce",
    sequential_addressing: bool = True,
    entry_bytes: int = 4,
) -> List[KernelTally]:
    """Tallies of the kernel launches a min-reduction of *n* values costs.

    *sequential_addressing* selects the conflict-free shared-memory
    layout (the standard optimized formulation); ``False`` models the
    naive interleaved tree, whose late steps serialize on the banks —
    exposed for the bank-conflict ablation.  *entry_bytes* is the size
    of each reduced element's global-memory record (ordered worksets
    stream 8-byte ``(node, key)`` pairs; plain value reductions read
    4 B).
    """
    plan = plan_reduction(n, threads_per_block)
    tallies: List[KernelTally] = []
    for pass_idx, elements in enumerate(plan.passes):
        per_block = 2 * threads_per_block
        blocks = max(1, -(-elements // per_block))
        launch = LaunchConfig.for_elements(
            max(1, elements // 2), threads_per_block, device
        )
        warps_per_block = launch.warps_per_block(device)
        steps = int(np.ceil(np.log2(max(2, per_block))))
        per_warp_cycles = sum(
            _STEP_COST
            + reduction_step_cycles(step, sequential_addressing=sequential_addressing)
            for step in range(steps)
        )
        issue = blocks * warps_per_block * per_warp_cycles
        mem = np.ceil(elements * entry_bytes / device.transaction_bytes) + blocks
        tallies.append(
            KernelTally(
                name=f"{name}[{pass_idx}]",
                launch=LaunchConfig(blocks, threads_per_block),
                issue_cycles=float(issue),
                useful_lane_cycles=float(elements * _STEP_COST),
                max_block_cycles=float(warps_per_block * per_warp_cycles),
                mem_transactions=float(mem),
                active_threads=elements // 2 + 1,
            )
        )
    return tallies


def reduce_min(values: np.ndarray) -> float:
    """Functional result of the reduction (the device would return this)."""
    arr = np.asarray(values)
    if arr.size == 0:
        raise ValueError("cannot reduce an empty array")
    return float(arr.min())
