"""Kernel launch configurations.

A launch is a 1-D grid of thread-blocks (the paper's kernels are all
1-D).  :func:`LaunchConfig.for_elements` computes the grid covering a
given element count, the way host code computes
``(n + threads - 1) / threads`` blocks.

This module is also the simulator's *fault-injection seam*: a
:class:`GpuFaultHook` installed via :func:`install_fault_hook` is
consulted on every launch validation (where it may raise
:class:`~repro.errors.LaunchError`, the analogue of a transient
``cudaErrorLaunchFailure``) and on every kernel pricing (where it may
dilate the kernel's simulated time — a latency spike).  The hook is
process-global but installation is expected to be scoped with
``FaultInjector.installed()``; with no hook installed the checks cost
one ``is None`` test.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.errors import LaunchError
from repro.gpusim.device import DeviceSpec
from repro.obs.context import current_observer

__all__ = [
    "LaunchConfig",
    "GpuFaultHook",
    "install_fault_hook",
    "current_fault_hook",
]


class GpuFaultHook:
    """Interface of a simulator-level fault injector.

    Subclasses override either method; the defaults are fault-free.
    """

    def on_launch(self, config: "LaunchConfig") -> None:
        """Called when a launch configuration is validated; may raise
        :class:`LaunchError` to simulate a transient launch failure."""

    def latency_multiplier(self, kernel_name: str) -> float:
        """Simulated-time dilation factor for one kernel execution
        (1.0 = no spike)."""
        return 1.0


_fault_hook: Optional[GpuFaultHook] = None


@contextlib.contextmanager
def install_fault_hook(hook: GpuFaultHook) -> Iterator[GpuFaultHook]:
    """Install *hook* as the process-wide GPU fault hook for the scope
    of the ``with`` block (nested installs restore the outer hook)."""
    global _fault_hook
    previous = _fault_hook
    _fault_hook = hook
    try:
        yield hook
    finally:
        _fault_hook = previous


def current_fault_hook() -> Optional[GpuFaultHook]:
    """The installed fault hook, or ``None`` (the fault-free default)."""
    return _fault_hook


@dataclass(frozen=True)
class LaunchConfig:
    """A validated ``<<<grid_blocks, threads_per_block>>>`` configuration."""

    grid_blocks: int
    threads_per_block: int

    def __post_init__(self):
        if self.grid_blocks < 1:
            raise LaunchError(f"grid_blocks must be >= 1, got {self.grid_blocks}")
        if self.threads_per_block < 1:
            raise LaunchError(
                f"threads_per_block must be >= 1, got {self.threads_per_block}"
            )

    @property
    def total_threads(self) -> int:
        return self.grid_blocks * self.threads_per_block

    def warps_per_block(self, device: DeviceSpec) -> int:
        ws = device.warp_size
        return (self.threads_per_block + ws - 1) // ws

    def total_warps(self, device: DeviceSpec) -> int:
        return self.grid_blocks * self.warps_per_block(device)

    def validate(self, device: DeviceSpec) -> "LaunchConfig":
        """Raise :class:`LaunchError` if the config exceeds device limits.

        CUDA-4-era grids are allowed up to ``64K`` blocks per axis; since
        our grids are 1-D we allow up to ``max_grid_dim ** 2`` blocks,
        which host code would express as a 2-D grid.
        """
        if self.threads_per_block > device.max_threads_per_block:
            raise LaunchError(
                f"{self.threads_per_block} threads/block exceeds device limit "
                f"{device.max_threads_per_block}"
            )
        if self.grid_blocks > device.max_grid_dim**2:
            raise LaunchError(
                f"{self.grid_blocks} blocks exceeds 2-D grid limit "
                f"{device.max_grid_dim ** 2}"
            )
        if _fault_hook is not None:
            _fault_hook.on_launch(self)
        observer = current_observer()
        if observer is not None:
            observer.metrics.counter("gpusim.kernel_launches").inc()
        return self

    @classmethod
    def for_elements(
        cls, num_elements: int, threads_per_block: int, device: DeviceSpec
    ) -> "LaunchConfig":
        """The smallest grid of *threads_per_block*-blocks covering
        *num_elements* threads (at least one block, as CUDA requires)."""
        if num_elements < 0:
            raise LaunchError(f"num_elements must be >= 0, got {num_elements}")
        blocks = max(1, -(-num_elements // threads_per_block))
        return cls(blocks, threads_per_block).validate(device)

    @classmethod
    def one_block_per_element(
        cls, num_elements: int, threads_per_block: int, device: DeviceSpec
    ) -> "LaunchConfig":
        """Block-mapping launch: one block per working-set element."""
        if num_elements < 0:
            raise LaunchError(f"num_elements must be >= 0, got {num_elements}")
        return cls(max(1, num_elements), threads_per_block).validate(device)
