"""Kernel launch configurations.

A launch is a 1-D grid of thread-blocks (the paper's kernels are all
1-D).  :func:`LaunchConfig.for_elements` computes the grid covering a
given element count, the way host code computes
``(n + threads - 1) / threads`` blocks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import LaunchError
from repro.gpusim.device import DeviceSpec

__all__ = ["LaunchConfig"]


@dataclass(frozen=True)
class LaunchConfig:
    """A validated ``<<<grid_blocks, threads_per_block>>>`` configuration."""

    grid_blocks: int
    threads_per_block: int

    def __post_init__(self):
        if self.grid_blocks < 1:
            raise LaunchError(f"grid_blocks must be >= 1, got {self.grid_blocks}")
        if self.threads_per_block < 1:
            raise LaunchError(
                f"threads_per_block must be >= 1, got {self.threads_per_block}"
            )

    @property
    def total_threads(self) -> int:
        return self.grid_blocks * self.threads_per_block

    def warps_per_block(self, device: DeviceSpec) -> int:
        ws = device.warp_size
        return (self.threads_per_block + ws - 1) // ws

    def total_warps(self, device: DeviceSpec) -> int:
        return self.grid_blocks * self.warps_per_block(device)

    def validate(self, device: DeviceSpec) -> "LaunchConfig":
        """Raise :class:`LaunchError` if the config exceeds device limits.

        CUDA-4-era grids are allowed up to ``64K`` blocks per axis; since
        our grids are 1-D we allow up to ``max_grid_dim ** 2`` blocks,
        which host code would express as a 2-D grid.
        """
        if self.threads_per_block > device.max_threads_per_block:
            raise LaunchError(
                f"{self.threads_per_block} threads/block exceeds device limit "
                f"{device.max_threads_per_block}"
            )
        if self.grid_blocks > device.max_grid_dim**2:
            raise LaunchError(
                f"{self.grid_blocks} blocks exceeds 2-D grid limit "
                f"{device.max_grid_dim ** 2}"
            )
        return self

    @classmethod
    def for_elements(
        cls, num_elements: int, threads_per_block: int, device: DeviceSpec
    ) -> "LaunchConfig":
        """The smallest grid of *threads_per_block*-blocks covering
        *num_elements* threads (at least one block, as CUDA requires)."""
        if num_elements < 0:
            raise LaunchError(f"num_elements must be >= 0, got {num_elements}")
        blocks = max(1, -(-num_elements // threads_per_block))
        return cls(blocks, threads_per_block).validate(device)

    @classmethod
    def one_block_per_element(
        cls, num_elements: int, threads_per_block: int, device: DeviceSpec
    ) -> "LaunchConfig":
        """Block-mapping launch: one block per working-set element."""
        if num_elements < 0:
            raise LaunchError(f"num_elements must be >= 0, got {num_elements}")
        return cls(max(1, num_elements), threads_per_block).validate(device)
