"""Shared-memory bank-conflict model.

Fermi shared memory is organized in 32 banks of 4-byte words;
simultaneous accesses by a warp's lanes to different words in the same
bank serialize (an n-way conflict costs n shared-memory cycles).  This
matters for the reduction/scan kernels the ordered SSSP and the
scan-based queue generation rely on: the naive interleaved-addressing
tree reduction suffers 2-way-doubling conflicts, while the classic
sequential-addressing formulation is conflict-free — a standard
CUDA-optimization example that the simulator reproduces.
"""

from __future__ import annotations

from math import gcd

from repro.gpusim.device import DeviceSpec

__all__ = [
    "NUM_BANKS",
    "conflict_degree",
    "shared_access_cycles",
    "reduction_step_cycles",
]

#: shared-memory banks on Fermi-class hardware
NUM_BANKS = 32

#: shared-memory access latency per conflict-free warp access, cycles
_BASE_CYCLES = 2.0


def conflict_degree(stride_words: int, active_lanes: int = 32, num_banks: int = NUM_BANKS) -> int:
    """Worst-case serialization factor for a warp accessing shared memory
    with a fixed word *stride*.

    Lanes ``i`` access word ``i * stride``; lanes collide when their
    words map to the same bank, i.e. every ``num_banks / gcd(stride,
    num_banks)`` lanes.  A stride of 1 (or any odd stride) is
    conflict-free; a stride of 2 gives 2-way conflicts; 32 gives 32-way.
    Broadcast (stride 0) is conflict-free on Fermi.
    """
    if stride_words < 0:
        raise ValueError(f"stride_words must be >= 0, got {stride_words}")
    if active_lanes < 1:
        raise ValueError(f"active_lanes must be >= 1, got {active_lanes}")
    if stride_words == 0:
        return 1  # broadcast
    distinct_banks = num_banks // gcd(stride_words, num_banks)
    return max(1, min(active_lanes, (active_lanes + distinct_banks - 1) // distinct_banks))


def shared_access_cycles(
    num_warp_accesses: float,
    stride_words: int,
    device: DeviceSpec,
    *,
    active_lanes: int = 32,
) -> float:
    """Cycles for *num_warp_accesses* warp-wide shared-memory accesses at
    the given stride."""
    degree = conflict_degree(stride_words, active_lanes, NUM_BANKS)
    return float(num_warp_accesses) * _BASE_CYCLES * degree


def reduction_step_cycles(step: int, *, sequential_addressing: bool) -> float:
    """Shared-memory cycles of one tree-reduction step for one warp.

    With *sequential addressing* (``s = blockDim/2; s >>= 1``) the active
    lanes read/write contiguous words: conflict-free.  With the naive
    interleaved addressing (``s = 1; s <<= 1``) step *k* accesses stride
    ``2^(k+1)`` words, serializing up to 32-way in the late steps.
    """
    if step < 0:
        raise ValueError(f"step must be >= 0, got {step}")
    if sequential_addressing:
        return 2 * _BASE_CYCLES  # one read + one write, conflict-free
    stride = 2 ** (step + 1)
    degree = conflict_degree(stride % (2 * NUM_BANKS) or 2 * NUM_BANKS)
    return 2 * _BASE_CYCLES * degree
