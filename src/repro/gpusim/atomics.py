"""Atomic-operation serialization model.

The queue-based working set obtains insertion indices with ``atomicAdd``
on a single counter (Section V.C).  Same-address atomics serialize at
the L2 atomic units: throughput is one operation per a few cycles no
matter how many threads issue them.  Distinct-address atomics (e.g.
``atomicMin`` on different nodes' distances) proceed mostly in parallel
and only pay a conflict penalty proportional to the collision rate.
"""

from __future__ import annotations

import numpy as np

from repro.gpusim.device import DeviceSpec

__all__ = ["same_address_cycles", "multi_address_cycles"]

#: cycles per same-address atomic at the L2 atomic unit (Fermi-era
#: microbenchmarks put same-word atomicAdd throughput in the
#: 1 op / 2-10 cycles range; the exact value is a calibration constant
#: of CostParams — this is the hardware floor).
SAME_ADDRESS_CYCLES_PER_OP = 2.0


def same_address_cycles(
    num_ops: float, device: DeviceSpec, cycles_per_op: float = SAME_ADDRESS_CYCLES_PER_OP
) -> float:
    """Serialized cycles for *num_ops* atomics hitting one address."""
    return float(num_ops) * float(cycles_per_op)


def multi_address_cycles(
    num_ops: float,
    num_addresses: int,
    device: DeviceSpec,
    cycles_per_op: float = SAME_ADDRESS_CYCLES_PER_OP,
) -> float:
    """Cycles for atomics spread over *num_addresses* distinct addresses.

    With many addresses the atomic units pipeline across them; the
    serialization seen is the expected maximum queue on one address,
    approximated by the balls-in-bins mean plus one standard deviation.
    """
    ops = float(num_ops)
    if ops <= 0:
        return 0.0
    addresses = max(1, int(num_addresses))
    mean_per_address = ops / addresses
    # Balls-in-bins: max bin ~ mean + sqrt(mean) for the loads we see.
    hottest = mean_per_address + np.sqrt(mean_per_address)
    return float(hottest * cycles_per_op)
