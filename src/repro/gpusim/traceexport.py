"""Export a traversal timeline as a Chrome trace (chrome://tracing /
Perfetto JSON).

Each kernel launch becomes a duration event on a per-kernel-name row;
transfers get their own row; iteration boundaries are instant events.
Load the produced file at https://ui.perfetto.dev or chrome://tracing
to scrub through a traversal's kernels visually.
"""

from __future__ import annotations

import json
import os
from typing import List, Optional, Union

from repro.gpusim.timeline import Timeline

__all__ = [
    "timeline_to_trace_events",
    "export_chrome_trace",
    "iteration_start_times",
]

#: Chrome traces use microseconds
_US = 1e6


def iteration_start_times(timeline: Timeline) -> dict:
    """Map each iteration number to its start on the simulated axis
    (seconds), matching :func:`timeline_to_trace_events`' layout: the
    opening host-to-device transfers first, then the kernel stream laid
    end-to-end.  Used to place decision and fault markers from a
    :class:`~repro.core.telemetry.DecisionTrace` on the same timeline
    (:mod:`repro.obs.trace`)."""
    cursor = sum(t.seconds for t in timeline.transfers if t.direction == "h2d")
    starts = {}
    for record in timeline.kernels:
        if record.iteration not in starts:
            starts[record.iteration] = cursor
        cursor += record.cost.seconds
    return starts


def timeline_to_trace_events(
    timeline: Timeline, *, process_name: str = "simulated GPU"
) -> List[dict]:
    """Convert a :class:`Timeline` to Chrome trace-event dicts.

    Kernels are laid end-to-end on the simulated-time axis in launch
    order (the simulator prices kernels serially, which is how the
    traversal's dependent kernels execute); transfers occupy a separate
    track, placed before/after the kernel stream they bracket.
    """
    events: List[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "args": {"name": process_name},
        },
        {"name": "thread_name", "ph": "M", "pid": 1, "tid": 1,
         "args": {"name": "kernels"}},
        {"name": "thread_name", "ph": "M", "pid": 1, "tid": 2,
         "args": {"name": "transfers"}},
    ]

    cursor = 0.0
    # Opening transfers (H2D) come first on the transfer track.
    kernel_records = timeline.kernels
    transfers = timeline.transfers
    h2d = [t for t in transfers if t.direction == "h2d"]
    d2h = [t for t in transfers if t.direction == "d2h"]

    for t in h2d:
        events.append(
            {
                "name": f"h2d {t.num_bytes}B",
                "ph": "X",
                "pid": 1,
                "tid": 2,
                "ts": cursor * _US,
                "dur": t.seconds * _US,
                "args": {"bytes": t.num_bytes},
            }
        )
        cursor += t.seconds

    last_iteration: Optional[int] = None
    for record in kernel_records:
        if record.iteration != last_iteration:
            events.append(
                {
                    "name": f"iteration {record.iteration}",
                    "ph": "i",
                    "pid": 1,
                    "tid": 1,
                    "ts": cursor * _US,
                    # Global scope: Perfetto draws the marker across every
                    # track, not just this thread's row — iteration
                    # boundaries delimit the whole traversal.
                    "s": "g",
                }
            )
            last_iteration = record.iteration
        cost = record.cost
        events.append(
            {
                "name": record.tally.name,
                "ph": "X",
                "pid": 1,
                "tid": 1,
                "ts": cursor * _US,
                "dur": cost.seconds * _US,
                "args": {
                    "iteration": record.iteration,
                    "variant": record.variant or "-",
                    "blocks": record.tally.launch.grid_blocks,
                    "threads_per_block": record.tally.launch.threads_per_block,
                    "issue_us": cost.issue_seconds * _US,
                    "memory_us": cost.memory_seconds * _US,
                    "atomic_us": cost.atomic_seconds * _US,
                    "occupancy": round(cost.occupancy, 3),
                    "simt_efficiency": round(record.tally.simt_efficiency, 3),
                },
            }
        )
        cursor += cost.seconds

    for t in d2h:
        events.append(
            {
                "name": f"d2h {t.num_bytes}B",
                "ph": "X",
                "pid": 1,
                "tid": 2,
                "ts": cursor * _US,
                "dur": t.seconds * _US,
                "args": {"bytes": t.num_bytes},
            }
        )
        cursor += t.seconds

    return events


def export_chrome_trace(
    timeline: Timeline,
    path: Union[str, os.PathLike],
    *,
    process_name: str = "simulated GPU",
) -> str:
    """Write *timeline* as a Chrome trace JSON file; returns the path."""
    events = timeline_to_trace_events(timeline, process_name=process_name)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump({"traceEvents": events, "displayTimeUnit": "ms"}, fh)
    return str(path)
