"""Device-memory accounting: a budget every allocation is charged against.

The paper's variants differ sharply in footprint — a bitmap working set
is a fixed ``O(|V|/8)`` while a queue grows with the frontier — and on
LiveJournal-scale graphs that difference decides whether a traversal
fits on a Tesla C2070 at all.  :class:`MemoryBudget` makes that a
modeled, survivable constraint: the traversal frame charges the CSR
arrays, traversal state, each iteration's materialized working set and
every checkpoint staging copy against a capacity, and an allocation
that does not fit raises :class:`~repro.errors.DeviceOOMError` (or, in
*spill* mode, overflows to host memory and reports the spilled bytes so
the frame can price the extra PCIe traffic).

Categories keep the accounting explainable: ``graph`` and ``state`` are
resident for the whole query and can never spill; ``workset`` and
``checkpoint`` vary per iteration and are the spillable categories the
guarded runner's OOM recovery ladder manipulates.
"""

from __future__ import annotations

import re
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import DeviceError, DeviceOOMError
from repro.gpusim.device import DeviceSpec
from repro.gpusim.memory import workset_device_bytes
from repro.obs.context import current_observer

__all__ = [
    "ALLOCATION_CATEGORIES",
    "SPILLABLE_CATEGORIES",
    "MemoryBudget",
    "MemoryReport",
    "parse_mem_size",
]

#: accounting categories, in rough allocation order within a query
ALLOCATION_CATEGORIES = ("graph", "state", "workset", "checkpoint", "other")

#: categories that may overflow to host memory when spill mode is on
SPILLABLE_CATEGORIES = ("workset", "checkpoint")

_SIZE_PATTERN = re.compile(
    r"^\s*(?P<num>\d+(?:\.\d+)?)\s*(?P<unit>[kmgt]i?b?|b)?\s*$", re.IGNORECASE
)

_UNIT_BYTES = {
    "": 1,
    "b": 1,
    "k": 1024,
    "m": 1024**2,
    "g": 1024**3,
    "t": 1024**4,
}


def parse_mem_size(spec) -> int:
    """Parse a human memory size (``"512M"``, ``"1.5GiB"``, ``4096``)
    into bytes.  Raises :class:`~repro.errors.DeviceError` on nonsense,
    so CLI misuse surfaces as exit code 2, not a traceback."""
    if isinstance(spec, bool):
        raise DeviceError(f"cannot parse memory size from {spec!r}")
    if isinstance(spec, (int, float)):
        if spec <= 0 or float(spec) != int(spec):
            raise DeviceError(f"memory size must be a positive byte count, got {spec!r}")
        return int(spec)
    match = _SIZE_PATTERN.match(str(spec))
    if not match:
        raise DeviceError(
            f"cannot parse memory size {spec!r} (expected e.g. '512M', '2G', '4096')"
        )
    unit = (match.group("unit") or "").lower().rstrip("b").rstrip("i")
    nbytes = float(match.group("num")) * _UNIT_BYTES[unit]
    if nbytes < 1:
        raise DeviceError(f"memory size {spec!r} is below one byte")
    return int(nbytes)


@dataclass(frozen=True)
class MemoryReport:
    """Snapshot of a budget's accounting, for telemetry and reports."""

    capacity_bytes: int
    current_bytes: int
    peak_bytes: int
    by_category: Dict[str, int] = field(default_factory=dict)
    peak_by_category: Dict[str, int] = field(default_factory=dict)
    spilled_bytes: int = 0
    spill_events: int = 0
    oom_events: int = 0

    @property
    def peak_pressure(self) -> float:
        if self.capacity_bytes <= 0:
            return 0.0
        return self.peak_bytes / self.capacity_bytes

    def to_dict(self) -> dict:
        return {
            "capacity_bytes": self.capacity_bytes,
            "current_bytes": self.current_bytes,
            "peak_bytes": self.peak_bytes,
            "peak_pressure": round(self.peak_pressure, 4),
            "by_category": dict(self.by_category),
            "peak_by_category": dict(self.peak_by_category),
            "spilled_bytes": self.spilled_bytes,
            "spill_events": self.spill_events,
            "oom_events": self.oom_events,
        }


class MemoryBudget:
    """Tracks simulated device-memory usage against a capacity.

    Parameters
    ----------
    capacity_bytes:
        Budget ceiling; defaults to *device*'s ``global_mem_bytes``.
        Accepts anything :func:`parse_mem_size` accepts.
    device:
        Optional :class:`~repro.gpusim.DeviceSpec` the budget belongs
        to (supplies the default capacity).
    spill:
        When true, allocations in :data:`SPILLABLE_CATEGORIES` that do
        not fit overflow to host memory instead of raising: the device
        keeps what fits and :meth:`allocate` returns the spilled byte
        count so callers can price the PCIe traffic.  Resident
        categories (graph, state) never spill.
    """

    def __init__(
        self,
        capacity_bytes=None,
        *,
        device: Optional[DeviceSpec] = None,
        spill: bool = False,
    ):
        if capacity_bytes is None:
            if device is None:
                raise DeviceError(
                    "MemoryBudget needs a capacity_bytes or a device to derive it from"
                )
            capacity_bytes = device.global_mem_bytes
        self.capacity_bytes = parse_mem_size(capacity_bytes)
        self.device = device
        self.spill = bool(spill)
        self.current_bytes = 0
        self.peak_bytes = 0
        self.by_category: Dict[str, int] = {c: 0 for c in ALLOCATION_CATEGORIES}
        self.peak_by_category: Dict[str, int] = {c: 0 for c in ALLOCATION_CATEGORIES}
        self.spilled_bytes = 0
        self.spill_events = 0
        self.oom_events = 0
        # The one live working set (freed and re-charged every iteration).
        self._workset_device = 0
        self._workset_spilled = 0

    # ------------------------------------------------------------------
    # Core accounting
    # ------------------------------------------------------------------

    @property
    def headroom_bytes(self) -> int:
        return max(0, self.capacity_bytes - self.current_bytes)

    @property
    def pressure(self) -> float:
        """Fraction of capacity currently in use, in [0, 1+)."""
        if self.capacity_bytes <= 0:
            return 0.0
        return self.current_bytes / self.capacity_bytes

    def would_fit(self, nbytes: int) -> bool:
        return int(nbytes) <= self.headroom_bytes

    def allocate(self, nbytes: int, category: str = "other", *, label: str = "") -> int:
        """Charge *nbytes* against the budget; returns the bytes spilled
        to the host (0 when everything landed on the device).

        Raises :class:`~repro.errors.DeviceOOMError` when the request
        does not fit and the category cannot spill.
        """
        nbytes = int(nbytes)
        if nbytes < 0:
            raise DeviceError(f"cannot allocate {nbytes} bytes")
        if category not in self.by_category:
            raise DeviceError(
                f"unknown allocation category {category!r}; "
                f"expected one of {ALLOCATION_CATEGORIES}"
            )
        observer = current_observer()
        spilled = 0
        placed = nbytes
        if nbytes > self.headroom_bytes:
            if not (self.spill and category in SPILLABLE_CATEGORIES):
                self.oom_events += 1
                if observer is not None:
                    observer.metrics.counter("memory.oom_events").inc()
                what = f" for {label}" if label else ""
                raise DeviceOOMError(
                    f"device memory budget exhausted{what}: requested "
                    f"{nbytes:,} bytes in category {category!r} with "
                    f"{self.headroom_bytes:,} of {self.capacity_bytes:,} "
                    f"bytes free ({self.current_bytes:,} in use)"
                )
            placed = self.headroom_bytes
            spilled = nbytes - placed
            self.spilled_bytes += spilled
            self.spill_events += 1
        self.current_bytes += placed
        self.by_category[category] += placed
        self.peak_bytes = max(self.peak_bytes, self.current_bytes)
        self.peak_by_category[category] = max(
            self.peak_by_category[category], self.by_category[category]
        )
        if observer is not None:
            observer.metrics.gauge("memory.current_bytes").set(self.current_bytes)
            observer.metrics.gauge("memory.peak_bytes").set(self.peak_bytes)
            if spilled:
                observer.metrics.counter("memory.spilled_bytes").inc(spilled)
                observer.metrics.counter("memory.spill_events").inc()
        return spilled

    def free(self, nbytes: int, category: str = "other") -> None:
        """Return *nbytes* previously placed on the device."""
        nbytes = int(nbytes)
        if nbytes < 0 or nbytes > self.by_category.get(category, 0):
            raise DeviceError(
                f"cannot free {nbytes} bytes from category {category!r} "
                f"holding {self.by_category.get(category, 0)}"
            )
        self.current_bytes -= nbytes
        self.by_category[category] -= nbytes
        observer = current_observer()
        if observer is not None:
            observer.metrics.gauge("memory.current_bytes").set(self.current_bytes)

    @contextmanager
    def transient(self, nbytes: int, category: str = "other", *, label: str = ""):
        """Charge an allocation for the duration of a ``with`` block
        (checkpoint staging buffers); yields the spilled byte count."""
        spilled = self.allocate(nbytes, category, label=label)
        try:
            yield spilled
        finally:
            self.free(int(nbytes) - spilled, category)

    # ------------------------------------------------------------------
    # Working-set accounting (one live workset, re-charged per iteration)
    # ------------------------------------------------------------------

    def charge_workset(
        self,
        representation,
        workset_size: int,
        num_nodes: int,
        *,
        entry_bytes: int = 4,
    ) -> int:
        """Replace the live working-set charge with this iteration's
        materialized representation; returns the bytes spilled to host
        (0 normally).  Raises :class:`~repro.errors.DeviceOOMError`
        when the workset does not fit and spill mode is off."""
        nbytes = workset_device_bytes(
            representation, workset_size, num_nodes, entry_bytes=entry_bytes
        )
        self.release_workset()
        code = getattr(representation, "value", representation)
        spilled = self.allocate(
            nbytes, "workset", label=f"{code} workset of {workset_size:,} elements"
        )
        self._workset_device = nbytes - spilled
        self._workset_spilled = spilled
        return spilled

    def release_workset(self) -> None:
        """Free the live working-set charge (end of query, or right
        before the next iteration's charge)."""
        if self._workset_device:
            self.free(self._workset_device, "workset")
        self._workset_device = 0
        self._workset_spilled = 0

    def workset_headroom_bytes(self) -> int:
        """Headroom available to the *next* working set — the current
        one is freed before its successor is charged, so its device
        bytes come back."""
        return self.headroom_bytes + self._workset_device

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------

    def report(self) -> MemoryReport:
        return MemoryReport(
            capacity_bytes=self.capacity_bytes,
            current_bytes=self.current_bytes,
            peak_bytes=self.peak_bytes,
            by_category=dict(self.by_category),
            peak_by_category=dict(self.peak_by_category),
            spilled_bytes=self.spilled_bytes,
            spill_events=self.spill_events,
            oom_events=self.oom_events,
        )

    def __repr__(self) -> str:
        return (
            f"MemoryBudget(capacity={self.capacity_bytes:,}, "
            f"used={self.current_bytes:,}, peak={self.peak_bytes:,}, "
            f"spill={self.spill})"
        )
