"""Warp-granularity cost aggregation.

In a SIMT processor every lane of a warp executes in lockstep, so a
warp's cost is the *maximum* of its lanes' costs: lanes that finished
early (low-outdegree nodes) idle while the heaviest lane (a hub node)
walks its adjacency list.  This is the mechanism behind the paper's
intra-iteration work imbalance (Section III.B) and the reason
thread-mapping suffers on skewed degree distributions.

All helpers are vectorized: given a per-thread cost array in thread-id
order, they pad to a warp multiple and reduce per 32-lane row.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["warp_reduce", "WarpProfile", "profile_warps"]


def _pad_to_warps(per_thread: np.ndarray, warp_size: int) -> np.ndarray:
    """Reshape a per-thread array to (num_warps, warp_size), zero-padded."""
    n = per_thread.size
    num_warps = -(-n // warp_size) if n else 0
    if num_warps == 0:
        return per_thread.reshape(0, warp_size)
    padded = np.zeros(num_warps * warp_size, dtype=np.float64)
    padded[:n] = per_thread
    return padded.reshape(num_warps, warp_size)


def warp_reduce(per_thread, warp_size: int = 32, how: str = "max") -> np.ndarray:
    """Per-warp reduction of a per-thread cost array.

    ``how='max'`` models SIMT lockstep (divergence penalty); ``how='sum'``
    gives the useful-work total used for utilization accounting.
    """
    arr = np.asarray(per_thread, dtype=np.float64).ravel()
    rows = _pad_to_warps(arr, warp_size)
    if how == "max":
        return rows.max(axis=1) if rows.size else np.zeros(0)
    if how == "sum":
        return rows.sum(axis=1) if rows.size else np.zeros(0)
    raise ValueError(f"unknown reduction {how!r}")


@dataclass(frozen=True)
class WarpProfile:
    """Aggregate SIMT execution profile of one kernel's thread grid."""

    num_warps: int
    #: sum over warps of the warp-max lane cost — cycles the SMs issue
    issue_cycles: float
    #: sum over all lanes of their individual cost — useful work
    useful_cycles: float
    #: largest single-warp cost — a lower bound on kernel runtime
    max_warp_cycles: float

    warp_size: int = 32

    @property
    def simt_efficiency(self) -> float:
        """Useful lane-cycles over issued lane-cycles (1.0 = no divergence)."""
        issued_lane_cycles = self.issue_cycles * self.warp_size
        if issued_lane_cycles == 0:
            return 1.0
        return min(1.0, self.useful_cycles / issued_lane_cycles)


def profile_warps(per_thread, warp_size: int = 32) -> WarpProfile:
    """Build a :class:`WarpProfile` from a per-thread cost array.

    The array must be ordered by thread id, because warp composition —
    which 32 threads share lockstep — is exactly what creates or avoids
    divergence.
    """
    arr = np.asarray(per_thread, dtype=np.float64).ravel()
    rows = _pad_to_warps(arr, warp_size)
    if rows.size == 0:
        return WarpProfile(0, 0.0, 0.0, 0.0, warp_size)
    maxima = rows.max(axis=1)
    return WarpProfile(
        num_warps=rows.shape[0],
        issue_cycles=float(maxima.sum()),
        useful_cycles=float(arr.sum()),
        max_warp_cycles=float(maxima.max()),
        warp_size=warp_size,
    )
