"""Fermi-style occupancy calculation.

Reimplements the logic of the CUDA Occupancy Calculator the paper uses to
pick kernel configurations (Section VII.A): the number of thread-blocks
resident on an SM is the minimum of the block-slot limit, the warp-slot
limit, the register limit and the shared-memory limit; occupancy is
resident warps over the warp-slot maximum.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.errors import LaunchError
from repro.gpusim.device import DeviceSpec

__all__ = ["OccupancyResult", "occupancy"]


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def _round_up(value: int, granularity: int) -> int:
    return _ceil_div(value, granularity) * granularity


@dataclass(frozen=True)
class OccupancyResult:
    """Resident blocks/warps per SM for one kernel configuration."""

    blocks_per_sm: int
    warps_per_sm: int
    threads_per_sm: int
    occupancy: float
    limiter: str

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{self.blocks_per_sm} blocks/SM, {self.warps_per_sm} warps/SM "
            f"({self.occupancy:.0%}, limited by {self.limiter})"
        )


def occupancy(
    device: DeviceSpec,
    threads_per_block: int,
    *,
    registers_per_thread: int = 20,
    shared_mem_per_block: int = 0,
) -> OccupancyResult:
    """Occupancy of a kernel with the given per-block resource usage.

    ``registers_per_thread`` defaults to 20, typical of the paper-era
    graph kernels (simple integer address arithmetic plus a few live
    values).  Results are memoized — the traversal frame queries the same
    handful of configurations millions of times.
    """
    return _occupancy_cached(
        device, threads_per_block, registers_per_thread, shared_mem_per_block
    )


@lru_cache(maxsize=4096)
def _occupancy_cached(
    device: DeviceSpec,
    threads_per_block: int,
    registers_per_thread: int,
    shared_mem_per_block: int,
) -> OccupancyResult:
    if threads_per_block < 1 or threads_per_block > device.max_threads_per_block:
        raise LaunchError(
            f"threads_per_block must be in [1, {device.max_threads_per_block}], "
            f"got {threads_per_block}"
        )
    if registers_per_thread < 0:
        raise LaunchError("registers_per_thread must be >= 0")
    if shared_mem_per_block < 0:
        raise LaunchError("shared_mem_per_block must be >= 0")

    warps_per_block = _ceil_div(threads_per_block, device.warp_size)

    limits = {}
    limits["blocks"] = device.max_blocks_per_sm
    limits["warps"] = device.max_warps_per_sm // warps_per_block
    limits["threads"] = device.max_threads_per_sm // threads_per_block

    if registers_per_thread > 0:
        # Fermi allocates registers per warp at `register_alloc_unit`
        # granularity.
        regs_per_warp = _round_up(
            registers_per_thread * device.warp_size, device.register_alloc_unit
        )
        regs_per_block = regs_per_warp * warps_per_block
        limits["registers"] = device.registers_per_sm // regs_per_block
    if shared_mem_per_block > 0:
        smem = _round_up(shared_mem_per_block, device.shared_alloc_unit)
        limits["shared_memory"] = device.shared_mem_per_sm_bytes // smem

    limiter = min(limits, key=lambda k: limits[k])
    blocks = max(0, limits[limiter])
    warps = blocks * warps_per_block
    return OccupancyResult(
        blocks_per_sm=blocks,
        warps_per_sm=warps,
        threads_per_sm=blocks * threads_per_block,
        occupancy=warps / device.max_warps_per_sm,
        limiter=limiter,
    )
