"""Calibrating the cost model to a target machine's crossovers.

The simulator ships calibrated to the paper's anchors (see
``docs/simulator.md``), but a user reproducing on *their* hardware will
measure different T2/T3 crossovers.  This module inverts the model:
given a measured crossover, it solves for the `CostParams` coefficient
that reproduces it, by bisection over the same pricing code the
traversals use — so a calibrated simulator is consistent end-to-end.

- T2 (thread-vs-block crossover in working-set size) is governed by the
  latency-hiding warp count: thread mapping supplies |WS|/32 working
  warps while block mapping supplies ~deg x |WS|/32, so the size at
  which thread mapping stops paying the latency penalty *is* T2.
- T3 (queue-vs-bitmap crossover as a working-set fraction) is governed
  by the same-address atomic cost: the queue's per-element atomic
  against the bitmap's per-node sweep.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import TuningError
from repro.graph.csr import CSRGraph
from repro.gpusim.device import DeviceSpec, TESLA_C2070
from repro.gpusim.kernel import CostModel, CostParams
from repro.kernels import costs as kcosts
from repro.kernels.mapping import ComputationShape, computation_tally
from repro.kernels.variants import Mapping, WorksetRepr
from repro.kernels.workset import workset_gen_tallies

__all__ = [
    "measured_t3_crossover",
    "calibrate_atomic_cost",
]


def _bitmap_vs_queue_gap(
    graph: CSRGraph,
    fraction: float,
    params: CostParams,
    device: DeviceSpec,
    rng: np.random.Generator,
) -> float:
    """Bitmap-minus-queue per-iteration cost at the given working-set
    fraction (negative means the bitmap is already cheaper)."""
    n = graph.num_nodes
    size = max(1, int(n * fraction))
    nodes = np.sort(rng.choice(n, size=size, replace=False))
    degrees = graph.out_degrees[nodes]
    model = CostModel(device, params)
    shape = ComputationShape(
        name="calib",
        num_nodes=n,
        active_ids=nodes,
        degrees=degrees,
        edge_cost=kcosts.C_EDGE,
        improved=int(degrees.sum() // 2),
        updated_count=max(1, size // 2),
    )
    out = {}
    for wsr in (WorksetRepr.BITMAP, WorksetRepr.QUEUE):
        seconds = model.price(
            computation_tally(shape, Mapping.THREAD, wsr, 192, device)
        ).seconds
        for tally in workset_gen_tallies(n, size, wsr, device):
            seconds += model.price(tally).seconds
        out[wsr] = seconds
    return out[WorksetRepr.BITMAP] - out[WorksetRepr.QUEUE]


def measured_t3_crossover(
    graph: CSRGraph,
    *,
    params: Optional[CostParams] = None,
    device: DeviceSpec = TESLA_C2070,
    seed: int = 0,
    tolerance: float = 1e-3,
) -> float:
    """The working-set fraction where the bitmap overtakes the queue
    under the given cost parameters (bisection; NaN-free by clamping to
    the probe range [1/n, 0.5])."""
    params = params or CostParams()
    rng = np.random.default_rng(seed)
    lo, hi = 1.0 / max(2, graph.num_nodes), 0.5
    gap_lo = _bitmap_vs_queue_gap(graph, lo, params, device, rng)
    gap_hi = _bitmap_vs_queue_gap(graph, hi, params, device, rng)
    if gap_lo <= 0:
        return lo  # bitmap already wins at the smallest working set
    if gap_hi >= 0:
        return hi  # queue wins across the whole probe range
    while hi - lo > tolerance:
        mid = (lo + hi) / 2
        if _bitmap_vs_queue_gap(graph, mid, params, device, rng) > 0:
            lo = mid  # queue still ahead: crossover is to the right
        else:
            hi = mid
    return (lo + hi) / 2


def calibrate_atomic_cost(
    graph: CSRGraph,
    target_t3_fraction: float,
    *,
    base_params: Optional[CostParams] = None,
    device: DeviceSpec = TESLA_C2070,
    seed: int = 0,
    bounds: Tuple[float, float] = (0.25, 64.0),
    iterations: int = 24,
) -> CostParams:
    """Solve for ``atomic_cycles_per_op`` so the simulator's T3 crossover
    matches a measured *target_t3_fraction* (e.g. the paper's 0.06-0.13
    band on real Fermi hardware).

    The crossover fraction decreases monotonically in the atomic cost
    (costlier atomics make the queue lose earlier), so bisection applies.
    """
    if not 0 < target_t3_fraction < 0.5:
        raise TuningError(
            f"target_t3_fraction must be in (0, 0.5), got {target_t3_fraction}"
        )
    base = base_params or CostParams()
    lo, hi = bounds
    if lo <= 0 or hi <= lo:
        raise TuningError(f"invalid bounds {bounds}")

    def crossover_at(atomic: float) -> float:
        params = base.with_overrides(atomic_cycles_per_op=atomic)
        return measured_t3_crossover(
            graph, params=params, device=device, seed=seed
        )

    x_lo, x_hi = crossover_at(lo), crossover_at(hi)
    if not (x_hi <= target_t3_fraction <= x_lo):
        raise TuningError(
            f"target {target_t3_fraction:.3f} outside achievable crossover "
            f"range [{x_hi:.3f}, {x_lo:.3f}] for atomic cost in {bounds}"
        )
    for _ in range(iterations):
        mid = (lo + hi) / 2
        if crossover_at(mid) > target_t3_fraction:
            lo = mid  # crossover too far right -> need costlier atomics
        else:
            hi = mid
    return base.with_overrides(atomic_cycles_per_op=(lo + hi) / 2)
