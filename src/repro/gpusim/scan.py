"""Prefix scan (Blelchoch work-efficient scan) — functional + tally.

Merrill et al. replace the queue-generation atomics with prefix scans;
the paper cites this as an orthogonal optimization (Section V.C).  We
implement it as the scan-based working-set generation ablation: an
exclusive scan over the update flags yields each set element's queue
index with no atomics, at the price of two extra sweeps over the data.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.gpusim.device import DeviceSpec
from repro.gpusim.kernel import KernelTally
from repro.gpusim.launch import LaunchConfig

__all__ = ["exclusive_scan", "scan_tallies"]

#: warp instructions per element-step of the up/down sweep
_STEP_COST = 3.0


def exclusive_scan(values: np.ndarray) -> np.ndarray:
    """Functional exclusive prefix sum (what the device would compute)."""
    arr = np.asarray(values, dtype=np.int64).ravel()
    out = np.zeros(arr.size, dtype=np.int64)
    if arr.size > 1:
        np.cumsum(arr[:-1], out=out[1:])
    return out


def scan_tallies(
    n: int, device: DeviceSpec, *, threads_per_block: int = 256, name: str = "scan"
) -> List[KernelTally]:
    """Tallies for a work-efficient exclusive scan of *n* elements.

    Three launches in the standard multi-block scheme: per-block scan,
    scan of the block sums (recursively flattened into one tally since
    block counts are tiny), and the uniform add.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if n == 0:
        return []
    per_block = 2 * threads_per_block
    blocks = max(1, -(-n // per_block))
    launch = LaunchConfig(blocks, threads_per_block)
    warps_per_block = launch.warps_per_block(device)
    steps = 2 * int(np.ceil(np.log2(max(2, per_block))))  # up + down sweep
    elem_trans = float(np.ceil(n * 4 / device.transaction_bytes))

    block_scan = KernelTally(
        name=f"{name}[block]",
        launch=launch,
        issue_cycles=float(blocks * warps_per_block * steps * _STEP_COST),
        useful_lane_cycles=float(2 * n * _STEP_COST),
        max_block_cycles=float(warps_per_block * steps * _STEP_COST),
        mem_transactions=2 * elem_trans + blocks,
        active_threads=n,
    )
    sums_scan = KernelTally(
        name=f"{name}[sums]",
        launch=LaunchConfig(1, threads_per_block),
        issue_cycles=float(warps_per_block * steps * _STEP_COST),
        useful_lane_cycles=float(2 * blocks * _STEP_COST),
        max_block_cycles=float(warps_per_block * steps * _STEP_COST),
        mem_transactions=float(2 * np.ceil(blocks * 4 / device.transaction_bytes)),
        active_threads=blocks,
    )
    uniform_add = KernelTally(
        name=f"{name}[add]",
        launch=launch,
        issue_cycles=float(blocks * warps_per_block * _STEP_COST),
        useful_lane_cycles=float(n * _STEP_COST),
        max_block_cycles=float(warps_per_block * _STEP_COST),
        mem_transactions=2 * elem_trans,
        active_threads=n,
    )
    if blocks == 1:
        return [block_scan]
    return [block_scan, sums_scan, uniform_add]
