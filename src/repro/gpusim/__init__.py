"""A functional + timing simulator for SIMT (CUDA-class) GPUs.

The paper runs on an NVIDIA Tesla C2070 (Fermi: 14 SMs x 32 cores, warp
size 32, 144 GB/s global memory).  No GPU is available here, so this
package simulates one at the granularity that determines graph-algorithm
performance:

- **warp divergence** — a warp's cost is the *maximum* of its lanes'
  work (``repro.gpusim.warp``), which is what punishes thread-mapping on
  skewed outdegree distributions;
- **memory coalescing** — contiguous accesses collapse into 128-byte
  transactions, scattered ones do not (``repro.gpusim.memory``);
- **atomic serialization** — same-address atomics (queue insertion
  indices) serialize (``repro.gpusim.atomics``);
- **SM scheduling and occupancy** — blocks are scheduled onto a finite
  set of SMs; too little parallelism leaves SMs idle and exposes memory
  latency (``repro.gpusim.smscheduler``, ``repro.gpusim.occupancy``);
- **kernel-launch and PCIe-transfer overheads** — fixed costs that
  dominate traversals with many tiny iterations
  (``repro.gpusim.kernel``, ``repro.gpusim.transfer``).

Kernels in :mod:`repro.kernels` do the *real* computation with NumPy and
hand this package a :class:`~repro.gpusim.kernel.KernelTally` of the
structural quantities above; :class:`~repro.gpusim.kernel.CostModel`
turns a tally into simulated seconds.
"""

from repro.gpusim.allocator import MemoryBudget, MemoryReport, parse_mem_size
from repro.gpusim.device import DeviceSpec, TESLA_C2070, GTX_580, device_registry
from repro.gpusim.interconnect import (
    NVLINK,
    PCIE_P2P,
    InterconnectSpec,
    interconnect_registry,
    peer_transfer_seconds,
)
from repro.gpusim.kernel import CostModel, CostParams, KernelTally
from repro.gpusim.launch import LaunchConfig
from repro.gpusim.occupancy import OccupancyResult, occupancy
from repro.gpusim.sharedmem import conflict_degree
from repro.gpusim.timeline import KernelRecord, Timeline
from repro.gpusim.traceexport import export_chrome_trace
from repro.gpusim.transfer import transfer_seconds

__all__ = [
    "DeviceSpec",
    "TESLA_C2070",
    "GTX_580",
    "device_registry",
    "LaunchConfig",
    "occupancy",
    "OccupancyResult",
    "KernelTally",
    "CostModel",
    "CostParams",
    "MemoryBudget",
    "MemoryReport",
    "parse_mem_size",
    "Timeline",
    "KernelRecord",
    "transfer_seconds",
    "conflict_degree",
    "export_chrome_trace",
    "InterconnectSpec",
    "PCIE_P2P",
    "NVLINK",
    "interconnect_registry",
    "peer_transfer_seconds",
]
