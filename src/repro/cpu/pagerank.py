"""Serial push-based PageRank baseline.

The residual ("push") formulation of PageRank is the canonical
*unordered* algorithm of the Galois line of work the paper builds on:
maintain a residual per node; repeatedly pick any node whose residual
exceeds the tolerance, absorb the residual into its rank, and push
``damping * residual / outdegree`` to each neighbor's residual.  The
result is independent of processing order — exactly the amorphous
pattern of Section II — and equals power-iteration PageRank up to the
tolerance.

Dangling nodes (outdegree 0) absorb their residual: their rank is
correct but the lost mass slightly deflates other ranks relative to the
redistributing formulation; both the CPU and GPU implementations use
the same convention, and tests compare against networkx on
dangling-free graphs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.cpu.costmodel import CpuModel, DEFAULT_CPU
from repro.errors import GraphError
from repro.graph.csr import CSRGraph

__all__ = ["CpuPageRankResult", "cpu_pagerank"]


@dataclass(frozen=True)
class CpuPageRankResult:
    """Ranks plus the operation counts that priced the run."""

    ranks: np.ndarray
    pushes: int
    edges_pushed: int
    seconds: float

    @property
    def total_mass(self) -> float:
        return float(self.ranks.sum())


#: above this edge count the pure-Python FIFO engine is too slow
_FAST_THRESHOLD_EDGES = 100_000


def cpu_pagerank(
    graph: CSRGraph,
    *,
    damping: float = 0.85,
    tolerance: float = 1e-6,
    cpu: CpuModel = DEFAULT_CPU,
    max_pushes: int = 50_000_000,
    method: str = "auto",
) -> CpuPageRankResult:
    """Serial residual-push PageRank.

    ``method="fifo"`` is the exact FIFO-queue engine (pure Python);
    ``method="fast"`` processes whole above-tolerance sweeps with
    vectorized scatter-adds — same fixpoint, same operation counts up
    to processing order.  ``"auto"`` picks by graph size.
    """
    if not 0 < damping < 1:
        raise GraphError(f"damping must be in (0, 1), got {damping}")
    if tolerance <= 0:
        raise GraphError(f"tolerance must be > 0, got {tolerance}")
    if method == "auto":
        method = "fifo" if graph.num_edges <= _FAST_THRESHOLD_EDGES else "fast"
    if method == "fast":
        return _pagerank_fast(graph, damping, tolerance, cpu, max_pushes)
    if method != "fifo":
        raise ValueError(f"unknown method {method!r}")
    n = graph.num_nodes
    if n == 0:
        return CpuPageRankResult(np.empty(0), 0, 0, 0.0)
    offsets, cols = graph.row_offsets, graph.col_indices
    rank = np.zeros(n, dtype=np.float64)
    residual = np.full(n, (1.0 - damping) / n, dtype=np.float64)
    in_queue = np.ones(n, dtype=bool)
    queue = deque(range(n))

    pushes = 0
    edges = 0
    while queue:
        if pushes >= max_pushes:
            raise GraphError(f"pagerank exceeded {max_pushes} pushes")
        u = queue.popleft()
        in_queue[u] = False
        r = residual[u]
        if r < tolerance:
            continue
        pushes += 1
        rank[u] += r
        residual[u] = 0.0
        lo, hi = offsets[u], offsets[u + 1]
        deg = hi - lo
        if deg == 0:
            continue
        share = damping * r / deg
        for i in range(lo, hi):
            v = int(cols[i])
            edges += 1
            residual[v] += share
            if residual[v] >= tolerance and not in_queue[v]:
                in_queue[v] = True
                queue.append(v)

    seconds = (
        n * cpu.init_per_node_s
        + pushes * (cpu.node_visit_s + cpu.update_s)
        + edges * cpu.edge_scan_s
    )
    return CpuPageRankResult(
        ranks=rank, pushes=pushes, edges_pushed=edges, seconds=seconds
    )


def _pagerank_fast(
    graph: CSRGraph,
    damping: float,
    tolerance: float,
    cpu: CpuModel,
    max_pushes: int,
) -> CpuPageRankResult:
    """Sweep-synchronous push PageRank with vectorized scatter-adds."""
    from repro.graph.properties import _ragged_gather_indices

    n = graph.num_nodes
    if n == 0:
        return CpuPageRankResult(np.empty(0), 0, 0, 0.0)
    offsets, cols = graph.row_offsets, graph.col_indices
    degrees = graph.out_degrees
    rank = np.zeros(n, dtype=np.float64)
    residual = np.full(n, (1.0 - damping) / n, dtype=np.float64)
    pushes = 0
    edges = 0
    while True:
        frontier = np.flatnonzero(residual >= tolerance)
        if frontier.size == 0:
            break
        if pushes >= max_pushes:
            raise GraphError(f"pagerank exceeded {max_pushes} pushes")
        pushes += int(frontier.size)
        r = residual[frontier]
        rank[frontier] += r
        residual[frontier] = 0.0
        deg = degrees[frontier]
        has_out = deg > 0
        src = frontier[has_out]
        if src.size:
            idx = _ragged_gather_indices(offsets[src], offsets[src + 1])
            edges += int(idx.size)
            share = np.repeat(damping * r[has_out] / deg[has_out], deg[has_out])
            np.add.at(residual, cols[idx], share)
    seconds = (
        n * cpu.init_per_node_s
        + pushes * (cpu.node_visit_s + cpu.update_s)
        + edges * cpu.edge_scan_s
    )
    return CpuPageRankResult(
        ranks=rank, pushes=pushes, edges_pushed=edges, seconds=seconds
    )
