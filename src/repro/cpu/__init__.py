"""Serial CPU baselines: the reference implementations the paper's
speedup tables divide by.

- :mod:`repro.cpu.bfs` — FIFO breadth-first search;
- :mod:`repro.cpu.sssp` — Dijkstra with a binary heap (the paper's SSSP
  baseline) and Bellman-Ford (the unordered counterpart);
- :mod:`repro.cpu.costmodel` — a calibrated per-operation cost model that
  expresses CPU runtime in the same simulated seconds as the GPU
  simulator, so speedup ratios are meaningful.

The algorithms are *real* (they produce the oracle levels/distances used
by the test suite); only their runtime is modelled rather than measured,
because a Python loop's wall-clock tells nothing about a ``gcc -O3``
baseline.
"""

from repro.cpu.bfs import CpuBfsResult, cpu_bfs
from repro.cpu.cc import CpuCcResult, cpu_connected_components
from repro.cpu.costmodel import CpuModel, DEFAULT_CPU
from repro.cpu.kcore import CpuKCoreResult, cpu_kcore
from repro.cpu.pagerank import CpuPageRankResult, cpu_pagerank
from repro.cpu.sssp import CpuSsspResult, cpu_bellman_ford, cpu_dijkstra
from repro.cpu.triangles import CpuTrianglesResult, cpu_triangles

__all__ = [
    "cpu_bfs",
    "CpuBfsResult",
    "cpu_dijkstra",
    "cpu_bellman_ford",
    "CpuSsspResult",
    "cpu_connected_components",
    "CpuCcResult",
    "cpu_pagerank",
    "CpuPageRankResult",
    "cpu_kcore",
    "cpu_triangles",
    "CpuTrianglesResult",
    "CpuKCoreResult",
    "CpuModel",
    "DEFAULT_CPU",
]
