"""Serial triangle-counting baseline (rank-oriented merge-path).

The reference walks the same degree-rank orientation the GPU spec uses
(:func:`repro.graph.transforms.rank_oriented_adjacency`): each triangle
is found exactly once as a wedge ``u -> v, u -> w`` whose closing edge
``v -> w`` exists in the oriented lists, and is attributed to its
lowest-ranked corner *u*.  Counts are exact integers, so GPU and CPU
values are bit-identical (``cpu_exact``).  Operation counts price the
run on the CPU cost model: one sorted-list intersection per oriented
edge, each costing the merge-path scan of both lists.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cpu.costmodel import CpuModel, DEFAULT_CPU
from repro.graph.csr import CSRGraph
from repro.graph.properties import is_symmetric
from repro.graph.transforms import rank_oriented_adjacency, symmetrize

__all__ = ["CpuTrianglesResult", "cpu_triangles"]


@dataclass(frozen=True)
class CpuTrianglesResult:
    """Per-node pivot counts plus the operation counts that priced the run."""

    #: triangles pivoted at each node (sum == total_triangles)
    counts: np.ndarray
    total_triangles: int
    #: merge-path comparisons performed across all intersections
    edges_scanned: int
    seconds: float


def cpu_triangles(graph: CSRGraph, *, cpu: CpuModel = DEFAULT_CPU) -> CpuTrianglesResult:
    """Count triangles; ``counts[u]`` is the number pivoted at *u*."""
    work = graph if is_symmetric(graph) else symmetrize(graph)
    n = work.num_nodes
    counts = np.zeros(n, dtype=np.int64)
    if n == 0:
        return CpuTrianglesResult(counts, 0, 0, 0.0)
    indptr, indices = rank_oriented_adjacency(work)
    comparisons = 0
    for u in range(n):
        nbrs = indices[indptr[u] : indptr[u + 1]]
        if nbrs.size < 2:
            comparisons += int(nbrs.size)
            continue
        found = 0
        for v in nbrs:
            closing = indices[indptr[v] : indptr[v + 1]]
            comparisons += int(nbrs.size + closing.size)
            if closing.size:
                found += int(
                    np.intersect1d(nbrs, closing, assume_unique=True).size
                )
        counts[u] = found
    total = int(counts.sum())
    seconds = (
        n * (cpu.init_per_node_s + cpu.node_visit_s)
        + comparisons * cpu.edge_scan_s
        + total * cpu.update_s
    )
    return CpuTrianglesResult(
        counts=counts,
        total_triangles=total,
        edges_scanned=comparisons,
        seconds=seconds,
    )
