"""Serial breadth-first search baseline.

Level-synchronous frontier BFS — algorithmically identical to the FIFO
formulation (every node is settled at its minimum hop count) but
vectorized per level so multi-million-node oracles stay fast in Python.
Operation counts feed :class:`repro.cpu.costmodel.CpuModel` to produce
the baseline's simulated runtime.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cpu.costmodel import CpuModel, DEFAULT_CPU
from repro.graph.csr import CSRGraph
from repro.graph.properties import _ragged_gather_indices

__all__ = ["CpuBfsResult", "cpu_bfs"]

UNREACHED = np.int64(-1)


@dataclass(frozen=True)
class CpuBfsResult:
    """Levels plus the operation counts that priced the run."""

    levels: np.ndarray
    nodes_visited: int
    edges_scanned: int
    seconds: float

    @property
    def reached(self) -> int:
        return int((self.levels >= 0).sum())


def cpu_bfs(
    graph: CSRGraph, source: int, *, cpu: CpuModel = DEFAULT_CPU
) -> CpuBfsResult:
    """Serial BFS from *source*; levels are -1 for unreachable nodes."""
    graph._check_node(source)
    n = graph.num_nodes
    offsets, cols = graph.row_offsets, graph.col_indices
    levels = np.full(n, UNREACHED, dtype=np.int64)
    levels[source] = 0
    frontier = np.array([source], dtype=np.int64)

    nodes_visited = 0
    edges_scanned = 0
    level = 0
    while frontier.size:
        level += 1
        nodes_visited += int(frontier.size)
        starts = offsets[frontier]
        ends = offsets[frontier + 1]
        edges_scanned += int((ends - starts).sum())
        idx = _ragged_gather_indices(starts, ends)
        if idx.size == 0:
            break
        neigh = cols[idx]
        fresh = np.unique(neigh[levels[neigh] == UNREACHED])
        if fresh.size == 0:
            break
        levels[fresh] = level
        frontier = fresh

    seconds = cpu.bfs_seconds(nodes_visited, edges_scanned, n)
    return CpuBfsResult(
        levels=levels,
        nodes_visited=nodes_visited,
        edges_scanned=edges_scanned,
        seconds=seconds,
    )
