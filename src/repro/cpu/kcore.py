"""Serial k-core decomposition baseline.

The *coreness* (core number) of a node is the largest k such that the
node belongs to a subgraph in which every node has degree >= k.  The
serial baseline peels by increasing k: repeatedly delete nodes whose
remaining degree is below k, then advance k — operation counts price
the run on the CPU cost model.  Direction is ignored (degree = degree
in the symmetrized graph), matching the GPU kernels and
``networkx.core_number``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cpu.costmodel import CpuModel, DEFAULT_CPU
from repro.graph.csr import CSRGraph
from repro.graph.properties import _ragged_gather_indices, is_symmetric
from repro.graph.transforms import symmetrize

__all__ = ["CpuKCoreResult", "cpu_kcore"]


@dataclass(frozen=True)
class CpuKCoreResult:
    """Core numbers plus the operation counts that priced the run."""

    coreness: np.ndarray
    max_core: int
    nodes_peeled: int
    edges_scanned: int
    seconds: float


def cpu_kcore(graph: CSRGraph, *, cpu: CpuModel = DEFAULT_CPU) -> CpuKCoreResult:
    """Peeling k-core decomposition; returns per-node core numbers."""
    work = graph if is_symmetric(graph) else symmetrize(graph)
    n = work.num_nodes
    if n == 0:
        return CpuKCoreResult(np.empty(0, dtype=np.int64), 0, 0, 0, 0.0)
    offsets, cols = work.row_offsets, work.col_indices
    degree = work.out_degrees.copy()
    alive = np.ones(n, dtype=bool)
    coreness = np.zeros(n, dtype=np.int64)

    peeled = 0
    edges = 0
    k = 1
    while alive.any():
        frontier = np.flatnonzero(alive & (degree < k))
        while frontier.size:
            peeled += int(frontier.size)
            coreness[frontier] = k - 1
            alive[frontier] = False
            idx = _ragged_gather_indices(offsets[frontier], offsets[frontier + 1])
            edges += int(idx.size)
            if idx.size:
                neigh = cols[idx]
                np.subtract.at(degree, neigh, 1)
            frontier = np.flatnonzero(alive & (degree < k))
        k += 1

    seconds = (
        n * cpu.init_per_node_s
        + peeled * (cpu.node_visit_s + cpu.update_s)
        + edges * cpu.edge_scan_s
    )
    return CpuKCoreResult(
        coreness=coreness,
        max_core=int(coreness.max()) if n else 0,
        nodes_peeled=peeled,
        edges_scanned=edges,
        seconds=seconds,
    )
