"""Calibrated serial-CPU cost model.

The paper's baseline is a serial C++ implementation compiled with
``gcc -O3`` on an Intel Core i7 (Section VII).  We model its runtime
from operation counts: a cache-resident graph traversal on that class of
machine sustains on the order of 10^8 edge relaxations per second, and
binary-heap operations cost a few tens of nanoseconds each.  The
constants live in :class:`CpuModel` so experiments can model faster or
slower hosts; defaults approximate the paper's platform.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["CpuModel", "DEFAULT_CPU"]


@dataclass(frozen=True)
class CpuModel:
    """Per-operation costs of the serial baseline, in seconds."""

    name: str = "Core i7 (gcc -O3)"
    #: visiting a node: pop from queue, read offsets
    node_visit_s: float = 8.0e-9
    #: scanning one edge: load neighbor id + its state, compare
    edge_scan_s: float = 5.0e-9
    #: updating a node's level/distance + pushing to the FIFO
    update_s: float = 6.0e-9
    #: one binary-heap push or pop-fixup step (per comparison/swap)
    heap_step_s: float = 9.0e-9
    #: one-time setup per traversal (allocations, initialization) per node
    init_per_node_s: float = 1.2e-9

    def with_overrides(self, **kwargs) -> "CpuModel":
        return replace(self, **kwargs)

    # ------------------------------------------------------------------
    # Aggregate formulas used by the baseline implementations
    # ------------------------------------------------------------------

    def bfs_seconds(self, nodes_visited: int, edges_scanned: int, num_nodes: int) -> float:
        """FIFO BFS: every reached node visited once, every out-edge scanned."""
        return (
            num_nodes * self.init_per_node_s
            + nodes_visited * (self.node_visit_s + self.update_s)
            + edges_scanned * self.edge_scan_s
        )

    def dijkstra_seconds(
        self,
        nodes_visited: int,
        edges_scanned: int,
        heap_pushes: int,
        heap_pops: int,
        max_heap_size: int,
        num_nodes: int,
    ) -> float:
        """Binary-heap Dijkstra: pushes/pops cost log2(heap size) steps."""
        import math

        log_h = math.log2(max(2, max_heap_size))
        return (
            num_nodes * self.init_per_node_s
            + nodes_visited * self.node_visit_s
            + edges_scanned * self.edge_scan_s
            + (heap_pushes + heap_pops) * log_h * self.heap_step_s
        )

    def bellman_ford_seconds(
        self, total_relaxations: int, total_node_visits: int, num_nodes: int
    ) -> float:
        """Frontier Bellman-Ford: cost proportional to total work done."""
        return (
            num_nodes * self.init_per_node_s
            + total_node_visits * (self.node_visit_s + self.update_s)
            + total_relaxations * self.edge_scan_s
        )


DEFAULT_CPU = CpuModel()
