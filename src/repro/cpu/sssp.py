"""Serial single-source-shortest-path baselines.

The paper's CPU baseline for SSSP is Dijkstra's algorithm with a binary
heap (Table 3's caption: "serial CPU baseline - Dijkstra's algorithm").
:func:`cpu_dijkstra` offers two engines:

- ``method="heap"`` — a faithful lazy-deletion binary-heap Dijkstra with
  exact operation counts (pushes, pops, max heap size).  Pure Python, so
  it is reserved for small and mid-size graphs.
- ``method="fast"`` — distances via a vectorized settle-order sweep, with
  heap-operation counts reproduced from the relaxation sequence.  Used
  automatically above a size threshold; the counts match the heap engine
  closely (tested) while running orders of magnitude faster.

:func:`cpu_bellman_ford` is the unordered serial counterpart (frontier
Bellman-Ford), used by tests as a second oracle and by the ablation
benches.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Literal

import numpy as np

from repro.cpu.costmodel import CpuModel, DEFAULT_CPU
from repro.errors import GraphError
from repro.graph.csr import CSRGraph
from repro.graph.properties import _ragged_gather_indices

__all__ = ["CpuSsspResult", "cpu_dijkstra", "cpu_bellman_ford"]

INF = np.float64(np.inf)

#: above this edge count the pure-Python heap engine is too slow
_FAST_THRESHOLD_EDGES = 200_000


@dataclass(frozen=True)
class CpuSsspResult:
    """Distances plus the operation counts that priced the run."""

    distances: np.ndarray
    nodes_visited: int
    edges_scanned: int
    heap_pushes: int
    heap_pops: int
    max_heap_size: int
    seconds: float

    @property
    def reached(self) -> int:
        return int(np.isfinite(self.distances).sum())


def _require_weights(graph: CSRGraph) -> np.ndarray:
    if graph.weights is None:
        raise GraphError(
            f"SSSP requires edge weights; graph {graph.name!r} has none "
            "(use attach_uniform_weights or with_weights)"
        )
    return graph.weights


def cpu_dijkstra(
    graph: CSRGraph,
    source: int,
    *,
    cpu: CpuModel = DEFAULT_CPU,
    method: Literal["auto", "heap", "fast"] = "auto",
) -> CpuSsspResult:
    """Serial Dijkstra from *source*; unreachable nodes get ``inf``."""
    weights = _require_weights(graph)
    graph._check_node(source)
    if method == "auto":
        method = "heap" if graph.num_edges <= _FAST_THRESHOLD_EDGES else "fast"
    if method == "heap":
        return _dijkstra_heap(graph, weights, source, cpu)
    if method == "fast":
        return _dijkstra_fast(graph, weights, source, cpu)
    raise ValueError(f"unknown method {method!r}")


def _dijkstra_heap(
    graph: CSRGraph, weights: np.ndarray, source: int, cpu: CpuModel
) -> CpuSsspResult:
    n = graph.num_nodes
    offsets = graph.row_offsets
    cols = graph.col_indices
    dist = np.full(n, INF, dtype=np.float64)
    dist[source] = 0.0
    settled = np.zeros(n, dtype=bool)
    heap = [(0.0, source)]
    pushes = pops = visited = edges = 0
    max_heap = 1
    while heap:
        d, u = heapq.heappop(heap)
        pops += 1
        if settled[u]:
            continue
        settled[u] = True
        visited += 1
        lo, hi = offsets[u], offsets[u + 1]
        for i in range(lo, hi):
            edges += 1
            v = int(cols[i])
            nd = d + float(weights[i])
            if nd < dist[v]:
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
                pushes += 1
                max_heap = max(max_heap, len(heap))
    seconds = cpu.dijkstra_seconds(visited, edges, pushes, pops, max_heap, n)
    return CpuSsspResult(
        distances=dist,
        nodes_visited=visited,
        edges_scanned=edges,
        heap_pushes=pushes + 1,  # initial push of the source
        heap_pops=pops,
        max_heap_size=max_heap,
        seconds=seconds,
    )


def _dijkstra_fast(
    graph: CSRGraph, weights: np.ndarray, source: int, cpu: CpuModel
) -> CpuSsspResult:
    """Vectorized settle-order Dijkstra.

    Phase 1 computes exact distances with a frontier Bellman-Ford (cheap
    in NumPy).  Phase 2 replays the relaxations in settle (distance)
    order, batched, to count how many would have improved the tentative
    distance — i.e. how many heap pushes lazy Dijkstra performs.
    """
    n = graph.num_nodes
    offsets, cols = graph.row_offsets, graph.col_indices
    final = _bellman_distances(graph, weights, source)

    reached = np.flatnonzero(np.isfinite(final))
    order = reached[np.argsort(final[reached], kind="stable")]
    visited = int(order.size)
    starts, ends = offsets[order], offsets[order + 1]
    edges = int((ends - starts).sum())

    cur = np.full(n, INF, dtype=np.float64)
    cur[source] = 0.0
    pushes = 1
    # Batched replay: nodes settled in distance order relax their edges
    # against the tentative array.  Batches are small enough that
    # intra-batch double-counting is negligible, and every batch applies
    # its updates before the next (preserving the sequential semantics
    # between batches).
    num_batches = max(1, min(visited, 256))
    for chunk in np.array_split(order, num_batches):
        if chunk.size == 0:
            continue
        s, e = offsets[chunk], offsets[chunk + 1]
        idx = _ragged_gather_indices(s, e)
        if idx.size == 0:
            continue
        dsts = cols[idx]
        cand = np.repeat(final[chunk], (e - s)) + weights[idx]
        improves = cand < cur[dsts]
        pushes += int(improves.sum())
        np.minimum.at(cur, dsts[improves], cand[improves])
    pops = pushes
    max_heap = max(1, pushes - visited + 1)
    seconds = cpu.dijkstra_seconds(visited, edges, pushes, pops, max_heap, n)
    return CpuSsspResult(
        distances=final,
        nodes_visited=visited,
        edges_scanned=edges,
        heap_pushes=pushes,
        heap_pops=pops,
        max_heap_size=max_heap,
        seconds=seconds,
    )


def _bellman_distances(
    graph: CSRGraph, weights: np.ndarray, source: int
) -> np.ndarray:
    """Exact distances via vectorized frontier Bellman-Ford."""
    n = graph.num_nodes
    offsets, cols = graph.row_offsets, graph.col_indices
    dist = np.full(n, INF, dtype=np.float64)
    dist[source] = 0.0
    frontier = np.array([source], dtype=np.int64)
    while frontier.size:
        starts, ends = offsets[frontier], offsets[frontier + 1]
        idx = _ragged_gather_indices(starts, ends)
        if idx.size == 0:
            break
        dsts = cols[idx]
        cand = np.repeat(dist[frontier], (ends - starts)) + weights[idx]
        before = dist[dsts].copy()
        np.minimum.at(dist, dsts, cand)
        improved = dist[dsts] < before
        frontier = np.unique(dsts[improved])
    return dist


def cpu_bellman_ford(
    graph: CSRGraph, source: int, *, cpu: CpuModel = DEFAULT_CPU
) -> CpuSsspResult:
    """Serial frontier Bellman-Ford (the unordered CPU counterpart)."""
    weights = _require_weights(graph)
    graph._check_node(source)
    n = graph.num_nodes
    offsets, cols = graph.row_offsets, graph.col_indices
    dist = np.full(n, INF, dtype=np.float64)
    dist[source] = 0.0
    frontier = np.array([source], dtype=np.int64)
    relaxations = 0
    node_visits = 0
    while frontier.size:
        node_visits += int(frontier.size)
        starts, ends = offsets[frontier], offsets[frontier + 1]
        idx = _ragged_gather_indices(starts, ends)
        relaxations += int(idx.size)
        if idx.size == 0:
            break
        dsts = cols[idx]
        cand = np.repeat(dist[frontier], (ends - starts)) + weights[idx]
        before = dist[dsts].copy()
        np.minimum.at(dist, dsts, cand)
        improved = dist[dsts] < before
        frontier = np.unique(dsts[improved])
    seconds = cpu.bellman_ford_seconds(relaxations, node_visits, n)
    return CpuSsspResult(
        distances=dist,
        nodes_visited=node_visits,
        edges_scanned=relaxations,
        heap_pushes=0,
        heap_pops=0,
        max_heap_size=0,
        seconds=seconds,
    )
