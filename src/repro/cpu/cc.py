"""Serial connected-components baseline (union-find).

Weighted-union with path compression over the edge list — the textbook
serial baseline a GPU label-propagation implementation is measured
against.  Labels are normalized to the minimum node id per component so
results compare directly with the GPU kernels and with
:func:`repro.graph.transforms.weakly_connected_components`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cpu.costmodel import CpuModel, DEFAULT_CPU
from repro.graph.csr import CSRGraph
from repro.graph.transforms import edge_arrays

__all__ = ["CpuCcResult", "cpu_connected_components"]


@dataclass(frozen=True)
class CpuCcResult:
    """Component labels plus the operation counts that priced the run."""

    labels: np.ndarray
    num_components: int
    find_operations: int
    union_operations: int
    seconds: float


def cpu_connected_components(
    graph: CSRGraph, *, cpu: CpuModel = DEFAULT_CPU
) -> CpuCcResult:
    """Weakly connected components via union-find.

    Edge direction is ignored (weak connectivity), matching what the
    GPU label-propagation kernels compute over the symmetrized edges.
    """
    n = graph.num_nodes
    parent = np.arange(n, dtype=np.int64)
    size = np.ones(n, dtype=np.int64)
    finds = 0
    unions = 0

    def find(x: int) -> int:
        nonlocal finds
        root = x
        while parent[root] != root:
            root = parent[root]
            finds += 1
        # Path compression.
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    src, dst, _ = edge_arrays(graph)
    for u, v in zip(src.tolist(), dst.tolist()):
        ru, rv = find(u), find(v)
        finds += 2
        if ru != rv:
            unions += 1
            if size[ru] < size[rv]:
                ru, rv = rv, ru
            parent[rv] = ru
            size[ru] += size[rv]

    # Normalize labels to the minimum node id per component.
    roots = np.array([find(i) for i in range(n)], dtype=np.int64)
    if n:
        comp_min = np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
        np.minimum.at(comp_min, roots, np.arange(n, dtype=np.int64))
        labels = comp_min[roots]
    else:
        labels = np.empty(0, dtype=np.int64)
    num_components = int(np.unique(labels).size) if n else 0

    # Pricing: a find chain step costs about an edge scan (pointer chase);
    # unions are node updates.
    seconds = (
        n * cpu.init_per_node_s
        + finds * cpu.edge_scan_s
        + unions * cpu.update_s
        + n * cpu.node_visit_s
    )
    return CpuCcResult(
        labels=labels,
        num_components=num_components,
        find_operations=finds,
        union_operations=unions,
        seconds=seconds,
    )
