"""Structural graph transforms: symmetrize, relabel, subgraph extraction,
connected components.

These are host-side preprocessing steps; the paper symmetrizes the road
and co-citation networks (they are undirected datasets) and traverses the
giant component of the directed ones.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import GraphError
from repro.graph.builder import from_edge_list
from repro.graph.csr import CSRGraph

__all__ = [
    "symmetrize",
    "rank_oriented_adjacency",
    "relabel",
    "degree_sort_relabel",
    "induced_subgraph",
    "weakly_connected_components",
    "largest_weakly_connected_subgraph",
    "edge_arrays",
]


def edge_arrays(graph: CSRGraph) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
    """Return ``(sources, targets, weights)`` arrays for *graph*'s edges."""
    src = np.repeat(np.arange(graph.num_nodes, dtype=np.int64), graph.out_degrees)
    dst = graph.col_indices.astype(np.int64)
    return src, dst, graph.weights


def symmetrize(graph: CSRGraph) -> CSRGraph:
    """Add the reverse of every edge (deduplicated, min weight kept)."""
    src, dst, w = edge_arrays(graph)
    return from_edge_list(
        src,
        dst,
        w,
        num_nodes=graph.num_nodes,
        name=graph.name,
        symmetric=True,
        dedupe=True,
    )


def relabel(graph: CSRGraph, mapping: np.ndarray) -> CSRGraph:
    """Rename node ids: node *i* becomes ``mapping[i]`` (a permutation)."""
    mapping = np.asarray(mapping, dtype=np.int64)
    n = graph.num_nodes
    if mapping.shape != (n,):
        raise GraphError(f"mapping must have shape ({n},), got {mapping.shape}")
    if not np.array_equal(np.sort(mapping), np.arange(n)):
        raise GraphError("mapping must be a permutation of 0..n-1")
    src, dst, w = edge_arrays(graph)
    return from_edge_list(
        mapping[src], mapping[dst], w, num_nodes=n, name=graph.name
    )


def degree_sort_relabel(
    graph: CSRGraph, *, descending: bool = True
) -> Tuple[CSRGraph, np.ndarray]:
    """Relabel nodes in outdegree order — a divergence-reduction
    preprocessing for thread-mapped kernels.

    A warp's cost is the max of its 32 lanes' outdegrees; after sorting,
    similar-degree nodes share warps, so the sum of per-warp maxima
    approaches the sum of degrees.  (Only helps bitmap working sets,
    whose warp composition follows node ids; queues repack by frontier
    order anyway.)

    Returns ``(relabeled_graph, mapping)`` where ``mapping[old] == new``;
    results on the relabeled graph can be mapped back by indexing:
    ``values_new[mapping]`` gives per-old-node values.
    """
    deg = graph.out_degrees
    order = np.argsort(-deg if descending else deg, kind="stable")
    mapping = np.empty(graph.num_nodes, dtype=np.int64)
    mapping[order] = np.arange(graph.num_nodes)
    return relabel(graph, mapping), mapping


def induced_subgraph(graph: CSRGraph, nodes) -> Tuple[CSRGraph, np.ndarray]:
    """Subgraph induced by *nodes*, with ids compacted to ``0..k-1``.

    Returns ``(subgraph, kept)`` where ``kept[i]`` is the original id of
    the subgraph's node *i*.
    """
    kept = np.unique(np.asarray(nodes, dtype=np.int64))
    if kept.size and (kept[0] < 0 or kept[-1] >= graph.num_nodes):
        raise GraphError("subgraph nodes out of range")
    inverse = np.full(graph.num_nodes, -1, dtype=np.int64)
    inverse[kept] = np.arange(kept.size)
    src, dst, w = edge_arrays(graph)
    mask = (inverse[src] >= 0) & (inverse[dst] >= 0)
    sub_w = w[mask] if w is not None else None
    sub = from_edge_list(
        inverse[src[mask]],
        inverse[dst[mask]],
        sub_w,
        num_nodes=kept.size,
        name=f"{graph.name}[{kept.size}]",
    )
    return sub, kept


def weakly_connected_components(graph: CSRGraph) -> np.ndarray:
    """Component label per node (labels are the min node id per component).

    Implemented as vectorized label propagation over the symmetrized edge
    set: each round every label becomes the minimum over its neighborhood,
    converging in O(diameter) rounds of O(m) work.
    """
    n = graph.num_nodes
    labels = np.arange(n, dtype=np.int64)
    if graph.num_edges == 0:
        return labels
    src, dst, _ = edge_arrays(graph)
    us = np.concatenate([src, dst])
    vs = np.concatenate([dst, src])
    while True:
        # Pull the minimum neighbor label along every (undirected) edge.
        candidate = labels.copy()
        np.minimum.at(candidate, vs, labels[us])
        # Pointer-jump: compress label chains so convergence is fast even
        # on path graphs.
        candidate = candidate[candidate]
        if np.array_equal(candidate, labels):
            return labels
        labels = candidate


def largest_weakly_connected_subgraph(graph: CSRGraph) -> Tuple[CSRGraph, np.ndarray]:
    """The induced subgraph of the largest weakly connected component."""
    labels = weakly_connected_components(graph)
    uniq, counts = np.unique(labels, return_counts=True)
    big = uniq[np.argmax(counts)]
    return induced_subgraph(graph, np.flatnonzero(labels == big))


def rank_oriented_adjacency(graph: CSRGraph) -> Tuple[np.ndarray, np.ndarray]:
    """Degree-rank orientation of an undirected graph, as CSR arrays.

    Every undirected edge ``{u, v}`` is kept once, directed from the
    lower-ranked endpoint to the higher-ranked one under the total
    order ``(degree, id)`` — the standard forward orientation for
    triangle counting: each triangle survives as exactly one wedge
    ``u -> v, u -> w, v -> w`` pivoted at its lowest-ranked corner, and
    the heaviest hubs keep the *shortest* adjacency lists.  Returns
    ``(indptr, indices)`` with each node's neighbor list ascending;
    duplicate input edges and self-loops are dropped.  The GPU spec and
    the CPU reference both count through this exact orientation, which
    is what keeps their per-node counts bit-identical.
    """
    n = graph.num_nodes
    src, dst, _ = edge_arrays(graph)
    deg = graph.out_degrees.astype(np.int64)
    keep = (deg[src] < deg[dst]) | ((deg[src] == deg[dst]) & (src < dst))
    src, dst = src[keep], dst[keep]
    if src.size:
        # Dedupe on the (src, dst) pair and sort by (src, dst) so every
        # per-node neighbor slice comes out ascending.
        key = src * n + dst
        key = np.unique(key)
        src, dst = key // n, key % n
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(src, minlength=n), out=indptr[1:])
    return indptr, dst.astype(np.int64)
