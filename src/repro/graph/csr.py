"""Compressed-sparse-row graph representation.

This mirrors the paper's storage scheme (Section V.A, Figure 7): a *node
vector* (``row_offsets``, length ``n + 1``) indexing into an *edge vector*
(``col_indices``, length ``m``), with an optional parallel ``weights``
array for SSSP.  The i-th adjacency list is
``col_indices[row_offsets[i]:row_offsets[i + 1]]``.

The structure is immutable after construction: arrays are stored with
``writeable=False`` so kernels can safely share views, exactly like the
read-only graph arrays resident in GPU global memory in the original
system.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import GraphError

__all__ = ["CSRGraph"]

# Index dtype used on the simulated device; 32-bit like the CUDA original,
# which is what the memory-transaction model assumes for coalescing math.
INDEX_DTYPE = np.int32
OFFSET_DTYPE = np.int64
WEIGHT_DTYPE = np.float32


class CSRGraph:
    """An immutable directed graph in CSR form.

    Parameters
    ----------
    row_offsets:
        ``int64`` array of length ``num_nodes + 1``; monotonically
        non-decreasing, ``row_offsets[0] == 0`` and
        ``row_offsets[-1] == num_edges``.
    col_indices:
        ``int32`` array of neighbor node ids, length ``num_edges``.
    weights:
        Optional ``float32`` array parallel to ``col_indices``.  Required
        by SSSP; BFS ignores it.
    name:
        Optional label used in reports.
    validate:
        When true (default) the arrays are checked for structural
        consistency; disable only for trusted, hot construction paths.
    """

    __slots__ = ("_row_offsets", "_col_indices", "_weights", "name", "_out_degrees")

    def __init__(
        self,
        row_offsets,
        col_indices,
        weights=None,
        *,
        name: str = "graph",
        validate: bool = True,
    ):
        row_offsets = np.ascontiguousarray(row_offsets, dtype=OFFSET_DTYPE)
        col_indices = np.ascontiguousarray(col_indices, dtype=INDEX_DTYPE)
        if weights is not None:
            weights = np.ascontiguousarray(weights, dtype=WEIGHT_DTYPE)

        if validate:
            self._validate(row_offsets, col_indices, weights)

        for arr in (row_offsets, col_indices, weights):
            if arr is not None:
                arr.setflags(write=False)

        self._row_offsets = row_offsets
        self._col_indices = col_indices
        self._weights = weights
        self.name = name
        self._out_degrees: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _validate(row_offsets, col_indices, weights) -> None:
        if row_offsets.ndim != 1 or row_offsets.size < 1:
            raise GraphError("row_offsets must be a 1-D array of length >= 1")
        if col_indices.ndim != 1:
            raise GraphError("col_indices must be a 1-D array")
        if row_offsets[0] != 0:
            raise GraphError(f"row_offsets[0] must be 0, got {row_offsets[0]}")
        if row_offsets[-1] != col_indices.size:
            raise GraphError(
                f"row_offsets[-1] ({row_offsets[-1]}) must equal "
                f"len(col_indices) ({col_indices.size})"
            )
        if np.any(np.diff(row_offsets) < 0):
            raise GraphError("row_offsets must be non-decreasing")
        n = row_offsets.size - 1
        if col_indices.size:
            lo = col_indices.min()
            hi = col_indices.max()
            if lo < 0 or hi >= n:
                raise GraphError(
                    f"col_indices out of range: [{lo}, {hi}] not within [0, {n - 1}]"
                )
        if weights is not None:
            if weights.shape != col_indices.shape:
                raise GraphError(
                    f"weights shape {weights.shape} must match "
                    f"col_indices shape {col_indices.shape}"
                )
            if not np.all(np.isfinite(weights)):
                raise GraphError("weights must be finite")
            if np.any(weights < 0):
                raise GraphError("negative edge weights are not supported")

    @classmethod
    def empty(cls, num_nodes: int, *, name: str = "empty") -> "CSRGraph":
        """A graph with *num_nodes* nodes and no edges."""
        if num_nodes < 0:
            raise GraphError(f"num_nodes must be >= 0, got {num_nodes}")
        return cls(
            np.zeros(num_nodes + 1, dtype=OFFSET_DTYPE),
            np.empty(0, dtype=INDEX_DTYPE),
            name=name,
        )

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def row_offsets(self) -> np.ndarray:
        """The node vector (read-only view)."""
        return self._row_offsets

    @property
    def col_indices(self) -> np.ndarray:
        """The edge vector (read-only view)."""
        return self._col_indices

    @property
    def weights(self) -> Optional[np.ndarray]:
        """Edge weights parallel to :attr:`col_indices`, or ``None``."""
        return self._weights

    @property
    def num_nodes(self) -> int:
        return self._row_offsets.size - 1

    @property
    def num_edges(self) -> int:
        return self._col_indices.size

    @property
    def has_weights(self) -> bool:
        return self._weights is not None

    @property
    def out_degrees(self) -> np.ndarray:
        """Outdegree of every node (cached, read-only)."""
        if self._out_degrees is None:
            deg = np.diff(self._row_offsets).astype(np.int64)
            deg.setflags(write=False)
            self._out_degrees = deg
        return self._out_degrees

    @property
    def avg_out_degree(self) -> float:
        if self.num_nodes == 0:
            return 0.0
        return self.num_edges / self.num_nodes

    def neighbors(self, node: int) -> np.ndarray:
        """Read-only view of *node*'s adjacency list."""
        self._check_node(node)
        lo = self._row_offsets[node]
        hi = self._row_offsets[node + 1]
        return self._col_indices[lo:hi]

    def edge_weights_of(self, node: int) -> np.ndarray:
        """Weights parallel to :meth:`neighbors` for *node*."""
        if self._weights is None:
            raise GraphError(f"graph {self.name!r} has no edge weights")
        self._check_node(node)
        lo = self._row_offsets[node]
        hi = self._row_offsets[node + 1]
        return self._weights[lo:hi]

    def out_degree(self, node: int) -> int:
        self._check_node(node)
        return int(self._row_offsets[node + 1] - self._row_offsets[node])

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise GraphError(
                f"node {node} out of range for graph with {self.num_nodes} nodes"
            )

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------

    def with_weights(self, weights) -> "CSRGraph":
        """Return a copy of this graph carrying the given edge weights."""
        return CSRGraph(
            self._row_offsets.copy(),
            self._col_indices.copy(),
            np.asarray(weights, dtype=WEIGHT_DTYPE).copy(),
            name=self.name,
        )

    def with_unit_weights(self) -> "CSRGraph":
        """Return a copy whose every edge weight is 1.0 (BFS == SSSP check)."""
        return self.with_weights(np.ones(self.num_edges, dtype=WEIGHT_DTYPE))

    def reverse(self) -> "CSRGraph":
        """Return the transpose graph (every edge u->v becomes v->u)."""
        n, m = self.num_nodes, self.num_edges
        src = np.repeat(np.arange(n, dtype=INDEX_DTYPE), self.out_degrees)
        dst = self._col_indices
        order = np.argsort(dst, kind="stable")
        new_cols = src[order]
        counts = np.bincount(dst, minlength=n)
        new_offsets = np.zeros(n + 1, dtype=OFFSET_DTYPE)
        np.cumsum(counts, out=new_offsets[1:])
        new_weights = self._weights[order] if self._weights is not None else None
        return CSRGraph(
            new_offsets, new_cols, new_weights, name=f"{self.name}^T", validate=False
        )

    # ------------------------------------------------------------------
    # Device footprint (used by the PCIe-transfer model)
    # ------------------------------------------------------------------

    def device_bytes(self) -> int:
        """Bytes the CSR arrays occupy in simulated GPU global memory."""
        total = self._row_offsets.nbytes + self._col_indices.nbytes
        if self._weights is not None:
            total += self._weights.nbytes
        return int(total)

    # ------------------------------------------------------------------
    # Dunder conveniences
    # ------------------------------------------------------------------

    def __repr__(self) -> str:
        w = ", weighted" if self.has_weights else ""
        return (
            f"CSRGraph(name={self.name!r}, nodes={self.num_nodes}, "
            f"edges={self.num_edges}{w})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        if self.num_nodes != other.num_nodes or self.num_edges != other.num_edges:
            return False
        if not np.array_equal(self._row_offsets, other._row_offsets):
            return False
        if not np.array_equal(self._col_indices, other._col_indices):
            return False
        if (self._weights is None) != (other._weights is None):
            return False
        if self._weights is not None and not np.array_equal(
            self._weights, other._weights
        ):
            return False
        return True

    def __hash__(self):  # immutable but large; identity hash is fine
        return id(self)
