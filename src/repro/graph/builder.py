"""Constructing :class:`~repro.graph.csr.CSRGraph` from other forms.

The hot path (:func:`from_edge_list`) is fully vectorized: a stable sort
by source plus a bincount produces the CSR arrays in O(m log m) with no
Python-level loops, which matters for the multi-million-edge SNS-scale
analogues.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import CSRGraph, INDEX_DTYPE, OFFSET_DTYPE, WEIGHT_DTYPE

__all__ = [
    "BuildStats",
    "from_edge_list",
    "from_coo",
    "from_networkx",
    "to_networkx",
]


@dataclass
class BuildStats:
    """Counts of the edges :func:`from_edge_list` quarantined/repaired.

    Filled in-place when passed as ``stats=``; the ingestion layer
    (:mod:`repro.graph.io`) surfaces these in its
    :class:`~repro.graph.io.IngestReport`.
    """

    self_loops_dropped: int = 0
    duplicates_collapsed: int = 0
    dangling_dropped: int = 0

    @property
    def total(self) -> int:
        return (
            self.self_loops_dropped
            + self.duplicates_collapsed
            + self.dangling_dropped
        )


def from_edge_list(
    sources,
    targets,
    weights=None,
    *,
    num_nodes: Optional[int] = None,
    name: str = "graph",
    dedupe: bool = False,
    drop_self_loops: bool = False,
    symmetric: bool = False,
    drop_dangling: bool = False,
    stats: Optional[BuildStats] = None,
) -> CSRGraph:
    """Build a CSR graph from parallel source/target arrays.

    Parameters
    ----------
    sources, targets:
        Integer array-likes of equal length, one entry per directed edge.
    weights:
        Optional parallel array of non-negative edge weights.
    num_nodes:
        Total node count; inferred as ``max(id) + 1`` when omitted.
    dedupe:
        Collapse duplicate ``(u, v)`` pairs, keeping the minimum weight
        (the only weight that can matter for shortest paths).
    drop_self_loops:
        Remove ``u -> u`` edges (they never change BFS/SSSP results).
    symmetric:
        Also insert the reverse of every edge (same weight), producing an
        undirected graph in directed representation — how the paper treats
        the road and co-citation networks.
    drop_dangling:
        With an explicit *num_nodes*, quarantine edges whose endpoint ids
        fall outside ``[0, num_nodes)`` instead of raising (lenient
        ingestion's repair path).
    stats:
        Optional :class:`BuildStats` filled in-place with how many edges
        each repair removed.
    """
    src = np.asarray(sources, dtype=np.int64).ravel()
    dst = np.asarray(targets, dtype=np.int64).ravel()
    if src.shape != dst.shape:
        raise GraphError(
            f"sources and targets must have equal length, got {src.size} and {dst.size}"
        )
    w: Optional[np.ndarray] = None
    if weights is not None:
        w = np.asarray(weights, dtype=WEIGHT_DTYPE).ravel()
        if w.shape != src.shape:
            raise GraphError(
                f"weights length {w.size} must match edge count {src.size}"
            )

    if symmetric and src.size:
        src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
        if w is not None:
            w = np.concatenate([w, w])

    if drop_dangling and num_nodes is not None and src.size:
        keep = (src >= 0) & (src < num_nodes) & (dst >= 0) & (dst < num_nodes)
        if stats is not None:
            stats.dangling_dropped += int(src.size - keep.sum())
        src, dst = src[keep], dst[keep]
        if w is not None:
            w = w[keep]

    if drop_self_loops and src.size:
        keep = src != dst
        if stats is not None:
            stats.self_loops_dropped += int(src.size - keep.sum())
        src, dst = src[keep], dst[keep]
        if w is not None:
            w = w[keep]

    if src.size:
        lo = min(src.min(), dst.min())
        if lo < 0:
            raise GraphError(f"negative node id {lo} in edge list")
        inferred = int(max(src.max(), dst.max())) + 1
    else:
        inferred = 0
    if num_nodes is None:
        n = inferred
    else:
        if num_nodes < inferred:
            raise GraphError(
                f"num_nodes={num_nodes} is smaller than max node id + 1 ({inferred})"
            )
        n = int(num_nodes)

    if dedupe and src.size:
        # Sort by (u, v, w) so the first of each (u, v) run has min weight.
        if w is not None:
            order = np.lexsort((w, dst, src))
        else:
            order = np.lexsort((dst, src))
        src, dst = src[order], dst[order]
        if w is not None:
            w = w[order]
        first = np.ones(src.size, dtype=bool)
        first[1:] = (src[1:] != src[:-1]) | (dst[1:] != dst[:-1])
        if stats is not None:
            stats.duplicates_collapsed += int(src.size - first.sum())
        src, dst = src[first], dst[first]
        if w is not None:
            w = w[first]

    # CSR assembly: canonical (source, target) order — adjacency lists
    # come out sorted, which makes graph equality well-defined and keeps
    # the coalescing model's "contiguous segment" assumption honest.
    order = np.lexsort((dst, src))
    col_indices = dst[order].astype(INDEX_DTYPE)
    out_weights = w[order] if w is not None else None
    counts = np.bincount(src, minlength=n) if src.size else np.zeros(n, dtype=np.int64)
    row_offsets = np.zeros(n + 1, dtype=OFFSET_DTYPE)
    np.cumsum(counts, out=row_offsets[1:])
    return CSRGraph(row_offsets, col_indices, out_weights, name=name)


def from_coo(
    coo_pairs: Iterable[Tuple[int, int]],
    *,
    weights=None,
    num_nodes: Optional[int] = None,
    name: str = "graph",
    **kwargs,
) -> CSRGraph:
    """Build a CSR graph from an iterable of ``(u, v)`` pairs."""
    pairs = np.asarray(list(coo_pairs), dtype=np.int64)
    if pairs.size == 0:
        pairs = pairs.reshape(0, 2)
    if pairs.ndim != 2 or pairs.shape[1] != 2:
        raise GraphError("coo_pairs must be an iterable of (u, v) pairs")
    return from_edge_list(
        pairs[:, 0], pairs[:, 1], weights, num_nodes=num_nodes, name=name, **kwargs
    )


def from_networkx(nx_graph, *, weight_attr: Optional[str] = None, name: Optional[str] = None) -> CSRGraph:
    """Convert a ``networkx`` (Di)Graph with integer-labelable nodes.

    Nodes are relabelled to ``0..n-1`` in sorted order.  Undirected
    networkx graphs become symmetric CSR graphs.
    """
    nodes = sorted(nx_graph.nodes())
    index = {node: i for i, node in enumerate(nodes)}
    directed = nx_graph.is_directed()
    src, dst, wts = [], [], []
    for u, v, data in nx_graph.edges(data=True):
        src.append(index[u])
        dst.append(index[v])
        if weight_attr is not None:
            wts.append(float(data.get(weight_attr, 1.0)))
    weights = wts if weight_attr is not None else None
    return from_edge_list(
        src,
        dst,
        weights,
        num_nodes=len(nodes),
        name=name or getattr(nx_graph, "name", None) or "networkx",
        symmetric=not directed,
    )


def to_networkx(graph: CSRGraph):
    """Convert to a ``networkx.DiGraph`` (weights become a 'weight' attr)."""
    import networkx as nx

    g = nx.DiGraph(name=graph.name)
    g.add_nodes_from(range(graph.num_nodes))
    src = np.repeat(
        np.arange(graph.num_nodes, dtype=np.int64), graph.out_degrees
    )
    if graph.has_weights:
        g.add_weighted_edges_from(
            zip(src.tolist(), graph.col_indices.tolist(), graph.weights.tolist())
        )
    else:
        g.add_edges_from(zip(src.tolist(), graph.col_indices.tolist()))
    return g
