"""1D vertex partitioning of a CSR graph across simulated devices.

Scaling past one GPU means splitting the CSR row-wise: shard *s* owns a
contiguous global vertex range ``[start, stop)`` and holds exactly those
rows of the edge vector on its device.  Column indices stay *global*, so
an edge may point at a vertex owned by another shard — a **ghost**
vertex.  The sharded driver (:mod:`repro.engine.shard`) relaxes each
shard's owned frontier locally and ships updates to ghost vertices to
their owners at the exchange barrier, priced over the interconnect
model (:mod:`repro.gpusim.interconnect`).

Two split strategies, both producing contiguous ranges (so a shard's
rows are a literal slice of the original arrays):

- ``"contiguous"`` — equal *vertex* counts; cheap and deterministic,
  but skewed degree distributions leave some shards with most of the
  edges;
- ``"balanced"`` — range boundaries chosen on the row-offset array so
  every shard holds roughly equal *edge* counts (degree-balanced), the
  split that matters for per-device work and memory.

:func:`reassemble` is the exact inverse of :func:`partition_graph`: the
shard CSR slices concatenate back to the original graph bit-for-bit (a
property the test suite checks with hypothesis).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import CSRGraph, INDEX_DTYPE, OFFSET_DTYPE

__all__ = ["PARTITION_STRATEGIES", "GraphShard", "partition_graph", "reassemble"]

PARTITION_STRATEGIES = ("contiguous", "balanced")


@dataclass(frozen=True)
class GraphShard:
    """One device's slice of a 1D-partitioned graph.

    ``csr`` holds the owned rows only (``stop - start`` rows) with
    **global** column ids, so its arrays are what the shard's device
    keeps resident and :meth:`CSRGraph.device_bytes` prices the
    per-device footprint honestly.  ``ghost_targets`` is the shard's
    ghost-vertex map: every global id its edges reference outside the
    owned range — exactly the set of vertices it may need to send
    updates to at an exchange barrier.
    """

    shard_index: int
    num_shards: int
    #: owned global vertex range ``[start, stop)``
    start: int
    stop: int
    #: owned rows, global column ids (built ``validate=False``)
    csr: CSRGraph
    #: sorted unique global ids referenced by local edges but owned
    #: elsewhere (the ghost-vertex map)
    ghost_targets: np.ndarray
    #: name of the graph this shard was cut from
    graph_name: str
    #: lazily built full-width CSR view (see :meth:`view`)
    _view: List[Optional[CSRGraph]] = field(
        default_factory=lambda: [None], repr=False, compare=False
    )

    @property
    def num_owned(self) -> int:
        return self.stop - self.start

    @property
    def num_ghosts(self) -> int:
        return int(self.ghost_targets.size)

    @property
    def num_edges(self) -> int:
        return self.csr.num_edges

    def owned_mask(self, nodes: np.ndarray) -> np.ndarray:
        """Boolean mask of *nodes* (global ids) this shard owns."""
        return (nodes >= self.start) & (nodes < self.stop)

    def owned_slice(self, frontier: np.ndarray) -> np.ndarray:
        """The subset of a sorted global frontier this shard owns."""
        lo = int(np.searchsorted(frontier, self.start, side="left"))
        hi = int(np.searchsorted(frontier, self.stop, side="left"))
        return frontier[lo:hi]

    def device_bytes(self) -> int:
        """Bytes of this shard's CSR slice resident on its device."""
        return self.csr.device_bytes()

    def view(self, num_nodes: int) -> CSRGraph:
        """A full-width (*num_nodes*-row) CSR view of this shard.

        Rows outside the owned range have zero degree; rows inside it
        are the shard's own adjacency lists with global column ids.
        The single-source relaxation kernels consume this view with
        global frontiers and global value arrays unchanged — which is
        what keeps sharded relaxation bit-identical to the one-device
        run.  Built lazily and cached (the padded row-offset array is
        a host-side simulation artifact, not a device allocation).
        """
        cached = self._view[0]
        if cached is not None and cached.num_nodes == num_nodes:
            return cached
        if num_nodes < self.stop:
            raise GraphError(
                f"shard {self.shard_index} owns [{self.start}, {self.stop}) "
                f"but the requested view has only {num_nodes} nodes"
            )
        offsets = np.zeros(num_nodes + 1, dtype=OFFSET_DTYPE)
        offsets[self.start : self.stop + 1] = self.csr.row_offsets
        offsets[self.stop + 1 :] = self.csr.row_offsets[-1]
        view = CSRGraph(
            offsets,
            self.csr.col_indices,
            self.csr.weights,
            name=f"{self.graph_name}[shard {self.shard_index}/{self.num_shards}]",
            validate=False,
        )
        self._view[0] = view
        return view


def _bounds_contiguous(num_nodes: int, num_shards: int) -> np.ndarray:
    return np.linspace(0, num_nodes, num_shards + 1).round().astype(np.int64)


def _bounds_balanced(row_offsets: np.ndarray, num_shards: int) -> np.ndarray:
    """Range boundaries that roughly equalize per-shard edge counts."""
    num_nodes = row_offsets.size - 1
    num_edges = int(row_offsets[-1])
    targets = np.linspace(0, num_edges, num_shards + 1)
    bounds = np.searchsorted(row_offsets, targets, side="left").astype(np.int64)
    bounds[0] = 0
    bounds[-1] = num_nodes
    # A single huge-degree vertex can collapse several targets onto the
    # same boundary; keep boundaries non-decreasing (empty shards are
    # legal — they simply idle) but never out of range.
    np.maximum.accumulate(bounds, out=bounds)
    np.clip(bounds, 0, num_nodes, out=bounds)
    return bounds


def partition_graph(
    graph: CSRGraph, num_shards: int, *, strategy: str = "contiguous"
) -> List[GraphShard]:
    """Split *graph* into *num_shards* contiguous row ranges.

    Returns one :class:`GraphShard` per range, in order.  Every vertex
    is owned by exactly one shard and every edge lives with its source
    vertex's owner, so :func:`reassemble` can rebuild the original
    graph exactly.
    """
    if num_shards < 1:
        raise GraphError(f"num_shards must be >= 1, got {num_shards}")
    if strategy not in PARTITION_STRATEGIES:
        raise GraphError(
            f"unknown partition strategy {strategy!r}; expected one of "
            f"{', '.join(PARTITION_STRATEGIES)}"
        )
    if num_shards > max(1, graph.num_nodes):
        raise GraphError(
            f"cannot cut {graph.num_nodes} nodes into {num_shards} shards"
        )
    row_offsets = graph.row_offsets
    if strategy == "balanced":
        bounds = _bounds_balanced(row_offsets, num_shards)
    else:
        bounds = _bounds_contiguous(graph.num_nodes, num_shards)

    shards: List[GraphShard] = []
    for index in range(num_shards):
        start = int(bounds[index])
        stop = int(bounds[index + 1])
        edge_lo = int(row_offsets[start])
        edge_hi = int(row_offsets[stop])
        local_offsets = row_offsets[start : stop + 1] - row_offsets[start]
        cols = graph.col_indices[edge_lo:edge_hi]
        weights = (
            graph.weights[edge_lo:edge_hi] if graph.weights is not None else None
        )
        local = CSRGraph(
            local_offsets,
            cols,
            weights,
            name=f"{graph.name}[shard {index}/{num_shards}]",
            validate=False,
        )
        ghosts = np.unique(cols[(cols < start) | (cols >= stop)]).astype(
            INDEX_DTYPE, copy=False
        )
        shards.append(
            GraphShard(
                shard_index=index,
                num_shards=num_shards,
                start=start,
                stop=stop,
                csr=local,
                ghost_targets=ghosts,
                graph_name=graph.name,
            )
        )
    return shards


def reassemble(shards: Sequence[GraphShard]) -> CSRGraph:
    """Rebuild the original graph from its shards (exact inverse of
    :func:`partition_graph`)."""
    if not shards:
        raise GraphError("cannot reassemble zero shards")
    ordered = sorted(shards, key=lambda s: s.shard_index)
    expected = 0
    for index, shard in enumerate(ordered):
        if shard.shard_index != index:
            raise GraphError(
                f"shard set is not contiguous: expected shard {index}, "
                f"got {shard.shard_index}"
            )
        if shard.start != expected:
            raise GraphError(
                f"shard {index} starts at {shard.start}, expected {expected} "
                "(ranges must tile the vertex space)"
            )
        expected = shard.stop
    num_nodes = ordered[-1].stop
    offsets = np.zeros(num_nodes + 1, dtype=OFFSET_DTYPE)
    base = 0
    col_parts = []
    weight_parts = []
    weighted = ordered[0].csr.weights is not None
    for shard in ordered:
        offsets[shard.start : shard.stop + 1] = shard.csr.row_offsets + base
        base += shard.csr.num_edges
        col_parts.append(shard.csr.col_indices)
        if weighted:
            if shard.csr.weights is None:
                raise GraphError(
                    f"shard {shard.shard_index} lost its weights; cannot "
                    "reassemble a weighted graph"
                )
            weight_parts.append(shard.csr.weights)
    cols = (
        np.concatenate(col_parts)
        if col_parts
        else np.empty(0, dtype=INDEX_DTYPE)
    )
    weights = np.concatenate(weight_parts) if weighted else None
    return CSRGraph(offsets, cols, weights, name=ordered[0].graph_name)
