"""Synthetic graph topology generators.

The paper's evaluation spans six real-world graphs whose decisive
properties are their outdegree statistics and distribution shapes
(Table 1, Figure 1).  These generators produce seeded synthetic graphs in
the same structural families; :mod:`repro.graph.datasets` instantiates
them with parameters matched to the paper's datasets.

All generators are vectorized (no per-edge Python loops) and
deterministic given a seed.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import GraphError
from repro.graph.builder import from_edge_list
from repro.graph.csr import CSRGraph, WEIGHT_DTYPE
from repro.utils.rng import SeedLike, make_rng
from repro.utils.validation import (
    check_in_range,
    check_nonnegative_int,
    check_positive_int,
    check_probability,
)

__all__ = [
    "grid_graph",
    "road_network",
    "regular_outdegree_graph",
    "power_law_graph",
    "rmat_graph",
    "watts_strogatz_graph",
    "erdos_renyi_graph",
    "star_graph",
    "chain_graph",
    "complete_graph",
    "balanced_tree",
    "attach_uniform_weights",
    "sample_power_law_degrees",
]


# ----------------------------------------------------------------------
# Deterministic structured graphs (mostly for tests and examples)
# ----------------------------------------------------------------------

def chain_graph(n: int, *, name: str = "chain") -> CSRGraph:
    """A path ``0 - 1 - ... - n-1`` (symmetric). BFS level of node i is i."""
    n = check_positive_int("n", n)
    if n == 1:
        return CSRGraph.empty(1, name=name)
    src = np.arange(n - 1, dtype=np.int64)
    return from_edge_list(src, src + 1, num_nodes=n, name=name, symmetric=True)


def star_graph(n: int, *, name: str = "star") -> CSRGraph:
    """Node 0 connected to nodes ``1..n-1`` (symmetric hub-and-spoke)."""
    n = check_positive_int("n", n)
    if n == 1:
        return CSRGraph.empty(1, name=name)
    dst = np.arange(1, n, dtype=np.int64)
    src = np.zeros(n - 1, dtype=np.int64)
    return from_edge_list(src, dst, num_nodes=n, name=name, symmetric=True)


def complete_graph(n: int, *, name: str = "complete") -> CSRGraph:
    """Every ordered pair ``(u, v), u != v`` is a directed edge."""
    n = check_positive_int("n", n)
    src = np.repeat(np.arange(n, dtype=np.int64), n)
    dst = np.tile(np.arange(n, dtype=np.int64), n)
    keep = src != dst
    return from_edge_list(src[keep], dst[keep], num_nodes=n, name=name)


def balanced_tree(branching: int, depth: int, *, name: str = "tree") -> CSRGraph:
    """A balanced *branching*-ary tree of the given depth (symmetric edges).

    Node 0 is the root; BFS from the root gives level == tree depth,
    making this the canonical known-answer graph for traversal tests.
    """
    branching = check_positive_int("branching", branching)
    depth = check_nonnegative_int("depth", depth)
    n = (branching ** (depth + 1) - 1) // (branching - 1) if branching > 1 else depth + 1
    if n == 1:
        return CSRGraph.empty(1, name=name)
    children = np.arange(1, n, dtype=np.int64)
    parents = (children - 1) // branching
    return from_edge_list(parents, children, num_nodes=n, name=name, symmetric=True)


def grid_graph(width: int, height: int, *, name: str = "grid") -> CSRGraph:
    """A 4-neighborhood ``width x height`` lattice (symmetric)."""
    width = check_positive_int("width", width)
    height = check_positive_int("height", height)
    idx = np.arange(width * height, dtype=np.int64).reshape(height, width)
    right_src = idx[:, :-1].ravel()
    right_dst = idx[:, 1:].ravel()
    down_src = idx[:-1, :].ravel()
    down_dst = idx[1:, :].ravel()
    src = np.concatenate([right_src, down_src])
    dst = np.concatenate([right_dst, down_dst])
    return from_edge_list(src, dst, num_nodes=width * height, name=name, symmetric=True)


# ----------------------------------------------------------------------
# Road network (CO-road analogue)
# ----------------------------------------------------------------------

def road_network(
    num_nodes: int,
    *,
    extra_edge_prob: float = 0.12,
    num_hubs_per_10k: float = 4.0,
    hub_extra_degree: int = 5,
    seed: SeedLike = None,
    name: str = "road",
) -> CSRGraph:
    """A sparse, large-diameter, nearly-planar road-map analogue.

    Construction: a serpentine path through all nodes laid out on a
    near-square lattice guarantees connectivity and a large diameter;
    vertical lattice edges are added with probability *extra_edge_prob*;
    a small number of "transportation hub" nodes receive a handful of
    extra links to nearby nodes, capping the max degree around 7-8 as in
    the Colorado road network.
    """
    num_nodes = check_positive_int("num_nodes", num_nodes)
    check_probability("extra_edge_prob", extra_edge_prob)
    rng = make_rng(seed)
    n = num_nodes
    width = max(1, int(np.sqrt(n)))

    # Serpentine backbone: consecutive ids form a Hamiltonian path over the
    # lattice rows, so the graph is connected and the diameter is O(n/width).
    path_src = np.arange(n - 1, dtype=np.int64)
    path_dst = path_src + 1

    # Vertical lattice edges (i <-> i + width) with sampling.
    vert_src = np.arange(n - width, dtype=np.int64)
    keep = rng.random(vert_src.size) < extra_edge_prob
    vert_src = vert_src[keep]
    vert_dst = vert_src + width

    # Hubs: a few nodes with extra short-range connections.
    num_hubs = max(1, int(round(num_hubs_per_10k * n / 10_000)))
    hubs = rng.choice(n, size=min(num_hubs, n), replace=False).astype(np.int64)
    hub_src = np.repeat(hubs, hub_extra_degree)
    offsets = rng.integers(2, max(3, 3 * width), size=hub_src.size)
    signs = rng.choice(np.array([-1, 1], dtype=np.int64), size=hub_src.size)
    hub_dst = np.clip(hub_src + signs * offsets, 0, n - 1)
    ok = hub_dst != hub_src
    hub_src, hub_dst = hub_src[ok], hub_dst[ok]

    src = np.concatenate([path_src, vert_src, hub_src])
    dst = np.concatenate([path_dst, vert_dst, hub_dst])
    return from_edge_list(
        src,
        dst,
        num_nodes=n,
        name=name,
        symmetric=True,
        dedupe=True,
        drop_self_loops=True,
    )


# ----------------------------------------------------------------------
# Regular outdegree (Amazon co-purchase analogue)
# ----------------------------------------------------------------------

def regular_outdegree_graph(
    num_nodes: int,
    *,
    modal_degree: int = 10,
    modal_fraction: float = 0.7,
    locality: float = 0.9,
    seed: SeedLike = None,
    name: str = "regular",
) -> CSRGraph:
    """A directed graph with a strongly modal outdegree distribution.

    *modal_fraction* of the nodes get exactly *modal_degree* outgoing
    edges; the rest get an outdegree uniform in ``[1, modal_degree - 1]``
    — Figure 1's description of the Amazon network (70 % of nodes with
    outdegree 10, remainder uniform 1-9).  With probability *locality*
    an edge lands in a +-(5 x modal_degree) id window around its source
    (co-purchases cluster), otherwise anywhere.
    """
    num_nodes = check_positive_int("num_nodes", num_nodes)
    modal_degree = check_positive_int("modal_degree", modal_degree)
    check_probability("modal_fraction", modal_fraction)
    check_probability("locality", locality)
    rng = make_rng(seed)
    n = num_nodes

    degrees = np.full(n, modal_degree, dtype=np.int64)
    non_modal = rng.random(n) >= modal_fraction
    if modal_degree > 1:
        degrees[non_modal] = rng.integers(1, modal_degree, size=int(non_modal.sum()))

    src = np.repeat(np.arange(n, dtype=np.int64), degrees)
    m = src.size
    window = 5 * modal_degree
    local = rng.random(m) < locality
    local_dst = src + rng.integers(-window, window + 1, size=m)
    local_dst = np.mod(local_dst, n)
    random_dst = rng.integers(0, n, size=m)
    dst = np.where(local, local_dst, random_dst)
    return from_edge_list(
        src, dst, num_nodes=n, name=name, dedupe=True, drop_self_loops=True
    )


# ----------------------------------------------------------------------
# Power-law graphs (CiteSeer / p2p / Google / generic heavy-tail)
# ----------------------------------------------------------------------

def sample_power_law_degrees(
    num_nodes: int,
    *,
    alpha: float,
    min_degree: int,
    max_degree: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sample integer degrees with ``P(k) ~ k^-alpha`` on [min, max].

    Uses inverse-CDF sampling of the continuous Pareto restricted to the
    range, then floors to integers — the standard discrete approximation,
    exact enough for topology shaping.
    """
    check_in_range("alpha", alpha, low=1.0 + 1e-9)
    min_degree = check_nonnegative_int("min_degree", min_degree)
    max_degree = check_positive_int("max_degree", max_degree)
    if max_degree < min_degree:
        raise GraphError(
            f"max_degree ({max_degree}) must be >= min_degree ({min_degree})"
        )
    lo = max(min_degree, 1)
    u = rng.random(num_nodes)
    a = 1.0 - alpha
    k = (u * (max_degree + 1.0) ** a + (1.0 - u) * lo**a) ** (1.0 / a)
    deg = np.minimum(np.floor(k).astype(np.int64), max_degree)
    if min_degree == 0:
        # Give a small fraction of nodes degree 0 (dangling pages / leaves).
        deg[rng.random(num_nodes) < 0.02] = 0
    return deg


def power_law_graph(
    num_nodes: int,
    *,
    alpha: float = 2.0,
    min_degree: int = 1,
    max_degree: Optional[int] = None,
    in_degree_skew: float = 1.0,
    symmetric: bool = False,
    seed: SeedLike = None,
    name: str = "powerlaw",
) -> CSRGraph:
    """A heavy-tailed directed graph in the CiteSeer/Google/SNS family.

    Outdegrees follow a truncated power law; edge targets are drawn with
    probability proportional to ``rank^-1/in_degree_skew`` over a random
    node permutation, so indegrees are heavy-tailed too (popular pages /
    highly-cited papers).  ``in_degree_skew <= 0`` means uniform targets.
    """
    num_nodes = check_positive_int("num_nodes", num_nodes)
    rng = make_rng(seed)
    n = num_nodes
    if max_degree is None:
        max_degree = max(min_degree + 1, n // 100)
    degrees = sample_power_law_degrees(
        n, alpha=alpha, min_degree=min_degree, max_degree=min(max_degree, n - 1), rng=rng
    )
    src = np.repeat(np.arange(n, dtype=np.int64), degrees)
    m = src.size

    if in_degree_skew > 0:
        # Zipf-like target popularity over a random permutation of nodes.
        ranks = np.arange(1, n + 1, dtype=np.float64)
        probs = ranks ** (-1.0 / in_degree_skew)
        probs /= probs.sum()
        perm = rng.permutation(n)
        dst = perm[_sample_discrete(probs, m, rng)]
    else:
        dst = rng.integers(0, n, size=m)

    return from_edge_list(
        src,
        dst,
        num_nodes=n,
        name=name,
        symmetric=symmetric,
        dedupe=True,
        drop_self_loops=True,
    )


def _sample_discrete(probs: np.ndarray, size: int, rng: np.random.Generator) -> np.ndarray:
    """Vectorized inverse-CDF sampling from a discrete distribution."""
    cdf = np.cumsum(probs)
    cdf[-1] = 1.0
    u = rng.random(size)
    return np.searchsorted(cdf, u, side="right").astype(np.int64)


# ----------------------------------------------------------------------
# R-MAT (LiveJournal / SNS analogue)
# ----------------------------------------------------------------------

def rmat_graph(
    scale: int,
    edge_factor: float = 8.0,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: SeedLike = None,
    name: str = "rmat",
    num_nodes: Optional[int] = None,
) -> CSRGraph:
    """A recursive-matrix (R-MAT) graph with ``2**scale`` id space.

    The Graph500 generator family: each edge picks one quadrant of the
    adjacency matrix per bit, giving the skewed, community-ish structure
    of large social networks.  Probabilities follow the Graph500 defaults
    (a=0.57, b=c=0.19, d=0.05).  If *num_nodes* is given, ids are mapped
    onto ``[0, num_nodes)`` by modulo so arbitrary node counts work.
    """
    scale = check_positive_int("scale", scale)
    if scale > 30:
        raise GraphError(f"scale {scale} too large for the simulator (max 30)")
    d = 1.0 - (a + b + c)
    if min(a, b, c, d) < 0 or max(a, b, c, d) > 1:
        raise GraphError(f"invalid R-MAT probabilities a={a} b={b} c={c} (d={d:.3f})")
    rng = make_rng(seed)
    n_ids = 2**scale
    m = int(round(edge_factor * (num_nodes if num_nodes else n_ids)))
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    for bit in range(scale):
        r = rng.random(m)
        # Quadrant choice: [a | b / c | d] — row bit set for c,d; col bit for b,d.
        row_bit = r >= a + b
        col_bit = (r >= a) & (r < a + b) | (r >= a + b + c)
        src |= row_bit.astype(np.int64) << bit
        dst |= col_bit.astype(np.int64) << bit
    if num_nodes is not None:
        num_nodes = check_positive_int("num_nodes", num_nodes)
        src = np.mod(src, num_nodes)
        dst = np.mod(dst, num_nodes)
        n = num_nodes
    else:
        n = n_ids
    return from_edge_list(
        src, dst, num_nodes=n, name=name, dedupe=True, drop_self_loops=True
    )


def watts_strogatz_graph(
    num_nodes: int,
    k: int = 4,
    rewire_prob: float = 0.1,
    *,
    seed: SeedLike = None,
    name: str = "small-world",
) -> CSRGraph:
    """A Watts-Strogatz small-world graph (symmetric).

    Start from a ring lattice where every node connects to its *k*
    nearest neighbors (k/2 on each side), then rewire each edge's far
    endpoint with probability *rewire_prob*.  Low rewiring keeps the
    road-like regular structure; a few percent collapses the diameter —
    a convenient family for studying the adaptive runtime between the
    road and social regimes.
    """
    num_nodes = check_positive_int("num_nodes", num_nodes)
    k = check_positive_int("k", k)
    check_probability("rewire_prob", rewire_prob)
    if k % 2 != 0:
        raise GraphError(f"k must be even (k/2 neighbors per side), got {k}")
    if k >= num_nodes:
        raise GraphError(f"k ({k}) must be < num_nodes ({num_nodes})")
    rng = make_rng(seed)
    n = num_nodes

    src_parts = []
    dst_parts = []
    base = np.arange(n, dtype=np.int64)
    for offset in range(1, k // 2 + 1):
        src_parts.append(base)
        dst_parts.append(np.mod(base + offset, n))
    src = np.concatenate(src_parts)
    dst = np.concatenate(dst_parts)

    rewire = rng.random(src.size) < rewire_prob
    dst = dst.copy()
    dst[rewire] = rng.integers(0, n, size=int(rewire.sum()))

    return from_edge_list(
        src,
        dst,
        num_nodes=n,
        name=name,
        symmetric=True,
        dedupe=True,
        drop_self_loops=True,
    )


def erdos_renyi_graph(
    num_nodes: int,
    num_edges: int,
    *,
    seed: SeedLike = None,
    name: str = "erdos-renyi",
) -> CSRGraph:
    """A uniform random directed graph with ~*num_edges* edges (G(n, m))."""
    num_nodes = check_positive_int("num_nodes", num_nodes)
    num_edges = check_nonnegative_int("num_edges", num_edges)
    rng = make_rng(seed)
    src = rng.integers(0, num_nodes, size=num_edges)
    dst = rng.integers(0, num_nodes, size=num_edges)
    return from_edge_list(
        src, dst, num_nodes=num_nodes, name=name, dedupe=True, drop_self_loops=True
    )


# ----------------------------------------------------------------------
# Weights
# ----------------------------------------------------------------------

def attach_uniform_weights(
    graph: CSRGraph,
    *,
    low: float = 1.0,
    high: float = 100.0,
    integer: bool = True,
    seed: SeedLike = None,
) -> CSRGraph:
    """Return *graph* with uniform random edge weights in [low, high].

    The paper's SSSP evaluation uses uniformly distributed positive edge
    weights; *integer* mirrors the integral weights of the DIMACS road
    graphs.
    """
    if high < low:
        raise GraphError(f"high ({high}) must be >= low ({low})")
    if low < 0:
        raise GraphError("weights must be non-negative")
    rng = make_rng(seed)
    if integer:
        w = rng.integers(int(low), int(high) + 1, size=graph.num_edges)
    else:
        w = rng.uniform(low, high, size=graph.num_edges)
    return graph.with_weights(np.asarray(w, dtype=WEIGHT_DTYPE))
