"""Dynamic graphs: mutation batches, a delta-CSR overlay, and priced
compaction.

The rest of the library treats a :class:`~repro.graph.csr.CSRGraph` as
frozen at ingest — kernels share read-only views, sessions key on the
content digest, manifests fingerprint the arrays.  This module is the
bridge between that immutable world and graphs that change under live
traffic:

- :class:`EdgeBatch` — a parsed batch of ``insert`` / ``delete`` /
  ``grow`` mutations, read from a JSONL stream with the same
  strict/lenient + quarantine machinery (and line-numbered
  diagnostics) as the file readers in :mod:`repro.graph.io`;
- :class:`DeltaOverlayGraph` — a base CSR plus an adjacency overlay
  for inserted edges and a deletion mask over base edges.  Outdegree
  statistics are maintained incrementally on every apply, so the
  decision maker and the learned policy see fresh ``num_edges`` /
  ``avg_out_degree`` inputs without a full re-profile
  (:func:`~repro.graph.properties.characterize` and
  :class:`~repro.core.inspector.StaticAttributes` both consume the
  overlay directly);
- :meth:`DeltaOverlayGraph.compact` — a *priced* rebuild through the
  canonical :func:`~repro.graph.builder.from_edge_list` path (so the
  compacted CSR is array- and digest-identical to a from-scratch build
  from the mutated edge list), charging the PCIe model for the delta
  upload and the allocator for the device-side growth.  The base graph
  stays resident; only deltas ship — the update model of "Exploring
  the Limits of GPUs With Parallel Graph Algorithms" (see
  ``docs/paper-map.md``).

Mutation JSONL format (one object per line)::

    {"op": "insert", "u": 3, "v": 7, "weight": 0.5}
    {"op": "delete", "u": 1, "v": 2}
    {"op": "grow", "nodes": 4}

``weight`` is only legal on inserts into weighted graphs (defaulting
to 1.0 when omitted); ``grow`` appends isolated nodes, which later
inserts in the same batch may reference.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from repro.errors import GraphError, GraphFormatError
from repro.graph.builder import from_edge_list
from repro.graph.csr import CSRGraph, INDEX_DTYPE, WEIGHT_DTYPE
from repro.graph.io import IngestLimits, _MODES
from repro.gpusim.device import DeviceSpec, TESLA_C2070
from repro.gpusim.transfer import TransferRecord, record_transfer
from repro.obs.context import current_observer

__all__ = [
    "MutationOp",
    "EdgeBatch",
    "MutationReport",
    "MutationDelta",
    "DeltaOverlayGraph",
    "CompactionResult",
    "load_mutations_jsonl",
]

#: host-side cost of one edge through the CSR rebuild (same per-edge
#: constant the CC spec charges for its host symmetrization pass)
COMPACT_SECONDS_PER_EDGE = 12e-9

_OPS = ("insert", "delete", "grow")
_FIELDS = {
    "insert": {"op", "u", "v", "weight"},
    "delete": {"op", "u", "v"},
    "grow": {"op", "nodes"},
}


@dataclass(frozen=True)
class MutationOp:
    """One parsed mutation: an edge insert/delete or a node grow."""

    op: str
    u: int = -1
    v: int = -1
    weight: Optional[float] = None
    nodes: int = 0
    #: 1-based line number in the originating stream (diagnostics)
    line: int = 0


def _op_from_doc(doc: dict, where: str, lineno: int) -> MutationOp:
    """Validate one decoded JSON object into a :class:`MutationOp`."""
    if not isinstance(doc, dict):
        raise GraphFormatError(
            f"{where}:{lineno}: mutation must be a JSON object, "
            f"got {type(doc).__name__}"
        )
    op = doc.get("op")
    if op not in _OPS:
        raise GraphFormatError(
            f"{where}:{lineno}: unknown mutation op {op!r} "
            f"(expected one of {', '.join(_OPS)})"
        )
    unknown = set(doc) - _FIELDS[op]
    if unknown:
        raise GraphFormatError(
            f"{where}:{lineno}: unknown field(s) for {op!r}: "
            f"{', '.join(sorted(unknown))}"
        )
    if op == "grow":
        nodes = doc.get("nodes")
        if not isinstance(nodes, int) or isinstance(nodes, bool) or nodes < 1:
            raise GraphFormatError(
                f"{where}:{lineno}: grow needs a positive integer "
                f"'nodes', got {nodes!r}"
            )
        return MutationOp(op="grow", nodes=nodes, line=lineno)
    endpoints = []
    for key in ("u", "v"):
        value = doc.get(key)
        if not isinstance(value, int) or isinstance(value, bool):
            raise GraphFormatError(
                f"{where}:{lineno}: {op} needs an integer {key!r}, "
                f"got {value!r}"
            )
        endpoints.append(value)
    weight = None
    if op == "insert" and "weight" in doc:
        raw = doc["weight"]
        if isinstance(raw, bool) or not isinstance(raw, (int, float)):
            raise GraphFormatError(
                f"{where}:{lineno}: bad edge weight {raw!r}"
            )
        weight = float(raw)
        if not np.isfinite(weight) or weight < 0:
            raise GraphFormatError(
                f"{where}:{lineno}: edge weight must be finite and "
                f"non-negative, got {raw!r}"
            )
    return MutationOp(
        op=op, u=endpoints[0], v=endpoints[1], weight=weight, line=lineno
    )


@dataclass
class MutationReport:
    """What one :meth:`DeltaOverlayGraph.apply` saw, checked, repaired.

    The quarantine tallies mirror :class:`~repro.graph.io.IngestReport`:
    in lenient mode anomalous ops are dropped and counted here instead
    of raising.
    """

    path: str = ""
    mode: Optional[str] = None
    parsed_ops: int = 0
    edges_inserted: int = 0
    edges_deleted: int = 0
    nodes_added: int = 0
    self_loops_dropped: int = 0
    duplicates_collapsed: int = 0
    dangling_dropped: int = 0
    missing_deletes_dropped: int = 0
    notes: List[str] = field(default_factory=list)

    @property
    def quarantined(self) -> int:
        """Total ops dropped by lenient-mode repair."""
        return (
            self.self_loops_dropped
            + self.duplicates_collapsed
            + self.dangling_dropped
            + self.missing_deletes_dropped
        )

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "mode": self.mode,
            "parsed_ops": self.parsed_ops,
            "edges_inserted": self.edges_inserted,
            "edges_deleted": self.edges_deleted,
            "nodes_added": self.nodes_added,
            "self_loops_dropped": self.self_loops_dropped,
            "duplicates_collapsed": self.duplicates_collapsed,
            "dangling_dropped": self.dangling_dropped,
            "missing_deletes_dropped": self.missing_deletes_dropped,
            "quarantined": self.quarantined,
            "notes": list(self.notes),
        }


class EdgeBatch:
    """An ordered batch of parsed mutations against one graph version.

    Parsing (here) is separate from graph validation (in
    :meth:`DeltaOverlayGraph.apply`): a batch parses against no graph
    in particular, then validates against the exact version it lands
    on — range checks against *that* graph's node count, duplicate
    checks against *that* graph's edge set.
    """

    def __init__(self, ops: Iterable[MutationOp], *, path: str = "<batch>"):
        self.ops: Tuple[MutationOp, ...] = tuple(ops)
        self.path = path

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self):
        return iter(self.ops)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kinds = {}
        for op in self.ops:
            kinds[op.op] = kinds.get(op.op, 0) + 1
        return f"EdgeBatch({kinds}, path={self.path!r})"

    # -- constructors --------------------------------------------------

    @classmethod
    def from_docs(
        cls, docs: Iterable[Tuple[int, dict]], *, path: str = "<stream>"
    ) -> "EdgeBatch":
        """Build from ``(lineno, decoded_json)`` pairs (the serve loop's
        stdin path, where JSON decoding already happened)."""
        return cls(
            (_op_from_doc(doc, path, lineno) for lineno, doc in docs),
            path=path,
        )

    @classmethod
    def from_jsonl(
        cls,
        path: Union[str, os.PathLike],
        *,
        limits: Optional[IngestLimits] = None,
    ) -> "EdgeBatch":
        """Parse a mutation JSONL file with line-numbered diagnostics."""
        from repro.graph.io import _open_text

        ops: List[MutationOp] = []
        consumed = 0
        with _open_text(path) as fh:
            for lineno, raw in enumerate(fh, start=1):
                consumed += len(raw)
                if limits is not None and limits.max_bytes is not None:
                    if consumed > limits.max_bytes:
                        from repro.errors import IngestLimitError

                        raise IngestLimitError(
                            f"{path}:{lineno}: input exceeds the "
                            f"{limits.max_bytes:,}-byte ingestion limit"
                        )
                line = raw.strip()
                if not line or line.startswith("#"):
                    continue
                try:
                    doc = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise GraphFormatError(
                        f"{path}:{lineno}: invalid JSON ({exc.msg})"
                    ) from exc
                ops.append(_op_from_doc(doc, str(path), lineno))
                if limits is not None and limits.max_edges is not None:
                    if len(ops) > limits.max_edges:
                        from repro.errors import IngestLimitError

                        raise IngestLimitError(
                            f"{path}:{lineno}: more than "
                            f"{limits.max_edges:,} mutations "
                            "(ingestion limit)"
                        )
        return cls(ops, path=str(path))

    @classmethod
    def inserts(cls, pairs, weights=None, *, path: str = "<batch>") -> "EdgeBatch":
        """Convenience: a batch of edge inserts from ``(u, v)`` pairs."""
        ops = []
        for i, (u, v) in enumerate(pairs):
            w = None if weights is None else float(weights[i])
            ops.append(
                MutationOp(op="insert", u=int(u), v=int(v), weight=w, line=i + 1)
            )
        return cls(ops, path=path)

    @classmethod
    def deletes(cls, pairs, *, path: str = "<batch>") -> "EdgeBatch":
        """Convenience: a batch of edge deletes from ``(u, v)`` pairs."""
        return cls(
            (
                MutationOp(op="delete", u=int(u), v=int(v), line=i + 1)
                for i, (u, v) in enumerate(pairs)
            ),
            path=path,
        )


def load_mutations_jsonl(
    path: Union[str, os.PathLike],
    *,
    limits: Optional[IngestLimits] = None,
) -> EdgeBatch:
    """Read a mutation batch from a JSONL file (see :class:`EdgeBatch`)."""
    return EdgeBatch.from_jsonl(path, limits=limits)


@dataclass
class MutationDelta:
    """The edges one :meth:`DeltaOverlayGraph.apply` actually changed.

    This is what the incremental engine re-seeds from: inserted-edge
    endpoints feed the warm frontier, deleted edges drive the scoped
    recompute of affected regions.
    """

    #: applied inserts, as parallel int64 arrays (post-quarantine)
    ins_src: np.ndarray
    ins_dst: np.ndarray
    ins_weight: Optional[np.ndarray]
    #: applied deletes
    del_src: np.ndarray
    del_dst: np.ndarray
    #: weights the deleted edges carried (parallel to del_src; None on
    #: unweighted graphs) — the tight-edge closure needs them
    del_weight: Optional[np.ndarray]
    nodes_added: int
    #: overlay epoch after this apply
    epoch: int
    report: MutationReport

    @property
    def num_inserts(self) -> int:
        return int(self.ins_src.size)

    @property
    def num_deletes(self) -> int:
        return int(self.del_src.size)

    def is_empty(self) -> bool:
        return not (self.num_inserts or self.num_deletes or self.nodes_added)

    def event_dict(self) -> dict:
        """Manifest-ready summary of this mutation event."""
        return {
            "epoch": self.epoch,
            "inserted": self.num_inserts,
            "deleted": self.num_deletes,
            "nodes_added": self.nodes_added,
            "quarantined": self.report.quarantined,
        }


@dataclass(frozen=True)
class CompactionResult:
    """A compacted CSR plus the simulated price of producing it."""

    graph: CSRGraph
    #: host-side rebuild seconds (per-edge pass through the builder)
    host_seconds: float
    #: the delta upload (new offsets + overlay adjacency + tombstones)
    transfer: TransferRecord
    delta_bytes: int

    @property
    def seconds(self) -> float:
        return self.host_seconds + self.transfer.seconds


class DeltaOverlayGraph:
    """A base CSR plus an insert overlay and a deletion mask.

    Read statistics (``num_nodes``, ``num_edges``, ``out_degrees``,
    ``avg_out_degree``) reflect the *logical* mutated graph and are
    maintained incrementally on apply — no edge scan, no re-profile.
    The kernels keep running on concrete CSR arrays: call
    :meth:`materialize` (unpriced, host-side oracle) or
    :meth:`compact` (priced, the serving path) to realize the logical
    graph as a canonical :class:`~repro.graph.csr.CSRGraph`.
    """

    def __init__(self, base: CSRGraph, *, name: Optional[str] = None):
        self.base = base
        self.name = name if name is not None else base.name
        self.epoch = 0
        self._added_nodes = 0
        #: deletion mask over base edge slots (lazily allocated)
        self._deleted: Optional[np.ndarray] = None
        self._deleted_count = 0
        #: overlay adjacency: (u, v) -> weight (None on unweighted base)
        self._overlay: Dict[Tuple[int, int], Optional[float]] = {}
        self._out_degrees = base.out_degrees.copy()
        self.mutations_applied = 0

    # -- read interface (CSRGraph-compatible statistics) ----------------

    @property
    def num_nodes(self) -> int:
        return self.base.num_nodes + self._added_nodes

    @property
    def num_edges(self) -> int:
        return self.base.num_edges - self._deleted_count + len(self._overlay)

    @property
    def has_weights(self) -> bool:
        return self.base.has_weights

    @property
    def out_degrees(self) -> np.ndarray:
        return self._out_degrees

    @property
    def avg_out_degree(self) -> float:
        if self.num_nodes == 0:
            return 0.0
        return self.num_edges / self.num_nodes

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise GraphError(
                f"node {node} out of range for graph with {self.num_nodes} nodes"
            )

    def device_bytes(self) -> int:
        """Device bytes of the logical graph once compacted."""
        per_edge = 4 + (4 if self.has_weights else 0)
        return (self.num_nodes + 1) * 8 + self.num_edges * per_edge

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DeltaOverlayGraph({self.name!r}, epoch={self.epoch}, "
            f"nodes={self.num_nodes}, edges={self.num_edges}, "
            f"+{len(self._overlay)}/-{self._deleted_count})"
        )

    # -- membership ----------------------------------------------------

    def _base_slots(self, u: int, v: int) -> np.ndarray:
        """Base edge-array slots holding (u, v), deleted ones included."""
        if u >= self.base.num_nodes:
            return np.empty(0, dtype=np.int64)
        lo = int(self.base.row_offsets[u])
        hi = int(self.base.row_offsets[u + 1])
        return lo + np.flatnonzero(self.base.col_indices[lo:hi] == v)

    def has_edge(self, u: int, v: int) -> bool:
        """True when the *logical* graph currently contains u -> v."""
        self._check_node(u)
        self._check_node(v)
        if (u, v) in self._overlay:
            return True
        slots = self._base_slots(u, v)
        if slots.size == 0:
            return False
        if self._deleted is None:
            return True
        return bool((~self._deleted[slots]).any())

    # -- mutation ------------------------------------------------------

    def apply(
        self,
        batch: EdgeBatch,
        *,
        mode: Optional[str] = None,
        report: Optional[MutationReport] = None,
    ) -> MutationDelta:
        """Validate *batch* against this graph version and apply it.

        *mode* follows the readers' contract: ``None`` rejects
        out-of-range endpoints and missing deletes but tolerates
        self-loops and duplicate inserts (collapsed); ``"strict"``
        raises a line-numbered :class:`~repro.errors.GraphFormatError`
        on any anomaly; ``"lenient"`` quarantines anomalous ops and
        tallies them in the :class:`MutationReport`.
        """
        if mode not in _MODES:
            raise GraphFormatError(
                f"mutation mode must be None, 'strict' or 'lenient', got {mode!r}"
            )
        rep = report if report is not None else MutationReport()
        rep.path = batch.path
        rep.mode = mode
        strict = mode == "strict"
        lenient = mode == "lenient"
        where = batch.path
        weighted = self.has_weights

        ins_src: List[int] = []
        ins_dst: List[int] = []
        ins_w: List[float] = []
        del_src: List[int] = []
        del_dst: List[int] = []
        del_w: List[float] = []
        nodes_added = 0
        #: (u, v) pairs this batch already inserted (intra-batch dedupe)
        batch_seen = set()

        for op in batch:
            rep.parsed_ops += 1
            if op.op == "grow":
                self._grow(op.nodes)
                nodes_added += op.nodes
                rep.nodes_added += op.nodes
                continue
            u, v = op.u, op.v
            if not (0 <= u < self.num_nodes and 0 <= v < self.num_nodes):
                if lenient:
                    rep.dangling_dropped += 1
                    continue
                raise GraphFormatError(
                    f"{where}:{op.line}: node id out of range in "
                    f"{op.op} {u} -> {v} (graph has {self.num_nodes} nodes)"
                )
            if op.op == "insert":
                if u == v:
                    if strict:
                        raise GraphFormatError(
                            f"{where}:{op.line}: self-loop at node {u} "
                            "(strict mode)"
                        )
                    if lenient:
                        rep.self_loops_dropped += 1
                        continue
                if (u, v) in batch_seen or self.has_edge(u, v):
                    if strict:
                        raise GraphFormatError(
                            f"{where}:{op.line}: duplicate edge {u} -> {v} "
                            "(strict mode)"
                        )
                    rep.duplicates_collapsed += 1
                    continue
                if op.weight is not None and not weighted:
                    if strict:
                        raise GraphFormatError(
                            f"{where}:{op.line}: weight on insert into "
                            f"unweighted graph {self.name!r} (strict mode)"
                        )
                    rep.notes.append(
                        f"line {op.line}: weight ignored (graph is unweighted)"
                    )
                weight = op.weight if op.weight is not None else 1.0
                self._insert(u, v, weight if weighted else None)
                batch_seen.add((u, v))
                ins_src.append(u)
                ins_dst.append(v)
                ins_w.append(weight)
                rep.edges_inserted += 1
            else:  # delete
                removed = self._delete(u, v)
                if removed is None:
                    if lenient:
                        rep.missing_deletes_dropped += 1
                        continue
                    raise GraphFormatError(
                        f"{where}:{op.line}: cannot delete missing edge "
                        f"{u} -> {v}"
                    )
                batch_seen.discard((u, v))
                del_src.append(u)
                del_dst.append(v)
                del_w.append(removed)
                rep.edges_deleted += 1

        self.epoch += 1
        self.mutations_applied += 1
        self._observe(rep, nodes_added)
        return MutationDelta(
            ins_src=np.asarray(ins_src, dtype=np.int64),
            ins_dst=np.asarray(ins_dst, dtype=np.int64),
            ins_weight=(
                np.asarray(ins_w, dtype=np.float64) if weighted else None
            ),
            del_src=np.asarray(del_src, dtype=np.int64),
            del_dst=np.asarray(del_dst, dtype=np.int64),
            del_weight=(
                np.asarray(del_w, dtype=np.float64) if weighted else None
            ),
            nodes_added=nodes_added,
            epoch=self.epoch,
            report=rep,
        )

    def _grow(self, count: int) -> None:
        self._added_nodes += count
        self._out_degrees = np.concatenate(
            [self._out_degrees, np.zeros(count, dtype=np.int64)]
        )

    def _insert(self, u: int, v: int, weight: Optional[float]) -> None:
        self._overlay[(u, v)] = weight
        self._out_degrees[u] += 1

    def _delete(self, u: int, v: int) -> Optional[float]:
        """Remove the logical edge u -> v; returns its (min) weight, or
        None when the edge does not exist.  Duplicate base slots are
        all tombstoned — deletion has edge-set semantics."""
        if (u, v) in self._overlay:
            w = self._overlay.pop((u, v))
            self._out_degrees[u] -= 1
            return float(w) if w is not None else 1.0
        slots = self._base_slots(u, v)
        if slots.size:
            if self._deleted is None:
                self._deleted = np.zeros(self.base.num_edges, dtype=bool)
            live = slots[~self._deleted[slots]]
            if live.size:
                self._deleted[live] = True
                self._deleted_count += int(live.size)
                self._out_degrees[u] -= int(live.size)
                if self.base.weights is not None:
                    return float(self.base.weights[live].min())
                return 1.0
        return None

    def _observe(self, rep: MutationReport, nodes_added: int) -> None:
        observer = current_observer()
        if observer is None:
            return
        metrics = observer.metrics
        metrics.counter("dynamic.mutations_applied").inc()
        metrics.counter("dynamic.edges_inserted").inc(rep.edges_inserted)
        metrics.counter("dynamic.edges_deleted").inc(rep.edges_deleted)
        if nodes_added:
            metrics.counter("dynamic.nodes_added").inc(nodes_added)
        if rep.quarantined:
            metrics.counter("dynamic.ops_quarantined").inc(rep.quarantined)
        metrics.gauge("dynamic.epoch").set(self.epoch)

    # -- realization ---------------------------------------------------

    def edge_arrays(self):
        """The logical graph's edge list: surviving base edges (in base
        order) followed by overlay inserts (in insertion order)."""
        n_base = self.base.num_nodes
        src = np.repeat(np.arange(n_base, dtype=np.int64), self.base.out_degrees)
        dst = self.base.col_indices.astype(np.int64)
        w = (
            self.base.weights.astype(WEIGHT_DTYPE)
            if self.base.weights is not None
            else None
        )
        if self._deleted is not None:
            keep = ~self._deleted
            src, dst = src[keep], dst[keep]
            if w is not None:
                w = w[keep]
        if self._overlay:
            o_src = np.fromiter(
                (u for u, _ in self._overlay), dtype=np.int64, count=len(self._overlay)
            )
            o_dst = np.fromiter(
                (v for _, v in self._overlay), dtype=np.int64, count=len(self._overlay)
            )
            src = np.concatenate([src, o_src])
            dst = np.concatenate([dst, o_dst])
            if w is not None:
                o_w = np.fromiter(
                    (wt for wt in self._overlay.values()),
                    dtype=WEIGHT_DTYPE,
                    count=len(self._overlay),
                )
                w = np.concatenate([w, o_w])
        return src, dst, w

    def materialize(self, *, name: Optional[str] = None) -> CSRGraph:
        """Realize the logical graph as a canonical CSR (unpriced).

        Goes through :func:`~repro.graph.builder.from_edge_list`, so
        the result is array- and digest-identical to a from-scratch
        build from the mutated edge list."""
        src, dst, w = self.edge_arrays()
        return from_edge_list(
            src,
            dst,
            w,
            num_nodes=self.num_nodes,
            name=name if name is not None else self.name,
        )

    def delta_bytes(self) -> int:
        """Bytes the compaction ships over PCIe: the rewritten node
        vector, the overlay adjacency (+weights), and one tombstone
        index per deleted base slot.  The base edge vector stays
        resident."""
        ins = len(self._overlay)
        per_insert = 4 + (4 if self.has_weights else 0)
        return (self.num_nodes + 1) * 8 + ins * per_insert + self._deleted_count * 4

    def compact(
        self,
        *,
        device: DeviceSpec = TESLA_C2070,
        memory=None,
        name: Optional[str] = None,
    ) -> CompactionResult:
        """Rebuild the CSR through the canonical builder and price it.

        Host side: one per-edge pass through the builder's sort.
        Device side: the delta upload of :meth:`delta_bytes` over PCIe
        (the base graph is already resident), charged against *memory*
        (a :class:`~repro.gpusim.allocator.MemoryBudget`) as growth in
        the resident ``graph`` category when the compacted CSR is
        larger than the base.  Non-mutating: callers re-wrap the
        returned graph in a fresh overlay to keep mutating.
        """
        graph = self.materialize(name=name)
        delta = self.delta_bytes()
        if memory is not None:
            growth = graph.device_bytes() - self.base.device_bytes()
            if growth > 0:
                memory.allocate(
                    growth, "graph", label=f"delta compaction of {self.name!r}"
                )
        transfer = record_transfer("h2d", delta, device)
        host_seconds = graph.num_edges * COMPACT_SECONDS_PER_EDGE
        observer = current_observer()
        if observer is not None:
            observer.metrics.counter("dynamic.compactions").inc()
            observer.metrics.counter("dynamic.compaction_bytes").inc(delta)
        return CompactionResult(
            graph=graph,
            host_seconds=host_seconds,
            transfer=transfer,
            delta_bytes=delta,
        )
